"""Ben-Or's randomized binary consensus (pure message passing, 1983).

This is the algorithm Algorithm 2 extends: the same two-phase round
structure, but with no cluster shared memory and therefore no cluster
attribution -- a message counts only for its sender.  It requires a strict
majority of correct processes; experiment E2 uses it as the control showing
that, under a majority crash, pure message passing cannot terminate while the
hybrid algorithm (with a majority cluster) can, and experiment E6 checks that
Algorithm 2 with singleton clusters behaves like this baseline.
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.base import (
    BOT,
    ConsensusProcess,
    ProcessEnvironment,
    ProtocolInvariantError,
    validate_proposal,
)
from ..core.pattern import msg_exchange


class BenOrConsensus(ConsensusProcess):
    """One process's instance of Ben-Or's algorithm."""

    algorithm_name = "ben-or"

    def __init__(self, env: ProcessEnvironment, tag: Optional[str] = None) -> None:
        super().__init__(env, tag)
        if env.local_coin is None:
            raise ValueError("Ben-Or needs a local coin")

    def run(self, ctx):
        env = self.env
        topology = env.topology
        est1: Any = validate_proposal(env.proposal)
        round_number = 0
        while True:
            round_number += 1
            ctx.mark_round(round_number)

            # Phase 1: try to identify a value supported by a majority of senders.
            outcome = yield from msg_exchange(
                ctx, env, round_number, 1, est1, self.tag, expand_clusters=False
            )
            if outcome.is_decide:
                return (yield from self.broadcast_decide(ctx, outcome.decide_value))
            majority_value = outcome.majority_value(topology)
            est2: Any = majority_value if majority_value is not None else BOT

            # Phase 2: decide, adopt or flip.
            outcome = yield from msg_exchange(
                ctx, env, round_number, 2, est2, self.tag, expand_clusters=False
            )
            if outcome.is_decide:
                return (yield from self.broadcast_decide(ctx, outcome.decide_value))
            received = set(outcome.values_received)
            championed = received - {BOT}
            if len(championed) > 1:
                raise ProtocolInvariantError(
                    f"round {round_number}: distinct championed values {championed} received; "
                    "two strict majorities of senders cannot support different values"
                )
            if championed and BOT not in received:
                value = championed.pop()
                return (yield from self.broadcast_decide(ctx, value))
            if championed:
                est1 = next(iter(championed))
            else:
                ctx.count_coin_flip()
                est1 = env.local_coin.flip()
