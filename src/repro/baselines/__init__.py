"""Baseline consensus algorithms the paper builds on or compares against."""

from .ben_or import BenOrConsensus
from .mp_common_coin import MessagePassingCommonCoinConsensus
from .shared_memory_only import SharedMemoryConsensus

__all__ = [
    "BenOrConsensus",
    "MessagePassingCommonCoinConsensus",
    "SharedMemoryConsensus",
]
