"""Pure message-passing common-coin consensus (crash-failure version).

The single-phase, common-coin round structure of Algorithm 3 without the
cluster shared memory: each round a process broadcasts its estimate, waits
for a strict majority of senders, queries the common coin, adopts a
majority-supported value (deciding when the coin matches it) and otherwise
adopts the coin.  This is the crash-failure adaptation, presented in
Raynal's 2018 book, of the Byzantine consensus of Friedman, Mostéfaoui and
Raynal (2005) -- the algorithm Algorithm 3 extends.  It requires a strict
majority of correct processes.
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.base import ConsensusProcess, ProcessEnvironment, validate_proposal
from ..core.pattern import msg_exchange


class MessagePassingCommonCoinConsensus(ConsensusProcess):
    """One process's instance of the pure message-passing common-coin algorithm."""

    algorithm_name = "mp-common-coin"

    SINGLE_PHASE = 1

    def __init__(self, env: ProcessEnvironment, tag: Optional[str] = None) -> None:
        super().__init__(env, tag)
        if env.common_coin is None:
            raise ValueError("the common-coin baseline needs a common coin")

    def run(self, ctx):
        env = self.env
        topology = env.topology
        est: Any = validate_proposal(env.proposal)
        round_number = 0
        while True:
            round_number += 1
            ctx.mark_round(round_number)

            outcome = yield from msg_exchange(
                ctx, env, round_number, self.SINGLE_PHASE, est, self.tag, expand_clusters=False
            )
            if outcome.is_decide:
                return (yield from self.broadcast_decide(ctx, outcome.decide_value))

            ctx.count_coin_flip()
            coin_bit = env.common_coin.bit(round_number, ctx.pid)

            majority_value = outcome.majority_value(topology)
            if majority_value is not None:
                est = majority_value
                if coin_bit == majority_value:
                    return (yield from self.broadcast_decide(ctx, majority_value))
            else:
                est = coin_bit
