"""Shared-memory-only consensus (the ``m = 1`` extreme of the model).

When every process lives in a single cluster the hybrid model collapses to
the classical shared-memory model and consensus is solved deterministically
and wait-free by a single compare&swap-based consensus object, tolerating
any number of crashes.  This baseline is the ``m = 1`` reference point of
experiments E6 and E8: maximal fault tolerance and minimal latency, but no
scalability story (the whole system must share one memory).
"""

from __future__ import annotations

from typing import Optional

from ..core.base import ConsensusProcess, ProcessEnvironment, validate_proposal


class SharedMemoryConsensus(ConsensusProcess):
    """Deterministic wait-free consensus through one cluster consensus object."""

    algorithm_name = "shared-memory"

    def __init__(self, env: ProcessEnvironment, tag: Optional[str] = None) -> None:
        super().__init__(env, tag)
        if env.memory is None:
            raise ValueError("the shared-memory baseline needs a cluster memory")
        if len(env.topology.cluster_of(env.pid)) != env.topology.n:
            raise ValueError(
                "the shared-memory baseline only applies when all processes share one cluster (m=1)"
            )

    def run(self, ctx):
        env = self.env
        proposal = validate_proposal(env.proposal)
        ctx.mark_round(1)
        cons = env.memory.consensus_object(self.tag, "decision")
        decided = yield from cons.propose(ctx, proposal)
        return decided
