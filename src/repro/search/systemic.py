"""Systemic-failure detection over adversarial sweep grids.

A sweep like experiment e10 produces one row per (scenario, intensity,
algorithm) cell -- safety and termination rates over a seed batch.  A
single bad cell is noise; the interesting findings are *systemic*: a
scenario that degrades every algorithm, an algorithm fragile under every
adaptive strategy, or any safety violation at all (which is never
acceptable).  :func:`detect_systemic_failure` scans the grid for those
patterns and returns structured findings the experiment report (and the
CLI) can surface with a recommendation attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

#: Finding severities, mildest to worst.
SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class SystemicPattern:
    """One systemic finding over a sweep grid."""

    pattern_type: str
    affected_components: Tuple[str, ...]
    severity: str
    recommendation: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}; choose from {SEVERITIES}")

    def describe(self) -> str:
        components = ", ".join(self.affected_components)
        return f"[{self.severity}] {self.pattern_type}: {components} -- {self.recommendation}"


def detect_systemic_failure(
    rows: Sequence[Mapping[str, object]],
    liveness_threshold: int = 3,
) -> List[SystemicPattern]:
    """Scan sweep rows for systemic degradation patterns.

    Each row must carry ``scenario``, ``algorithm``, ``safety_rate`` and
    ``termination_rate`` (as produced by the e9/e10 report builders);
    ``liveness_preserving`` is honoured when present so scenarios that are
    *expected* to starve termination don't raise liveness findings.

    Findings, worst first:

    * any ``safety_rate < 1.0`` cell is **critical** -- the paper's safety
      guarantee is unconditional;
    * a scenario whose liveness-preserving cells lose termination across at
      least ``liveness_threshold`` algorithms is a **warning** (the
      scenario systematically starves progress it should only delay);
    * an algorithm losing termination under at least ``liveness_threshold``
      liveness-preserving scenarios is a **warning** (the algorithm, not
      the fault, is the common factor).
    """
    findings: List[SystemicPattern] = []

    unsafe = sorted(
        {
            (str(row["scenario"]), str(row["algorithm"]))
            for row in rows
            if float(row["safety_rate"]) < 1.0  # type: ignore[arg-type]
        }
    )
    if unsafe:
        findings.append(
            SystemicPattern(
                pattern_type="safety-violation",
                affected_components=tuple(f"{scenario}/{algorithm}" for scenario, algorithm in unsafe),
                severity="critical",
                recommendation=(
                    "safety must hold under every adversary; rerun the cell's seeds "
                    "with `python -m repro search` to extract a replayable schedule"
                ),
            )
        )

    by_scenario: Dict[str, set] = {}
    by_algorithm: Dict[str, set] = {}
    for row in rows:
        if not bool(row.get("liveness_preserving", True)):
            continue
        if float(row["termination_rate"]) >= 1.0:  # type: ignore[arg-type]
            continue
        scenario = str(row["scenario"])
        algorithm = str(row["algorithm"])
        by_scenario.setdefault(scenario, set()).add(algorithm)
        by_algorithm.setdefault(algorithm, set()).add(scenario)

    for scenario, algorithms in sorted(by_scenario.items()):
        if len(algorithms) >= liveness_threshold:
            findings.append(
                SystemicPattern(
                    pattern_type="scenario-starves-liveness",
                    affected_components=(scenario,) + tuple(sorted(algorithms)),
                    severity="warning",
                    recommendation=(
                        f"scenario {scenario!r} is declared liveness-preserving but "
                        f"starved {len(algorithms)} algorithms inside the round cap; "
                        "raise the cap or re-examine the declaration"
                    ),
                )
            )
    for algorithm, scenarios in sorted(by_algorithm.items()):
        if len(scenarios) >= liveness_threshold:
            findings.append(
                SystemicPattern(
                    pattern_type="algorithm-fragile-liveness",
                    affected_components=(algorithm,) + tuple(sorted(scenarios)),
                    severity="warning",
                    recommendation=(
                        f"algorithm {algorithm!r} lost termination under "
                        f"{len(scenarios)} delay-only scenarios; its quorum structure "
                        "is unusually sensitive to adaptive delays"
                    ),
                )
            )

    order = {severity: index for index, severity in enumerate(SEVERITIES)}
    findings.sort(key=lambda finding: (-order[finding.severity], finding.pattern_type))
    return findings


__all__ = ["SEVERITIES", "SystemicPattern", "detect_systemic_failure"]
