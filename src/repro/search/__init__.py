"""Bounded schedule-space search: actively hunting safety violations.

The simulator's golden and property suites check *one* schedule per seed --
the one the seeded delay samples happen to produce.  This package explores
*many*: the kernel's schedule-controller seam exposes every point where
several events are ready at the same virtual instant, and the explorer
drives those choice points systematically (bounded DFS over
same-timestamp dispatch permutations), re-verifying agreement and
validity after every complete schedule.

Any violating schedule is summarised as a compact, deterministic *replay
token* -- algorithm, system size, seed and the exact choice sequence --
so a violation found by an overnight search becomes a one-line committable
regression test (see ``tests/schedules/``).

:mod:`~repro.search.explorer` holds the controller, the DFS and the token
format; :mod:`~repro.search.planted` wires a deliberately broken Ben-Or
variant used to prove the search actually finds real disagreement;
:mod:`~repro.search.systemic` post-processes sweep grids (experiment e10)
into systemic-failure findings.
"""

from .explorer import (
    ReplayController,
    ScheduleResult,
    SearchOutcome,
    SearchSpec,
    format_token,
    parse_token,
    replay_token,
    run_schedule,
    search,
    search_all,
)
from .systemic import SystemicPattern, detect_systemic_failure

__all__ = [
    "ReplayController",
    "ScheduleResult",
    "SearchOutcome",
    "SearchSpec",
    "SystemicPattern",
    "detect_systemic_failure",
    "format_token",
    "parse_token",
    "replay_token",
    "run_schedule",
    "search",
    "search_all",
]
