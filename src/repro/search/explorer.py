"""The schedule explorer: replayable controllers and bounded DFS.

The kernel dispatches queue entries in ``(time, sequence)`` order; whenever
several entries share the head's virtual timestamp, that order is one of
many the asynchronous model allows.  A
:class:`ReplayController` installed through
:meth:`~repro.sim.kernel.SimulationKernel.install_schedule_controller`
turns each such tie into an explicit decision: it replays a fixed choice
prefix, takes the default (sequence order) beyond it, and records the
fanout it saw at every decision -- exactly the bookkeeping a stateless
systematic search needs.

:func:`search` runs a bounded depth-first exploration over choice
prefixes: every executed schedule spawns one frontier node per untaken
alternative at each decision past its prefix, so no two executions repeat
a schedule, and the whole space up to ``max_decisions`` decisions (fanout
capped at ``fanout_cap``) is enumerated as budget allows.  Agreement and
validity are re-verified after every schedule; the first violation is
returned as a deterministic *replay token*.

Token format (version-prefixed, slash-separated)::

    v1/<algorithm>/n<n>/s<seed>/<proposals>/<choices>

where ``<proposals>`` is a named pattern from
:data:`~repro.harness.workloads.PROPOSAL_PATTERNS` and ``<choices>`` is
the dot-joined decision list (``-`` when empty), e.g.
``v1/planted-ben-or/n4/s0/one-dissenter/0.2.1``.  :func:`replay_token`
re-executes the exact schedule, making any token a committable regression
test.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..cluster.topology import ClusterTopology
from ..core.base import ProtocolInvariantError
from ..core.properties import verify_run
from ..harness.runner import ALGORITHMS, ExperimentConfig, prepare_consensus
from ..network.delays import ConstantDelay
from ..sim.kernel import SimConfig

#: The non-harness algorithms the search can target (wired by planted.py).
PLANTED_ALGORITHMS = ("planted-ben-or",)

_TOKEN_VERSION = "v1"


class ReplayController:
    """A schedule controller that replays a choice prefix, default-0 beyond.

    ``choices[i]`` is the index to dispatch at the ``i``-th tie the kernel
    offers; once the prefix is exhausted every further tie takes index 0,
    which is the kernel's native sequence order -- so the empty prefix
    reproduces the uncontrolled execution exactly.  Out-of-range choices
    are clamped to the last tied entry (a prefix recorded against one
    schedule stays executable when an earlier divergence shrank a later
    fanout).  The controller records the ``trail`` of indices actually
    taken and the ``fanouts`` it saw, which is what the explorer expands.
    """

    def __init__(self, choices: Sequence[int] = ()) -> None:
        self._choices = list(choices)
        self.trail: List[int] = []
        self.fanouts: List[int] = []

    def choose(self, now: float, time: float, entries: Sequence[tuple]) -> int:
        cursor = len(self.trail)
        fanout = len(entries)
        index = self._choices[cursor] if cursor < len(self._choices) else 0
        if index >= fanout:
            index = fanout - 1
        self.trail.append(index)
        self.fanouts.append(fanout)
        return index


@dataclass(frozen=True)
class SearchSpec:
    """One searchable configuration: algorithm, system size, seed, bounds.

    ``delay`` is the constant message delay and ``scheduling_jitter`` is
    forced to 0 -- determinism aside, collapsing all timing randomness
    makes simultaneous events (and therefore schedule choice points)
    abundant, which is where the search gets its leverage.
    """

    algorithm: str = "ben-or"
    n: int = 4
    seed: int = 0
    m: Optional[int] = None
    max_rounds: int = 20
    max_time: float = 1e4
    delay: float = 1.0
    #: Named proposal pattern.  "one-dissenter" is the default hunting
    #: workload: it puts the system one estimate away from unanimity, the
    #: regime where schedule choice decides which majorities form.
    proposals: str = "one-dissenter"

    def __post_init__(self) -> None:
        known = ALGORITHMS + PLANTED_ALGORITHMS
        if self.algorithm not in known:
            raise ValueError(f"unknown algorithm {self.algorithm!r}; choose from {known}")
        if self.n < 2:
            raise ValueError(f"search needs at least 2 processes, got n={self.n}")
        if not isinstance(self.proposals, str) or "/" in self.proposals:
            raise ValueError(
                f"search proposals must be a named pattern (token-safe), got {self.proposals!r}"
            )

    @property
    def clusters(self) -> int:
        """The cluster count: explicit ``m`` or the algorithm's default.

        The shared-memory baseline is only defined for a single cluster;
        everything else gets a balanced multi-cluster split.
        """
        if self.m is not None:
            return self.m
        if self.algorithm == "shared-memory":
            return 1
        return max(2, self.n // 2)

    def sim_config(self) -> SimConfig:
        return SimConfig(
            max_rounds=self.max_rounds,
            max_time=self.max_time,
            scheduling_jitter=0.0,
        )

    def topology(self) -> ClusterTopology:
        return ClusterTopology.even_split(self.n, self.clusters)


@dataclass
class ScheduleResult:
    """The outcome of executing one fully specified schedule."""

    spec: SearchSpec
    choices: Tuple[int, ...]
    trail: Tuple[int, ...]
    fanouts: Tuple[int, ...]
    violation: Optional[str] = None
    decisions: dict = field(default_factory=dict)

    @property
    def token(self) -> str:
        return format_token(self.spec, self.choices)


@dataclass
class SearchOutcome:
    """What a bounded search found (or exhausted)."""

    spec: SearchSpec
    runs: int
    violation: Optional[str] = None
    token: Optional[str] = None
    exhausted: bool = False

    @property
    def found(self) -> bool:
        return self.violation is not None


def format_token(spec: SearchSpec, choices: Sequence[int]) -> str:
    """Serialise one schedule as a replay token."""
    body = ".".join(str(choice) for choice in choices) or "-"
    return f"{_TOKEN_VERSION}/{spec.algorithm}/n{spec.n}/s{spec.seed}/{spec.proposals}/{body}"


def parse_token(token: str) -> Tuple[SearchSpec, Tuple[int, ...]]:
    """Parse a replay token back into its spec and choice sequence."""
    parts = token.strip().split("/")
    if len(parts) != 6 or parts[0] != _TOKEN_VERSION:
        raise ValueError(
            f"malformed replay token {token!r}; expected "
            f"{_TOKEN_VERSION}/<algorithm>/n<n>/s<seed>/<proposals>/<choices>"
        )
    _, algorithm, n_part, seed_part, proposals, body = parts
    if not n_part.startswith("n") or not seed_part.startswith("s"):
        raise ValueError(f"malformed replay token {token!r}")
    try:
        n = int(n_part[1:])
        seed = int(seed_part[1:])
        choices = () if body == "-" else tuple(int(piece) for piece in body.split("."))
    except ValueError as error:
        raise ValueError(f"malformed replay token {token!r}") from error
    if any(choice < 0 for choice in choices):
        raise ValueError(f"replay token {token!r} holds a negative choice")
    return SearchSpec(algorithm=algorithm, n=n, seed=seed, proposals=proposals), choices


def _prepare(spec: SearchSpec):
    """Wire one un-stepped run: ``(kernel, proposals, topology)``."""
    if spec.algorithm in PLANTED_ALGORITHMS:
        from .planted import prepare_planted

        return prepare_planted(spec)
    config = ExperimentConfig(
        topology=spec.topology(),
        algorithm=spec.algorithm,
        proposals=spec.proposals,
        seed=spec.seed,
        delay_model=ConstantDelay(spec.delay),
        sim=spec.sim_config(),
    )
    prepared = prepare_consensus(config)
    return prepared.kernel, prepared.proposals, config.topology


def run_schedule(spec: SearchSpec, choices: Sequence[int] = ()) -> ScheduleResult:
    """Execute one schedule and re-verify the safety properties.

    The schedule is fully determined by ``(spec, choices)``: the seed fixes
    every payload and coin flip, the choices fix every tie-break, so the
    same call always reproduces the same execution.  Only *safety* is
    judged -- a schedule that merely fails to terminate inside the round
    cap is not a violation (the search deliberately starves quorums), but
    disagreement, an invalid decision, or a
    :class:`~repro.core.base.ProtocolInvariantError` escaping the protocol
    is.
    """
    kernel, proposals, topology = _prepare(spec)
    controller = ReplayController(choices)
    kernel.install_schedule_controller(controller)
    try:
        sim_result = kernel.run()
    except ProtocolInvariantError as error:
        return ScheduleResult(
            spec=spec,
            choices=tuple(choices),
            trail=tuple(controller.trail),
            fanouts=tuple(controller.fanouts),
            violation=f"protocol invariant violated: {error}",
        )
    report = verify_run(sim_result, proposals, topology, termination_expected=False)
    violation = None if report.safety_ok else "; ".join(report.violations)
    return ScheduleResult(
        spec=spec,
        choices=tuple(choices),
        trail=tuple(controller.trail),
        fanouts=tuple(controller.fanouts),
        violation=violation,
        decisions=dict(sim_result.decisions),
    )


def replay_token(token: str) -> ScheduleResult:
    """Re-execute the schedule a token describes (the regression-test entry)."""
    spec, choices = parse_token(token)
    return run_schedule(spec, choices)


def search(
    spec: SearchSpec,
    budget: int = 200,
    fanout_cap: int = 4,
    max_decisions: int = 64,
    wall_budget: Optional[float] = None,
) -> SearchOutcome:
    """Bounded DFS over schedule prefixes, stopping at the first violation.

    ``budget`` caps the number of executed schedules, ``fanout_cap`` the
    alternatives expanded per decision, ``max_decisions`` how deep into a
    schedule new branches are opened, and ``wall_budget`` (seconds) the
    real time spent.  Every executed schedule expands the frontier with
    each untaken alternative at each decision beyond its own prefix
    (branch points are taken from the *executed* trail, so no schedule is
    ever run twice).  Returns the first violation's token, or an
    exhausted/budget-spent outcome with the run count.
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    if fanout_cap < 2:
        raise ValueError(f"fanout_cap must be >= 2, got {fanout_cap}")
    if max_decisions < 1:
        raise ValueError(f"max_decisions must be >= 1, got {max_decisions}")
    deadline = None if wall_budget is None else _time.monotonic() + wall_budget
    stack: List[Tuple[int, ...]] = [()]
    runs = 0
    while stack:
        if runs >= budget or (deadline is not None and _time.monotonic() > deadline):
            return SearchOutcome(spec=spec, runs=runs)
        prefix = stack.pop()
        result = run_schedule(spec, prefix)
        runs += 1
        if result.violation is not None:
            return SearchOutcome(
                spec=spec,
                runs=runs,
                violation=result.violation,
                token=result.token,
            )
        # Expand: one frontier node per untaken alternative at each decision
        # past this schedule's prefix.  Pushing deeper decisions first makes
        # the pop order depth-first from the shallowest divergence.
        limit = min(len(result.trail), max_decisions)
        for depth in range(limit - 1, len(prefix) - 1, -1):
            fanout = min(result.fanouts[depth], fanout_cap)
            base = result.trail[:depth]
            for choice in range(1, fanout):
                stack.append(base + (choice,))
    return SearchOutcome(spec=spec, runs=runs, exhausted=True)


def search_all(
    algorithms: Sequence[str],
    budget: int = 200,
    n: int = 4,
    seed: int = 0,
    fanout_cap: int = 4,
    max_decisions: int = 64,
    wall_budget: Optional[float] = None,
) -> List[SearchOutcome]:
    """Run :func:`search` for each algorithm, splitting any wall budget."""
    outcomes = []
    remaining = wall_budget
    for algorithm in algorithms:
        started = _time.monotonic()
        spec = SearchSpec(algorithm=algorithm, n=n, seed=seed)
        outcomes.append(
            search(
                spec,
                budget=budget,
                fanout_cap=fanout_cap,
                max_decisions=max_decisions,
                wall_budget=remaining,
            )
        )
        if remaining is not None:
            remaining = max(0.0, remaining - (_time.monotonic() - started))
    return outcomes


__all__ = [
    "PLANTED_ALGORITHMS",
    "ReplayController",
    "ScheduleResult",
    "SearchOutcome",
    "SearchSpec",
    "format_token",
    "parse_token",
    "replay_token",
    "run_schedule",
    "search",
    "search_all",
]
