"""A deliberately broken Ben-Or variant: the search harness's ground truth.

A schedule search that never finds anything proves little -- maybe the
algorithms are safe, maybe the search is blind.  This module plants a
known, *schedule-dependent* agreement bug so the suite can assert the
search actually detects real disagreement and that its replay tokens
reproduce it deterministically.

The bug: Ben-Or's phase-2 decision rule requires a championed value ``v``
with **no** ``⊥`` among the received phase-2 values -- every sender in the
majority must champion ``v`` -- and the decider then broadcasts ``DECIDE``
so laggards converge.  :class:`PlantedBenOrConsensus` decides as soon as
*any* championed value appears (even alongside ``⊥``) and skips the decide
broadcast.  Whether that premature decision disagrees with the rest of
the system depends entirely on which majority each process's exchange
happens to see -- i.e. on the dispatch schedule, which is exactly the
dimension :func:`~repro.search.explorer.search` explores.

Only the search harness and its tests may import this module; the variant
is deliberately not registered with the experiment harness.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from ..cluster.topology import ClusterTopology
from ..coins.local import LocalCoin
from ..core.base import BOT, ConsensusProcess, ProcessEnvironment, validate_proposal
from ..core.pattern import msg_exchange
from ..harness.workloads import resolve_proposals
from ..network.delays import ConstantDelay
from ..network.transport import Network
from ..sim.kernel import SimulationKernel
from ..sim.rng import RandomSource


class PlantedBenOrConsensus(ConsensusProcess):
    """Ben-Or with a premature phase-2 decision rule (agreement is broken)."""

    algorithm_name = "planted-ben-or"

    def __init__(self, env: ProcessEnvironment, tag: Optional[str] = None) -> None:
        super().__init__(env, tag)
        if env.local_coin is None:
            raise ValueError("the planted Ben-Or variant needs a local coin")

    def run(self, ctx):
        env = self.env
        topology = env.topology
        est1: Any = validate_proposal(env.proposal)
        round_number = 0
        while True:
            round_number += 1
            ctx.mark_round(round_number)

            outcome = yield from msg_exchange(
                ctx, env, round_number, 1, est1, self.tag, expand_clusters=False
            )
            if outcome.is_decide:
                return (yield from self.broadcast_decide(ctx, outcome.decide_value))
            majority_value = outcome.majority_value(topology)
            est2: Any = majority_value if majority_value is not None else BOT

            outcome = yield from msg_exchange(
                ctx, env, round_number, 2, est2, self.tag, expand_clusters=False
            )
            if outcome.is_decide:
                return (yield from self.broadcast_decide(ctx, outcome.decide_value))
            received = set(outcome.values_received)
            championed = received - {BOT}
            if championed:
                # THE PLANTED BUG (two faults in one): decide although ⊥ was
                # received alongside the championed value (the correct rule
                # demands unanimity in the majority), and return without the
                # DECIDE broadcast, so nobody learns about it.  Also skips
                # the distinct-championed-values invariant check, letting a
                # genuinely disagreeing schedule complete instead of raising.
                return min(championed)
            ctx.count_coin_flip()
            est1 = env.local_coin.flip()


def prepare_planted(spec) -> Tuple[SimulationKernel, dict, ClusterTopology]:
    """Wire one un-stepped planted run: ``(kernel, proposals, topology)``.

    Mirrors the harness's :func:`~repro.harness.runner.prepare_consensus`
    wiring for the pure message-passing path (same seed-derived streams for
    proposals and local coins), but swaps in the broken algorithm -- which
    is why the variant never touches the harness registry.
    """
    topology = spec.topology()
    rng = RandomSource(spec.seed)
    kernel = SimulationKernel(config=spec.sim_config(), rng=rng)
    network = Network(topology.n, delay_model=ConstantDelay(spec.delay), rng=rng)
    kernel.attach_network(network)
    proposals = resolve_proposals(spec.proposals, topology.n, rng.stream("proposals"))
    for pid in topology.process_ids():
        env = ProcessEnvironment(
            pid=pid,
            proposal=proposals[pid],
            topology=topology,
            memory=None,
            local_coin=LocalCoin(rng.stream("local-coin", pid)),
        )
        algorithm = PlantedBenOrConsensus(env)
        kernel.add_process(pid, algorithm.run)
    return kernel, proposals, topology


__all__ = ["PlantedBenOrConsensus", "prepare_planted"]
