"""Local coins (Section II-B).

A local coin gives its owning process an unbiased random bit; coins of
distinct processes are independent.  In the simulator each coin draws from
its own named stream of the run's :class:`~repro.sim.rng.RandomSource`, which
preserves independence while keeping runs reproducible.
"""

from __future__ import annotations

import random
from typing import List


class LocalCoin:
    """An unbiased, process-local source of random bits."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self.flips = 0
        self.history: List[int] = []

    def flip(self) -> int:
        """The paper's ``local_coin()``: return 0 or 1, each with probability 1/2."""
        self.flips += 1
        bit = self._rng.randrange(2)
        self.history.append(bit)
        return bit

    def __repr__(self) -> str:
        return f"LocalCoin(flips={self.flips})"


class BiasedLocalCoin(LocalCoin):
    """A local coin returning 1 with probability ``bias``.

    Used by robustness tests: the consensus algorithms remain safe for any
    coin distribution, and remain live as long as both outcomes have
    non-zero probability (the paper's "no value is returned with probability
    0" requirement).
    """

    def __init__(self, rng: random.Random, bias: float) -> None:
        if not 0.0 <= bias <= 1.0:
            raise ValueError(f"bias must be in [0, 1], got {bias}")
        super().__init__(rng)
        self.bias = bias

    def flip(self) -> int:
        """Return 1 with probability ``bias``, else 0."""
        self.flips += 1
        bit = 1 if self._rng.random() < self.bias else 0
        self.history.append(bit)
        return bit

    def __repr__(self) -> str:
        return f"BiasedLocalCoin(bias={self.bias}, flips={self.flips})"


class DeterministicCoin(LocalCoin):
    """A "coin" that replays a fixed cyclic sequence of bits.

    Deliberately violates the randomness assumption; tests use it to show
    that safety (agreement, validity) never depends on the coin, only
    liveness does -- the algorithms are indulgent with respect to their
    coins too.
    """

    def __init__(self, sequence: List[int]) -> None:
        super().__init__(random.Random(0))
        if not sequence or any(bit not in (0, 1) for bit in sequence):
            raise ValueError("sequence must be a non-empty list of bits")
        self.sequence = list(sequence)
        self._index = 0

    def flip(self) -> int:
        """Return the next bit of the fixed sequence, cycling at the end."""
        self.flips += 1
        bit = self.sequence[self._index % len(self.sequence)]
        self._index += 1
        self.history.append(bit)
        return bit

    def __repr__(self) -> str:
        return f"DeterministicCoin(sequence={self.sequence}, flips={self.flips})"
