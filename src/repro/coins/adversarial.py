"""Adversarial coin wrappers used by robustness experiments and tests.

Randomized consensus algorithms are proved correct against an adversary that
cannot predict future coin flips, but their *safety* must hold for any coin
behaviour whatsoever.  These wrappers let tests hand the algorithms
pathological coins and check that agreement and validity still hold.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from .common import CommonCoin
from .local import LocalCoin


class AlwaysZeroCoin(LocalCoin):
    """A local coin stuck at 0 (liveness-hostile, safety-irrelevant)."""

    def __init__(self) -> None:
        super().__init__(random.Random(0))

    def flip(self) -> int:
        """Return 0, unconditionally (accounting still recorded)."""
        self.flips += 1
        self.history.append(0)
        return 0


class AlwaysOneCoin(LocalCoin):
    """A local coin stuck at 1."""

    def __init__(self) -> None:
        super().__init__(random.Random(0))

    def flip(self) -> int:
        """Return 1, unconditionally (accounting still recorded)."""
        self.flips += 1
        self.history.append(1)
        return 1


class OpposingCoins:
    """A factory of local coins engineered to disagree across processes.

    Even-indexed processes always flip 0, odd-indexed processes always
    flip 1: the worst case for Ben-Or-style convergence.  Termination then
    relies entirely on the majority-adoption path, so tests pair this with
    proposal patterns that guarantee it (or with round caps to observe
    controlled non-termination while checking safety).
    """

    def coin_for(self, pid: int) -> LocalCoin:
        """The stuck coin assigned to ``pid``: 0 when even, 1 when odd."""
        return AlwaysZeroCoin() if pid % 2 == 0 else AlwaysOneCoin()


class AdversarialCommonCoin(CommonCoin):
    """A common coin whose bits an "adversary" chooses per round.

    Bits not explicitly set fall back to a seeded pseudo-random draw.  The
    coin remains *common* (identical at all processes), as required by the
    model; only its distribution is adversarial.
    """

    def __init__(self, forced_bits: Optional[Dict[int, int]] = None, seed: int = 0) -> None:
        super().__init__(seed=seed)
        self.forced_bits = dict(forced_bits or {})
        for round_number, bit in self.forced_bits.items():
            if round_number < 1 or bit not in (0, 1):
                raise ValueError(f"invalid forced bit {bit!r} for round {round_number}")

    def _ensure(self, round_number: int) -> None:
        """Extend the bit sequence, honouring forced bits round by round."""
        while len(self._bits) < round_number:
            next_round = len(self._bits) + 1
            if next_round in self.forced_bits:
                self._bits.append(self.forced_bits[next_round])
            else:
                self._bits.append(self._rng.randrange(2))

    def force(self, round_number: int, bit: int) -> None:
        """Fix the bit of a not-yet-drawn round (tests only)."""
        if round_number <= len(self._bits):
            raise ValueError(f"round {round_number} has already been drawn")
        if bit not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        self.forced_bits[round_number] = bit
