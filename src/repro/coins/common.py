"""Common coins (Section II-B).

A common coin delivers the *same* sequence of unbiased random bits
``b_1, b_2, ...`` to every process: the r-th invocation by any process
returns ``b_r``.  Real systems build common coins from secret sharing or
threshold cryptography (the paper defers to textbooks); the abstraction the
consensus algorithm needs is only "same unpredictable bit per round at every
process", which a dealer-seeded pseudo-random sequence provides exactly.
This substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Dict, List, Optional


class CommonCoin:
    """A shared, round-indexed sequence of unbiased random bits."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(("common-coin", seed).__repr__())
        self._bits: List[int] = []
        self.invocations = 0
        self.invocations_by_process: Dict[int, int] = defaultdict(int)

    def _ensure(self, round_number: int) -> None:
        """Draw bits lazily until round ``round_number`` has one."""
        while len(self._bits) < round_number:
            self._bits.append(self._rng.randrange(2))

    def bit(self, round_number: int, pid: Optional[int] = None) -> int:
        """The paper's ``common_coin()`` for round ``round_number`` (1-based).

        Every process invoking the coin for the same round observes the same
        bit.  ``pid`` is only used for per-process accounting.
        """
        if round_number < 1:
            raise ValueError("round numbers start at 1")
        self._ensure(round_number)
        self.invocations += 1
        if pid is not None:
            self.invocations_by_process[pid] += 1
        return self._bits[round_number - 1]

    def prefix(self, length: int) -> List[int]:
        """The first ``length`` bits of the shared sequence (for analysis)."""
        self._ensure(length)
        return list(self._bits[:length])

    def __repr__(self) -> str:
        return f"CommonCoin(bits_drawn={len(self._bits)}, invocations={self.invocations})"


class FixedSequenceCommonCoin(CommonCoin):
    """A common coin replaying a caller-supplied bit sequence (cyclically).

    Tests use it to pin down executions: e.g. forcing the coin to match (or
    to keep missing) the processes' estimates exercises both branches of
    Algorithm 3 deterministically.
    """

    def __init__(self, sequence: List[int]) -> None:
        super().__init__(seed=0)
        if not sequence or any(bit not in (0, 1) for bit in sequence):
            raise ValueError("sequence must be a non-empty list of bits")
        self._sequence = list(sequence)

    def _ensure(self, round_number: int) -> None:
        """Extend the bit sequence by replaying the fixed pattern."""
        while len(self._bits) < round_number:
            self._bits.append(self._sequence[len(self._bits) % len(self._sequence)])

    def __repr__(self) -> str:
        return f"FixedSequenceCommonCoin(sequence={self._sequence})"
