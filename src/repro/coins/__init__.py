"""Local and common coins (plus adversarial variants for testing)."""

from .adversarial import AdversarialCommonCoin, AlwaysOneCoin, AlwaysZeroCoin, OpposingCoins
from .common import CommonCoin, FixedSequenceCommonCoin
from .local import BiasedLocalCoin, DeterministicCoin, LocalCoin

__all__ = [
    "AdversarialCommonCoin",
    "AlwaysOneCoin",
    "AlwaysZeroCoin",
    "BiasedLocalCoin",
    "CommonCoin",
    "DeterministicCoin",
    "FixedSequenceCommonCoin",
    "LocalCoin",
    "OpposingCoins",
]
