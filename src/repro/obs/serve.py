"""The live sweep service: ``python -m repro serve`` and ``status --watch``.

A sweep directory already contains everything an observer needs -- the
plan header or shard manifests, the lease files with their heartbeat
timestamps and piggybacked telemetry, and the per-point checkpoints.
This module reads *only* those artifacts (it never joins the sweep), so
it can watch a run it did not start, a run on a shared filesystem, or
the wreckage of a run whose workers were killed.

Three layers, smallest first:

- :func:`render_status_text` -- one textual snapshot of a run directory;
  shared verbatim by ``status --watch`` and the HTML page.
- :class:`SweepMonitor` -- the JSON views behind the four endpoints:
  ``/status`` (counts + fleet telemetry), ``/progress`` (per-point
  states), ``/workers`` (manifest rows + live lease heartbeats), and
  ``/aggregate`` (the :class:`~repro.obs.merge.IncrementalMerger`'s
  partial aggregates, folded on demand).
- :func:`make_server` -- a stdlib :class:`~http.server.ThreadingHTTPServer`
  wiring the monitor to HTTP; ``/`` serves one minimal auto-refreshing
  HTML page around the text renderer.

Everything is stdlib; the service adds no dependency and no background
thread of its own (folding happens inside the request that asks for it).
"""

from __future__ import annotations

import json
import math
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO, Union

from ..harness import coordinator as _coord
from ..harness.aggregate import RunAggregate
from ..harness.distributed import ManifestError, SweepPlan, read_manifests
from .merge import IncrementalMerger
from .telemetry import merge_snapshots


def _finite(value: float) -> Optional[float]:
    """A float as JSON allows it: ``None`` for the infinities and NaN."""
    return value if math.isfinite(value) else None


def aggregate_to_json(aggregate: RunAggregate) -> Dict[str, Any]:
    """One :class:`~repro.harness.aggregate.RunAggregate` as plain JSON.

    Counters plus count/mean/std/min/max per metric -- the digest a
    dashboard needs; percentile sketches stay in the pickled artifacts.
    """
    return {
        "count": aggregate.count,
        "terminated_count": aggregate.terminated_count,
        "safe_count": aggregate.safe_count,
        "decided_count": aggregate.decided_count,
        "metrics": {
            name: {
                "count": stats.count,
                "mean": stats.mean,
                "std": stats.std,
                "min": _finite(stats.minimum),
                "max": _finite(stats.maximum),
            }
            for name, stats in sorted(aggregate.stats.items())
        },
    }


class SweepMonitor:
    """Read-only JSON views of one sweep directory.

    ``plan`` enables the ``/aggregate`` endpoint (folding needs the plan's
    run indexing); the other three endpoints work from the on-disk
    artifacts alone, so a monitor without a plan still serves them.
    Thread-safe: the HTTP server handles requests on multiple threads and
    the merger folds under a lock.
    """

    def __init__(self, out_dir: Union[str, Path], plan: Optional[SweepPlan] = None) -> None:
        self.out = Path(out_dir)
        self.plan = plan
        self._merger = IncrementalMerger(self.out, plan) if plan is not None else None
        self._lock = threading.Lock()

    # -------------------------------------------------------------- raw views
    def _mode(self) -> Optional[str]:
        if _coord.is_steal_dir(self.out):
            return "steal"
        try:
            read_manifests(self.out)
        except ManifestError:
            return None
        return "static"

    def _worker_snapshots(self) -> Dict[str, Dict[str, Any]]:
        """Freshest telemetry snapshot per worker, manifests and leases pooled.

        A worker's manifest snapshot is rewritten per completed point while
        its lease snapshot refreshes every heartbeat; per worker the one
        with the later ``sampled_at`` wins, so mid-point progress shows up
        without double counting.
        """
        freshest: Dict[str, Dict[str, Any]] = {}

        def offer(worker: str, snap: Any) -> None:
            if not isinstance(snap, dict):
                return
            held = freshest.get(worker)
            if held is None or snap.get("sampled_at", 0) >= held.get("sampled_at", 0):
                freshest[worker] = snap

        for row in _coord.steal_status(self.out).workers:
            offer(row["worker"], row.get("telemetry"))
        for lease in _coord.live_leases(self.out):
            offer(lease.worker, lease.telemetry)
        return freshest

    # -------------------------------------------------------------- endpoints
    def status(self) -> Dict[str, Any]:
        """The ``/status`` payload: counts, runs, and pooled fleet telemetry."""
        mode = self._mode()
        if mode == "steal":
            status = _coord.steal_status(self.out)
            return {
                "mode": "steal",
                "experiment": status.experiment,
                "plan_key": status.plan_key,
                "points_total": status.points_total,
                "done": status.done,
                "leased": status.leased,
                "orphaned": status.orphaned,
                "unclaimed": status.unclaimed,
                "stolen": status.stolen,
                "runs_total": status.runs_total,
                "workers": len(status.workers),
                "telemetry": merge_snapshots(self._worker_snapshots().values()),
                "sampled_at": time.time(),
            }
        if mode == "static":
            manifests = read_manifests(self.out)
            shards = []
            for manifest in manifests:
                points = manifest["points"]
                complete = sum(
                    1
                    for record in points.values()
                    if not record["runs"] or record.get("checkpoint")
                )
                shards.append(
                    {
                        "shard": f"{manifest['shard_index']}/{manifest['shard_count']}",
                        "points_done": complete,
                        "points_total": len(manifest.get("labels") or points),
                        "runs_done": manifest.get("runs_done"),
                        "runs_total": manifest.get("runs_total"),
                    }
                )
            first = manifests[0]
            return {
                "mode": "static",
                "experiment": first.get("experiment"),
                "plan_key": first.get("plan_key"),
                "shards": shards,
                "sampled_at": time.time(),
            }
        return {"mode": None, "error": f"{self.out} holds no sweep artifacts (yet)"}

    def progress(self) -> Dict[str, Any]:
        """The ``/progress`` payload: every point's current state."""
        mode = self._mode()
        if mode != "steal":
            # Static shards have no per-point lease state; their progress
            # *is* the per-shard status rows.
            return self.status()
        header = _coord.read_plan_header(self.out)
        labels = header["labels"]
        leases = {lease.point_index: lease for lease in _coord.live_leases(self.out)}
        points: List[Dict[str, Any]] = []
        done = 0
        for point_index, label in enumerate(labels):
            lease = leases.get(point_index)
            entry: Dict[str, Any] = {"index": point_index, "label": label}
            if _coord.point_checkpoint_path(self.out, point_index).exists():
                entry["state"] = "done"
                done += 1
            elif lease is None:
                entry["state"] = "unclaimed"
            elif lease.expired():
                entry["state"] = "orphaned"
            else:
                entry["state"] = "leased"
            if lease is not None:
                entry["worker"] = lease.worker
                entry["generation"] = lease.generation
            points.append(entry)
        return {
            "mode": "steal",
            "experiment": header.get("experiment"),
            "done": done,
            "points_total": len(labels),
            "points": points,
            "sampled_at": time.time(),
        }

    def workers(self) -> Dict[str, Any]:
        """The ``/workers`` payload: manifest rows plus live lease heartbeats."""
        mode = self._mode()
        if mode != "steal":
            return self.status()
        now = time.time()
        leases = [
            {
                "point_index": lease.point_index,
                "worker": lease.worker,
                "generation": lease.generation,
                "heartbeat_age": None if lease.corrupt else max(now - lease.renewed_at, 0.0),
                "ttl": lease.ttl,
                "expired": lease.expired(now),
                "telemetry": lease.telemetry,
            }
            for lease in _coord.live_leases(self.out)
            if not _coord.point_checkpoint_path(self.out, lease.point_index).exists()
        ]
        return {
            "mode": "steal",
            "workers": _coord.steal_status(self.out).workers,
            "leases": leases,
            "sampled_at": now,
        }

    def aggregate(self) -> Dict[str, Any]:
        """The ``/aggregate`` payload: the folded (possibly partial) prefix.

        Each request folds newly landed checkpoints first, so the answer is
        as fresh as the directory; folded points never re-fold.  The partial
        aggregates are bit-identical to what ``merge_shards`` /
        ``merge_stolen`` will produce for those points (see
        :mod:`repro.obs.merge`).
        """
        if self._merger is None:
            return {
                "error": "no plan available to fold aggregates (the artifacts "
                "record no experiment name); use /status and /progress",
            }
        with self._lock:
            self._merger.poll()
            return {
                "complete": self._merger.complete,
                "folded": len(self._merger.aggregates),
                "points_total": len(self._merger.plan.points),
                "pending": self._merger.pending(),
                "aggregates": {
                    label: aggregate_to_json(aggregate)
                    for label, aggregate in self._merger.aggregates.items()
                },
                "sampled_at": time.time(),
            }


# ------------------------------------------------------------ text rendering
def render_status_text(out_dir: Union[str, Path], plan: Optional[SweepPlan] = None) -> str:
    """One human-readable snapshot of a sweep directory.

    The single renderer behind ``python -m repro status --watch`` and the
    serve HTML page, so the browser and the terminal always agree.
    """
    monitor = SweepMonitor(out_dir, plan)
    status = monitor.status()
    lines: List[str] = []
    if status.get("mode") == "steal":
        lines.append(
            f"{status['experiment'] or status['plan_key'] or '?'}: "
            f"{status['done']}/{status['points_total']} points done "
            f"({status['stolen']} stolen), {status['leased']} leased, "
            f"{status['orphaned']} orphaned, {status['unclaimed']} unclaimed"
        )
        telemetry = status.get("telemetry") or {}
        counters = telemetry.get("counters") or {}
        if counters:
            shown = ", ".join(f"{name}={counters[name]:g}" for name in sorted(counters))
            lines.append(f"fleet: {shown}")
        workers = monitor.workers()
        for row in workers.get("workers", []):
            lines.append(
                f"  worker {row['worker']}: {row['computed']} computed "
                f"({row['stolen']} stolen, {row['lost']} lost), "
                f"{row['runs_executed']} runs"
            )
        for lease in workers.get("leases", []):
            age = lease["heartbeat_age"]
            age_text = "?" if age is None else f"{age:.1f}s"
            state = "EXPIRED" if lease["expired"] else "live"
            lines.append(
                f"  lease point {lease['point_index']:04d} gen {lease['generation']} "
                f"held by {lease['worker']} ({state}, heartbeat {age_text} ago)"
            )
    elif status.get("mode") == "static":
        lines.append(f"{status['experiment'] or status['plan_key'] or '?'}: static shards")
        for shard in status["shards"]:
            lines.append(
                f"  shard {shard['shard']}: {shard['points_done']}/{shard['points_total']} "
                f"points, {shard['runs_done']}/{shard['runs_total']} runs"
            )
    else:
        lines.append(status.get("error", f"{out_dir}: no sweep artifacts"))
    return "\n".join(lines)


def watch_status(
    out_dir: Union[str, Path],
    interval: float,
    iterations: Optional[int] = None,
    stream: Optional[TextIO] = None,
) -> None:
    """Poll-and-redraw :func:`render_status_text` every ``interval`` seconds.

    ``iterations`` bounds the loop (``None`` runs until interrupted; tests
    pass a small count); the redraw uses ANSI clear-screen so a terminal
    shows one live page rather than a scrolling log.
    """
    output = sys.stdout if stream is None else stream
    count = 0
    while iterations is None or count < iterations:
        if count:
            time.sleep(interval)
        text = render_status_text(out_dir)
        stamp = time.strftime("%H:%M:%S")
        output.write(f"\x1b[2J\x1b[H{text}\n\n(refreshed {stamp}, every {interval:g}s; Ctrl-C to stop)\n")
        output.flush()
        count += 1


# -------------------------------------------------------------- http service
_HTML_PAGE = """<!doctype html>
<html>
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="{refresh}">
<title>repro sweep: {title}</title>
</head>
<body style="font-family: monospace; margin: 2em;">
<h1 style="font-size: 1.2em;">sweep {title}</h1>
<pre>{text}</pre>
<p>JSON: <a href="/status">/status</a> · <a href="/progress">/progress</a> ·
<a href="/workers">/workers</a> · <a href="/aggregate">/aggregate</a></p>
</body>
</html>
"""


class _MonitorHandler(BaseHTTPRequestHandler):
    """Route GET requests to the server's :class:`SweepMonitor`."""

    server_version = "repro-serve"

    def do_GET(self) -> None:  # noqa: N802 (http.server's required casing)
        monitor: SweepMonitor = self.server.monitor  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        routes = {
            "/status": monitor.status,
            "/progress": monitor.progress,
            "/workers": monitor.workers,
            "/aggregate": monitor.aggregate,
        }
        try:
            if path == "/":
                text = render_status_text(monitor.out, monitor.plan)
                title = monitor.out.name or str(monitor.out)
                body = _HTML_PAGE.format(refresh=2, title=_escape(title), text=_escape(text))
                self._reply(200, body.encode("utf-8"), "text/html; charset=utf-8")
                return
            view = routes.get(path)
            if view is None:
                payload = {"error": f"unknown endpoint {path!r}", "endpoints": sorted(routes)}
                self._reply_json(404, payload)
                return
            self._reply_json(200, view())
        except ManifestError as error:
            self._reply_json(500, {"error": str(error)})

    def _reply_json(self, code: int, payload: Dict[str, Any]) -> None:
        self._reply(code, json.dumps(payload, indent=2).encode("utf-8"), "application/json")

    def _reply(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Silence per-request stderr logging (the CLI prints the URL once)."""


def _escape(text: str) -> str:
    """Minimal HTML escaping for the one page this module serves."""
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def make_server(
    out_dir: Union[str, Path],
    plan: Optional[SweepPlan] = None,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ThreadingHTTPServer:
    """Build (but do not start) the monitoring HTTP server.

    ``port=0`` binds an ephemeral port -- read the actual one from
    ``server.server_address`` -- which is what the end-to-end tests and
    the smoke script use to avoid collisions.  The caller owns the
    server's lifecycle: ``serve_forever()`` to run, ``shutdown()`` +
    ``server_close()`` to stop.
    """
    server = ThreadingHTTPServer((host, port), _MonitorHandler)
    server.daemon_threads = True
    server.monitor = SweepMonitor(out_dir, plan)  # type: ignore[attr-defined]
    return server
