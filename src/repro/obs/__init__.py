"""Observability layer for sweeps: telemetry, live serving, incremental merge.

The :mod:`repro.obs` package turns a running sweep into a queryable
workload instead of a batch job:

- :mod:`repro.obs.telemetry` -- a lightweight counters/gauges/timers
  registry sampled by sweep workers; snapshots ride the coordinator's
  existing lease heartbeats and worker manifests.
- :mod:`repro.obs.merge` -- :class:`~repro.obs.merge.IncrementalMerger`,
  which folds per-point checkpoints as they land and guarantees the
  partial aggregate of a completed prefix is bit-identical to
  :func:`~repro.harness.distributed.merge_shards` over the same points.
- :mod:`repro.obs.serve` -- the ``python -m repro serve`` HTTP service
  (``/status``, ``/progress``, ``/workers``, ``/aggregate``) and the
  text renderer shared with ``python -m repro status --watch``.

Structured execution tracing (the JSONL trace schema and the kernel's
``trace_sink`` option) lives with the kernel in :mod:`repro.sim.trace`;
``docs/observability.md`` documents the whole layer.
"""

from .telemetry import Telemetry, merge_snapshots

__all__ = ["IncrementalMerger", "Telemetry", "merge_snapshots"]


def __getattr__(name: str):
    """Lazily resolve the merge-layer export.

    The harness coordinator imports :mod:`repro.obs.telemetry` while
    :mod:`repro.obs.merge` imports the coordinator; loading ``merge``
    eagerly here would close that loop during the coordinator's own
    import.  Deferring it keeps ``from repro.obs import IncrementalMerger``
    working without the cycle.
    """
    if name == "IncrementalMerger":
        from .merge import IncrementalMerger

        return IncrementalMerger
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
