"""Incremental merging: fold per-point checkpoints as they land.

:func:`~repro.harness.distributed.merge_shards` and
:func:`~repro.harness.coordinator.merge_stolen` are batch operations --
they refuse to produce anything until every point of the plan is
checkpointed.  :class:`IncrementalMerger` is their streaming counterpart
for the observability layer: each :meth:`~IncrementalMerger.poll` scans
the run directory, folds every *newly completed* point, and leaves the
rest pending, so a live ``/aggregate`` endpoint can report the finished
prefix of an hours-long sweep.

**Bit-identity guarantee.** Every point is folded through
:func:`~repro.harness.distributed.fold_point` -- the same run-index-
ordered fold used by the batch mergers and by single-host
:func:`~repro.harness.distributed.run_plan`.  A point's aggregate never
depends on any other point, so the partial aggregates over any completed
subset are bit-identical to what ``merge_shards`` / ``merge_stolen``
produce for those points once the whole sweep finishes (the bit-identity
test sweeps k in {1, 3, 7} over every completed prefix).

Both run-directory flavours are understood: work-stealing directories
(``plan.json`` + whole-point ``point-NNNN.pkl`` checkpoints) and static
shard directories (``shard-IofK.json`` manifests + per-shard point
checkpoints, where a point completes when all shards owning runs of it
have checkpointed it).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from ..harness import coordinator as _coord
from ..harness.aggregate import RunAggregate, RunSummary
from ..harness.distributed import (
    ManifestError,
    MergedSweep,
    ShardSpec,
    SweepPlan,
    _load_checkpoint,
    _load_manifest,
    check_merge_provenance,
    checkpoint_path,
    find_manifests,
    fold_point,
)


class IncrementalMerger:
    """Fold a run directory's per-point checkpoints as they appear.

    Call :meth:`poll` whenever fresher data is wanted (the serve endpoints
    poll on each request); it returns the labels folded *by that call*.
    Folded aggregates accumulate in :attr:`aggregates`; a point that has
    not finished -- or whose checkpoint is momentarily unreadable -- simply
    stays pending until a later poll.  Provenance is enforced the same way
    the batch mergers enforce it: artifacts from a different plan raise
    :class:`~repro.harness.distributed.ManifestError` rather than fold.
    """

    def __init__(self, out_dir: Union[str, Path], plan: SweepPlan) -> None:
        self.out = Path(out_dir)
        self.plan = plan
        #: Folded aggregates by point label, in completion order.
        self.aggregates: Dict[str, RunAggregate] = {}
        self._done: Dict[int, bool] = {}
        #: ``steal`` or ``static``, discovered from the directory's
        #: artifacts on first poll (a not-yet-started directory has neither).
        self.mode: Optional[str] = None
        self._shard_count: Optional[int] = None
        #: Last per-point load failure, for diagnostics (a corrupt or torn
        #: checkpoint leaves its point pending rather than raising).
        self.last_error: Optional[str] = None

    # ---------------------------------------------------------------- state
    @property
    def complete(self) -> bool:
        """Whether every point of the plan has been folded."""
        return len(self.aggregates) == len(self.plan.points)

    def pending(self) -> List[str]:
        """Labels not folded yet, in plan order."""
        return [
            point.label for point in self.plan.points if point.label not in self.aggregates
        ]

    def merged(self) -> MergedSweep:
        """The fully merged sweep; raises until :attr:`complete`."""
        if not self.complete:
            raise ManifestError(
                f"run in {self.out} is incomplete: points {self.pending()} have "
                f"not been folded yet; keep polling (or run more workers)"
            )
        shard_count = self._shard_count if self._shard_count is not None else 1
        return MergedSweep(
            plan=self.plan,
            shard_count=shard_count,
            aggregates={point.label: self.aggregates[point.label] for point in self.plan.points},
        )

    # ---------------------------------------------------------------- polls
    def poll(self) -> List[str]:
        """Fold every newly completed point; return their labels."""
        if self.mode is None:
            self._detect_mode()
        if self.mode == "steal":
            return self._poll_steal()
        if self.mode == "static":
            return self._poll_static()
        return []

    def _detect_mode(self) -> None:
        if _coord.is_steal_dir(self.out):
            header = _coord.read_plan_header(self.out)
            check_merge_provenance(
                header, self.plan, self.out, what="work-stealing artifacts"
            )
            self.mode = "steal"
            return
        if self.out.is_dir():
            manifests = find_manifests(self.out)
            if manifests:
                manifest = _load_manifest(manifests[0])
                check_merge_provenance(manifest, self.plan, self.out)
                self._shard_count = int(manifest["shard_count"])
                self.mode = "static"

    def _poll_steal(self) -> List[str]:
        folded: List[str] = []
        for point_index, point in enumerate(self.plan.points):
            if self._done.get(point_index):
                continue
            cpath = _coord.point_checkpoint_path(self.out, point_index)
            if not cpath.exists():
                continue
            try:
                summaries = _load_checkpoint(cpath, self.plan, _coord._WHOLE, point_index)
            except ManifestError as error:
                self.last_error = str(error)
                continue
            self._fold(point_index, point.label, summaries, folded)
        return folded

    def _poll_static(self) -> List[str]:
        count = self._shard_count
        folded: List[str] = []
        for point_index, point in enumerate(self.plan.points):
            if self._done.get(point_index):
                continue
            shards = [
                ShardSpec(index, count)
                for index in range(1, count + 1)
                if self.plan.owned_positions(point_index, ShardSpec(index, count))
            ]
            paths = [checkpoint_path(self.out, shard, point_index) for shard in shards]
            if not all(path.exists() for path in paths):
                continue
            summaries: List[RunSummary] = []
            try:
                for shard, path in zip(shards, paths):
                    summaries.extend(_load_checkpoint(path, self.plan, shard, point_index))
            except ManifestError as error:
                self.last_error = str(error)
                continue
            self._fold(point_index, point.label, summaries, folded)
        return folded

    def _fold(
        self,
        point_index: int,
        label: str,
        summaries: List[RunSummary],
        folded: List[str],
    ) -> None:
        """Fold one completed point through the canonical shared fold."""
        self.aggregates[label] = fold_point(
            self.plan, point_index, ((summary.index, summary) for summary in summaries)
        )
        self._done[point_index] = True
        folded.append(label)
