"""A lightweight in-process metrics registry for sweep workers.

:class:`Telemetry` holds three kinds of instruments, all JSON-scalar
valued so a snapshot serializes directly into the coordinator's lease
and manifest files:

- **counters** -- monotonically increasing totals (``points_computed``,
  ``runs_executed``, ``points_stolen``);
- **gauges** -- last-written point-in-time values (``last_checkpoint_at``);
- **timers** -- wall-clock duration accumulators (``point_seconds``)
  recording count / total / max per name.

The registry is thread-safe: the work-stealing scheduler samples it from
the lease-renewal daemon thread while the worker loop updates it.  Rates
(points/sec, events/sec) are intentionally *not* computed here -- a
snapshot carries totals plus ``sampled_at``, and readers (the serve
endpoints, ``status --watch``) derive rates from successive snapshots or
from the sweep's start time, so clock handling stays in one place.

:func:`merge_snapshots` folds the per-worker snapshots embedded in lease
and manifest files into one fleet-wide view: counters and timer
count/total sum, timer max and gauges take the maximum, ``sampled_at``
keeps the freshest sample.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, Optional


class Telemetry:
    """Thread-safe counters, gauges, and wall-clock timers."""

    def __init__(self, clock=time.monotonic, wall_clock=time.time) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._timers: Dict[str, Dict[str, float]] = {}
        self._clock = clock
        self._wall_clock = wall_clock

    def inc(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        """Record one ``seconds``-long observation under timer ``name``."""
        with self._lock:
            timer = self._timers.get(name)
            if timer is None:
                timer = self._timers[name] = {"count": 0, "total": 0.0, "max": 0.0}
            timer["count"] += 1
            timer["total"] += seconds
            timer["max"] = max(timer["max"], seconds)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a ``with`` block and record it under timer ``name``."""
        start = self._clock()
        try:
            yield
        finally:
            self.observe(name, self._clock() - start)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable copy of every instrument, stamped with now."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {name: dict(timer) for name, timer in self._timers.items()},
                "sampled_at": self._wall_clock(),
            }


def merge_snapshots(snapshots: Iterable[Optional[Dict[str, Any]]]) -> Dict[str, Any]:
    """Fold per-worker telemetry snapshots into one fleet-wide snapshot.

    Counters sum; gauges take the maximum (the fleet gauges in use are
    "latest timestamp" style, where max *is* latest); timers sum count and
    total but keep the max of maxes; ``sampled_at`` keeps the freshest
    sample.  ``None`` entries (workers that never reported) are skipped.
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    timers: Dict[str, Dict[str, float]] = {}
    sampled_at: Optional[float] = None
    for snap in snapshots:
        if not snap:
            continue
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = value if name not in gauges else max(gauges[name], value)
        for name, timer in snap.get("timers", {}).items():
            merged = timers.setdefault(name, {"count": 0, "total": 0.0, "max": 0.0})
            merged["count"] += timer.get("count", 0)
            merged["total"] += timer.get("total", 0.0)
            merged["max"] = max(merged["max"], timer.get("max", 0.0))
        stamp = snap.get("sampled_at")
        if stamp is not None:
            sampled_at = stamp if sampled_at is None else max(sampled_at, stamp)
    merged_snapshot: Dict[str, Any] = {
        "counters": counters,
        "gauges": gauges,
        "timers": timers,
    }
    if sampled_at is not None:
        merged_snapshot["sampled_at"] = sampled_at
    return merged_snapshot
