"""E8 — Figure 2 and the scalability/efficiency trade-off.

Two parts:

1. **Figure 2** -- rebuild the paper's uniform m&m shared-memory domain on
   five processes and check the derived domain ``S`` against the appendix
   (``S1={p1,p2}``, ``S2={p1,p2,p3}``, ``S3={p2,p3,p4,p5}``, ``S4=S5={p3,p4,p5}``).

2. **Scalability sweep** -- the trade-off the introduction motivates: shared
   memory is efficient but does not scale, message passing scales but is less
   efficient.  Sweep the system size ``n`` and the cluster layout from
   ``m = 1`` (all shared memory) to ``m = n`` (all message passing), and
   measure messages, shared-memory operations and virtual decision latency.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from ..cluster.topology import ClusterTopology
from ..harness.aggregate import RunAggregate
from ..harness.distributed import PlanPoint, SweepPlan
from ..harness.runner import ExperimentConfig
from ..mm.domain import SharedMemoryDomain
from .common import ExperimentReport, default_seeds, run_planned

PAPER_CLAIM = (
    "Figure 2 / appendix: the uniform domain of the 5-process example is "
    "{{p1,p2},{p1,p2,p3},{p2,p3,p4,p5},{p3,p4,p5}}.  Scalability trade-off: intra-cluster "
    "agreement is efficient but does not scale; message-passing agreement scales but is less "
    "efficient, so messages decrease and shared-memory operations increase as clusters grow."
)

#: The appendix's expected domain, in 0-based process ids.
FIGURE2_EXPECTED_DOMAIN = frozenset(
    {
        frozenset({0, 1}),
        frozenset({0, 1, 2}),
        frozenset({1, 2, 3, 4}),
        frozenset({2, 3, 4}),
    }
)


def figure2_domain_matches() -> bool:
    """Whether the reconstructed Figure 2 domain equals the appendix's."""
    return SharedMemoryDomain.figure2().domain() == FIGURE2_EXPECTED_DOMAIN


def plan(
    seeds: Optional[Sequence[int]] = None,
    sizes: Sequence[int] = (4, 8, 12, 16),
    algorithm: str = "hybrid-local-coin",
) -> SweepPlan:
    """Enumerate the n x cluster-layout scalability sweep."""
    seeds = list(seeds) if seeds is not None else default_seeds(8)
    points = []
    for n in sizes:
        layouts: Dict[str, ClusterTopology] = {
            "m=1": ClusterTopology.single_cluster(n),
            "m=2": ClusterTopology.even_split(n, 2),
            "m=n/2": ClusterTopology.even_split(n, max(2, n // 2)),
            "m=n": ClusterTopology.singleton_clusters(n),
        }
        for layout_name, topology in layouts.items():
            points.append(
                PlanPoint(
                    label=f"n={n}/{layout_name}",
                    config=ExperimentConfig(topology=topology, algorithm=algorithm, proposals="split"),
                    check=True,
                    meta=dict(n=n, layout=layout_name, m=topology.m),
                )
            )
    return SweepPlan(
        key="E8", seeds=seeds, points=points, experiment="e8", meta={"sizes": list(sizes)}
    )


def build_report(plan: SweepPlan, aggregates: Mapping[str, RunAggregate]) -> ExperimentReport:
    """Assemble the E8 report from per-point aggregates."""
    report = ExperimentReport(
        experiment_id="E8",
        title="Figure 2 domain and the scalability trade-off",
        paper_claim=PAPER_CLAIM,
    )
    domain = SharedMemoryDomain.figure2()
    figure2_ok = figure2_domain_matches()
    report.add_note(f"figure-2 domain reconstructed: {domain.describe()}")
    report.add_note(f"figure-2 domain matches the appendix: {figure2_ok}")

    for point in plan.points:
        aggregate = aggregates[point.label]
        report.add_row(
            **point.meta,
            mean_messages=aggregate.mean("messages_sent"),
            mean_sm_ops=aggregate.mean("sm_ops"),
            mean_rounds=aggregate.mean("rounds_max"),
            mean_decision_time=aggregate.mean("decision_time_max"),
        )

    # Reproduction checks: the Figure 2 domain matches, and for every n the
    # m=1 layout needs fewer messages and fewer rounds than the m=n layout
    # (shared memory is the efficient extreme), while m=n needs fewer
    # shared-memory operations per run than m=1 needs messages -- i.e. the
    # two resources trade off monotonically at the extremes.
    passed = figure2_ok
    for n in plan.meta["sizes"]:
        single = report.row_where(n=n, layout="m=1")
        singleton = report.row_where(n=n, layout="m=n")
        if single["mean_messages"] > singleton["mean_messages"]:
            passed = False
        if single["mean_rounds"] > singleton["mean_rounds"]:
            passed = False
    report.passed = passed
    return report


def run(
    seeds: Optional[Sequence[int]] = None,
    sizes: Sequence[int] = (4, 8, 12, 16),
    algorithm: str = "hybrid-local-coin",
    max_workers: Optional[int] = None,
    exec_mode: Optional[str] = None,
) -> ExperimentReport:
    """Reconstruct Figure 2 and sweep n and m for the scalability trade-off."""
    return run_planned(
        plan(seeds=seeds, sizes=sizes, algorithm=algorithm),
        build_report,
        max_workers,
        exec_mode,
    )


# --------------------------------------------------------------- large-n E8L
#: The large-n curve: the "millions of users" story starts with the simulator
#: not choking at n=1000, so the sweep reaches into the thousands.
LARGE_SIZES = (256, 512, 1024, 2048)

#: Largest n that still gets the multi-cluster layout.  Splitting n processes
#: over m clusters multiplies the message volume and the per-mailbox wait
#: scans, so multi-cluster points cost roughly an order of magnitude more
#: wall clock than m=1 at equal n (measured: n=512/m=2 takes ~84s per run vs
#: ~3s for n=512/m=1); above this bound only the single-cluster extreme runs.
LARGE_MULTI_CLUSTER_MAX_N = 256

LARGE_PAPER_CLAIM = (
    "Scalability extrapolated: the single-cluster (shared-memory-heavy) "
    "extreme keeps its efficiency advantage as n grows into the thousands -- "
    "strictly fewer messages than the split layout at every n, with a "
    "shared-memory cost that grows with n instead -- which is the "
    "introduction's 'shared memory is efficient but does not scale, message "
    "passing scales but is less efficient' trade-off at system sizes the "
    "small-n sweep (E8) cannot reach."
)


def plan_large(
    seeds: Optional[Sequence[int]] = None,
    sizes: Sequence[int] = LARGE_SIZES,
    algorithm: str = "hybrid-local-coin",
) -> SweepPlan:
    """Enumerate the large-n scalability sweep (cooperative-execution flagship).

    Two repetitions per point by default (a run at n=2048 is millions of
    events; the curve's shape, not its error bars, is the deliverable) and
    only the m=1 / m=2 layout extremes, with m=2 capped at
    :data:`LARGE_MULTI_CLUSTER_MAX_N` -- see the constant's rationale.
    """
    seeds = list(seeds) if seeds is not None else default_seeds(2)
    points = []
    for n in sizes:
        layouts: Dict[str, ClusterTopology] = {"m=1": ClusterTopology.single_cluster(n)}
        if n <= LARGE_MULTI_CLUSTER_MAX_N:
            layouts["m=2"] = ClusterTopology.even_split(n, 2)
        for layout_name, topology in layouts.items():
            points.append(
                PlanPoint(
                    label=f"n={n}/{layout_name}",
                    config=ExperimentConfig(
                        topology=topology, algorithm=algorithm, proposals="split"
                    ),
                    check=True,
                    meta=dict(n=n, layout=layout_name, m=topology.m),
                )
            )
    return SweepPlan(
        key="E8L", seeds=seeds, points=points, experiment="e8l", meta={"sizes": list(sizes)}
    )


def build_large_report(plan: SweepPlan, aggregates: Mapping[str, RunAggregate]) -> ExperimentReport:
    """Assemble the large-n report from per-point aggregates."""
    report = ExperimentReport(
        experiment_id="E8L",
        title="Large-n scalability (cooperative multi-kernel execution)",
        paper_claim=LARGE_PAPER_CLAIM,
    )
    for point in plan.points:
        aggregate = aggregates[point.label]
        report.add_row(
            **point.meta,
            mean_messages=aggregate.mean("messages_sent"),
            mean_sm_ops=aggregate.mean("sm_ops"),
            mean_rounds=aggregate.mean("rounds_max"),
            mean_decision_time=aggregate.mean("decision_time_max"),
        )
    # Reproduction checks: every point terminated safely (the aggregates were
    # built with check=True, so reaching here already implies safety); at
    # every n that has both layouts the m=1 extreme is strictly cheaper in
    # messages than the split layout; and the m=1 shared-memory cost grows
    # monotonically with n -- efficiency that does not scale, at scale.
    passed = True
    single_rows = [row for row in report.rows if row["layout"] == "m=1"]
    for single in single_rows:
        split = next(
            (r for r in report.rows if r["layout"] == "m=2" and r["n"] == single["n"]),
            None,
        )
        if split is not None and single["mean_messages"] >= split["mean_messages"]:
            passed = False
    sm_costs = [row["mean_sm_ops"] for row in single_rows]
    if sm_costs != sorted(sm_costs):
        passed = False
    report.passed = passed
    return report


def run_large(
    seeds: Optional[Sequence[int]] = None,
    sizes: Sequence[int] = LARGE_SIZES,
    algorithm: str = "hybrid-local-coin",
    max_workers: Optional[int] = None,
    exec_mode: Optional[str] = None,
) -> ExperimentReport:
    """Sweep n into the thousands on the selected execution mode."""
    return run_planned(
        plan_large(seeds=seeds, sizes=sizes, algorithm=algorithm),
        build_large_report,
        max_workers,
        exec_mode,
    )


def main() -> None:  # pragma: no cover
    """Run the experiment with default parameters and print its report."""
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
