"""E6 — The extreme configurations of the hybrid model (Section II-A).

``m = n`` (singleton clusters) collapses the model to classical message
passing and Algorithm 2 "boils down to Ben-Or's algorithm"; ``m = 1`` (a
single cluster) collapses it to the classical shared-memory model where a
single deterministic consensus object suffices.  This experiment runs
Algorithm 2 with singleton clusters side by side with the standalone Ben-Or
baseline, and the hybrid algorithms with one cluster side by side with the
shared-memory baseline, and compares their cost profiles.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..cluster.topology import ClusterTopology
from ..harness.aggregate import RunAggregate
from ..harness.distributed import PlanPoint, SweepPlan
from ..harness.runner import ExperimentConfig
from .common import ExperimentReport, default_seeds, run_planned

PAPER_CLAIM = (
    "With one process per cluster the hybrid model is the classical message-passing model and "
    "Algorithm 2 reduces to Ben-Or's algorithm; with a single cluster it is the classical "
    "shared-memory model, where consensus is deterministic and message-free."
)


def plan(seeds: Optional[Sequence[int]] = None, n: int = 7) -> SweepPlan:
    """Enumerate the degenerate hybrid configurations and their baselines."""
    seeds = list(seeds) if seeds is not None else default_seeds(20)
    singleton = ClusterTopology.singleton_clusters(n)
    single = ClusterTopology.single_cluster(n)
    configs = {
        "hybrid m=n (singleton clusters)": ExperimentConfig(
            topology=singleton, algorithm="hybrid-local-coin", proposals="split"
        ),
        "ben-or (pure message passing)": ExperimentConfig(
            topology=singleton, algorithm="ben-or", proposals="split"
        ),
        "hybrid m=1 (single cluster)": ExperimentConfig(
            topology=single, algorithm="hybrid-local-coin", proposals="split"
        ),
        "hybrid common coin m=1": ExperimentConfig(
            topology=single, algorithm="hybrid-common-coin", proposals="split"
        ),
        "shared-memory baseline": ExperimentConfig(
            topology=single, algorithm="shared-memory", proposals="split"
        ),
    }
    points = [
        PlanPoint(
            label=label,
            config=config,
            check=True,
            meta=dict(configuration=label, n=n),
        )
        for label, config in configs.items()
    ]
    return SweepPlan(key="E6", seeds=seeds, points=points, experiment="e6")


def build_report(plan: SweepPlan, aggregates: Mapping[str, RunAggregate]) -> ExperimentReport:
    """Assemble the E6 report from per-point aggregates."""
    report = ExperimentReport(
        experiment_id="E6",
        title="Degenerate configurations: m = n and m = 1",
        paper_claim=PAPER_CLAIM,
    )
    for point in plan.points:
        aggregate = aggregates[point.label]
        report.add_row(
            **point.meta,
            mean_rounds=aggregate.mean("rounds_max"),
            mean_messages=aggregate.mean("messages_sent"),
            mean_sm_ops=aggregate.mean("sm_ops"),
            mean_decision_time=aggregate.mean("decision_time_max"),
        )

    singleton_hybrid = report.row_where(configuration="hybrid m=n (singleton clusters)")
    ben_or = report.row_where(configuration="ben-or (pure message passing)")
    single_cluster = report.row_where(configuration="hybrid m=1 (single cluster)")
    shared_memory = report.row_where(configuration="shared-memory baseline")

    # Checks: (i) with singleton clusters the hybrid algorithm's round/message
    # profile is of the same order as Ben-Or's (within a factor 2 on means);
    # (ii) with one cluster the hybrid algorithm decides in a single round;
    # (iii) the shared-memory baseline sends no messages at all.
    passed = True
    if not (0.5 <= singleton_hybrid["mean_rounds"] / max(ben_or["mean_rounds"], 1e-9) <= 2.0):
        passed = False
    if not (0.5 <= singleton_hybrid["mean_messages"] / max(ben_or["mean_messages"], 1e-9) <= 2.0):
        passed = False
    if single_cluster["mean_rounds"] != 1.0:
        passed = False
    if shared_memory["mean_messages"] != 0.0:
        passed = False
    report.passed = passed
    report.add_note(
        "the hybrid algorithm with singleton clusters pays the same message pattern as Ben-Or "
        "(plus vacuous one-member consensus objects); with one cluster it decides in one round "
        "and the message exchange is pure overhead compared to the shared-memory baseline."
    )
    return report


def run(
    seeds: Optional[Sequence[int]] = None,
    n: int = 7,
    max_workers: Optional[int] = None,
    exec_mode: Optional[str] = None,
) -> ExperimentReport:
    """Compare degenerate hybrid configurations with the corresponding baselines."""
    return run_planned(plan(seeds=seeds, n=n), build_report, max_workers, exec_mode)


def main() -> None:  # pragma: no cover
    """Run the experiment with default parameters and print its report."""
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
