"""E7 — Indulgence: safety is never sacrificed, even when termination is lost.

When the paper's termination condition does not hold (the clusters that keep
a correct process do not cover a strict majority), the algorithms "may not
terminate", but they are *indulgent*: whatever the failure pattern, they
never terminate with an incorrect result.  The experiment runs both hybrid
algorithms and the message-passing baselines under adversarial crash
patterns that violate their respective termination conditions, bounds the
executions (round cap and virtual-time cap), and verifies that every
decision that does get made is still valid and consistent.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..cluster.failures import FailurePattern
from ..cluster.topology import ClusterTopology
from ..harness.aggregate import RunAggregate
from ..harness.distributed import PlanPoint, SweepPlan
from ..harness.runner import ExperimentConfig, termination_expected
from ..sim.kernel import SimConfig
from .common import ExperimentReport, default_seeds, run_planned

PAPER_CLAIM = (
    "If no set of clusters with a surviving member covers a strict majority, the algorithm may "
    "not terminate; however it is indulgent: whatever the failure pattern, it never terminates "
    "with an incorrect result."
)


def plan(
    seeds: Optional[Sequence[int]] = None,
    n: int = 8,
    m: int = 4,
    round_cap: int = 25,
    algorithms: Sequence[str] = (
        "hybrid-local-coin",
        "hybrid-common-coin",
        "ben-or",
        "mp-common-coin",
    ),
) -> SweepPlan:
    """Enumerate adversarial crash patterns that break the termination condition."""
    seeds = list(seeds) if seeds is not None else default_seeds(12)
    topology = ClusterTopology.even_split(n, m)
    violating = FailurePattern.violate_termination_condition(topology, time=2.0)
    majority_crash = FailurePattern.crash_set(range(n // 2 + 1), time=2.0)
    sim = SimConfig(max_rounds=round_cap, max_time=5e4)
    notes = [
        f"topology {topology.describe()}; cluster-condition-violating pattern crashes "
        f"{violating.crash_count()} processes at t=2, majority pattern crashes "
        f"{majority_crash.crash_count()} at t=2 (crashes happen mid-execution, so early "
        "decisions by some processes are possible and must stay consistent)."
    ]
    points = []
    for algorithm in algorithms:
        pattern = violating if algorithm.startswith("hybrid") else majority_crash
        points.append(
            PlanPoint(
                label=algorithm,
                config=ExperimentConfig(
                    topology=topology,
                    algorithm=algorithm,
                    proposals="split",
                    failure_pattern=pattern,
                    sim=sim,
                ),
                check=False,
                meta=dict(
                    algorithm=algorithm,
                    pattern=(
                        "cluster-condition-violated"
                        if algorithm.startswith("hybrid")
                        else "majority-crashed"
                    ),
                    termination_expected=termination_expected(algorithm, topology, pattern),
                ),
            )
        )
    return SweepPlan(
        key="E7", seeds=seeds, points=points, experiment="e7", meta={"notes": notes}
    )


def build_report(plan: SweepPlan, aggregates: Mapping[str, RunAggregate]) -> ExperimentReport:
    """Assemble the E7 report from per-point aggregates."""
    report = ExperimentReport(
        experiment_id="E7",
        title="Indulgence under termination-breaking failure patterns",
        paper_claim=PAPER_CLAIM,
    )
    for note in plan.meta["notes"]:
        report.add_note(note)
    for point in plan.points:
        aggregate = aggregates[point.label]
        report.add_row(
            **point.meta,
            termination_rate=aggregate.termination_rate(),
            some_process_decided_rate=aggregate.decided_rate(),
            safety_rate=aggregate.safety_rate(),
        )

    report.passed = all(row["safety_rate"] == 1.0 for row in report.rows) and all(
        not row["termination_expected"] for row in report.rows
    )
    return report


def run(
    seeds: Optional[Sequence[int]] = None,
    n: int = 8,
    m: int = 4,
    round_cap: int = 25,
    algorithms: Sequence[str] = (
        "hybrid-local-coin",
        "hybrid-common-coin",
        "ben-or",
        "mp-common-coin",
    ),
    max_workers: Optional[int] = None,
    exec_mode: Optional[str] = None,
) -> ExperimentReport:
    """Adversarial crash patterns that break the termination condition."""
    return run_planned(
        plan(seeds=seeds, n=n, m=m, round_cap=round_cap, algorithms=algorithms),
        build_report,
        max_workers,
        exec_mode,
    )


def main() -> None:  # pragma: no cover
    """Run the experiment with default parameters and print its report."""
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
