"""E2 — Consensus despite a crashed majority (the paper's headline claim).

With a cluster holding a strict majority of processes, the hybrid algorithms
terminate in failure patterns where *every* process crashes except one member
of that cluster -- a majority of processes crash, which no pure
message-passing consensus can tolerate.  The experiment runs the headline
scenario on several system sizes for both hybrid algorithms, and runs Ben-Or
under a crash of the same cardinality as the control: it must stay safe but
cannot terminate.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..cluster.failures import FailurePattern
from ..cluster.topology import ClusterTopology
from ..harness.aggregate import RunAggregate
from ..harness.distributed import PlanPoint, SweepPlan
from ..harness.runner import ExperimentConfig
from ..sim.kernel import SimConfig
from .common import ExperimentReport, default_seeds, run_planned

PAPER_CLAIM = (
    "If a cluster contains a strict majority of processes and at least one of its members "
    "does not crash, consensus is solved despite any failure pattern in the other clusters -- "
    "in particular despite a majority of processes crashing.  Pure message-passing consensus "
    "requires a majority of correct processes."
)


def plan(
    seeds: Optional[Sequence[int]] = None,
    sizes: Sequence[int] = (7, 11, 15),
    control_round_cap: int = 40,
) -> SweepPlan:
    """Enumerate the headline scenario per size, plus the Ben-Or control."""
    seeds = list(seeds) if seeds is not None else default_seeds(10)
    points = []
    for n in sizes:
        topology = ClusterTopology.with_majority_cluster(n, others=2)
        survivor = sorted(topology.cluster_members(topology.majority_cluster_index()))[0]
        pattern = FailurePattern.majority_crash_with_surviving_majority_cluster(topology, survivor=survivor)
        crash_count = pattern.crash_count()

        for algorithm in ("hybrid-local-coin", "hybrid-common-coin"):
            points.append(
                PlanPoint(
                    label=f"n={n}/{algorithm}",
                    config=ExperimentConfig(
                        topology=topology,
                        algorithm=algorithm,
                        proposals="split",
                        failure_pattern=pattern,
                    ),
                    check=False,
                    meta=dict(
                        n=n,
                        algorithm=algorithm,
                        crashed=crash_count,
                        crashed_majority=pattern.crashes_majority(n),
                        control=False,
                    ),
                )
            )

        control_pattern = FailurePattern.crash_set(
            sorted(set(range(n)) - {survivor})[:crash_count], time=0.0
        )
        points.append(
            PlanPoint(
                label=f"n={n}/ben-or-control",
                config=ExperimentConfig(
                    topology=topology,
                    algorithm="ben-or",
                    proposals="split",
                    failure_pattern=control_pattern,
                    sim=SimConfig(max_rounds=control_round_cap, max_time=5e4),
                ),
                check=False,
                meta=dict(
                    n=n,
                    algorithm="ben-or (control)",
                    crashed=control_pattern.crash_count(),
                    crashed_majority=control_pattern.crashes_majority(n),
                    control=True,
                ),
            )
        )
    return SweepPlan(key="E2", seeds=seeds, points=points, experiment="e2")


def build_report(plan: SweepPlan, aggregates: Mapping[str, RunAggregate]) -> ExperimentReport:
    """Assemble the E2 report from per-point aggregates."""
    report = ExperimentReport(
        experiment_id="E2",
        title="Majority crash with a surviving majority-cluster member",
        paper_claim=PAPER_CLAIM,
    )
    for point in plan.points:
        aggregate = aggregates[point.label]
        meta = point.meta
        report.add_row(
            n=meta["n"],
            algorithm=meta["algorithm"],
            crashed=meta["crashed"],
            crashed_majority=meta["crashed_majority"],
            termination_rate=aggregate.termination_rate(),
            safety_rate=aggregate.safety_rate(),
            mean_rounds=float("nan") if meta["control"] else aggregate.mean("rounds_max"),
        )

    hybrid_rows = [row for row in report.rows if row["algorithm"].startswith("hybrid")]
    control_rows = [row for row in report.rows if row["algorithm"].startswith("ben-or")]
    report.passed = (
        all(row["termination_rate"] == 1.0 and row["safety_rate"] == 1.0 for row in hybrid_rows)
        and all(row["termination_rate"] == 0.0 and row["safety_rate"] == 1.0 for row in control_rows)
    )
    report.add_note(
        "hybrid algorithms terminate with a crashed majority; the message-passing control never "
        "terminates under the same number of crashes but never violates safety (indulgence)."
    )
    return report


def run(
    seeds: Optional[Sequence[int]] = None,
    sizes: Sequence[int] = (7, 11, 15),
    control_round_cap: int = 40,
    max_workers: Optional[int] = None,
    exec_mode: Optional[str] = None,
) -> ExperimentReport:
    """Headline scenario for several ``n``; Ben-Or control with the same crash count."""
    return run_planned(
        plan(seeds=seeds, sizes=sizes, control_round_cap=control_round_cap),
        build_report,
        max_workers,
        exec_mode,
    )


def main() -> None:  # pragma: no cover
    """Run the experiment with default parameters and print its report."""
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
