"""E8L — large-n scalability on cooperative multi-kernel execution.

The driver facade for the large-n half of :mod:`~repro.experiments.e8_scalability`:
the same sweep machinery pushed to n ∈ {256, 512, 1024, 2048}, the system
sizes the cooperative execution mode (``--exec-mode coop``, see
``docs/scaling.md``) exists for.  Exposes the standard driver surface
(``plan`` / ``build_report`` / ``run`` / ``main``), so E8L shards, steals
and merges through the CLI like every other experiment.
"""

from __future__ import annotations

from .e8_scalability import (  # noqa: F401  (re-exported driver surface)
    LARGE_MULTI_CLUSTER_MAX_N,
    LARGE_PAPER_CLAIM,
    LARGE_SIZES,
    build_large_report as build_report,
    plan_large as plan,
    run_large as run,
)

PAPER_CLAIM = LARGE_PAPER_CLAIM


def main() -> None:  # pragma: no cover
    """Run the experiment with default parameters and print its report."""
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
