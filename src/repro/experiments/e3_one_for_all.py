"""E3 — The "one for all and all for one" property of the communication pattern.

A message received from one member of a cluster is attributed to every member
of that cluster.  Consequently, crashing all members of every cluster except
one leaves the message-exchange pattern (and hence the consensus algorithms)
behaving as if nobody had crashed: the survivors still gather majority
coverage and terminate, with essentially the same number of rounds as in the
failure-free execution.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..cluster.failures import FailurePattern
from ..cluster.topology import ClusterTopology
from ..harness.parallel import worker_pool
from ..harness.runner import ExperimentConfig
from ..harness.sweep import repeat
from .common import ExperimentReport, default_seeds

PAPER_CLAIM = (
    "If all processes of a cluster crash except one, the surviving process acts as if all the "
    "processes of its cluster were alive ('one for all and all for one'); the algorithms "
    "terminate whenever the clusters keeping one correct process cover a strict majority."
)


def run(
    seeds: Optional[Sequence[int]] = None,
    n: int = 9,
    m: int = 3,
    algorithms: Sequence[str] = ("hybrid-local-coin", "hybrid-common-coin"),
    max_workers: Optional[int] = None,
) -> ExperimentReport:
    """Compare failure-free runs with 'one survivor per cluster' runs."""
    seeds = list(seeds) if seeds is not None else default_seeds(10)
    report = ExperimentReport(
        experiment_id="E3",
        title="One survivor per cluster behaves like a full cluster",
        paper_claim=PAPER_CLAIM,
    )
    topology = ClusterTopology.even_split(n, m)

    lone_survivors = FailurePattern.none()
    for index in range(topology.m):
        lone_survivors = lone_survivors.merged_with(
            FailurePattern.crash_all_but_one_in_cluster(topology, index)
        )
    scenarios = {
        "failure-free": FailurePattern.none(),
        "one-survivor-per-cluster": lone_survivors,
    }
    report.add_note(
        f"topology {topology.describe()}; the survivor scenario crashes "
        f"{lone_survivors.crash_count()} of {n} processes "
        f"({'a majority' if lone_survivors.crashes_majority(n) else 'a minority'})"
    )

    with worker_pool(max_workers):
        for algorithm in algorithms:
            for scenario_name, pattern in scenarios.items():
                config = ExperimentConfig(
                    topology=topology,
                    algorithm=algorithm,
                    proposals="split",
                    failure_pattern=pattern,
                )
                aggregate = repeat(config, seeds, check=True, max_workers=max_workers)
                report.add_row(
                    algorithm=algorithm,
                    scenario=scenario_name,
                    crashed=pattern.crash_count(),
                    termination_rate=aggregate.termination_rate(),
                    mean_rounds=aggregate.mean("rounds_max"),
                    mean_messages=aggregate.mean("messages_sent"),
                )

    # The reproduction check: survivors always terminate, and their round count
    # stays in the same ballpark as the failure-free runs (within a factor 3).
    passed = True
    for algorithm in algorithms:
        free = report.row_where(algorithm=algorithm, scenario="failure-free")
        lone = report.row_where(algorithm=algorithm, scenario="one-survivor-per-cluster")
        if lone["termination_rate"] != 1.0 or free["termination_rate"] != 1.0:
            passed = False
        if lone["mean_rounds"] > 3 * max(free["mean_rounds"], 1.0):
            passed = False
    report.passed = passed
    return report


def main() -> None:  # pragma: no cover
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
