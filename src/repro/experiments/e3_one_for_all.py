"""E3 — The "one for all and all for one" property of the communication pattern.

A message received from one member of a cluster is attributed to every member
of that cluster.  Consequently, crashing all members of every cluster except
one leaves the message-exchange pattern (and hence the consensus algorithms)
behaving as if nobody had crashed: the survivors still gather majority
coverage and terminate, with essentially the same number of rounds as in the
failure-free execution.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..cluster.failures import FailurePattern
from ..cluster.topology import ClusterTopology
from ..harness.aggregate import RunAggregate
from ..harness.distributed import PlanPoint, SweepPlan
from ..harness.runner import ExperimentConfig
from .common import ExperimentReport, default_seeds, run_planned

PAPER_CLAIM = (
    "If all processes of a cluster crash except one, the surviving process acts as if all the "
    "processes of its cluster were alive ('one for all and all for one'); the algorithms "
    "terminate whenever the clusters keeping one correct process cover a strict majority."
)


def plan(
    seeds: Optional[Sequence[int]] = None,
    n: int = 9,
    m: int = 3,
    algorithms: Sequence[str] = ("hybrid-local-coin", "hybrid-common-coin"),
) -> SweepPlan:
    """Enumerate failure-free vs 'one survivor per cluster' runs."""
    seeds = list(seeds) if seeds is not None else default_seeds(10)
    topology = ClusterTopology.even_split(n, m)

    lone_survivors = FailurePattern.none()
    for index in range(topology.m):
        lone_survivors = lone_survivors.merged_with(
            FailurePattern.crash_all_but_one_in_cluster(topology, index)
        )
    scenarios = {
        "failure-free": FailurePattern.none(),
        "one-survivor-per-cluster": lone_survivors,
    }
    notes = [
        f"topology {topology.describe()}; the survivor scenario crashes "
        f"{lone_survivors.crash_count()} of {n} processes "
        f"({'a majority' if lone_survivors.crashes_majority(n) else 'a minority'})"
    ]
    points = []
    for algorithm in algorithms:
        for scenario_name, pattern in scenarios.items():
            points.append(
                PlanPoint(
                    label=f"{algorithm}/{scenario_name}",
                    config=ExperimentConfig(
                        topology=topology,
                        algorithm=algorithm,
                        proposals="split",
                        failure_pattern=pattern,
                    ),
                    check=True,
                    meta=dict(
                        algorithm=algorithm,
                        scenario=scenario_name,
                        crashed=pattern.crash_count(),
                    ),
                )
            )
    return SweepPlan(
        key="E3",
        seeds=seeds,
        points=points,
        experiment="e3",
        meta={"notes": notes, "algorithms": list(algorithms)},
    )


def build_report(plan: SweepPlan, aggregates: Mapping[str, RunAggregate]) -> ExperimentReport:
    """Assemble the E3 report from per-point aggregates."""
    report = ExperimentReport(
        experiment_id="E3",
        title="One survivor per cluster behaves like a full cluster",
        paper_claim=PAPER_CLAIM,
    )
    for note in plan.meta["notes"]:
        report.add_note(note)
    for point in plan.points:
        aggregate = aggregates[point.label]
        report.add_row(
            **point.meta,
            termination_rate=aggregate.termination_rate(),
            mean_rounds=aggregate.mean("rounds_max"),
            mean_messages=aggregate.mean("messages_sent"),
        )

    # The reproduction check: survivors always terminate, and their round count
    # stays in the same ballpark as the failure-free runs (within a factor 3).
    passed = True
    for algorithm in plan.meta["algorithms"]:
        free = report.row_where(algorithm=algorithm, scenario="failure-free")
        lone = report.row_where(algorithm=algorithm, scenario="one-survivor-per-cluster")
        if lone["termination_rate"] != 1.0 or free["termination_rate"] != 1.0:
            passed = False
        if lone["mean_rounds"] > 3 * max(free["mean_rounds"], 1.0):
            passed = False
    report.passed = passed
    return report


def run(
    seeds: Optional[Sequence[int]] = None,
    n: int = 9,
    m: int = 3,
    algorithms: Sequence[str] = ("hybrid-local-coin", "hybrid-common-coin"),
    max_workers: Optional[int] = None,
    exec_mode: Optional[str] = None,
) -> ExperimentReport:
    """Compare failure-free runs with 'one survivor per cluster' runs."""
    return run_planned(
        plan(seeds=seeds, n=n, m=m, algorithms=algorithms), build_report, max_workers, exec_mode
    )


def main() -> None:  # pragma: no cover
    """Run the experiment with default parameters and print its report."""
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
