"""E9 — Adversarial robustness: safety under fault injection, liveness curves.

The paper's algorithms are proved *indulgent*: safety (agreement and
validity) holds against any asynchronous adversary, while termination is
only guaranteed when the model's assumptions (reliable channels, the
cluster condition) hold.  This experiment plays concrete adversaries from
the scenario library (:mod:`repro.adversary.library`) -- lossy links,
duplication storms, delay-inflating reordering, partitions that heal or
drop, slow minorities, crash-recovery outages, and all of it at once --
sweeping scenario × fault intensity.  Safety must stay at 100% everywhere;
the liveness columns (termination rate, rounds, decision latency) show how
gracefully each algorithm degrades, separating liveness-preserving
scenarios (which may only delay) from message-losing ones (which may
legitimately never terminate).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..adversary.library import build_scenario, scenario_names
from ..cluster.topology import ClusterTopology
from ..harness.aggregate import RunAggregate
from ..harness.distributed import PlanPoint, SweepPlan
from ..harness.runner import ExperimentConfig
from ..sim.kernel import SimConfig
from .common import ExperimentReport, default_seeds, run_planned

PAPER_CLAIM = (
    "The algorithms are correct against any asynchronous adversary: whatever the message "
    "behaviour (loss, duplication, reordering, partitions) and failure pattern, no two "
    "processes ever decide differently and no process decides a value nobody proposed; "
    "only termination may be delayed or, when messages are lost, forfeited."
)

#: Fault intensities swept per scenario (the ``none`` baseline runs once at 0).
DEFAULT_INTENSITIES = (0.1, 0.3)


def plan(
    seeds: Optional[Sequence[int]] = None,
    scenarios: Optional[Sequence[str]] = None,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    n: int = 6,
    m: int = 3,
    round_cap: int = 30,
    algorithm: str = "hybrid-local-coin",
) -> SweepPlan:
    """Enumerate the scenario × intensity sweep (the whole library by default).

    Scenario names are normalised to sorted order, so any host (or a later
    ``merge`` rebuilding the plan from manifest-recorded names) enumerates
    the identical plan.  The ``none`` baseline contributes a single
    zero-intensity point.
    """
    seeds = list(seeds) if seeds is not None else default_seeds(10)
    names = sorted(set(scenarios)) if scenarios is not None else scenario_names()
    topology = ClusterTopology.even_split(n, m)
    sim = SimConfig(max_rounds=round_cap, max_time=5e4)
    points = []
    for name in names:
        levels = (0.0,) if name == "none" else tuple(intensities)
        for intensity in levels:
            scenario = build_scenario(name, n=n, intensity=intensity)
            points.append(
                PlanPoint(
                    label=f"{name}@{intensity:g}",
                    config=ExperimentConfig(
                        topology=topology,
                        algorithm=algorithm,
                        proposals="split",
                        scenario=scenario,
                        sim=sim,
                    ),
                    check=False,
                    meta=dict(
                        scenario=name,
                        intensity=intensity,
                        liveness_preserving=scenario.liveness_preserving,
                    ),
                )
            )
    notes = [
        f"topology {topology.describe()}, algorithm {algorithm}, round cap {round_cap}; "
        f"liveness-preserving scenarios may only delay termination, message-losing ones "
        f"void the termination guarantee -- safety must hold for all of them."
    ]
    return SweepPlan(key="E9", seeds=seeds, points=points, experiment="e9", meta={"notes": notes})


def build_report(plan: SweepPlan, aggregates: Mapping[str, RunAggregate]) -> ExperimentReport:
    """Assemble the E9 report from per-point aggregates."""
    report = ExperimentReport(
        experiment_id="E9",
        title="Adversarial robustness: fault injection across the scenario library",
        paper_claim=PAPER_CLAIM,
    )
    for note in plan.meta["notes"]:
        report.add_note(note)
    report.add_note(f"delay models: {', '.join(plan.delay_models())}")
    for point in plan.points:
        aggregate = aggregates[point.label]
        report.add_row(
            **point.meta,
            safety_rate=aggregate.safety_rate(),
            termination_rate=aggregate.termination_rate(),
            non_termination_rate=1.0 - aggregate.termination_rate(),
            mean_rounds=aggregate.mean("rounds_max"),
            mean_decision_time=aggregate.mean("decision_time_max"),
            mean_omitted=aggregate.mean("messages_omitted"),
            mean_duplicated=aggregate.mean("messages_duplicated"),
        )

    baseline_rows = [row for row in report.rows if row["scenario"] == "none"]
    preserving_rows = [row for row in report.rows if row["liveness_preserving"]]
    report.passed = (
        all(row["safety_rate"] == 1.0 for row in report.rows)
        and all(row["termination_rate"] == 1.0 for row in baseline_rows)
        and all(row["termination_rate"] == 1.0 for row in preserving_rows)
    )
    return report


def run(
    seeds: Optional[Sequence[int]] = None,
    scenarios: Optional[Sequence[str]] = None,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    n: int = 6,
    m: int = 3,
    round_cap: int = 30,
    algorithm: str = "hybrid-local-coin",
    max_workers: Optional[int] = None,
    exec_mode: Optional[str] = None,
) -> ExperimentReport:
    """Safety and liveness-degradation curves under the fault-scenario library."""
    return run_planned(
        plan(
            seeds=seeds,
            scenarios=scenarios,
            intensities=intensities,
            n=n,
            m=m,
            round_cap=round_cap,
            algorithm=algorithm,
        ),
        build_report,
        max_workers,
        exec_mode,
    )


def main() -> None:  # pragma: no cover
    """Run the experiment with default parameters and print its report."""
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
