"""E11 — Flaky-host resilience: empirical delays × crash–recovery ladders.

Every sweep so far samples *synthetic* delay distributions.  This
experiment drives the consensus algorithms over delay models fit from a
measured RTT sample set (:data:`repro.network.empirical.REFERENCE_RTT_MS`,
normalised to the simulator's unit-mean time scale) while a Cassandra-style
operational adversary kills replicas: a *kill-during-recovery* schedule
(a second host goes down while the first is still recovering) and a
*replica-loss ladder* that takes 1, 2, ... ``n // 2`` replicas down at
once, sweeping the surviving set toward the paper's majority boundary.
Every outage recovers, so the scenarios are liveness-preserving analogues
of the paper's crash/majority assumptions: safety must hold at 100%
everywhere and every run must still terminate -- the heavy empirical tail
and the stalled majority may only slow the decision, which the latency
columns quantify.

The scenario registry is local to this module (not
:mod:`repro.adversary.library`): adding names to e9's library would shift
e9's default plan fingerprint and orphan its recorded manifests.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..adversary.faults import CrashRecovery, Outage
from ..adversary.scenario import Scenario
from ..cluster.topology import ClusterTopology
from ..harness.aggregate import RunAggregate
from ..harness.distributed import PlanPoint, SweepPlan
from ..harness.runner import ExperimentConfig
from ..network.delays import DelayModel, UniformDelay
from ..network.empirical import (
    REFERENCE_RTT_MS,
    EmpiricalDelay,
    ShiftedLogNormalDelay,
    scale_to_unit_mean,
)
from ..sim.kernel import SimConfig
from .common import ExperimentReport, default_seeds, run_planned

PAPER_CLAIM = (
    "Safety is unconditional and termination needs only a majority of correct "
    "processes: under delay distributions fit from real RTT measurements, replicas "
    "crashing and recovering -- even a second failure landing mid-recovery, even a "
    "transient loss of the majority itself -- can delay decisions but never produce "
    "disagreement, and once a majority is back every run still terminates."
)

#: The window every replica-loss outage occupies; recovery at ``t = 12`` is
#: well before the default round cap bites, so termination stays guaranteed.
_LOSS_DOWN_AT = 2.0
_LOSS_UP_AT = 12.0


def _none(n: int) -> Scenario:
    return Scenario("none", ())


def _kill_during_recovery(n: int) -> Scenario:
    """A second replica dies while the first is still down (SNIPPETS §2).

    The windows overlap *across* pids -- legal, only per-pid overlap is
    forbidden -- so during ``[6, 10)`` two of the ``n`` replicas are out at
    once, the worst moment of the Cassandra exemplar's node-kill test.
    """
    if n < 3:
        raise ValueError(f"kill-during-recovery needs n >= 3, got {n}")
    return Scenario(
        "kill-during-recovery",
        (
            CrashRecovery((Outage(pid=0, down_at=2.0, up_at=10.0),)),
            CrashRecovery((Outage(pid=1, down_at=6.0, up_at=14.0),)),
        ),
    )


def _replica_loss(k: int) -> Callable[[int], Scenario]:
    def build(n: int) -> Scenario:
        """Build the ``replica-loss-k`` schedule for an ``n``-process cluster."""
        if k > n // 2:
            raise ValueError(
                f"replica-loss-{k} would take down {k} of {n} replicas; the ladder "
                f"stops at n // 2 = {n // 2} so a majority can always return"
            )
        outages = tuple(
            Outage(pid=pid, down_at=_LOSS_DOWN_AT, up_at=_LOSS_UP_AT) for pid in range(k)
        )
        return Scenario(f"replica-loss-{k}", (CrashRecovery(outages),))

    return build


#: Maximum rung of the replica-loss ladder offered by name (the registry is
#: static so every host enumerates identical names; ``plan`` still rejects
#: rungs above ``n // 2`` for the topology actually swept).
MAX_REPLICA_LOSS = 3

_SCENARIOS: Dict[str, Callable[[int], Scenario]] = {
    "none": _none,
    "kill-during-recovery": _kill_during_recovery,
}
for _k in range(1, MAX_REPLICA_LOSS + 1):
    _SCENARIOS[f"replica-loss-{_k}"] = _replica_loss(_k)


def resilience_scenario_names() -> List[str]:
    """Every registered resilience scenario name, sorted."""
    return sorted(_SCENARIOS)


def build_resilience_scenario(name: str, n: int) -> Scenario:
    """Build a named resilience scenario for an ``n``-process cluster."""
    try:
        factory = _SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown resilience scenario {name!r}; choose from {resilience_scenario_names()}"
        ) from None
    return factory(n)


def _delay_catalog() -> Dict[str, DelayModel]:
    """The delay models swept by default, keyed by short name.

    Fit from the package-embedded reference RTT sample set (normalised to
    unit mean), so any host -- including a ``merge`` rebuilding the plan
    from module code plus manifest-recorded names -- constructs the
    bit-identical models.
    """
    unit = scale_to_unit_mean(REFERENCE_RTT_MS)
    return {
        "uniform": UniformDelay(),
        "empirical": EmpiricalDelay.fit(unit),
        "shifted-lognormal": ShiftedLogNormalDelay.fit(unit),
    }


def delay_names() -> List[str]:
    """Every delay-catalog name, sorted."""
    return sorted(_delay_catalog())


def plan(
    seeds: Optional[Sequence[int]] = None,
    scenarios: Optional[Sequence[str]] = None,
    delays: Optional[Sequence[str]] = None,
    n: int = 6,
    m: int = 3,
    round_cap: int = 30,
    algorithm: str = "hybrid-local-coin",
) -> SweepPlan:
    """Enumerate the scenario × delay-model sweep.

    Scenario and delay names are normalised to sorted order so any host (or
    a later ``merge`` rebuilding the plan from manifest-recorded names)
    enumerates the identical plan; every outage schedule is fixed data and
    the fitted models are deterministic functions of the embedded reference
    samples, so the plan fingerprints like the synthetic sweeps.
    """
    seeds = list(seeds) if seeds is not None else default_seeds(10)
    names = sorted(set(scenarios)) if scenarios is not None else resilience_scenario_names()
    catalog = _delay_catalog()
    delay_keys = sorted(set(delays)) if delays is not None else sorted(catalog)
    for key in delay_keys:
        if key not in catalog:
            raise ValueError(f"unknown delay name {key!r}; choose from {sorted(catalog)}")
    topology = ClusterTopology.even_split(n, m)
    sim = SimConfig(max_rounds=round_cap, max_time=5e4)
    points = []
    for name in names:
        scenario = build_resilience_scenario(name, n=n)
        down = len({outage.pid for fault in scenario.faults for outage in fault.outages})
        for key in delay_keys:
            points.append(
                PlanPoint(
                    label=f"{name}/{key}",
                    config=ExperimentConfig(
                        topology=topology,
                        algorithm=algorithm,
                        proposals="split",
                        scenario=scenario,
                        delay_model=catalog[key],
                        sim=sim,
                    ),
                    check=False,
                    meta=dict(
                        scenario=name,
                        delay=key,
                        replicas_down=down,
                        min_survivors=n - down,
                        majority=n // 2 + 1,
                        liveness_preserving=scenario.liveness_preserving,
                    ),
                )
            )
    notes = [
        f"topology {topology.describe()}, algorithm {algorithm}, round cap {round_cap}; "
        f"delay models fit from the embedded reference RTT sample set "
        f"({len(REFERENCE_RTT_MS)} measurements, normalised to unit mean); every outage "
        f"recovers, so all scenarios are liveness-preserving -- safety and termination "
        f"must both hold at 100%."
    ]
    return SweepPlan(key="E11", seeds=seeds, points=points, experiment="e11", meta={"notes": notes})


def build_report(plan: SweepPlan, aggregates: Mapping[str, RunAggregate]) -> ExperimentReport:
    """Assemble the E11 report from per-point aggregates."""
    report = ExperimentReport(
        experiment_id="E11",
        title="Flaky-host resilience: empirical delays under crash-recovery ladders",
        paper_claim=PAPER_CLAIM,
    )
    for note in plan.meta["notes"]:
        report.add_note(note)
    report.add_note(f"delay models: {', '.join(plan.delay_models())}")
    for point in plan.points:
        aggregate = aggregates[point.label]
        report.add_row(
            **point.meta,
            safety_rate=aggregate.safety_rate(),
            termination_rate=aggregate.termination_rate(),
            mean_rounds=aggregate.mean("rounds_max"),
            mean_decision_time=aggregate.mean("decision_time_max"),
            max_decision_time=aggregate.maximum("decision_time_max"),
        )

    # Every scenario recovers to a full cluster, so both guarantees are
    # gated (unlike e9/e10, where message-losing strategies void liveness).
    report.passed = all(
        row["safety_rate"] == 1.0 and row["termination_rate"] == 1.0 for row in report.rows
    )
    return report


def run(
    seeds: Optional[Sequence[int]] = None,
    scenarios: Optional[Sequence[str]] = None,
    delays: Optional[Sequence[str]] = None,
    n: int = 6,
    m: int = 3,
    round_cap: int = 30,
    algorithm: str = "hybrid-local-coin",
    max_workers: Optional[int] = None,
    exec_mode: Optional[str] = None,
) -> ExperimentReport:
    """Resilience under measured-RTT delays and crash-recovery schedules."""
    return run_planned(
        plan(
            seeds=seeds,
            scenarios=scenarios,
            delays=delays,
            n=n,
            m=m,
            round_cap=round_cap,
            algorithm=algorithm,
        ),
        build_report,
        max_workers,
        exec_mode,
    )


def main() -> None:  # pragma: no cover
    """Run the experiment with default parameters and print its report."""
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
