"""Shared plumbing for the experiment modules E1–E8.

Each experiment module exposes three entry points:

* ``plan(...) -> SweepPlan`` — the deterministic enumeration of every run
  the experiment performs (pure data, runs nothing).  Because it is a
  :class:`~repro.harness.distributed.SweepPlan`, any experiment can be
  split over machines with ``python -m repro run <exp> --shard i/k``.
* ``build_report(plan, aggregates) -> ExperimentReport`` — turns the
  per-point :class:`~repro.harness.aggregate.RunAggregate` objects (from a
  local execution or a shard merge) into the experiment's report.
* ``run(...) -> ExperimentReport`` — convenience single-host path:
  ``build_report(plan(...), run_plan(plan(...)))``, plus a ``main()`` that
  prints it.

The benchmark files under ``benchmarks/`` call ``run`` with small
parameters, and ``docs/experiments.md`` records the paper claim next to a
sample invocation for each experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..harness.distributed import SweepPlan, run_plan
from ..harness.report import format_records


@dataclass
class ExperimentReport:
    """A uniform container for experiment outcomes."""

    experiment_id: str
    title: str
    paper_claim: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    passed: Optional[bool] = None

    def add_row(self, **fields: Any) -> None:
        """Append one result row (column name -> value)."""
        self.rows.append(dict(fields))

    def add_note(self, note: str) -> None:
        """Append a free-form note printed below the result table."""
        self.notes.append(note)

    def column(self, name: str) -> List[Any]:
        """All values of one column across the rows."""
        return [row.get(name) for row in self.rows]

    def row_where(self, **criteria: Any) -> Dict[str, Any]:
        """The first row matching all the given column values."""
        for row in self.rows:
            if all(row.get(key) == value for key, value in criteria.items()):
                return row
        raise KeyError(f"no row matching {criteria!r}")

    def format(self, precision: int = 2) -> str:
        """The printable report: title, claim, rows, notes and verdict."""
        lines = [f"=== {self.experiment_id}: {self.title} ===", f"Paper claim: {self.paper_claim}"]
        if self.rows:
            lines.append(format_records(self.rows, precision=precision))
        for note in self.notes:
            lines.append(f"note: {note}")
        if self.passed is not None:
            lines.append(f"reproduction check: {'PASSED' if self.passed else 'FAILED'}")
        return "\n".join(lines)


def default_seeds(count: int, base: int = 1000) -> List[int]:
    """A deterministic list of ``count`` distinct seeds."""
    return [base + index for index in range(count)]


def run_planned(
    plan: SweepPlan,
    build_report: Callable[[SweepPlan, Dict[str, Any]], ExperimentReport],
    max_workers: Optional[int] = None,
    exec_mode: Optional[str] = None,
) -> ExperimentReport:
    """Execute ``plan`` on this host and build its report.

    The single-host path every driver's ``run()`` uses.  Executing the same
    plan as shards and merging them yields bit-identical aggregates, so
    ``build_report`` produces the identical report either way; likewise
    ``exec_mode`` (process pool vs cooperative multi-kernel hosting, see
    :func:`~repro.harness.parallel.run_many`) only changes how the runs are
    hosted, never what they compute.
    """
    return build_report(plan, run_plan(plan, max_workers=max_workers, exec_mode=exec_mode))
