"""Shared plumbing for the experiment modules E1–E8.

Each experiment module exposes ``run(...) -> ExperimentReport`` plus a
``main()`` that prints the report; the benchmark files under ``benchmarks/``
call ``run`` with small parameters, and EXPERIMENTS.md records the paper
claim next to the measured outcome for each experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..harness.report import format_records


@dataclass
class ExperimentReport:
    """A uniform container for experiment outcomes."""

    experiment_id: str
    title: str
    paper_claim: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    passed: Optional[bool] = None

    def add_row(self, **fields: Any) -> None:
        self.rows.append(dict(fields))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[Any]:
        """All values of one column across the rows."""
        return [row.get(name) for row in self.rows]

    def row_where(self, **criteria: Any) -> Dict[str, Any]:
        """The first row matching all the given column values."""
        for row in self.rows:
            if all(row.get(key) == value for key, value in criteria.items()):
                return row
        raise KeyError(f"no row matching {criteria!r}")

    def format(self, precision: int = 2) -> str:
        lines = [f"=== {self.experiment_id}: {self.title} ===", f"Paper claim: {self.paper_claim}"]
        if self.rows:
            lines.append(format_records(self.rows, precision=precision))
        for note in self.notes:
            lines.append(f"note: {note}")
        if self.passed is not None:
            lines.append(f"reproduction check: {'PASSED' if self.passed else 'FAILED'}")
        return "\n".join(lines)


def default_seeds(count: int, base: int = 1000) -> List[int]:
    """A deterministic list of ``count`` distinct seeds."""
    return [base + index for index in range(count)]
