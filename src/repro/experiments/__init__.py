"""Experiments E1–E11: one module per paper figure / quantitative claim.

See ``docs/experiments.md`` for the experiment index (paper claim,
parameters and sample invocations).  Every module exposes ``plan(...)``
(the shardable run enumeration), ``build_report(plan, aggregates)``,
``run(...)`` (used by the benchmark harness and the CLI) and ``main()``
(prints the report).
"""

from . import (
    e1_figure1,
    e2_majority_crash,
    e3_one_for_all,
    e4_rounds,
    e5_mm_comparison,
    e6_degenerate,
    e7_indulgence,
    e8_scalability,
    e8l_large,
    e9_adversary,
    e10_adaptive,
    e11_resilience,
)
from .common import ExperimentReport, default_seeds

ALL_EXPERIMENTS = {
    "E1": e1_figure1,
    "E2": e2_majority_crash,
    "E3": e3_one_for_all,
    "E4": e4_rounds,
    "E5": e5_mm_comparison,
    "E6": e6_degenerate,
    "E7": e7_indulgence,
    "E8": e8_scalability,
    "E8L": e8l_large,
    "E9": e9_adversary,
    "E10": e10_adaptive,
    "E11": e11_resilience,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentReport",
    "default_seeds",
    "e1_figure1",
    "e2_majority_crash",
    "e3_one_for_all",
    "e4_rounds",
    "e5_mm_comparison",
    "e6_degenerate",
    "e7_indulgence",
    "e8_scalability",
    "e8l_large",
    "e9_adversary",
    "e10_adaptive",
    "e11_resilience",
]
