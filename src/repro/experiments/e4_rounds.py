"""E4 — Round complexity of the two hybrid algorithms.

The paper states that Algorithm 3 (common coin) needs an expected ~2 rounds
once every correct process holds the same estimate, and that with unanimous
inputs the algorithms converge immediately (Algorithm 2 decides in the very
first round).  This experiment measures the distribution of rounds-to-decide
for both algorithms under unanimous and split proposal vectors, across
several system sizes and cluster counts.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..cluster.topology import ClusterTopology
from ..harness.aggregate import RunAggregate
from ..harness.distributed import PlanPoint, SweepPlan
from ..harness.runner import ExperimentConfig
from .common import ExperimentReport, default_seeds, run_planned

PAPER_CLAIM = (
    "Algorithm 2 extends Ben-Or (expected constant rounds, 1 round on unanimous inputs); "
    "Algorithm 3 decides once the common coin matches the agreed estimate, i.e. an expected "
    "2 additional rounds after estimate agreement."
)


def plan(
    seeds: Optional[Sequence[int]] = None,
    sizes: Sequence[int] = (6, 12),
    cluster_counts: Sequence[int] = (3,),
    proposals: Sequence[str] = ("unanimous-1", "split"),
) -> SweepPlan:
    """Enumerate both hybrid algorithms by input pattern, size and cluster count."""
    seeds = list(seeds) if seeds is not None else default_seeds(30)
    points = []
    for n in sizes:
        for m in cluster_counts:
            if m > n:
                continue
            topology = ClusterTopology.even_split(n, m)
            for algorithm in ("hybrid-local-coin", "hybrid-common-coin"):
                for proposal in proposals:
                    points.append(
                        PlanPoint(
                            label=f"n={n},m={m}/{algorithm}/{proposal}",
                            config=ExperimentConfig(
                                topology=topology,
                                algorithm=algorithm,
                                proposals=proposal,
                            ),
                            check=True,
                            meta=dict(n=n, m=m, algorithm=algorithm, proposals=proposal),
                        )
                    )
    return SweepPlan(key="E4", seeds=seeds, points=points, experiment="e4")


def build_report(plan: SweepPlan, aggregates: Mapping[str, RunAggregate]) -> ExperimentReport:
    """Assemble the E4 report from per-point aggregates."""
    report = ExperimentReport(
        experiment_id="E4",
        title="Expected rounds to decision",
        paper_claim=PAPER_CLAIM,
    )
    for point in plan.points:
        stats = aggregates[point.label].summary("rounds_max")
        report.add_row(
            **point.meta,
            mean_rounds=stats.mean,
            median_rounds=stats.median,
            max_rounds=stats.maximum,
        )

    # Reproduction checks:
    #  - unanimous inputs: Algorithm 2 decides in exactly 1 round;
    #  - Algorithm 3 with unanimous inputs needs <= ~2 expected rounds
    #    (estimates agree from round 1, the coin matches with prob. 1/2);
    #  - split inputs stay within a small constant number of expected rounds.
    passed = True
    for row in report.rows:
        if row["algorithm"] == "hybrid-local-coin" and row["proposals"].startswith("unanimous"):
            if row["max_rounds"] != 1:
                passed = False
        if row["algorithm"] == "hybrid-common-coin" and row["proposals"].startswith("unanimous"):
            if not 1.0 <= row["mean_rounds"] <= 3.5:
                passed = False
        if row["proposals"] == "split" and row["mean_rounds"] > 8.0:
            passed = False
    report.passed = passed
    report.add_note(
        "expected rounds for the common-coin algorithm on unanimous inputs is the mean of a "
        "geometric(1/2) distribution, i.e. 2; the measured mean should sit near that value."
    )
    return report


def run(
    seeds: Optional[Sequence[int]] = None,
    sizes: Sequence[int] = (6, 12),
    cluster_counts: Sequence[int] = (3,),
    proposals: Sequence[str] = ("unanimous-1", "split"),
    max_workers: Optional[int] = None,
    exec_mode: Optional[str] = None,
) -> ExperimentReport:
    """Rounds-to-decide for both hybrid algorithms, by input pattern and size."""
    return run_planned(
        plan(seeds=seeds, sizes=sizes, cluster_counts=cluster_counts, proposals=proposals),
        build_report,
        max_workers,
        exec_mode,
    )


def main() -> None:  # pragma: no cover
    """Run the experiment with default parameters and print its report."""
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
