"""E5 — Comparison with the m&m communication model (Section III-C).

The paper contrasts its cluster-based hybrid model with the m&m model of
Aguilera et al. on the shared-memory cost per phase of a round:

* consensus objects accessed system-wide per phase: ``m`` (one per cluster)
  in the hybrid model vs ``n`` (one per process-centred memory) in m&m;
* consensus-object invocations per process per phase: exactly ``1`` in the
  hybrid model vs ``α_i + 1`` (own memory plus each neighbour's) in m&m.

The experiment runs Algorithm 2 and the m&m analogue on matched sharing
structures (the m&m neighbourhood graph is derived from the cluster
topology, so ``α_i + 1`` equals the cluster size of ``p_i``) and reports the
measured per-phase counts next to the model predictions.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..cluster.topology import ClusterTopology
from ..harness.aggregate import RunAggregate
from ..harness.distributed import PlanPoint, SweepPlan
from ..harness.runner import ExperimentConfig
from ..harness.stats import mean as _mean
from ..mm.domain import SharedMemoryDomain
from .common import ExperimentReport, default_seeds, run_planned

PAPER_CLAIM = (
    "Per phase of a round, the hybrid model touches m shared-memory consensus objects and each "
    "process invokes exactly 1, whereas the m&m model touches n objects and each process p_i "
    "invokes α_i + 1 of them; moreover the m&m model cannot provide the one-for-all attribution."
)


def plan(
    seeds: Optional[Sequence[int]] = None,
    sizes: Sequence[int] = (8, 12),
    cluster_counts: Sequence[int] = (2, 4),
) -> SweepPlan:
    """Enumerate hybrid vs m&m runs on matched sharing structures."""
    seeds = list(seeds) if seeds is not None else default_seeds(8)
    points = []
    for n in sizes:
        for m in cluster_counts:
            if m > n:
                continue
            topology = ClusterTopology.even_split(n, m)
            domain = SharedMemoryDomain.from_cluster_topology(topology)
            predicted_mm_invocations = _mean(
                [domain.degree(pid) + 1 for pid in domain.process_ids()]
            )
            configs = {
                "hybrid-local-coin": ExperimentConfig(
                    topology=topology, algorithm="hybrid-local-coin", proposals="split"
                ),
                "mm-local-coin": ExperimentConfig(
                    topology=topology, algorithm="mm-local-coin", proposals="split", mm_domain=domain
                ),
            }
            for label, config in configs.items():
                hybrid = label.startswith("hybrid")
                points.append(
                    PlanPoint(
                        label=f"n={n},m={m}/{label}",
                        config=config,
                        check=True,
                        meta=dict(
                            n=n,
                            m=m,
                            model=label,
                            predicted_objects=float(topology.m if hybrid else topology.n),
                            predicted_invocations=1.0 if hybrid else predicted_mm_invocations,
                        ),
                    )
                )
    return SweepPlan(key="E5", seeds=seeds, points=points, experiment="e5")


def build_report(plan: SweepPlan, aggregates: Mapping[str, RunAggregate]) -> ExperimentReport:
    """Assemble the E5 report from per-point aggregates."""
    report = ExperimentReport(
        experiment_id="E5",
        title="Hybrid model vs m&m model: shared-memory cost per phase",
        paper_claim=PAPER_CLAIM,
    )
    for point in plan.points:
        aggregate = aggregates[point.label]
        meta = point.meta
        report.add_row(
            n=meta["n"],
            m=meta["m"],
            model=meta["model"],
            objects_per_phase=aggregate.mean("consensus_objects_per_phase"),
            predicted_objects_per_phase=meta["predicted_objects"],
            invocations_per_process_per_phase=aggregate.mean(
                "invocations_per_process_per_phase"
            ),
            predicted_invocations_per_process=meta["predicted_invocations"],
            mean_rounds=aggregate.mean("rounds_max"),
            mean_messages=aggregate.mean("messages_sent"),
        )

    # The measured per-phase counts should match the model predictions to
    # within 25% (slow processes may not touch the last round's objects).
    passed = True
    for row in report.rows:
        for measured_key, predicted_key in (
            ("objects_per_phase", "predicted_objects_per_phase"),
            ("invocations_per_process_per_phase", "predicted_invocations_per_process"),
        ):
            predicted = row[predicted_key]
            measured = row[measured_key]
            if predicted > 0 and abs(measured - predicted) > 0.25 * predicted:
                passed = False
    report.passed = passed
    return report


def run(
    seeds: Optional[Sequence[int]] = None,
    sizes: Sequence[int] = (8, 12),
    cluster_counts: Sequence[int] = (2, 4),
    max_workers: Optional[int] = None,
    exec_mode: Optional[str] = None,
) -> ExperimentReport:
    """Hybrid vs m&m per-phase shared-memory cost on matched structures."""
    return run_planned(
        plan(seeds=seeds, sizes=sizes, cluster_counts=cluster_counts),
        build_report,
        max_workers,
        exec_mode,
    )


def main() -> None:  # pragma: no cover
    """Run the experiment with default parameters and print its report."""
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
