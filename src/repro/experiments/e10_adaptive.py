"""E10 — Adaptive adversaries: state-conditioned attacks and systemic analysis.

E9 plays *oblivious* adversaries (seeded coin flips, fixed windows); this
experiment plays the adaptive strategies from
:mod:`repro.adversary.adaptive`, whose fault decisions condition on the
observed execution -- deferring exactly the quorum-completing message
(delay-pivotal), suppressing the leading estimate around the coin flip
(target-coin, in delaying and omitting flavours), keeping partition groups
a round apart (split-rounds) -- plus authenticated Byzantine payload
corruption (byzantine-tamper), swept over scenario × intensity ×
algorithm.  Safety must stay at 100% against *every* strategy (the paper's
indulgence claim, now under an adversary that actually watches the run);
the liveness columns show which attacks merely slow the algorithms and
which starve them.  The report closes with a
:func:`~repro.search.systemic.detect_systemic_failure` pass over the
sweep grid, promoting per-cell degradation into named systemic findings.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..adversary.adaptive import adaptive_scenario_names, build_adaptive_scenario
from ..cluster.topology import ClusterTopology
from ..harness.aggregate import RunAggregate
from ..harness.distributed import PlanPoint, SweepPlan
from ..harness.runner import ExperimentConfig
from ..search.systemic import detect_systemic_failure
from ..sim.kernel import SimConfig
from .common import ExperimentReport, default_seeds, run_planned

PAPER_CLAIM = (
    "Indulgence is unconditional: even an adaptive adversary that observes the "
    "execution and targets pivotal messages, leading estimates or round alignment -- "
    "or tampers with payloads on an authenticated channel -- can only delay or starve "
    "termination, never make two processes decide differently nor make anybody decide "
    "an unproposed value."
)

#: Strategy intensities swept per scenario.
DEFAULT_INTENSITIES = (0.3, 0.7)

#: Algorithms attacked by default: the paper's hybrid algorithm plus the
#: pure message-passing control, whose quorums the strategies target most
#: directly.
DEFAULT_ALGORITHMS = ("hybrid-local-coin", "ben-or")


def plan(
    seeds: Optional[Sequence[int]] = None,
    scenarios: Optional[Sequence[str]] = None,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    n: int = 6,
    m: int = 3,
    round_cap: int = 30,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
) -> SweepPlan:
    """Enumerate the adaptive scenario × intensity × algorithm sweep.

    Scenario and algorithm names are normalised to sorted order so any
    host (or a merge rebuilding the plan from manifest-recorded names)
    enumerates the identical plan; the adaptive strategies themselves draw
    no randomness, so every point is as bit-reproducible as the
    declarative sweeps.
    """
    seeds = list(seeds) if seeds is not None else default_seeds(10)
    names = sorted(set(scenarios)) if scenarios is not None else adaptive_scenario_names()
    algorithm_names = tuple(sorted(set(algorithms)))
    topology = ClusterTopology.even_split(n, m)
    sim = SimConfig(max_rounds=round_cap, max_time=5e4)
    points = []
    for name in names:
        for intensity in tuple(intensities):
            scenario = build_adaptive_scenario(name, n=n, intensity=intensity)
            for algorithm in algorithm_names:
                points.append(
                    PlanPoint(
                        label=f"{name}@{intensity:g}/{algorithm}",
                        config=ExperimentConfig(
                            topology=topology,
                            algorithm=algorithm,
                            proposals="split",
                            scenario=scenario,
                            sim=sim,
                        ),
                        check=False,
                        meta=dict(
                            scenario=name,
                            intensity=intensity,
                            algorithm=algorithm,
                            liveness_preserving=scenario.liveness_preserving,
                        ),
                    )
                )
    notes = [
        f"topology {topology.describe()}, algorithms {', '.join(algorithm_names)}, "
        f"round cap {round_cap}; adaptive strategies condition on observed kernel "
        f"state but draw no randomness -- liveness-preserving ones may only delay "
        f"termination, omitting/tampering ones void the guarantee; safety must hold "
        f"for all."
    ]
    return SweepPlan(key="E10", seeds=seeds, points=points, experiment="e10", meta={"notes": notes})


def build_report(plan: SweepPlan, aggregates: Mapping[str, RunAggregate]) -> ExperimentReport:
    """Assemble the E10 report, including the systemic-failure findings."""
    report = ExperimentReport(
        experiment_id="E10",
        title="Adaptive adversaries: state-conditioned attacks on safety and liveness",
        paper_claim=PAPER_CLAIM,
    )
    for note in plan.meta["notes"]:
        report.add_note(note)
    report.add_note(f"delay models: {', '.join(plan.delay_models())}")
    for point in plan.points:
        aggregate = aggregates[point.label]
        report.add_row(
            **point.meta,
            safety_rate=aggregate.safety_rate(),
            termination_rate=aggregate.termination_rate(),
            non_termination_rate=1.0 - aggregate.termination_rate(),
            mean_rounds=aggregate.mean("rounds_max"),
            mean_decision_time=aggregate.mean("decision_time_max"),
            mean_omitted=aggregate.mean("messages_omitted"),
            mean_corrupted=aggregate.mean("messages_corrupted"),
        )

    findings = detect_systemic_failure(report.rows)
    for finding in findings:
        report.add_note(f"systemic: {finding.describe()}")
    if not findings:
        report.add_note("systemic: no systemic degradation pattern detected")

    # The pass/fail gate is safety-only: adaptive delay strategies are
    # liveness-preserving in the model's sense (no message is lost), yet
    # deliberately engineered to stall convergence, so bounded-round
    # termination is reported (and analysed above) rather than gated.
    report.passed = all(row["safety_rate"] == 1.0 for row in report.rows) and not any(
        finding.severity == "critical" for finding in findings
    )
    return report


def run(
    seeds: Optional[Sequence[int]] = None,
    scenarios: Optional[Sequence[str]] = None,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    n: int = 6,
    m: int = 3,
    round_cap: int = 30,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    max_workers: Optional[int] = None,
    exec_mode: Optional[str] = None,
) -> ExperimentReport:
    """Safety and liveness under adaptive, state-observing adversaries."""
    return run_planned(
        plan(
            seeds=seeds,
            scenarios=scenarios,
            intensities=intensities,
            n=n,
            m=m,
            round_cap=round_cap,
            algorithms=algorithms,
        ),
        build_report,
        max_workers,
        exec_mode,
    )


def main() -> None:  # pragma: no cover
    """Run the experiment with default parameters and print its report."""
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
