"""E1 — Figure 1: two cluster decompositions of n = 7 processes into m = 3 clusters.

Reconstructs both decompositions of the paper's Figure 1, checks that they
are valid partitions with the properties the paper uses (the right one has a
majority cluster, the left one does not), and runs both hybrid algorithms on
both decompositions to show that the decomposition shape changes the cost
profile (rounds, messages, shared-memory operations) but never the decided
outcome's correctness.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..cluster.topology import ClusterTopology
from ..harness.aggregate import RunAggregate
from ..harness.distributed import PlanPoint, SweepPlan
from ..harness.runner import ExperimentConfig
from .common import ExperimentReport, default_seeds, run_planned

PAPER_CLAIM = (
    "Figure 1 shows two decompositions of 7 processes into 3 clusters; in the right one, "
    "cluster P[2]={p2..p5} holds a strict majority, which is what makes the headline "
    "fault-tolerance scenario possible."
)


def plan(
    seeds: Optional[Sequence[int]] = None,
    algorithms: Sequence[str] = ("hybrid-local-coin", "hybrid-common-coin"),
) -> SweepPlan:
    """Enumerate both hybrid algorithms on both Figure 1 decompositions."""
    seeds = list(seeds) if seeds is not None else default_seeds(10)
    decompositions = {
        "figure1-left": ClusterTopology.figure1_left(),
        "figure1-right": ClusterTopology.figure1_right(),
    }
    points, notes = [], []
    for name, topology in decompositions.items():
        notes.append(
            f"{name}: {topology.describe()} (majority cluster: "
            f"{topology.majority_cluster_index() is not None})"
        )
        for algorithm in algorithms:
            points.append(
                PlanPoint(
                    label=f"{name}/{algorithm}",
                    config=ExperimentConfig(topology=topology, algorithm=algorithm, proposals="split"),
                    check=True,
                    meta=dict(
                        decomposition=name,
                        algorithm=algorithm,
                        n=topology.n,
                        m=topology.m,
                        majority_cluster=topology.majority_cluster_index() is not None,
                    ),
                )
            )
    return SweepPlan(
        key="E1", seeds=seeds, points=points, experiment="e1", meta={"notes": notes}
    )


def build_report(plan: SweepPlan, aggregates: Mapping[str, RunAggregate]) -> ExperimentReport:
    """Assemble the E1 report from per-point aggregates."""
    report = ExperimentReport(
        experiment_id="E1",
        title="Figure 1 cluster decompositions",
        paper_claim=PAPER_CLAIM,
    )
    for note in plan.meta["notes"]:
        report.add_note(note)
    for point in plan.points:
        aggregate = aggregates[point.label]
        report.add_row(
            **point.meta,
            termination_rate=aggregate.termination_rate(),
            mean_rounds=aggregate.mean("rounds_max"),
            mean_messages=aggregate.mean("messages_sent"),
            mean_sm_ops=aggregate.mean("sm_ops"),
        )
    report.passed = (
        all(row["termination_rate"] == 1.0 for row in report.rows)
        and ClusterTopology.figure1_right().majority_cluster_index() is not None
        and ClusterTopology.figure1_left().majority_cluster_index() is None
    )
    return report


def run(
    seeds: Optional[Sequence[int]] = None,
    algorithms: Sequence[str] = ("hybrid-local-coin", "hybrid-common-coin"),
    max_workers: Optional[int] = None,
    exec_mode: Optional[str] = None,
) -> ExperimentReport:
    """Run both hybrid algorithms on both Figure 1 decompositions."""
    return run_planned(
        plan(seeds=seeds, algorithms=algorithms), build_report, max_workers, exec_mode
    )


def main() -> None:  # pragma: no cover - convenience entry point
    """Run the experiment with default parameters and print its report."""
    print(run().format())


if __name__ == "__main__":  # pragma: no cover
    main()
