"""Uniform shared-memory domains of the m&m model (Aguilera et al., PODC'18).

In the *uniform* m&m model the shared memories are derived from an undirected
graph ``G = (V, E)`` over the processes: for each process ``p_i`` there is a
"``p_i``-centred" memory shared by ``S_i = {p_i} ∪ neighbours(p_i)``.  The
shared-memory domain is ``S = {S_i : p_i ∈ V}`` (a *set*, so identical
neighbourhoods collapse).  The paper's appendix works through the example of
its Figure 2, which :meth:`SharedMemoryDomain.figure2` reconstructs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple


class DomainError(ValueError):
    """Raised when a graph does not describe a valid uniform domain."""


class SharedMemoryDomain:
    """The uniform shared-memory domain induced by a neighbourhood graph."""

    def __init__(self, n: int, edges: Iterable[Tuple[int, int]]) -> None:
        if n < 1:
            raise DomainError("n must be positive")
        self.n = n
        neighbours: Dict[int, Set[int]] = {pid: set() for pid in range(n)}
        edge_set: Set[Tuple[int, int]] = set()
        for a, b in edges:
            a, b = int(a), int(b)
            if not (0 <= a < n and 0 <= b < n):
                raise DomainError(f"edge ({a}, {b}) out of range 0..{n - 1}")
            if a == b:
                raise DomainError(f"self-loop on process {a}")
            neighbours[a].add(b)
            neighbours[b].add(a)
            edge_set.add((min(a, b), max(a, b)))
        self._neighbours = {pid: frozenset(nbrs) for pid, nbrs in neighbours.items()}
        self.edges: FrozenSet[Tuple[int, int]] = frozenset(edge_set)

    # ---------------------------------------------------------------- queries
    def neighbours(self, pid: int) -> FrozenSet[int]:
        """Neighbours of ``pid`` in the graph ``G`` (the paper's ``α_i`` counts them)."""
        return self._neighbours[pid]

    def degree(self, pid: int) -> int:
        """The paper's ``α_i``: number of neighbours of ``pid``."""
        return len(self._neighbours[pid])

    def memory_group(self, center: int) -> FrozenSet[int]:
        """``S_center = {center} ∪ neighbours(center)``: who shares the centred memory."""
        return frozenset({center}) | self._neighbours[center]

    def memberships(self, pid: int) -> FrozenSet[int]:
        """Centres of the memories ``pid`` can access: itself plus its neighbours.

        Its size is ``α_i + 1``, the per-phase consensus-object invocation
        count the paper attributes to the m&m model (Section III-C).
        """
        return frozenset({pid}) | self._neighbours[pid]

    def domain(self) -> FrozenSet[FrozenSet[int]]:
        """The shared-memory domain ``S`` as a set of process subsets."""
        return frozenset(self.memory_group(pid) for pid in range(self.n))

    def memory_count(self) -> int:
        """Number of centred memories (one per process)."""
        return self.n

    def process_ids(self) -> range:
        return range(self.n)

    def is_connected(self) -> bool:
        """Whether the neighbourhood graph is connected (BFS)."""
        if self.n == 1:
            return True
        seen = {0}
        frontier = [0]
        while frontier:
            current = frontier.pop()
            for nbr in self._neighbours[current]:
                if nbr not in seen:
                    seen.add(nbr)
                    frontier.append(nbr)
        return len(seen) == self.n

    def describe(self) -> str:
        groups = ", ".join(
            f"S{pid}={{{','.join(str(q) for q in sorted(self.memory_group(pid)))}}}"
            for pid in range(self.n)
        )
        return f"n={self.n}, edges={sorted(self.edges)}: {groups}"

    # ----------------------------------------------------------- constructors
    @classmethod
    def from_cluster_topology(cls, topology) -> "SharedMemoryDomain":
        """The m&m domain whose groups mimic a cluster topology.

        Every pair of processes in the same cluster becomes an edge, so
        ``S_i ⊇ cluster(i)``.  Used by experiment E5 to compare the two
        models on "the same" sharing structure.
        """
        edges: List[Tuple[int, int]] = []
        for members in topology.clusters:
            ordered = sorted(members)
            for index, a in enumerate(ordered):
                for b in ordered[index + 1 :]:
                    edges.append((a, b))
        return cls(topology.n, edges)

    @classmethod
    def complete(cls, n: int) -> "SharedMemoryDomain":
        """Every pair of processes shares registers (one big memory per process)."""
        return cls(n, [(a, b) for a in range(n) for b in range(a + 1, n)])

    @classmethod
    def ring(cls, n: int) -> "SharedMemoryDomain":
        """A ring: each process shares memory with its two ring neighbours."""
        if n < 3:
            raise DomainError("a ring needs at least 3 processes")
        return cls(n, [(pid, (pid + 1) % n) for pid in range(n)])

    @classmethod
    def star(cls, n: int, center: int = 0) -> "SharedMemoryDomain":
        """A star: one hub shares memory with everybody else."""
        if n < 2:
            raise DomainError("a star needs at least 2 processes")
        return cls(n, [(center, pid) for pid in range(n) if pid != center])

    @classmethod
    def figure2(cls) -> "SharedMemoryDomain":
        """The example of the paper's Figure 2 (five processes).

        Using 0-based ids for the paper's ``p1..p5``: edges
        ``p1–p2, p2–p3, p3–p4, p3–p5, p4–p5``, which yield
        ``S1={p1,p2}``, ``S2={p1,p2,p3}``, ``S3={p2,p3,p4,p5}``,
        ``S4=S5={p3,p4,p5}`` and hence a domain of four distinct groups.
        """
        return cls(5, [(0, 1), (1, 2), (2, 3), (2, 4), (3, 4)])

    def __repr__(self) -> str:
        return f"SharedMemoryDomain(n={self.n}, edges={sorted(self.edges)})"
