"""Process-centred shared memories of the m&m model.

Each process ``p_i`` owns a centred memory shared by ``S_i = {p_i} ∪
neighbours(p_i)``: ``p_i`` accesses it directly, its neighbours remotely.
Functionally the memory offers the same registers and consensus objects as a
cluster memory, so the class simply specialises
:class:`~repro.sharedmem.memory.ClusterSharedMemory` with a ``center``; what
differs between the models is *who* shares *how many* memories, which is
exactly what experiment E5 measures.
"""

from __future__ import annotations

from typing import Dict, List

from ..sharedmem.memory import ClusterSharedMemory
from .domain import SharedMemoryDomain


class ProcessCentredMemory(ClusterSharedMemory):
    """The memory centred at one process of an m&m domain."""

    def __init__(self, center: int, domain: SharedMemoryDomain, consensus_kind: str = "cas") -> None:
        super().__init__(
            cluster_index=center,
            members=domain.memory_group(center),
            consensus_kind=consensus_kind,
        )
        self.center = center

    def _qualified(self, name: str) -> str:
        return f"MEM_centered_{self.center}.{name}"

    def __repr__(self) -> str:
        return (
            f"ProcessCentredMemory(center={self.center}, members={sorted(self.members)}, "
            f"objects={self.consensus_objects_created()})"
        )


def build_mm_memories(
    domain: SharedMemoryDomain, consensus_kind: str = "cas"
) -> Dict[int, ProcessCentredMemory]:
    """One centred memory per process of the domain, keyed by its centre."""
    return {
        center: ProcessCentredMemory(center, domain, consensus_kind)
        for center in domain.process_ids()
    }


def memories_accessible_by(
    pid: int, domain: SharedMemoryDomain, memories: Dict[int, ProcessCentredMemory]
) -> List[ProcessCentredMemory]:
    """The ``α_i + 1`` centred memories process ``pid`` may access, own first."""
    centres = sorted(domain.memberships(pid), key=lambda center: (center != pid, center))
    return [memories[center] for center in centres]
