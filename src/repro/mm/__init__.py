"""The m&m (messages-and-memories) model used for the Section III-C comparison."""

from .consensus import MMConsensus
from .domain import DomainError, SharedMemoryDomain
from .memory import ProcessCentredMemory, build_mm_memories, memories_accessible_by

__all__ = [
    "DomainError",
    "MMConsensus",
    "ProcessCentredMemory",
    "SharedMemoryDomain",
    "build_mm_memories",
    "memories_accessible_by",
]
