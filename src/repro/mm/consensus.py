"""An m&m-style consensus used for the Section III-C comparison.

The paper contrasts its hybrid algorithm with the m&m consensus of Aguilera
et al. on two counts: (i) the number of shared-memory consensus objects
touched per phase of a round (``n`` centred memories vs ``m`` cluster
memories), and (ii) the number of consensus-object invocations *per process*
per phase (``α_i + 1`` vs exactly ``1``); and it points out that the m&m
model cannot provide the "one for all and all for one" attribution because
its memories overlap.

This module implements a structurally faithful analogue rather than a
verbatim transcription of [1] (whose full pseudo-code is not in the paper
under reproduction -- see the substitution table in DESIGN.md): a Ben-Or
round structure in which, before broadcasting, every process invokes the
round's consensus object in *each* of the ``α_i + 1`` centred memories it can
access and adopts the value decided by its *own* centred memory.  Messages
are attributed to their senders only.  The analogue preserves the invocation
and object counts and the absence of cluster attribution, which is what
experiment E5 measures, and it remains a correct consensus algorithm when a
strict majority of processes is correct (the pre-agreement step only changes
which proposed value a process carries into the round).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..core.base import (
    BOT,
    ConsensusProcess,
    ProcessEnvironment,
    ProtocolInvariantError,
    validate_proposal,
)
from ..core.pattern import msg_exchange
from .domain import SharedMemoryDomain
from .memory import ProcessCentredMemory, memories_accessible_by


class MMConsensus(ConsensusProcess):
    """One process's instance of the m&m-style local-coin consensus."""

    algorithm_name = "mm-local-coin"

    def __init__(
        self,
        env: ProcessEnvironment,
        domain: SharedMemoryDomain,
        memories: Dict[int, ProcessCentredMemory],
        tag: Optional[str] = None,
    ) -> None:
        super().__init__(env, tag)
        if env.local_coin is None:
            raise ValueError("the m&m consensus needs a local coin")
        self.domain = domain
        self.memories = memories
        self._accessible = memories_accessible_by(env.pid, domain, memories)
        self._own_memory = memories[env.pid]

    def _pre_agree(self, ctx, round_number: int, phase: int, value: Any):
        """Invoke the phase's consensus object in every accessible memory.

        Returns the value decided by the process's own centred memory, which
        the process then broadcasts.  This is the ``α_i + 1`` invocations per
        phase the paper attributes to the m&m model.
        """
        adopted = value
        for memory in self._accessible:
            cons = memory.consensus_object(self.tag, round_number, phase)
            decided = yield from cons.propose(ctx, value)
            if memory is self._own_memory:
                adopted = decided
        return adopted

    def run(self, ctx):
        env = self.env
        topology = env.topology
        est1: Any = validate_proposal(env.proposal)
        round_number = 0
        while True:
            round_number += 1
            ctx.mark_round(round_number)

            # Phase 1.
            est1 = yield from self._pre_agree(ctx, round_number, 1, est1)
            outcome = yield from msg_exchange(
                ctx, env, round_number, 1, est1, self.tag, expand_clusters=False
            )
            if outcome.is_decide:
                return (yield from self.broadcast_decide(ctx, outcome.decide_value))
            majority_value = outcome.majority_value(topology)
            est2: Any = majority_value if majority_value is not None else BOT

            # Phase 2.
            est2 = yield from self._pre_agree(ctx, round_number, 2, est2)
            outcome = yield from msg_exchange(
                ctx, env, round_number, 2, est2, self.tag, expand_clusters=False
            )
            if outcome.is_decide:
                return (yield from self.broadcast_decide(ctx, outcome.decide_value))

            received = set(outcome.values_received)
            championed = received - {BOT}
            if len(championed) > 1:
                raise ProtocolInvariantError(
                    f"round {round_number}: distinct championed values {championed} received"
                )
            if championed and BOT not in received:
                value = championed.pop()
                return (yield from self.broadcast_decide(ctx, value))
            if championed:
                est1 = next(iter(championed))
            else:
                ctx.count_coin_flip()
                est1 = env.local_coin.flip()
