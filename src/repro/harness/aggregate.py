"""Worker-side aggregation: mergeable streaming summaries of repeated runs.

The parallel engine used to ship one pickled :class:`~.runner.RunResult` per
run back to the parent process -- memories, traces and per-process metrics
included -- so IPC volume grew linearly with both the system size ``n`` and
the repetition count, and dominated large sweeps.  This module provides the
compact alternative: a :class:`Reducer` turns each ``RunResult`` into a tiny
:class:`RunSummary` *inside the worker*, and the parent folds those summaries
into mergeable :class:`RunAggregate` / :class:`StreamingStats` accumulators.
Each run then costs O(1) bytes over the pipe instead of O(run size).

Determinism
-----------
Folding order is always run-index order, and the percentile sketch is a
*bottom-k* sample keyed by per-run priorities derived from the run index
(via :func:`numpy.random.SeedSequence.spawn` semantics, with a SHA-256
fallback when numpy is unavailable).  Priorities depend only on the run
index, never on which worker executed the run or how the batch was chunked,
so serial, parallel and chunked executions produce bit-identical aggregates.

Accuracy
--------
Moments (count / mean / M2 / min / max) are exact.  The percentile sketch
stores the whole sample up to ``capacity`` values (exact percentiles), and
degrades to a uniform random subsample of size ``capacity`` beyond that,
giving a rank error of roughly ``1/sqrt(capacity)``.
"""

from __future__ import annotations

import bisect
import hashlib
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Protocol, Tuple

from .stats import SummaryStats, ci95_half_width, percentile

try:  # pragma: no cover - exercised implicitly on numpy-equipped hosts
    from numpy.random import SeedSequence as _SeedSequence
except ImportError:  # pragma: no cover - exercised on numpy-free hosts
    _SeedSequence = None

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .runner import RunResult

#: Default size of the percentile sketch.  Below this many runs the sketch
#: stores everything and percentiles are exact; typical sweeps (tens to a few
#: hundred repetitions) therefore lose nothing to sketching.
SKETCH_CAPACITY = 512


# --------------------------------------------------------------- RNG streams
def priority_backend() -> str:
    """Which implementation backs :func:`run_priority` on this host.

    The two backends are individually deterministic but produce different
    priorities for the same run index, so artifacts keyed by priorities
    (sharded-sweep checkpoints) record the backend and refuse to mix --
    merging numpy-host shards with numpy-free-host shards would otherwise
    silently break bit-identity with the single-host sweep.
    """
    return "numpy-seedsequence" if _SeedSequence is not None else "sha256"


def run_priority(entropy: int, index: int) -> float:
    """Deterministic uniform priority in [0, 1) for run ``index``.

    Implements the per-run RNG-stream split from ROADMAP: each run owns an
    independent stream derived by spawning the master ``entropy`` keyed by
    the *run index* (``SeedSequence(entropy, spawn_key=(index,))``), so the
    value is identical no matter which worker executes the run, how the
    batch is chunked, or in which order runs complete.
    """
    if _SeedSequence is not None:
        state = _SeedSequence(entropy, spawn_key=(index,)).generate_state(2)
        bits = (int(state[0]) << 32) | int(state[1])
    else:
        digest = hashlib.sha256(repr((entropy, index)).encode("utf-8")).digest()
        bits = int.from_bytes(digest[:8], "big")
    return (bits >> 11) / float(1 << 53)


# ------------------------------------------------------------ streaming stats
@dataclass
class StreamingStats:
    """Mergeable running statistics of one numeric quantity.

    Maintains exact count/mean/M2/min/max (Welford / Chan updates) plus a
    bottom-``capacity`` priority sample for percentile estimation.  Two
    accumulators built from disjoint runs merge into exactly the accumulator
    a single pass over the union would have built (the sketch is a set
    union truncated by priority, and the moment merge is written in a
    bit-commutative form, so ``merge(a, b) == merge(b, a)``).
    """

    capacity: int = SKETCH_CAPACITY
    count: int = 0
    mean: float = 0.0
    m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    #: ``(priority, value)`` pairs, sorted by priority, at most ``capacity``.
    sample: List[Tuple[float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"sketch capacity must be >= 1, got {self.capacity}")

    # ------------------------------------------------------------- ingestion
    def add(self, value: float, priority: Optional[float] = None) -> None:
        """Fold one observation in.

        ``priority`` keys the percentile sketch; the harness passes
        :func:`run_priority` of the run index.  When omitted, a priority is
        derived from the accumulator's own observation count -- fine for a
        single accumulator, but accumulators that are later merged should
        use externally assigned priorities so the union stays a uniform
        sample.
        """
        value = float(value)
        if priority is None:
            priority = run_priority(0, self.count)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self._sketch_insert(priority, value)

    def _sketch_insert(self, priority: float, value: float) -> None:
        if len(self.sample) >= self.capacity and priority >= self.sample[-1][0]:
            return
        bisect.insort(self.sample, (priority, value))
        if len(self.sample) > self.capacity:
            self.sample.pop()

    # --------------------------------------------------------------- merging
    def merge(self, other: "StreamingStats") -> "StreamingStats":
        """The statistics of the pooled sample, as a new accumulator.

        Bit-commutative: every combined term is written symmetrically
        (products and two-term sums), so swapping the operands yields the
        identical float result, and the sketch union is order-free.
        """
        if self.capacity != other.capacity:
            raise ValueError(
                f"cannot merge sketches of different capacities "
                f"({self.capacity} vs {other.capacity})"
            )
        if other.count == 0:
            return self.copy()
        if self.count == 0:
            return other.copy()
        count = self.count + other.count
        mean = (self.count * self.mean + other.count * other.mean) / count
        delta = other.mean - self.mean
        m2 = (self.m2 + other.m2) + delta * delta * (self.count * other.count / count)
        merged = StreamingStats(
            capacity=self.capacity,
            count=count,
            mean=mean,
            m2=m2,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
            sample=sorted(self.sample + other.sample)[: self.capacity],
        )
        return merged

    def copy(self) -> "StreamingStats":
        """An independent copy (the sketch list is not shared)."""
        return StreamingStats(
            capacity=self.capacity,
            count=self.count,
            mean=self.mean,
            m2=self.m2,
            minimum=self.minimum,
            maximum=self.maximum,
            sample=list(self.sample),
        )

    # --------------------------------------------------------------- queries
    @property
    def variance(self) -> float:
        """Unbiased sample variance (0 for fewer than two observations)."""
        if self.count < 2:
            return 0.0
        return self.m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(max(self.variance, 0.0))

    @property
    def sketch_values(self) -> List[float]:
        """The sketched sample values (the whole sample below capacity)."""
        return [value for _, value in self.sample]

    @property
    def exact(self) -> bool:
        """Whether percentiles are exact (nothing was evicted yet)."""
        return self.count <= self.capacity

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (exact while :attr:`exact` holds)."""
        if self.count == 0:
            raise ValueError("percentile of an empty accumulator")
        return percentile(self.sketch_values, q)

    def to_summary_stats(self) -> SummaryStats:
        """The :class:`~.stats.SummaryStats` view used by reports and sweeps."""
        if self.count == 0:
            raise ValueError("cannot summarize an empty accumulator")
        std = self.std
        return SummaryStats(
            count=self.count,
            mean=self.mean,
            std=std,
            minimum=self.minimum,
            maximum=self.maximum,
            median=self.percentile(50.0),
            p90=self.percentile(90.0),
            ci95_half_width=ci95_half_width(self.count, std),
        )


# --------------------------------------------------------------- run summary
@dataclass(frozen=True)
class RunSummary:
    """The O(1)-size digest of one run that crosses the worker pipe.

    Carries everything the sweep layer and the experiment drivers consume:
    the numeric metric fields (derived ratios included), the boolean
    outcome flags, and the sketch priority of the run.
    """

    seed: int
    index: int
    priority: float
    algorithm: str
    terminated: bool
    safety_ok: bool
    decided: bool
    decided_value: Optional[int]
    values: Dict[str, float]

    @classmethod
    def from_result(cls, result: "RunResult", index: int, priority: float) -> "RunSummary":
        """Digest one full :class:`~.runner.RunResult` into a summary."""
        from .metrics import numeric_metric_values

        return cls(
            seed=result.config.seed,
            index=index,
            priority=priority,
            algorithm=result.config.algorithm,
            terminated=result.metrics.terminated,
            safety_ok=result.report.safety_ok,
            decided=bool(result.sim_result.decisions),
            decided_value=result.metrics.decided_value,
            values=numeric_metric_values(result.metrics),
        )


class Reducer(Protocol):
    """Worker-side reduction applied by :func:`~.parallel.run_many`.

    A reducer must be picklable (a module-level function or a dataclass of
    picklable fields), because it travels to the worker processes alongside
    each configuration.  It receives the full :class:`~.runner.RunResult`
    and the run's index in the batch, and whatever it returns is what
    crosses the pipe back to the parent.
    """

    def __call__(self, result: "RunResult", index: int) -> Any:  # pragma: no cover
        ...


@dataclass(frozen=True)
class SummaryReducer:
    """The standard reducer: ``RunResult`` -> :class:`RunSummary`.

    ``entropy`` seeds the per-run priority streams; the default of 0 keeps
    summaries comparable across sweeps (the sketch keeps the same run
    indices for every metric and every sweep point).

    ``start`` and ``step`` remap the batch position ``t`` that
    :func:`~.parallel.run_many` hands the reducer to the run's *logical*
    index ``start + t * step``.  The defaults are the identity, which is what
    a whole batch executed in one place wants.  A shard of a larger sweep
    (see :mod:`~repro.harness.distributed`) executes an index-strided subset
    of the batch, and uses the remap so every run keeps the priority it
    would have had in the unsharded execution -- the property that makes
    merged shard aggregates bit-identical to the single-host sweep.
    """

    entropy: int = 0
    start: int = 0
    step: int = 1

    def __call__(self, result: "RunResult", index: int) -> RunSummary:
        index = self.start + index * self.step
        return RunSummary.from_result(result, index, run_priority(self.entropy, index))


# -------------------------------------------------------------- run aggregate
@dataclass
class RunAggregate:
    """Mergeable aggregate of many :class:`RunSummary` objects.

    One :class:`StreamingStats` per numeric metric, plus outcome counters.
    This is what :func:`~.sweep.repeat` returns in summary mode and what a
    :class:`~.sweep.SweepPoint` carries for each parameter combination.
    """

    capacity: int = SKETCH_CAPACITY
    count: int = 0
    terminated_count: int = 0
    safe_count: int = 0
    decided_count: int = 0
    stats: Dict[str, StreamingStats] = field(default_factory=dict)

    # ------------------------------------------------------------- ingestion
    def add(self, summary: RunSummary) -> None:
        """Fold one run summary into the counters and per-metric stats."""
        self.count += 1
        self.terminated_count += 1 if summary.terminated else 0
        self.safe_count += 1 if summary.safety_ok else 0
        self.decided_count += 1 if summary.decided else 0
        for name, value in summary.values.items():
            accumulator = self.stats.get(name)
            if accumulator is None:
                accumulator = StreamingStats(capacity=self.capacity)
                self.stats[name] = accumulator
            accumulator.add(value, priority=summary.priority)

    @classmethod
    def from_summaries(
        cls, summaries: Iterable[RunSummary], capacity: int = SKETCH_CAPACITY
    ) -> "RunAggregate":
        """Fold summaries in iteration order (run-index order in the harness)."""
        aggregate = cls(capacity=capacity)
        for summary in summaries:
            aggregate.add(summary)
        return aggregate

    def merge(self, other: "RunAggregate") -> "RunAggregate":
        """The pooled aggregate of two disjoint batches, as a new object."""
        if self.capacity != other.capacity:
            raise ValueError(
                f"cannot merge aggregates of different sketch capacities "
                f"({self.capacity} vs {other.capacity})"
            )
        merged = RunAggregate(
            capacity=self.capacity,
            count=self.count + other.count,
            terminated_count=self.terminated_count + other.terminated_count,
            safe_count=self.safe_count + other.safe_count,
            decided_count=self.decided_count + other.decided_count,
        )
        for name in {**self.stats, **other.stats}:
            left = self.stats.get(name)
            right = other.stats.get(name)
            if left is None:
                merged.stats[name] = right.copy()
            elif right is None:
                merged.stats[name] = left.copy()
            else:
                merged.stats[name] = left.merge(right)
        return merged

    # --------------------------------------------------------------- queries
    def __len__(self) -> int:
        return self.count

    def metric_names(self) -> List[str]:
        """The aggregated metric names, sorted."""
        return sorted(self.stats)

    def _stat(self, metric: str) -> StreamingStats:
        try:
            return self.stats[metric]
        except KeyError:
            raise KeyError(
                f"no aggregated metric {metric!r}; available: {self.metric_names()}"
            ) from None

    def mean(self, metric: str) -> float:
        """Mean of one aggregated metric."""
        return self._stat(metric).mean

    def std(self, metric: str) -> float:
        """Sample standard deviation of one aggregated metric."""
        return self._stat(metric).std

    def minimum(self, metric: str) -> float:
        """Smallest observed value of one aggregated metric."""
        return self._stat(metric).minimum

    def maximum(self, metric: str) -> float:
        """Largest observed value of one aggregated metric."""
        return self._stat(metric).maximum

    def percentile(self, metric: str, q: float) -> float:
        """Estimated ``q``-th percentile of one aggregated metric."""
        return self._stat(metric).percentile(q)

    def summary(self, metric: str) -> SummaryStats:
        """The :class:`~.stats.SummaryStats` view of one aggregated metric."""
        return self._stat(metric).to_summary_stats()

    def termination_rate(self) -> float:
        """Fraction of runs in which every correct process decided."""
        return self.terminated_count / self.count if self.count else 0.0

    def safety_rate(self) -> float:
        """Fraction of runs whose safety properties all held."""
        return self.safe_count / self.count if self.count else 0.0

    def decided_rate(self) -> float:
        """Fraction of runs in which at least one process decided."""
        return self.decided_count / self.count if self.count else 0.0
