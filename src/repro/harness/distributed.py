"""Sharded sweep execution: split one sweep over machines, checkpoint, merge.

:class:`~repro.harness.aggregate.RunAggregate` made cross-host reduction
*possible*; this module makes it *practical*.  A :class:`SweepPlan` is the
deterministic enumeration of every run of a sweep (every point of the sweep
under every seed).  Any host can execute one :class:`ShardSpec` worth of that
plan with :func:`run_shard` -- writing a versioned JSON manifest plus one
pickled checkpoint per completed sweep point, so a killed shard resumes from
its last checkpoint instead of restarting -- and :func:`merge_shards` folds
the per-shard outputs back into aggregates *bit-identical* to the single-host
execution of the same plan.

How bit-identity is achieved
----------------------------
Shards split the plan round-robin by run index, and every run keeps the
summary index (and therefore the ``SeedSequence(entropy, spawn_key=(index,))``
sketch priority) it would have had in the unsharded execution -- shard
boundaries never change any per-run value.  Merging does **not** use the
Chan-style :meth:`~repro.harness.aggregate.StreamingStats.merge` (floating
point makes a pairwise moment merge differ from a sequential fold in the last
bits); instead the checkpoints carry the raw per-run
:class:`~repro.harness.aggregate.RunSummary` objects (~1 KB each), and
:func:`merge_shards` re-folds them in run-index order through the exact code
path (:meth:`RunAggregate.from_summaries`) the single-host sweep uses.  The
streaming ``merge`` remains the right tool for *approximate* online
reduction; the checkpoint re-fold is what makes ``shard + merge == sweep``
an equality, not an approximation.

Index schemes
-------------
``indexing="per-point"`` numbers runs 0..len(seeds)-1 within each point --
what :func:`~repro.harness.sweep.repeat` does, and what the experiment
drivers build their plans with.  ``indexing="global"`` numbers runs across
the whole batch -- what :func:`~repro.harness.sweep.sweep` and
:func:`~repro.harness.sweep.grid` do.  Plans built by :func:`plan_repeat`,
:func:`plan_sweep` and :func:`plan_grid` pick the scheme matching their
single-host counterpart, so either route merges to the bit-identical result.

On-disk layout (all under the ``--out`` directory)::

    shard-2of4.json            manifest: version, plan fingerprint, progress
    shard-2of4-point-0003.pkl  checkpoint: RunSummary list for point 3

Every artifact embeds :data:`MANIFEST_VERSION` and the plan's fingerprint;
:func:`merge_shards` refuses mixed versions, mixed plans, missing shards and
incomplete shards with errors that say which file is at fault.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from .aggregate import (
    SKETCH_CAPACITY,
    RunAggregate,
    RunSummary,
    SummaryReducer,
    priority_backend,
)
from .parallel import run_many, worker_pool
from .runner import ExperimentConfig
from .sweep import SweepPoint, SweepResult, grid_points, variation_points

#: Version stamped into every manifest and checkpoint this module writes.
#: Readers reject any other version, so stale artifacts fail loudly instead
#: of merging garbage.  Version 2 added the ``delay_models`` / ``scenarios``
#: provenance fields (and configs grew the fault-injection ``scenario``
#: field, changing every fingerprint), so version-1 artifacts cannot merge
#: with version-2 ones anyway.  Version 3 added the work-stealing scheduler
#: (:mod:`~repro.harness.coordinator`): manifests and checkpoints record
#: schedule/worker/lease provenance, and steal directories gained the
#: ``plan.json`` header and per-point lease files.
MANIFEST_VERSION = 3

#: The two run-numbering schemes a plan can use (see the module docstring).
INDEXING_SCHEMES = ("per-point", "global")

_MANIFEST_RE = re.compile(r"^shard-(\d+)of(\d+)\.json$")


class ShardError(ValueError):
    """A shard specification, plan or shard artifact is unusable."""


class ManifestError(ShardError):
    """A manifest or checkpoint is malformed, mismatched or incomplete."""


# ---------------------------------------------------------------- shard spec
@dataclass(frozen=True)
class ShardSpec:
    """One slice ``index/count`` of a plan (1-based, ``1/1`` = everything)."""

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ShardError(f"shard count must be >= 1, got {self.count}")
        if not 1 <= self.index <= self.count:
            raise ShardError(
                f"shard index must be in 1..{self.count}, got {self.index}"
            )

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the CLI form ``"i/k"`` (e.g. ``"2/4"``) into a spec."""
        match = re.fullmatch(r"\s*(\d+)\s*/\s*(\d+)\s*", text)
        if not match:
            raise ShardError(
                f"shard must look like I/K (e.g. 2/4), got {text!r}"
            )
        return cls(index=int(match.group(1)), count=int(match.group(2)))

    def owns(self, position: int) -> bool:
        """Whether this shard executes the run at batch ``position``."""
        return position % self.count == self.index - 1

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


# --------------------------------------------------------------------- plans
@dataclass(frozen=True)
class PlanPoint:
    """One parameter combination of a plan.

    ``meta`` carries whatever per-point context a report builder wants back
    (row fields, predictions); it never crosses hosts and is not part of the
    plan fingerprint -- it is recomputed wherever the plan is rebuilt.
    """

    label: str
    config: ExperimentConfig
    check: bool = True
    meta: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class SweepPlan:
    """The deterministic enumeration of every run of one sweep.

    A plan is pure data: building one runs nothing.  Two hosts that build
    the same plan (same experiment, same seeds, same parameters) agree on
    every run's configuration, summary index and shard assignment, which is
    what lets them execute disjoint shards independently.
    """

    key: str
    seeds: List[int]
    points: List[PlanPoint]
    indexing: str = "per-point"
    experiment: Optional[str] = None
    entropy: int = 0
    capacity: int = SKETCH_CAPACITY
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.indexing not in INDEXING_SCHEMES:
            raise ShardError(
                f"unknown indexing scheme {self.indexing!r}; choose from {INDEXING_SCHEMES}"
            )
        if not self.seeds:
            raise ShardError("a plan needs at least one seed")
        if not self.points:
            raise ShardError("a plan needs at least one point")
        labels = [point.label for point in self.points]
        if len(set(labels)) != len(labels):
            duplicates = sorted({label for label in labels if labels.count(label) > 1})
            raise ShardError(f"plan point labels must be unique; duplicated: {duplicates}")

    # ---------------------------------------------------------- enumeration
    @property
    def runs_per_point(self) -> int:
        """How many runs (seeds) each point contributes."""
        return len(self.seeds)

    @property
    def total_runs(self) -> int:
        """The total number of runs in the whole plan."""
        return len(self.points) * len(self.seeds)

    def run_index(self, point_index: int, seed_position: int) -> int:
        """The summary/priority index of one run under the plan's scheme."""
        if self.indexing == "global":
            return point_index * len(self.seeds) + seed_position
        return seed_position

    def point_indices(self, point_index: int) -> List[int]:
        """All summary indices of one point, in fold order."""
        return [self.run_index(point_index, si) for si in range(len(self.seeds))]

    def delay_models(self) -> List[str]:
        """Sorted unique delay-model descriptions across the plan's points.

        Recorded in every shard manifest so :func:`merge_shards` can refuse
        shards produced under a different delay model with an error that
        names the field (the fingerprint would also catch it, but
        anonymously).
        """
        return sorted({point.config.delay_model.describe() for point in self.points})

    def scenario_names(self) -> List[str]:
        """Sorted unique fault-scenario names across the plan's points.

        Points without a scenario contribute ``"none"``.  Besides powering
        the named-field merge refusal (like :meth:`delay_models`), this is
        what lets ``python -m repro merge`` rebuild a scenario-restricted
        e9 plan from the manifests alone.
        """
        return sorted(
            {
                point.config.scenario.name if point.config.scenario is not None else "none"
                for point in self.points
            }
        )

    def owned_positions(self, point_index: int, shard: ShardSpec) -> List[int]:
        """The seed positions of ``point_index`` that ``shard`` executes.

        Ownership is round-robin over the *batch* position (point-major
        enumeration), so shards stay balanced even when one point dominates,
        and is independent of the indexing scheme.
        """
        base = point_index * len(self.seeds)
        first = (shard.index - 1 - base) % shard.count
        return list(range(first, len(self.seeds), shard.count))

    def fingerprint(self) -> str:
        """A digest pinning everything that affects sharded results.

        Covers the manifest version, the numbering scheme, the seeds, the
        sketch entropy/capacity, every point's label, ``check`` flag and
        full configuration ``repr`` (all the config components have stable,
        value-only reprs), and this host's :func:`~.aggregate.priority_backend`
        -- a numpy host and a numpy-free host derive different sketch
        priorities for the same run index, so their shards must not merge.
        Two plans with equal fingerprints produce interchangeable shards;
        everything this module writes or reads is checked against it.
        """
        payload = json.dumps(
            {
                "version": MANIFEST_VERSION,
                "key": self.key,
                "experiment": self.experiment,
                "indexing": self.indexing,
                "entropy": self.entropy,
                "capacity": self.capacity,
                "priority_backend": priority_backend(),
                "seeds": list(self.seeds),
                "points": [
                    [point.label, point.check, repr(point.config)] for point in self.points
                ],
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def plan_repeat(
    config: ExperimentConfig,
    seeds: Sequence[int],
    label: str = "repeat",
    check: bool = True,
    key: str = "repeat",
) -> SweepPlan:
    """A single-point plan equivalent to :func:`~repro.harness.sweep.repeat`."""
    return SweepPlan(
        key=key,
        seeds=list(seeds),
        points=[PlanPoint(label=label, config=config, check=check)],
        indexing="per-point",
    )


def plan_sweep(
    base_config: ExperimentConfig,
    variations: Mapping[str, Mapping[str, Any]],
    seeds: Sequence[int],
    check: bool = True,
    key: str = "sweep",
) -> SweepPlan:
    """A plan enumerating exactly what :func:`~repro.harness.sweep.sweep` runs."""
    points = [
        PlanPoint(label=label, config=config, check=check, meta=overrides)
        for label, overrides, config in variation_points(base_config, variations)
    ]
    return SweepPlan(key=key, seeds=list(seeds), points=points, indexing="global")


def plan_grid(
    base_config: ExperimentConfig,
    axes: Mapping[str, Sequence[Any]],
    seeds: Sequence[int],
    label_format: Optional[Callable[[Dict[str, Any]], str]] = None,
    check: bool = True,
    key: str = "grid",
) -> SweepPlan:
    """A plan enumerating exactly what :func:`~repro.harness.sweep.grid` runs."""
    points = [
        PlanPoint(label=label, config=config, check=check, meta=overrides)
        for label, overrides, config in grid_points(base_config, axes, label_format=label_format)
    ]
    return SweepPlan(key=key, seeds=list(seeds), points=points, indexing="global")


# ---------------------------------------------------------- local execution
def run_plan(
    plan: SweepPlan,
    max_workers: Optional[int] = None,
    exec_mode: Optional[str] = None,
) -> Dict[str, RunAggregate]:
    """Execute the whole plan on this host, one aggregate per point label.

    The single-host reference that sharded execution is measured against:
    for a ``per-point`` plan this is bit-identical to calling
    :func:`~repro.harness.sweep.repeat` per point, for a ``global`` plan to
    the corresponding :func:`~repro.harness.sweep.sweep`/:func:`grid` call.

    ``exec_mode`` selects the per-point engine (process pool vs cooperative
    multi-kernel hosting; see :func:`~repro.harness.parallel.run_many`) and
    never changes any aggregate — only how fast they arrive.  The shared
    worker pool is only warmed up when a point can actually use it.
    """
    aggregates: Dict[str, RunAggregate] = {}
    with worker_pool(max_workers if exec_mode != "coop" else 1):
        for point_index, point in enumerate(plan.points):
            configs = [point.config.with_seed(seed) for seed in plan.seeds]
            reducer = SummaryReducer(
                entropy=plan.entropy, start=plan.run_index(point_index, 0), step=1
            )
            summaries = run_many(
                configs,
                max_workers=max_workers,
                check=point.check,
                reducer=reducer,
                exec_mode=exec_mode,
            )
            aggregates[point.label] = RunAggregate.from_summaries(
                summaries, capacity=plan.capacity
            )
    return aggregates


# ------------------------------------------------------------- artifact IO
def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write ``path`` via a same-directory temp file + rename, never partially.

    The temp name embeds the writer's pid and thread id: concurrent writers
    of the *same* path (two work-stealing workers racing to checkpoint a
    stolen point with bit-identical bytes) then each rename their own whole
    file, so readers see one complete version or the other, never a tear.
    """
    tmp = path.with_name(f"{path.name}.{os.getpid()}-{threading.get_ident()}.tmp")
    tmp.write_bytes(payload)
    os.replace(tmp, path)


def manifest_path(out_dir: Union[str, Path], shard: ShardSpec) -> Path:
    """Where the manifest of ``shard`` lives under ``out_dir``."""
    return Path(out_dir) / f"shard-{shard.index}of{shard.count}.json"


def checkpoint_path(out_dir: Union[str, Path], shard: ShardSpec, point_index: int) -> Path:
    """Where the checkpoint of one completed sweep point lives."""
    return Path(out_dir) / f"shard-{shard.index}of{shard.count}-point-{point_index:04d}.pkl"


def _load_manifest(path: Path) -> Dict[str, Any]:
    """Read and structurally validate one manifest file."""
    try:
        raw = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        raise ManifestError(f"malformed manifest {path}: {error}") from error
    if not isinstance(raw, dict) or "version" not in raw:
        raise ManifestError(f"malformed manifest {path}: not a manifest object")
    if raw["version"] != MANIFEST_VERSION:
        raise ManifestError(
            f"manifest {path} has version {raw['version']!r} but this build reads "
            f"version {MANIFEST_VERSION}; re-run its shard with a matching build"
        )
    required = ("fingerprint", "shard_index", "shard_count", "points", "seeds")
    missing = [key for key in required if key not in raw]
    if missing:
        raise ManifestError(f"malformed manifest {path}: missing fields {missing}")
    return raw


def _load_checkpoint(path: Path, plan: SweepPlan, shard: ShardSpec, point_index: int) -> List[RunSummary]:
    """Read one checkpoint and verify it belongs to ``plan``/``shard``/point."""
    try:
        with open(path, "rb") as handle:
            raw = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ImportError) as error:
        raise ManifestError(f"unreadable checkpoint {path}: {error}") from error
    if not isinstance(raw, dict):
        raise ManifestError(f"malformed checkpoint {path}: not a checkpoint object")
    if raw.get("version") != MANIFEST_VERSION:
        raise ManifestError(
            f"checkpoint {path} has version {raw.get('version')!r} but this build "
            f"reads version {MANIFEST_VERSION}"
        )
    if raw.get("fingerprint") != plan.fingerprint():
        raise ManifestError(
            f"checkpoint {path} belongs to a different plan "
            f"(fingerprint {raw.get('fingerprint')!r})"
        )
    expected_indices = [
        plan.run_index(point_index, si) for si in plan.owned_positions(point_index, shard)
    ]
    summaries = raw.get("summaries")
    if (
        raw.get("point_index") != point_index
        or raw.get("label") != plan.points[point_index].label
        or not isinstance(summaries, list)
        or [summary.index for summary in summaries] != expected_indices
    ):
        raise ManifestError(
            f"checkpoint {path} does not cover the expected runs of point "
            f"{point_index} ({plan.points[point_index].label!r}) for shard {shard}"
        )
    return summaries


def _write_checkpoint(
    path: Path,
    plan: SweepPlan,
    shard: ShardSpec,
    point_index: int,
    summaries: List[RunSummary],
    provenance: Optional[Mapping[str, Any]] = None,
) -> None:
    payload = {
        "version": MANIFEST_VERSION,
        "fingerprint": plan.fingerprint(),
        "shard": str(shard),
        "point_index": point_index,
        "label": plan.points[point_index].label,
        "summaries": summaries,
    }
    if provenance:
        payload.update(provenance)
    _atomic_write_bytes(path, pickle.dumps(payload))


# ------------------------------------------------------------ shard running
@dataclass
class ShardRunResult:
    """What :func:`run_shard` did: which points ran, resumed or were skipped."""

    shard: ShardSpec
    out_dir: Path
    manifest: Path
    executed: List[str] = field(default_factory=list)
    resumed: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    runs_executed: int = 0
    runs_resumed: int = 0


def run_shard(
    plan: SweepPlan,
    shard: ShardSpec,
    out_dir: Union[str, Path],
    max_workers: Optional[int] = None,
    exec_mode: Optional[str] = None,
) -> ShardRunResult:
    """Execute this shard's slice of the plan, checkpointing per sweep point.

    Completed points found on disk (from a previous, possibly killed,
    invocation) are validated and reused instead of recomputed; corrupt or
    foreign checkpoints are recomputed with a warning.  The manifest is
    rewritten atomically after every point, so at any kill point the
    directory holds a resumable prefix of the shard's work.

    Static sharding is the degenerate scheduler of the work-stealing claim
    loop (:mod:`~repro.harness.coordinator`): ownership is fixed up front by
    round-robin run index, every claim trivially succeeds, and nothing is
    ever stolen.  For dynamic scheduling on heterogeneous fleets, see
    :func:`~repro.harness.coordinator.run_work_stealing`.
    """
    from .coordinator import StaticShardScheduler, drive_claims

    scheduler = StaticShardScheduler(plan, shard, Path(out_dir))
    return drive_claims(plan, scheduler, max_workers, exec_mode=exec_mode)


# ----------------------------------------------------------------- merging
@dataclass
class MergedSweep:
    """The single-host-equivalent outcome reassembled from shard artifacts."""

    plan: SweepPlan
    shard_count: int
    aggregates: Dict[str, RunAggregate]

    def sweep_result(self) -> SweepResult:
        """The merged aggregates as a :class:`~repro.harness.sweep.SweepResult`."""
        result = SweepResult()
        for point in self.plan.points:
            result.points.append(
                SweepPoint(
                    label=point.label,
                    parameters=dict(point.meta),
                    aggregate=self.aggregates[point.label],
                )
            )
        return result


def find_manifests(out_dir: Union[str, Path]) -> List[Path]:
    """All shard manifest files under ``out_dir``, in shard order."""
    out = Path(out_dir)
    if not out.is_dir():
        raise ManifestError(f"{out} is not a directory")
    found = [path for path in out.iterdir() if _MANIFEST_RE.match(path.name)]
    return sorted(found, key=lambda path: int(_MANIFEST_RE.match(path.name).group(1)))


def read_manifests(out_dir: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load and validate every shard manifest in ``out_dir`` (at least one)."""
    paths = find_manifests(out_dir)
    if not paths:
        raise ManifestError(f"no shard manifests (shard-IofK.json) found in {Path(out_dir)}")
    manifests = [_load_manifest(path) for path in paths]
    first = manifests[0]
    for manifest, path in zip(manifests, paths):
        for key in ("fingerprint", "shard_count", "experiment", "indexing", "delay_models", "scenarios"):
            if manifest.get(key) != first.get(key):
                raise ManifestError(
                    f"{path} disagrees with {paths[0]} on {key!r} "
                    f"({manifest.get(key)!r} != {first.get(key)!r}); "
                    f"these shards come from different runs"
                )
    return manifests


def check_merge_provenance(
    recorded: Mapping[str, Any], plan: SweepPlan, out: Path, what: str = "shards"
) -> None:
    """Refuse merging artifacts whose recorded provenance contradicts ``plan``.

    Shared by :func:`merge_shards` and the work-stealing
    :func:`~repro.harness.coordinator.merge_stolen`.  The named provenance
    fields come first: a delay-model or scenario mismatch would also trip
    the fingerprint check below, but with an anonymous digest -- the
    named-field error says *what* differs.
    """
    for field_name, plan_value in (
        ("delay_models", plan.delay_models()),
        ("scenarios", plan.scenario_names()),
    ):
        value = recorded.get(field_name)
        if value is not None and list(value) != plan_value:
            raise ManifestError(
                f"{what} in {out} disagree with the merge plan on {field_name!r}: "
                f"the {what} were produced under {value} but the plan has "
                f"{plan_value}; {what} produced under different delay models or "
                f"fault scenarios cannot be merged"
            )
    if recorded["fingerprint"] != plan.fingerprint():
        hint = ""
        recorded_backend = recorded.get("priority_backend")
        if recorded_backend and recorded_backend != priority_backend():
            hint = (
                f" (the {what} were produced with the {recorded_backend!r} run-priority "
                f"backend but this host uses {priority_backend()!r}; numpy availability "
                f"must match between the worker hosts and the merge host)"
            )
        raise ManifestError(
            f"{what} in {out} were produced by a different plan (fingerprint "
            f"{recorded['fingerprint'][:12]}... != {plan.fingerprint()[:12]}...); "
            f"rebuild the merge plan with the same experiment, seeds and parameters"
            + hint
        )


def fold_point(
    plan: SweepPlan, point_index: int, pairs: Iterable[Tuple[int, RunSummary]]
) -> RunAggregate:
    """Fold one point's ``(run_index, summary)`` pairs into its aggregate.

    THE canonical per-point fold: sort by run index, require exactly the
    plan's indices for the point, and feed
    :meth:`~repro.harness.aggregate.RunAggregate.from_summaries` in that
    order.  :func:`merge_shards`, the work-stealing
    :func:`~repro.harness.coordinator.merge_stolen`, and the observability
    layer's :class:`~repro.obs.merge.IncrementalMerger` all fold through
    this one function, which is what makes their aggregates bit-identical
    to :func:`run_plan` -- and to each other -- by construction.
    """
    ordered = sorted(pairs, key=lambda pair: pair[0])
    indices = [index for index, _ in ordered]
    if indices != plan.point_indices(point_index):
        raise ManifestError(
            f"point {plan.points[point_index].label!r} reassembled with run "
            f"indices {indices}, expected {plan.point_indices(point_index)}"
        )
    return RunAggregate.from_summaries(
        (summary for _, summary in ordered), capacity=plan.capacity
    )


def merge_shards(out_dir: Union[str, Path], plan: SweepPlan) -> MergedSweep:
    """Fold every shard under ``out_dir`` into the single-host aggregates.

    Validates the full covering first -- consistent manifest versions and
    fingerprints, shards 1..k all present and complete -- then re-folds each
    point's summaries in run-index order, producing aggregates bit-identical
    to :func:`run_plan` of the same plan on one host.
    """
    out = Path(out_dir)
    manifests = read_manifests(out)
    first = manifests[0]
    check_merge_provenance(first, plan, out)
    count = first["shard_count"]
    present = sorted(manifest["shard_index"] for manifest in manifests)
    expected = list(range(1, count + 1))
    if present != expected:
        missing = sorted(set(expected) - set(present))
        duplicated = sorted({index for index in present if present.count(index) > 1})
        detail = []
        if missing:
            detail.append(f"missing shards {missing}")
        if duplicated:
            detail.append(f"duplicated shards {duplicated}")
        raise ManifestError(
            f"{out} does not hold a complete 1..{count} shard covering: {'; '.join(detail)}"
        )

    per_point: Dict[int, List[Tuple[int, RunSummary]]] = {
        pi: [] for pi in range(len(plan.points))
    }
    for manifest in manifests:
        shard = ShardSpec(index=manifest["shard_index"], count=count)
        # Completeness is judged against the *plan*, not the manifest's own
        # records: a killed shard's manifest simply lacks records for the
        # points it never reached.
        incomplete = [
            plan.points[point_index].label
            for point_index in range(len(plan.points))
            if plan.owned_positions(point_index, shard)
            and not manifest["points"].get(str(point_index), {}).get("checkpoint")
        ]
        if incomplete:
            raise ManifestError(
                f"shard {shard} is incomplete (points {incomplete} have no "
                f"checkpoint yet); resume it by re-running its original run "
                f"command before merging"
            )
        for point_index in range(len(plan.points)):
            if not plan.owned_positions(point_index, shard):
                continue
            cpath = checkpoint_path(out, shard, point_index)
            summaries = _load_checkpoint(cpath, plan, shard, point_index)
            per_point[point_index].extend(
                (summary.index, summary) for summary in summaries
            )

    aggregates: Dict[str, RunAggregate] = {}
    for point_index, point in enumerate(plan.points):
        aggregates[point.label] = fold_point(plan, point_index, per_point[point_index])
    return MergedSweep(plan=plan, shard_count=count, aggregates=aggregates)
