"""Experiment harness: runners, metrics, sweeps, statistics and reporting."""

from .metrics import PHASES_PER_ROUND, RunMetrics, collect_metrics
from .parallel import (
    WORKERS_ENV_VAR,
    available_cpus,
    default_workers,
    resolve_workers,
    run_many,
    worker_pool,
)
from .report import comparison_rows, format_records, format_series, format_table
from .runner import (
    ALGORITHMS,
    ExperimentConfig,
    RunResult,
    run_consensus,
    run_seeds,
    termination_expected,
)
from .stats import SummaryStats, geometric_mean, mean, median, percentile, proportion, sample_std, summarize
from .sweep import SweepPoint, SweepResult, grid, repeat, sweep
from .workloads import PROPOSAL_PATTERNS, crash_scenarios, resolve_proposals, standard_topologies

__all__ = [
    "ALGORITHMS",
    "PHASES_PER_ROUND",
    "PROPOSAL_PATTERNS",
    "ExperimentConfig",
    "RunMetrics",
    "RunResult",
    "SummaryStats",
    "SweepPoint",
    "SweepResult",
    "WORKERS_ENV_VAR",
    "available_cpus",
    "collect_metrics",
    "comparison_rows",
    "crash_scenarios",
    "default_workers",
    "format_records",
    "format_series",
    "format_table",
    "geometric_mean",
    "grid",
    "mean",
    "median",
    "percentile",
    "proportion",
    "repeat",
    "resolve_proposals",
    "resolve_workers",
    "run_consensus",
    "run_many",
    "worker_pool",
    "run_seeds",
    "sample_std",
    "standard_topologies",
    "summarize",
    "sweep",
    "termination_expected",
]
