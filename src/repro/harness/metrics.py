"""Run metrics: the quantities the experiments measure and report.

Following the calibration note in DESIGN.md, the measured quantities are
*counts* (messages, shared-memory operations, consensus-object invocations,
rounds, coin flips) and *virtual* latencies, not wall-clock durations -- the
paper's claims are about these structural quantities, and Python wall-clock
numbers would only measure the simulator.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..sharedmem.memory import ClusterSharedMemory
from ..sim.kernel import SimulationResult


#: Phases per round for each algorithm (used to normalise per-phase counts).
PHASES_PER_ROUND = {
    "hybrid-local-coin": 2,
    "hybrid-common-coin": 1,
    "ben-or": 2,
    "mp-common-coin": 1,
    "shared-memory": 1,
    "mm-local-coin": 2,
}


@dataclass
class RunMetrics:
    """Aggregate measurements of one consensus run."""

    algorithm: str
    n: int
    m: int
    seed: int
    status: str
    terminated: bool
    decided_value: Optional[int]
    crashed: int
    correct_deciders: int
    rounds_max: int
    rounds_mean: float
    phases_per_round: int
    messages_sent: int
    messages_delivered: int
    bytes_sent: int
    sm_ops: int
    consensus_objects_created: int
    consensus_invocations: int
    coin_flips: int
    decision_time_max: float
    decision_time_mean: float
    end_time: float
    events_processed: int
    wall_time_seconds: float = 0.0
    #: Adversary-injected channel faults (0 unless a scenario is installed).
    messages_omitted: int = 0
    messages_duplicated: int = 0
    messages_corrupted: int = 0
    #: Environment provenance recorded for reports and shard manifests: the
    #: delay model's ``describe()`` string and the fault scenario's name
    #: ("none" without one).  Strings, so they never enter numeric summaries.
    delay_model: str = ""
    scenario: str = "none"

    # ------------------------------------------------------------ derived
    @property
    def consensus_objects_per_phase(self) -> float:
        """Shared-memory consensus objects touched per phase of a round.

        The paper's Section III-C comparison: ``m`` for the hybrid model,
        ``n`` for the m&m model.
        """
        phases = self.rounds_max * self.phases_per_round
        if phases == 0:
            return 0.0
        return self.consensus_objects_created / phases

    @property
    def invocations_per_process_per_phase(self) -> float:
        """Consensus-object invocations per correct process per phase.

        ``1`` in the hybrid model, ``α_i + 1`` (averaged) in the m&m model.
        """
        participants = self.n - self.crashed
        phases = self.rounds_max * self.phases_per_round
        if participants == 0 or phases == 0:
            return 0.0
        return self.consensus_invocations / (participants * phases)

    @property
    def messages_per_round(self) -> float:
        """Messages sent per executed round (total messages at 0 rounds)."""
        if self.rounds_max == 0:
            return float(self.messages_sent)
        return self.messages_sent / self.rounds_max

    def as_dict(self) -> Dict[str, Any]:
        """All fields plus the derived ratios, as a plain dictionary."""
        data = asdict(self)
        data["consensus_objects_per_phase"] = self.consensus_objects_per_phase
        data["invocations_per_process_per_phase"] = self.invocations_per_process_per_phase
        data["messages_per_round"] = self.messages_per_round
        return data


def collect_metrics(
    algorithm: str,
    seed: int,
    topology,
    result: SimulationResult,
    network,
    memories: Sequence[ClusterSharedMemory] = (),
    wall_time_seconds: float = 0.0,
    delay_model: str = "",
    scenario: str = "none",
) -> RunMetrics:
    """Assemble a :class:`RunMetrics` from the run's substrate objects."""
    decider_rounds = [result.rounds[pid] for pid in result.decisions]
    participant_rounds = [result.rounds[pid] for pid in result.correct] or [0]
    decision_times = list(result.decision_times.values())
    stats = result.process_stats.values()
    decided_value: Optional[int] = None
    if result.decisions and len(result.decided_values) == 1:
        decided_value = next(iter(result.decided_values))

    memories = list(memories)
    return RunMetrics(
        algorithm=algorithm,
        n=topology.n,
        m=topology.m,
        seed=seed,
        status=result.status.value,
        terminated=result.status.terminated,
        decided_value=decided_value,
        crashed=len(result.crashed),
        correct_deciders=len([pid for pid in result.decisions if pid in result.correct]),
        rounds_max=max(participant_rounds + decider_rounds, default=0),
        rounds_mean=(sum(decider_rounds) / len(decider_rounds)) if decider_rounds else 0.0,
        phases_per_round=PHASES_PER_ROUND.get(algorithm, 1),
        messages_sent=network.stats.messages_sent,
        messages_delivered=network.stats.messages_delivered,
        bytes_sent=network.stats.bytes_sent,
        sm_ops=sum(memory.total_operations() for memory in memories),
        consensus_objects_created=sum(memory.consensus_objects_created() for memory in memories),
        consensus_invocations=sum(memory.consensus_invocations() for memory in memories),
        coin_flips=sum(stat.coin_flips for stat in stats),
        decision_time_max=max(decision_times, default=0.0),
        decision_time_mean=(sum(decision_times) / len(decision_times)) if decision_times else 0.0,
        end_time=result.end_time,
        events_processed=result.events_processed,
        wall_time_seconds=wall_time_seconds,
        messages_omitted=network.stats.messages_omitted,
        messages_duplicated=network.stats.messages_duplicated,
        messages_corrupted=network.stats.messages_corrupted,
        delay_model=delay_model,
        scenario=scenario,
    )


#: Metric fields excluded from run summaries.  Wall-clock time measures the
#: simulator, not the algorithms (see the calibration note at the top of this
#: module), and it is the one nondeterministic field -- keeping it would make
#: otherwise bit-identical serial/parallel/chunked aggregates diverge.
NON_STRUCTURAL_FIELDS = frozenset({"wall_time_seconds"})


def numeric_metric_values(metrics: RunMetrics) -> Dict[str, float]:
    """The numeric *structural* metric fields of one run, derived ratios included.

    This is the payload a :class:`~repro.harness.aggregate.RunSummary`
    carries across the worker pipe: booleans are excluded (they are outcome
    flags, not measurements), ``None`` values (e.g. ``decided_value`` of a
    non-terminating run) are dropped rather than coerced, and the
    nondeterministic :data:`NON_STRUCTURAL_FIELDS` are left out so summary
    aggregates are reproducible bit for bit.
    """
    values: Dict[str, float] = {}
    for name, value in metrics.as_dict().items():
        if name in NON_STRUCTURAL_FIELDS:
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        values[name] = float(value)
    return values


def metrics_field_names(numeric_only: bool = True) -> List[str]:
    """Names of the metric fields (numeric ones by default), for aggregation."""
    names: List[str] = []
    for name, spec in RunMetrics.__dataclass_fields__.items():
        if not numeric_only or spec.type in ("int", "float", "Optional[int]"):
            names.append(name)
    return names
