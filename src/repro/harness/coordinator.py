"""Dynamic work stealing for sweep plans: leases, heartbeats, theft, merge.

Static sharding (:mod:`~repro.harness.distributed`) fixes ownership up
front: shard ``i/k`` owns every ``k``-th run, forever.  On a homogeneous
fleet that is perfect -- zero coordination -- but one slow or dead host
strands its share of the sweep until someone re-runs that exact shard.
This module adds the coordinator the ROADMAP asked for: workers *claim*
sweep points through atomic lease files in the shared output directory,
renew their claims with heartbeats while computing, and **steal** points
whose leases expire -- so a slow host sheds its un-started points to
faster ones and a killed host's work is picked up automatically.

The unit of claiming is one whole sweep point (every seed of one
parameter combination).  Every run keeps the summary index -- and
therefore the ``SeedSequence(entropy, spawn_key=(index,))`` sketch
priority -- it would have had in the unsharded execution, so
:func:`merge_stolen` re-folds per-point checkpoints in run-index order
through the exact code path the single-host sweep uses, and the merged
aggregates are *bit-identical* to :func:`~.distributed.run_plan` no
matter how many workers ran, died, restarted or stole.

The claim protocol
------------------
Leases live under ``<out>/leases/`` as one JSON file per (point,
generation): ``point-0003-gen-0000.json`` is the initial claim of point
3, ``...-gen-0001.json`` the first steal of it, and so on.  The *live*
lease of a point is its highest generation.  All transitions are
single-winner because creating a generation file is atomic (write a
temp file, ``os.link`` it into place -- the link fails for everyone but
the first):

* **claim** -- create generation 0.  Losing the race means someone else
  owns the point; move on.
* **heartbeat** -- the holder atomically rewrites its own generation
  file every ``ttl/4`` seconds with a fresh ``renewed_at``.  A holder
  that discovers a higher generation knows it was stolen from.
* **steal** -- when ``renewed_at + ttl`` has passed (the TTL recorded
  *in* the lease, so heterogeneous workers honour each other's), create
  generation ``g+1``.  Exactly one of any number of stealers wins.
* **corrupt lease files** (torn writes, disk trouble) are treated as
  expired, with a warning -- the point becomes stealable rather than
  stuck.

Because every run of a plan is deterministic, the worst possible race
outcome -- two workers computing the same point -- costs duplicated work
but never correctness: both produce bit-identical summaries and the
checkpoint write is atomic.  Correctness never depends on the clock;
clock skew can only make theft early (duplicated work) or late (idle
time).  See ``docs/distributed.md`` for the full failure-mode table.

On-disk layout (all under the shared ``--out`` directory)::

    plan.json                    header: version, fingerprint, seeds, labels
    leases/point-0003-gen-0001.json   lease provenance, one file per claim/steal
    point-0003.pkl               checkpoint: every RunSummary of point 3
    steal-worker-<name>.json     per-worker manifest: outcomes, lease history

Static sharding is the degenerate scheduler of the same claim loop:
:class:`StaticShardScheduler` claims its round-robin-owned points
unconditionally and never steals, while :class:`WorkStealingScheduler`
claims through leases.  Both feed :func:`drive_claims`, which is the
single execute-and-checkpoint loop.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import socket
import threading
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from . import distributed
from .aggregate import RunAggregate, RunSummary, SummaryReducer, priority_backend
from .distributed import (
    MANIFEST_VERSION,
    ManifestError,
    MergedSweep,
    ShardRunResult,
    ShardSpec,
    SweepPlan,
    _atomic_write_bytes,
    _load_checkpoint,
    _load_manifest,
    _write_checkpoint,
    check_merge_provenance,
    checkpoint_path,
    find_manifests,
    manifest_path,
)
from ..obs.telemetry import Telemetry
from .parallel import worker_pool

#: How long a lease stays live without a heartbeat before it can be stolen.
#: Generous by default: a steal only pays off when the holder is minutes
#: gone, and a too-short TTL turns slow points into duplicated work.
DEFAULT_LEASE_TTL = 60.0

#: The shared-plan header file marking a directory as a work-stealing run.
PLAN_HEADER_NAME = "plan.json"

#: Subdirectory of the run directory holding the per-point lease files.
LEASE_DIR_NAME = "leases"

_LEASE_RE = re.compile(r"^point-(\d+)-gen-(\d+)\.json$")
_WORKER_MANIFEST_RE = re.compile(r"^steal-worker-(.+)\.json$")
_WORKER_NAME_RE = re.compile(r"[^A-Za-z0-9._-]+")

#: Steal-mode checkpoints cover every seed of a point -- the degenerate
#: whole-plan shard, which is what keeps their summary indices unsharded.
_WHOLE = ShardSpec(1, 1)


class LeaseError(ManifestError):
    """A lease request or lease file is unusable."""


# ------------------------------------------------------------------- paths
def plan_header_path(out_dir: Union[str, Path]) -> Path:
    """Where the shared plan header of a work-stealing run lives."""
    return Path(out_dir) / PLAN_HEADER_NAME


def lease_dir(out_dir: Union[str, Path]) -> Path:
    """The lease subdirectory of a work-stealing run directory."""
    return Path(out_dir) / LEASE_DIR_NAME


def point_checkpoint_path(out_dir: Union[str, Path], point_index: int) -> Path:
    """Where the whole-point checkpoint of a work-stealing run lives."""
    return Path(out_dir) / f"point-{point_index:04d}.pkl"


def worker_manifest_path(out_dir: Union[str, Path], worker: str) -> Path:
    """Where one worker's progress manifest lives."""
    return Path(out_dir) / f"steal-worker-{worker}.json"


def find_worker_manifests(out_dir: Union[str, Path]) -> List[Path]:
    """Every worker manifest in ``out_dir``, sorted by worker name."""
    out = Path(out_dir)
    if not out.is_dir():
        raise ManifestError(f"{out} is not a directory")
    return sorted(path for path in out.iterdir() if _WORKER_MANIFEST_RE.match(path.name))


def is_steal_dir(out_dir: Union[str, Path]) -> bool:
    """Whether ``out_dir`` holds (the start of) a work-stealing run."""
    return plan_header_path(out_dir).is_file()


def default_worker_name() -> str:
    """This process's worker identity: ``<hostname>-<pid>``.

    Unique per live process, which is what the lease protocol needs; a
    *restarted* worker gets a fresh name and recovers its own dead leases
    through the ordinary expiry-and-steal path.
    """
    return sanitize_worker_name(f"{socket.gethostname()}-{os.getpid()}")


def sanitize_worker_name(worker: str) -> str:
    """Make a worker name safe to embed in lease and manifest filenames."""
    cleaned = _WORKER_NAME_RE.sub("-", worker.strip()).strip("-.")
    if not cleaned:
        raise LeaseError(f"unusable worker name {worker!r}")
    return cleaned


def _atomic_create_bytes(path: Path, payload: bytes) -> bool:
    """Create ``path`` with ``payload`` all-or-nothing; False if it exists.

    The temp-file + ``os.link`` dance makes creation atomic *including the
    content*: a concurrent reader sees either no file or the whole file,
    and of any number of racing creators exactly one wins.
    """
    tmp = path.with_name(f"{path.name}.{os.getpid()}-{threading.get_ident()}.tmp")
    tmp.write_bytes(payload)
    try:
        os.link(tmp, path)
    except FileExistsError:
        return False
    finally:
        tmp.unlink(missing_ok=True)
    return True


# ------------------------------------------------------------- plan header
def write_plan_header(out_dir: Union[str, Path], plan: SweepPlan) -> Path:
    """Publish (or validate against) the shared plan header of ``out_dir``.

    The first worker creates ``plan.json`` atomically; every later worker
    -- and :func:`steal_status` / :func:`merge_stolen`, which need nothing
    but the directory -- validates against it.  A directory already holding
    static shard artifacts, or a header for a different plan, is refused.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    if find_manifests(out):
        raise ManifestError(
            f"{out} holds static shard artifacts (shard-IofK.json); a run "
            f"directory is either statically sharded or work-stealing, never "
            f"both -- merge or clear it before reusing it"
        )
    path = plan_header_path(out)
    payload = {
        "version": MANIFEST_VERSION,
        "schedule": "steal",
        "fingerprint": plan.fingerprint(),
        "plan_key": plan.key,
        "experiment": plan.experiment,
        "indexing": plan.indexing,
        "priority_backend": priority_backend(),
        "delay_models": plan.delay_models(),
        "scenarios": plan.scenario_names(),
        "seeds": list(plan.seeds),
        "labels": [point.label for point in plan.points],
        "runs_total": plan.total_runs,
    }
    encoded = json.dumps(payload, indent=2).encode("utf-8")
    if not path.exists() and _atomic_create_bytes(path, encoded):
        return path
    existing = read_plan_header(out)
    if existing["fingerprint"] != plan.fingerprint():
        raise ManifestError(
            f"{path} belongs to a different plan (fingerprint "
            f"{existing['fingerprint'][:12]}... != {plan.fingerprint()[:12]}...); "
            f"every worker sharing an output directory must run the same "
            f"experiment with the same seeds -- merge or clear that directory "
            f"before reusing it"
        )
    return path


def read_plan_header(out_dir: Union[str, Path]) -> Dict[str, Any]:
    """Load and structurally validate the plan header of ``out_dir``."""
    path = plan_header_path(out_dir)
    try:
        raw = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        raise ManifestError(f"malformed plan header {path}: {error}") from error
    if not isinstance(raw, dict) or "version" not in raw:
        raise ManifestError(f"malformed plan header {path}: not a header object")
    if raw["version"] != MANIFEST_VERSION:
        raise ManifestError(
            f"plan header {path} has version {raw['version']!r} but this build "
            f"reads version {MANIFEST_VERSION}; re-run its workers with a "
            f"matching build"
        )
    missing = [key for key in ("fingerprint", "seeds", "labels") if key not in raw]
    if missing:
        raise ManifestError(f"malformed plan header {path}: missing fields {missing}")
    return raw


# ------------------------------------------------------------------ leases
@dataclass(frozen=True)
class Lease:
    """One generation of one point's lease, as read from (or written to) disk.

    ``corrupt`` marks a lease file that could not be parsed; it reports
    itself expired whatever the clock says, so a torn write makes a point
    stealable instead of stuck.
    """

    point_index: int
    generation: int
    worker: str
    acquired_at: float
    renewed_at: float
    ttl: float
    path: Path
    corrupt: bool = False
    #: The holder's telemetry snapshot, refreshed with every heartbeat --
    #: the lease file doubles as the worker's live metrics channel (see
    #: :mod:`repro.obs.telemetry`).
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def expires_at(self) -> float:
        """The wall-clock time after which this lease may be stolen."""
        return self.renewed_at + self.ttl

    def expired(self, now: Optional[float] = None) -> bool:
        """Whether this lease is past its TTL (corrupt leases always are)."""
        if self.corrupt:
            return True
        return (time.time() if now is None else now) >= self.expires_at


def _lease_path(out_dir: Union[str, Path], point_index: int, generation: int) -> Path:
    return lease_dir(out_dir) / f"point-{point_index:04d}-gen-{generation:04d}.json"


def _lease_payload(lease: Lease, fingerprint: str) -> bytes:
    payload = {
        "version": MANIFEST_VERSION,
        "fingerprint": fingerprint,
        "point_index": lease.point_index,
        "generation": lease.generation,
        "worker": lease.worker,
        "acquired_at": lease.acquired_at,
        "renewed_at": lease.renewed_at,
        "ttl": lease.ttl,
    }
    if lease.telemetry is not None:
        payload["telemetry"] = lease.telemetry
    return json.dumps(payload, indent=2).encode("utf-8")


def _parse_lease(path: Path, point_index: int, generation: int, warn: bool = True) -> Lease:
    """Read one lease file; corrupt files come back as expired, with a warning."""
    try:
        raw = json.loads(path.read_text())
        telemetry = raw.get("telemetry")
        return Lease(
            point_index=point_index,
            generation=generation,
            worker=str(raw["worker"]),
            acquired_at=float(raw["acquired_at"]),
            renewed_at=float(raw["renewed_at"]),
            ttl=float(raw["ttl"]),
            path=path,
            telemetry=telemetry if isinstance(telemetry, dict) else None,
        )
    except (OSError, ValueError, KeyError, TypeError) as error:
        if warn:
            warnings.warn(
                f"treating corrupt lease file {path.name} as expired: {error}",
                RuntimeWarning,
            )
        return Lease(
            point_index=point_index,
            generation=generation,
            worker="?",
            acquired_at=0.0,
            renewed_at=0.0,
            ttl=0.0,
            path=path,
            corrupt=True,
        )


def _lease_index(out_dir: Union[str, Path]) -> Dict[int, Tuple[int, Path]]:
    """One directory scan: each point's highest lease generation and its file.

    Shared by :func:`current_lease` (one point) and :func:`steal_status`
    (every point), so a status call over a P-point plan costs one scan of
    ``leases/``, not P of them.
    """
    index: Dict[int, Tuple[int, Path]] = {}
    directory = lease_dir(out_dir)
    if not directory.is_dir():
        return index
    for path in directory.iterdir():
        match = _LEASE_RE.match(path.name)
        if not match:
            continue
        point_index, generation = int(match.group(1)), int(match.group(2))
        if point_index not in index or generation > index[point_index][0]:
            index[point_index] = (generation, path)
    return index


def current_lease(
    out_dir: Union[str, Path], point_index: int, warn: bool = True
) -> Optional[Lease]:
    """The live (highest-generation) lease of one point, if any."""
    entry = _lease_index(out_dir).get(point_index)
    if entry is None:
        return None
    generation, path = entry
    return _parse_lease(path, point_index, generation, warn=warn)


def live_leases(out_dir: Union[str, Path]) -> List[Lease]:
    """The live lease of every leased point, ordered by point index.

    One directory scan; used by the observability layer (``serve`` and
    ``status --watch``) to read heartbeat ages and the per-worker telemetry
    snapshots that ride the lease files.
    """
    return [
        _parse_lease(path, point_index, generation, warn=False)
        for point_index, (generation, path) in sorted(_lease_index(out_dir).items())
    ]


def try_claim(
    out_dir: Union[str, Path],
    plan: SweepPlan,
    point_index: int,
    worker: str,
    ttl: float,
) -> Optional[Lease]:
    """Attempt the initial (generation-0) claim of a point; None if lost.

    Atomic and single-winner: of any number of workers claiming the same
    point, exactly one gets the lease back and the rest get ``None``.
    """
    return _try_acquire(out_dir, plan, point_index, worker, ttl, generation=0)


def try_steal(
    out_dir: Union[str, Path],
    plan: SweepPlan,
    point_index: int,
    worker: str,
    ttl: float,
    current: Lease,
) -> Optional[Lease]:
    """Attempt to steal a point whose ``current`` lease has expired.

    Creates generation ``current.generation + 1``; of any number of
    stealers racing for the same expired lease, exactly one wins.  Stealing
    a live lease is refused with :class:`LeaseError` -- callers decide
    expiry *before* stealing, with :meth:`Lease.expired`.
    """
    if not current.expired():
        raise LeaseError(
            f"lease of point {point_index} (held by {current.worker!r}, "
            f"generation {current.generation}) has not expired; refusing to steal"
        )
    return _try_acquire(
        out_dir, plan, point_index, worker, ttl, generation=current.generation + 1
    )


def _try_acquire(
    out_dir: Union[str, Path],
    plan: SweepPlan,
    point_index: int,
    worker: str,
    ttl: float,
    generation: int,
) -> Optional[Lease]:
    if ttl <= 0:
        raise LeaseError(f"lease ttl must be positive, got {ttl}")
    if not 0 <= point_index < len(plan.points):
        raise LeaseError(
            f"point index {point_index} outside the plan's 0..{len(plan.points) - 1}"
        )
    lease_dir(out_dir).mkdir(parents=True, exist_ok=True)
    now = time.time()
    lease = Lease(
        point_index=point_index,
        generation=generation,
        worker=worker,
        acquired_at=now,
        renewed_at=now,
        ttl=float(ttl),
        path=_lease_path(out_dir, point_index, generation),
    )
    if not _atomic_create_bytes(lease.path, _lease_payload(lease, plan.fingerprint())):
        return None
    return lease


def renew_lease(
    lease: Lease, fingerprint: str, telemetry: Optional[Dict[str, Any]] = None
) -> Optional[Lease]:
    """Refresh a held lease's heartbeat; ``None`` when it was superseded.

    The holder atomically rewrites its own generation file with a fresh
    ``renewed_at``, then checks for a higher generation: finding one means
    a stealer decided this lease dead (the holder stalled past its TTL),
    and the holder must treat the point as no longer exclusively its own.
    ``telemetry`` (a :meth:`~repro.obs.telemetry.Telemetry.snapshot`)
    piggybacks on the heartbeat so worker metrics cost no extra file.
    """
    renewed = Lease(
        point_index=lease.point_index,
        generation=lease.generation,
        worker=lease.worker,
        acquired_at=lease.acquired_at,
        renewed_at=time.time(),
        ttl=lease.ttl,
        path=lease.path,
        telemetry=telemetry if telemetry is not None else lease.telemetry,
    )
    _atomic_write_bytes(lease.path, _lease_payload(renewed, fingerprint))
    top = current_lease(lease.path.parent.parent, lease.point_index, warn=False)
    if top is not None and top.generation > lease.generation:
        return None
    return renewed


# -------------------------------------------------------------- claim loop
@dataclass
class PointTask:
    """One claimed sweep point, ready to execute.

    ``positions`` are the seed positions to run, ``start``/``step`` the
    affine remap restoring each run's unsharded summary index (see
    :class:`~repro.harness.aggregate.SummaryReducer`).  ``superseded``
    flips when the holder's lease was stolen mid-execution.
    """

    point_index: int
    label: str
    positions: List[int]
    start: int
    step: int
    checkpoint: Path
    lease: Optional[Lease] = None
    superseded: bool = False


def execute_point(
    plan: SweepPlan,
    task: PointTask,
    max_workers: Optional[int],
    exec_mode: Optional[str] = None,
) -> List[RunSummary]:
    """Run one claimed point's configurations and summarize them.

    Resolves ``run_many`` through the :mod:`~repro.harness.distributed`
    module at call time, preserving the long-standing test seam that
    monkeypatches ``distributed.run_many`` to simulate killed workers.
    ``exec_mode`` picks the engine (see :func:`~repro.harness.parallel.run_many`)
    and cannot change any summary — checkpoints merge bit-identically
    whichever mode computed them.
    """
    point = plan.points[task.point_index]
    configs = [point.config.with_seed(plan.seeds[si]) for si in task.positions]
    reducer = SummaryReducer(entropy=plan.entropy, start=task.start, step=task.step)
    return distributed.run_many(
        configs,
        max_workers=max_workers,
        check=point.check,
        reducer=reducer,
        exec_mode=exec_mode,
    )


def drive_claims(
    plan: SweepPlan,
    scheduler: Any,
    max_workers: Optional[int] = None,
    exec_mode: Optional[str] = None,
) -> Any:
    """Run a scheduler's claim loop to completion and return its result.

    The one loop both schedulers share: ask the scheduler for claimed
    tasks, execute each under the scheduler's hold (a lease heartbeat for
    work stealing, a no-op for static shards), and hand the summaries back
    for checkpointing.  Static sharding is the degenerate case where every
    claim succeeds and nothing is ever stolen.
    """
    with worker_pool(max_workers if exec_mode != "coop" else 1):
        for task in scheduler.claims():
            with scheduler.hold(task):
                summaries = execute_point(plan, task, max_workers, exec_mode=exec_mode)
            scheduler.complete(task, summaries)
    return scheduler.finish()


class StaticShardScheduler:
    """The degenerate no-steal scheduler: fixed round-robin ownership.

    Reproduces classic ``run_shard`` behaviour through the shared claim
    loop: every point this shard owns is "claimed" unconditionally, valid
    checkpoints are resumed, and the shard manifest is rewritten atomically
    after every point so a killed invocation leaves a resumable prefix.
    """

    schedule = "static"

    def __init__(self, plan: SweepPlan, shard: ShardSpec, out_dir: Path) -> None:
        self.plan = plan
        self.shard = shard
        self.out = Path(out_dir)
        self.out.mkdir(parents=True, exist_ok=True)
        if is_steal_dir(self.out):
            raise ManifestError(
                f"{self.out} holds a work-stealing run ({PLAN_HEADER_NAME}); a run "
                f"directory is either statically sharded or work-stealing, never "
                f"both -- merge or clear it before reusing it"
            )
        fingerprint = plan.fingerprint()
        for existing_path in find_manifests(self.out):
            existing = _load_manifest(existing_path)
            if existing["fingerprint"] != fingerprint:
                raise ManifestError(
                    f"{existing_path} belongs to a different plan (fingerprint "
                    f"{existing['fingerprint'][:12]}... != {fingerprint[:12]}...); "
                    f"every shard sharing an output directory must run the same "
                    f"experiment with the same seeds -- merge or clear that "
                    f"directory before reusing it"
                )
        self.result = ShardRunResult(
            shard=shard, out_dir=self.out, manifest=manifest_path(self.out, shard)
        )
        self._points_record: Dict[str, Dict[str, Any]] = {}

    def claims(self) -> Iterator[PointTask]:
        """Yield every owned, not-yet-checkpointed point, in plan order."""
        for point_index, point in enumerate(self.plan.points):
            owned = self.plan.owned_positions(point_index, self.shard)
            record: Dict[str, Any] = {"label": point.label, "runs": len(owned)}
            self._points_record[str(point_index)] = record
            if not owned:
                self.result.skipped.append(point.label)
                record["checkpoint"] = None
                continue
            cpath = checkpoint_path(self.out, self.shard, point_index)
            if cpath.exists():
                try:
                    summaries = _load_checkpoint(cpath, self.plan, self.shard, point_index)
                except ManifestError as error:
                    warnings.warn(
                        f"recomputing point {point.label!r}: {error}", RuntimeWarning
                    )
                else:
                    self.result.resumed.append(point.label)
                    self.result.runs_resumed += len(summaries)
                    record["checkpoint"] = cpath.name
                    self._write_manifest()
                    continue
            yield PointTask(
                point_index=point_index,
                label=point.label,
                positions=owned,
                start=self.plan.run_index(point_index, owned[0]),
                step=self.shard.count,
                checkpoint=cpath,
            )

    @contextmanager
    def hold(self, task: PointTask) -> Iterator[None]:
        """No-op: static ownership needs no heartbeat."""
        yield

    def complete(self, task: PointTask, summaries: List[RunSummary]) -> None:
        """Checkpoint one computed point and persist the manifest."""
        _write_checkpoint(
            task.checkpoint,
            self.plan,
            self.shard,
            task.point_index,
            summaries,
            provenance={"schedule": self.schedule},
        )
        self.result.executed.append(task.label)
        self.result.runs_executed += len(summaries)
        self._points_record[str(task.point_index)]["checkpoint"] = task.checkpoint.name
        self._write_manifest()

    def finish(self) -> ShardRunResult:
        """Write the final manifest and report what this shard did."""
        self._write_manifest()
        return self.result

    def _write_manifest(self) -> None:
        payload = {
            "version": MANIFEST_VERSION,
            "schedule": self.schedule,
            "fingerprint": self.plan.fingerprint(),
            "plan_key": self.plan.key,
            "experiment": self.plan.experiment,
            "indexing": self.plan.indexing,
            "priority_backend": priority_backend(),
            "delay_models": self.plan.delay_models(),
            "scenarios": self.plan.scenario_names(),
            "shard_index": self.shard.index,
            "shard_count": self.shard.count,
            "seeds": list(self.plan.seeds),
            "labels": [point.label for point in self.plan.points],
            "points": self._points_record,
            "runs_total": sum(
                len(self.plan.owned_positions(pi, self.shard))
                for pi in range(len(self.plan.points))
            ),
            "runs_done": self.result.runs_executed + self.result.runs_resumed,
        }
        _atomic_write_bytes(
            self.result.manifest, json.dumps(payload, indent=2).encode("utf-8")
        )


# ----------------------------------------------------------- work stealing
@dataclass
class StealRunResult:
    """What one work-stealing worker invocation did, by point label.

    ``executed`` were computed from fresh generation-0 claims, ``stolen``
    from expired leases taken over; ``already_done`` had a valid checkpoint
    (any worker's) before this invocation touched them; ``left_behind``
    were un-done when this worker exited -- live-leased by other workers,
    or unattempted because ``max_points`` ran out; ``lost`` were computed
    here but checkpointed by a thief first (possible only after this
    worker stalled past its TTL).
    """

    worker: str
    out_dir: Path
    manifest: Path
    plan_header: Path
    executed: List[str] = field(default_factory=list)
    stolen: List[str] = field(default_factory=list)
    already_done: List[str] = field(default_factory=list)
    left_behind: List[str] = field(default_factory=list)
    lost: List[str] = field(default_factory=list)
    runs_executed: int = 0
    runs_reused: int = 0

    @property
    def computed(self) -> List[str]:
        """Every label this worker computed, claimed or stolen."""
        return self.executed + self.stolen


class WorkStealingScheduler:
    """Lease-based scheduler: claim un-started points, steal expired ones.

    Pass one claims never-leased points (scanning from a worker-specific
    rotation offset, so concurrent workers mostly avoid colliding); pass
    two repeatedly steals points whose leases have expired, until every
    point is checkpointed or everything left is live-leased by someone
    else -- at which point this worker exits rather than wait (re-run it,
    or any other worker, to pick up later orphans).  With ``wait=True``
    the worker idles instead of exiting: it re-polls every
    ``poll_interval`` seconds until the remaining points are checkpointed
    by their holders or their leases expire and become stealable.
    """

    schedule = "steal"

    def __init__(
        self,
        plan: SweepPlan,
        out_dir: Path,
        worker: Optional[str] = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        max_points: Optional[int] = None,
        wait: bool = False,
        poll_interval: Optional[float] = None,
    ) -> None:
        if lease_ttl <= 0:
            raise LeaseError(f"lease ttl must be positive, got {lease_ttl}")
        if max_points is not None and max_points < 1:
            raise LeaseError(f"max_points must be >= 1, got {max_points}")
        if poll_interval is not None and poll_interval <= 0:
            raise LeaseError(f"poll interval must be positive, got {poll_interval}")
        self.plan = plan
        self.out = Path(out_dir)
        self.worker = (
            sanitize_worker_name(worker) if worker is not None else default_worker_name()
        )
        self.ttl = float(lease_ttl)
        self.max_points = max_points
        self.wait = wait
        #: Default idle re-poll cadence tracks the heartbeat cadence: there
        #: is nothing new to observe between two renewals of a live lease.
        self.poll_interval = (
            float(poll_interval) if poll_interval is not None else max(self.ttl / 4.0, 0.01)
        )
        self.telemetry = Telemetry()
        header = write_plan_header(self.out, plan)
        lease_dir(self.out).mkdir(parents=True, exist_ok=True)
        self.result = StealRunResult(
            worker=self.worker,
            out_dir=self.out,
            manifest=worker_manifest_path(self.out, self.worker),
            plan_header=header,
        )
        self._fingerprint = plan.fingerprint()
        self._recorded: Dict[int, str] = {}
        self._computed = 0

    # ------------------------------------------------------------- claiming
    def claims(self) -> Iterator[PointTask]:
        """Yield leased tasks: fresh claims first, then steals of expired leases."""
        for point_index in self._rotation():
            if self._exhausted():
                break
            if self._settled(point_index):
                continue
            lease = try_claim(self.out, self.plan, point_index, self.worker, self.ttl)
            if lease is not None:
                yield self._task(point_index, lease)
        while not self._exhausted():
            progressed = False
            for point_index in self._rotation():
                if self._exhausted():
                    break
                if self._settled(point_index):
                    continue
                current = current_lease(self.out, point_index)
                if current is None:
                    lease = try_claim(self.out, self.plan, point_index, self.worker, self.ttl)
                elif current.expired():
                    lease = try_steal(
                        self.out, self.plan, point_index, self.worker, self.ttl, current
                    )
                else:
                    continue
                if lease is not None:
                    progressed = True
                    yield self._task(point_index, lease)
            if not self._outstanding():
                break
            if not progressed:
                if not self.wait:
                    break
                # Everything left is live-leased by other workers.  Idle
                # instead of exiting: their checkpoints will settle the
                # points, or their leases will expire and become ours.
                self.telemetry.inc("idle_polls")
                time.sleep(self.poll_interval)
        for point_index in self._outstanding():
            label = self.plan.points[point_index].label
            self._recorded[point_index] = "left-behind"
            self.result.left_behind.append(label)
        self._write_manifest()

    @contextmanager
    def hold(self, task: PointTask) -> Iterator[None]:
        """Renew the task's lease from a heartbeat thread while it executes.

        Each renewal carries a fresh telemetry snapshot, so the lease file
        doubles as the worker's live metrics feed while it computes.
        """
        stop = threading.Event()
        interval = max(self.ttl / 4.0, 0.01)

        def beat() -> None:
            """Renew until stopped, superseded, or the context exits."""
            while not stop.wait(interval):
                refreshed = renew_lease(
                    task.lease, self._fingerprint, telemetry=self.telemetry.snapshot()
                )
                if refreshed is None:
                    task.superseded = True
                    return
                task.lease = refreshed

        keeper = threading.Thread(
            target=beat, name=f"lease-keeper-point-{task.point_index}", daemon=True
        )
        keeper.start()
        try:
            with self.telemetry.timer("point_seconds"):
                yield
        finally:
            stop.set()
            keeper.join(timeout=10.0)

    def complete(self, task: PointTask, summaries: List[RunSummary]) -> None:
        """Checkpoint one computed point, unless a thief beat us to it."""
        self._computed += 1
        if task.superseded and task.checkpoint.exists():
            # Stolen from us mid-run and the thief finished first.  Its
            # checkpoint is bit-identical to ours, so nothing is wasted but
            # our own time; record the loss and keep going.
            self._recorded[task.point_index] = "lost"
            self.result.lost.append(task.label)
            self.telemetry.inc("points_lost")
            self._write_manifest()
            return
        _write_checkpoint(
            task.checkpoint,
            self.plan,
            _WHOLE,
            task.point_index,
            summaries,
            provenance={
                "schedule": self.schedule,
                "worker": self.worker,
                "lease_generation": task.lease.generation,
                "stolen": task.lease.generation > 0,
            },
        )
        self.result.runs_executed += len(summaries)
        self.telemetry.inc("points_computed")
        self.telemetry.inc("runs_executed", len(summaries))
        self.telemetry.set_gauge("last_checkpoint_at", time.time())
        if task.lease.generation > 0:
            self._recorded[task.point_index] = "stolen"
            self.result.stolen.append(task.label)
            self.telemetry.inc("points_stolen")
        else:
            self._recorded[task.point_index] = "executed"
            self.result.executed.append(task.label)
        self._write_manifest()

    def finish(self) -> StealRunResult:
        """Write the final worker manifest and report what this worker did."""
        self._write_manifest()
        return self.result

    # ------------------------------------------------------------ internals
    def _rotation(self) -> List[int]:
        """Point indices starting at this worker's hash offset.

        Concurrent workers start their scans at different points of the
        plan, so fresh claims mostly avoid fighting over the same lease.
        """
        count = len(self.plan.points)
        offset = int(hashlib.sha256(self.worker.encode("utf-8")).hexdigest(), 16) % count
        return list(range(offset, count)) + list(range(offset))

    def _exhausted(self) -> bool:
        return self.max_points is not None and self._computed >= self.max_points

    def _settled(self, point_index: int) -> bool:
        """Whether this worker is done considering ``point_index``."""
        if point_index in self._recorded:
            return True
        cpath = point_checkpoint_path(self.out, point_index)
        label = self.plan.points[point_index].label
        if cpath.exists():
            try:
                summaries = _load_checkpoint(cpath, self.plan, _WHOLE, point_index)
            except ManifestError as error:
                warnings.warn(
                    f"recomputing point {label!r}: {error}", RuntimeWarning
                )
                return False
            self._recorded[point_index] = "already-done"
            self.result.already_done.append(label)
            self.result.runs_reused += len(summaries)
            self._write_manifest()
            return True
        return False

    def _outstanding(self) -> List[int]:
        """Points neither settled by us nor checkpointed by anyone."""
        return [
            point_index
            for point_index in range(len(self.plan.points))
            if point_index not in self._recorded
            and not point_checkpoint_path(self.out, point_index).exists()
        ]

    def _task(self, point_index: int, lease: Lease) -> PointTask:
        return PointTask(
            point_index=point_index,
            label=self.plan.points[point_index].label,
            positions=list(range(len(self.plan.seeds))),
            start=self.plan.run_index(point_index, 0),
            step=1,
            checkpoint=point_checkpoint_path(self.out, point_index),
            lease=lease,
        )

    def _write_manifest(self) -> None:
        outcomes = {
            str(point_index): {
                "label": self.plan.points[point_index].label,
                "outcome": outcome,
            }
            for point_index, outcome in sorted(self._recorded.items())
        }
        payload = {
            "version": MANIFEST_VERSION,
            "schedule": self.schedule,
            "fingerprint": self._fingerprint,
            "plan_key": self.plan.key,
            "experiment": self.plan.experiment,
            "indexing": self.plan.indexing,
            "priority_backend": priority_backend(),
            "worker": self.worker,
            "lease_ttl": self.ttl,
            "points": outcomes,
            "points_computed": len(self.result.executed) + len(self.result.stolen),
            "points_stolen": len(self.result.stolen),
            "points_lost": len(self.result.lost),
            "runs_executed": self.result.runs_executed,
            "runs_reused": self.result.runs_reused,
            "telemetry": self.telemetry.snapshot(),
        }
        _atomic_write_bytes(
            self.result.manifest, json.dumps(payload, indent=2).encode("utf-8")
        )


def run_work_stealing(
    plan: SweepPlan,
    out_dir: Union[str, Path],
    worker: Optional[str] = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    max_workers: Optional[int] = None,
    max_points: Optional[int] = None,
    exec_mode: Optional[str] = None,
    wait: bool = False,
    poll_interval: Optional[float] = None,
) -> StealRunResult:
    """Execute ``plan`` as one work-stealing worker over ``out_dir``.

    Claims un-started sweep points through atomic leases, heartbeats them
    while computing, steals points whose leases expire, and exits when
    every point is checkpointed or only live-leased work remains.  Any
    number of workers (concurrent or sequential, homogeneous or not) may
    share ``out_dir``; :func:`merge_stolen` folds the result bit-identically
    to the single-host sweep.  ``max_points`` bounds how many points this
    invocation computes (useful for fixed-size work grants); ``lease_ttl``
    is how long a silent holder keeps a point before it becomes stealable.
    ``wait=True`` makes the worker idle (re-polling every ``poll_interval``
    seconds, default ``lease_ttl / 4``) when everything left is live-leased,
    instead of exiting -- so a fleet drains a sweep without a supervisor
    re-launching stragglers.
    """
    scheduler = WorkStealingScheduler(
        plan,
        Path(out_dir),
        worker=worker,
        lease_ttl=lease_ttl,
        max_points=max_points,
        wait=wait,
        poll_interval=poll_interval,
    )
    return drive_claims(plan, scheduler, max_workers, exec_mode=exec_mode)


# ------------------------------------------------------------------ status
@dataclass
class StealStatus:
    """Aggregate progress of a work-stealing run directory.

    ``stolen`` counts points whose live lease generation is above zero --
    points that changed hands at least once, completed or not.
    ``orphaned`` are points whose lease expired with no checkpoint:
    claimable by the next worker.  ``workers`` holds one row per worker
    manifest found.
    """

    points_total: int
    done: int
    leased: int
    orphaned: int
    unclaimed: int
    stolen: int
    runs_total: int
    experiment: Optional[str]
    plan_key: Optional[str]
    workers: List[Dict[str, Any]] = field(default_factory=list)


def steal_status(out_dir: Union[str, Path]) -> StealStatus:
    """Read a work-stealing directory's progress from its artifacts alone."""
    out = Path(out_dir)
    header = read_plan_header(out)
    labels = header["labels"]
    done = leased = orphaned = unclaimed = stolen = 0
    leases = _lease_index(out)
    for point_index in range(len(labels)):
        entry = leases.get(point_index)
        lease = (
            _parse_lease(entry[1], point_index, entry[0], warn=False) if entry else None
        )
        if lease is not None and lease.generation > 0:
            stolen += 1
        if point_checkpoint_path(out, point_index).exists():
            done += 1
        elif lease is None:
            unclaimed += 1
        elif lease.expired():
            orphaned += 1
        else:
            leased += 1
    workers = []
    for path in find_worker_manifests(out):
        try:
            raw = json.loads(path.read_text())
        except (OSError, ValueError) as error:
            raise ManifestError(f"malformed worker manifest {path}: {error}") from error
        row = {
            "worker": raw.get("worker", "?"),
            "computed": raw.get("points_computed", 0),
            "stolen": raw.get("points_stolen", 0),
            "lost": raw.get("points_lost", 0),
            "runs_executed": raw.get("runs_executed", 0),
        }
        telemetry = raw.get("telemetry")
        if isinstance(telemetry, dict):
            row["telemetry"] = telemetry
        workers.append(row)
    return StealStatus(
        points_total=len(labels),
        done=done,
        leased=leased,
        orphaned=orphaned,
        unclaimed=unclaimed,
        stolen=stolen,
        runs_total=header.get("runs_total", 0),
        experiment=header.get("experiment"),
        plan_key=header.get("plan_key"),
        workers=workers,
    )


# ------------------------------------------------------------------- merge
def merge_stolen(out_dir: Union[str, Path], plan: SweepPlan) -> MergedSweep:
    """Fold a work-stealing run into the single-host aggregates.

    Validates the plan header against ``plan`` (named-field provenance
    errors first, then the fingerprint), requires every point's checkpoint,
    and re-folds each point's summaries in run-index order -- the identical
    code path and therefore identical bits to
    :func:`~repro.harness.distributed.run_plan`, no matter which workers
    computed, stole or recomputed which points.
    """
    out = Path(out_dir)
    header = read_plan_header(out)
    check_merge_provenance(header, plan, out, what="work-stealing artifacts")
    if list(header["labels"]) != [point.label for point in plan.points]:
        raise ManifestError(
            f"plan header in {out} lists different point labels than the merge "
            f"plan; rebuild the merge plan with the same experiment and parameters"
        )
    aggregates: Dict[str, RunAggregate] = {}
    unfinished: List[str] = []
    for point_index, point in enumerate(plan.points):
        cpath = point_checkpoint_path(out, point_index)
        if not cpath.exists():
            unfinished.append(point.label)
            continue
        summaries = _load_checkpoint(cpath, plan, _WHOLE, point_index)
        aggregates[point.label] = distributed.fold_point(
            plan, point_index, ((summary.index, summary) for summary in summaries)
        )
    if unfinished:
        status = steal_status(out)
        raise ManifestError(
            f"work-stealing run in {out} is incomplete: points {unfinished} have "
            f"no checkpoint yet ({status.leased} leased, {status.orphaned} "
            f"orphaned, {status.unclaimed} unclaimed); run another worker over "
            f"this directory to finish them before merging"
        )
    worker_count = len(find_worker_manifests(out))
    return MergedSweep(plan=plan, shard_count=max(worker_count, 1), aggregates=aggregates)
