"""Plain-text reporting of experiment results (paper-style rows and series)."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence


def _format_cell(value: Any, precision: int = 2) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    rendered_rows = [[_format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(header).ljust(widths[index]) for index, header in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def format_records(
    records: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """Render a list of dictionaries (e.g. sweep rows) as a table."""
    if not records:
        return title or "(no rows)"
    if columns is None:
        columns = list(records[0].keys())
    rows = [[record.get(column, "") for column in columns] for record in records]
    return format_table(columns, rows, precision=precision, title=title)


def format_series(
    x_label: str,
    y_label: str,
    points: Sequence[tuple],
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """Render an (x, y) series as two aligned columns (a text "figure")."""
    rows = [(x, y) for x, y in points]
    return format_table([x_label, y_label], rows, precision=precision, title=title)


def comparison_rows(
    label_to_metrics: Mapping[str, Mapping[str, Any]],
    fields: Sequence[str],
) -> List[List[Any]]:
    """Rows of ``[label, field1, field2, ...]`` for :func:`format_table`."""
    rows = []
    for label, metrics in label_to_metrics.items():
        rows.append([label] + [metrics.get(field) for field in fields])
    return rows


#: Metrics shown first (when present) by :func:`format_aggregates`.
PREFERRED_METRICS = ("rounds_max", "messages_sent", "sm_ops", "decision_time_max")


def format_aggregates(
    label_to_aggregate: Mapping[str, Any],
    metrics: Optional[Sequence[str]] = None,
    precision: int = 2,
    title: Optional[str] = None,
    ci: bool = False,
) -> str:
    """Render mergeable aggregates as a table, one row per label.

    When ``metrics`` is omitted, the columns are the :data:`PREFERRED_METRICS`
    that every aggregate actually carries -- the right default for showing a
    merged sweep without knowing which experiment produced it.
    """
    if metrics is None:
        names = [set(aggregate.metric_names()) for aggregate in label_to_aggregate.values()]
        common = set.intersection(*names) if names else set()
        metrics = [metric for metric in PREFERRED_METRICS if metric in common]
    return format_records(
        aggregate_records(label_to_aggregate, metrics, ci=ci), precision=precision, title=title
    )


def aggregate_records(
    label_to_aggregate: Mapping[str, Any],
    metrics: Sequence[str],
    ci: bool = False,
) -> List[Dict[str, Any]]:
    """Report rows straight from :class:`~repro.harness.aggregate.RunAggregate`.

    One record per label with the run count, the termination rate and the
    mean of each requested metric; with ``ci`` each metric also gets a
    ``<metric>_ci95`` column (the half-width of the mean's 95% interval).
    Works on anything exposing the aggregate interface, so a
    :class:`~repro.harness.sweep.SweepPoint` qualifies too.
    """
    records = []
    for label, aggregate in label_to_aggregate.items():
        record: Dict[str, Any] = {
            "label": label,
            "runs": len(aggregate),
            "termination_rate": aggregate.termination_rate(),
        }
        for metric in metrics:
            stats = aggregate.summary(metric)
            record[metric] = stats.mean
            if ci:
                record[f"{metric}_ci95"] = stats.ci95_half_width
        records.append(record)
    return records
