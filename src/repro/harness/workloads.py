"""Workload generators: proposal vectors, topologies and crash scenarios.

The consensus "workload" has three axes: what the processes propose, how
they are partitioned into clusters, and who crashes when.  The experiments
combine the named generators below to build the scenarios described in the
paper (unanimous vs split inputs, balanced vs majority-cluster topologies,
benign vs adversarial crash patterns).
"""

from __future__ import annotations

import random
from typing import Dict, Mapping, Optional, Sequence, Union

from ..cluster.failures import FailurePattern
from ..cluster.topology import ClusterTopology

ProposalSpec = Union[str, Mapping[int, int], Sequence[int]]

#: Named proposal patterns accepted by :func:`resolve_proposals`.
PROPOSAL_PATTERNS = ("unanimous-0", "unanimous-1", "split", "alternating", "random", "one-dissenter")


def resolve_proposals(spec: ProposalSpec, n: int, rng: Optional[random.Random] = None) -> Dict[int, int]:
    """Turn a proposal specification into an explicit ``{pid: 0|1}`` map.

    ``spec`` may be a mapping, a sequence of length ``n``, or one of the
    named patterns:

    * ``unanimous-0`` / ``unanimous-1`` -- everybody proposes the same bit;
    * ``split`` -- the first half proposes 0, the second half 1 (the hardest
      deterministic input for randomized binary consensus);
    * ``alternating`` -- proposals alternate 0, 1, 0, 1, ... by process id;
    * ``one-dissenter`` -- everybody proposes 0 except the last process;
    * ``random`` -- independent unbiased proposals (requires ``rng``).
    """
    if isinstance(spec, Mapping):
        proposals = {int(pid): int(value) for pid, value in spec.items()}
        if sorted(proposals) != list(range(n)):
            raise ValueError(f"proposal mapping must cover exactly 0..{n - 1}")
    elif isinstance(spec, str):
        if spec == "unanimous-0":
            proposals = {pid: 0 for pid in range(n)}
        elif spec == "unanimous-1":
            proposals = {pid: 1 for pid in range(n)}
        elif spec == "split":
            proposals = {pid: (0 if pid < n // 2 else 1) for pid in range(n)}
        elif spec == "alternating":
            proposals = {pid: pid % 2 for pid in range(n)}
        elif spec == "one-dissenter":
            proposals = {pid: (1 if pid == n - 1 else 0) for pid in range(n)}
        elif spec == "random":
            if rng is None:
                raise ValueError("the 'random' proposal pattern needs an rng")
            proposals = {pid: rng.randrange(2) for pid in range(n)}
        else:
            raise ValueError(f"unknown proposal pattern {spec!r}; choose from {PROPOSAL_PATTERNS}")
    else:
        values = list(spec)
        if len(values) != n:
            raise ValueError(f"proposal sequence must have length {n}, got {len(values)}")
        proposals = {pid: int(value) for pid, value in enumerate(values)}
    for pid, value in proposals.items():
        if value not in (0, 1):
            raise ValueError(f"proposal of process {pid} must be 0 or 1, got {value}")
    return proposals


def standard_topologies(n: int) -> Dict[str, ClusterTopology]:
    """A family of named topologies for a given ``n`` (used in sweeps)."""
    topologies: Dict[str, ClusterTopology] = {
        "single-cluster": ClusterTopology.single_cluster(n),
        "singletons": ClusterTopology.singleton_clusters(n),
    }
    for m in (2, 3, 4):
        if m <= n:
            topologies[f"even-{m}"] = ClusterTopology.even_split(n, m)
    if n >= 3:
        topologies["majority-cluster"] = ClusterTopology.with_majority_cluster(n)
    return topologies


def crash_scenarios(topology: ClusterTopology, rng: Optional[random.Random] = None) -> Dict[str, FailurePattern]:
    """Named crash scenarios for a topology.

    * ``none`` -- failure-free;
    * ``minority`` -- crash just under half of the processes at time 0;
    * ``one-per-cluster-survives`` -- in every cluster, crash all members but
      one (the "one for all" scenario);
    * ``majority-with-majority-cluster`` -- the headline scenario (only when
      the topology has a majority cluster);
    * ``condition-violated`` -- crash whole clusters until the termination
      condition fails (for indulgence runs).
    """
    scenarios: Dict[str, FailurePattern] = {"none": FailurePattern.none()}
    minority = (topology.n - 1) // 2
    scenarios["minority"] = FailurePattern.crash_set(range(minority), time=0.0)

    survivors_pattern = FailurePattern.none()
    for index in range(topology.m):
        survivors_pattern = survivors_pattern.merged_with(
            FailurePattern.crash_all_but_one_in_cluster(topology, index)
        )
    scenarios["one-per-cluster-survives"] = survivors_pattern

    if topology.majority_cluster_index() is not None:
        scenarios["majority-with-majority-cluster"] = (
            FailurePattern.majority_crash_with_surviving_majority_cluster(topology)
        )
    scenarios["condition-violated"] = FailurePattern.violate_termination_condition(topology)
    if rng is not None:
        scenarios["random-minority"] = FailurePattern.random_crashes(
            rng, topology.n, minority, earliest=0.0, latest=5.0
        )
    return scenarios
