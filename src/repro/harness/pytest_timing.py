"""Pytest plugin for wall-clock-gated tests: one retry on failure.

Timing gates (the kernel speedup gate, the adversary overhead gate) assert
on measured wall-clock ratios, so a single scheduler hiccup on a loaded box
can fail an otherwise healthy run.  Tests that carry the ``timing`` marker
get exactly one automatic rerun when they fail; the second verdict is the
one that counts.  Setting ``REPRO_BENCH_STRICT=1`` (as ``make bench`` does)
disables the retry, so dedicated benchmark runs report first-try truth.

Adapted from the rerun-on-failure protocol of pytest-rerunfailures (via the
pattern in nuxeo-drive's ``pytest_random.py``): the plugin takes over
``pytest_runtest_protocol`` for marked items only and replays the whole
setup/call/teardown cycle once when any phase fails.
"""

from __future__ import annotations

import os

from _pytest.runner import runtestprotocol

#: Environment variable that disables reruns (any non-empty value but "0").
STRICT_ENV = "REPRO_BENCH_STRICT"


def _strict() -> bool:
    """Whether rerun-on-failure is disabled for this session."""
    value = os.environ.get(STRICT_ENV, "")
    return bool(value) and value != "0"


def pytest_configure(config) -> None:
    """Register the ``timing`` marker."""
    config.addinivalue_line(
        "markers",
        "timing: wall-clock-gated test; rerun once on failure unless "
        f"{STRICT_ENV}=1 is set.",
    )


def pytest_runtest_protocol(item, nextitem):
    """Run ``timing``-marked items with one retry on failure.

    Returns ``None`` for unmarked items (or in strict mode), handing the
    item back to the default protocol.
    """
    if item.get_closest_marker("timing") is None or _strict():
        return None
    item.ihook.pytest_runtest_logstart(nodeid=item.nodeid, location=item.location)
    reports = runtestprotocol(item, nextitem=nextitem, log=False)
    if any(report.failed for report in reports):
        # Replay the full cycle once; only the second attempt's reports are
        # logged, so the retried failure (or recovery) is the one recorded.
        reports = runtestprotocol(item, nextitem=nextitem, log=False)
    for report in reports:
        item.ihook.pytest_runtest_logreport(report=report)
    item.ihook.pytest_runtest_logfinish(nodeid=item.nodeid, location=item.location)
    return True
