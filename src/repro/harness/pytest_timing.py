"""Pytest plugin for flaky-by-nature tests: bounded reruns on failure.

Two marker families, one protocol:

* ``timing`` -- wall-clock-gated tests (the kernel speedup gate, the
  adversary overhead gate) assert on measured wall-clock ratios, so a
  single scheduler hiccup on a loaded box can fail an otherwise healthy
  run.  Marked tests get exactly one automatic rerun when they fail; the
  second verdict is the one that counts.
* ``random_failure(max_runs=N)`` -- tests whose assertion is inherently
  probabilistic (search-budget smoke tests: "the bounded search finds the
  planted bug within its budget") may need a few attempts before the
  property holds.  Marked tests are run up to ``max_runs`` times (default
  3) and pass as soon as one attempt passes.

Setting ``REPRO_BENCH_STRICT=1`` (as ``make bench`` does) disables every
rerun, so dedicated benchmark/strict runs report first-try truth.

Adapted from the rerun-on-failure protocol of pytest-rerunfailures (via the
pattern in nuxeo-drive's ``pytest_random.py``): the plugin takes over
``pytest_runtest_protocol`` for marked items only and replays the whole
setup/call/teardown cycle while attempts remain.
"""

from __future__ import annotations

import os

from _pytest.runner import runtestprotocol

#: Environment variable that disables reruns (any non-empty value but "0").
STRICT_ENV = "REPRO_BENCH_STRICT"

#: Default attempt budget of ``random_failure`` when none is given.
DEFAULT_MAX_RUNS = 3


def _strict() -> bool:
    """Whether rerun-on-failure is disabled for this session."""
    value = os.environ.get(STRICT_ENV, "")
    return bool(value) and value != "0"


def _max_attempts(item) -> int:
    """The attempt budget of ``item``: 1 for unmarked items or strict mode.

    ``timing`` grants two attempts; ``random_failure(max_runs=N)`` grants
    ``N`` (its keyword or first positional argument).  When both markers
    are present the larger budget wins.
    """
    if _strict():
        return 1
    attempts = 1
    if item.get_closest_marker("timing") is not None:
        attempts = 2
    random_marker = item.get_closest_marker("random_failure")
    if random_marker is not None:
        max_runs = random_marker.kwargs.get(
            "max_runs",
            random_marker.args[0] if random_marker.args else DEFAULT_MAX_RUNS,
        )
        if not isinstance(max_runs, int) or max_runs < 1:
            raise ValueError(
                f"random_failure(max_runs=...) must be a positive int, got {max_runs!r}"
            )
        attempts = max(attempts, max_runs)
    return attempts


def pytest_configure(config) -> None:
    """Register the ``timing`` and ``random_failure`` markers."""
    config.addinivalue_line(
        "markers",
        "timing: wall-clock-gated test; rerun once on failure unless "
        f"{STRICT_ENV}=1 is set.",
    )
    config.addinivalue_line(
        "markers",
        "random_failure(max_runs=N): inherently probabilistic test; rerun "
        f"until one attempt passes, at most N times (default {DEFAULT_MAX_RUNS}), "
        f"unless {STRICT_ENV}=1 is set.",
    )


def pytest_runtest_protocol(item, nextitem):
    """Run marked items with bounded reruns on failure.

    Returns ``None`` for unmarked items (or in strict mode), handing the
    item back to the default protocol.  Only the last attempt's reports
    are logged, so the final verdict (recovery or exhausted budget) is the
    one recorded.
    """
    attempts = _max_attempts(item)
    if attempts <= 1:
        return None
    item.ihook.pytest_runtest_logstart(nodeid=item.nodeid, location=item.location)
    for _attempt in range(attempts):
        reports = runtestprotocol(item, nextitem=nextitem, log=False)
        if not any(report.failed for report in reports):
            break
    for report in reports:
        item.ihook.pytest_runtest_logreport(report=report)
    item.ihook.pytest_runtest_logfinish(nodeid=item.nodeid, location=item.location)
    return True
