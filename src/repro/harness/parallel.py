"""Parallel execution engine for experiment runs.

The paper's experiments are embarrassingly parallel: every repetition is an
independent, fully seeded :func:`~repro.harness.runner.run_consensus` call.
:func:`run_many` fans a list of configurations out over a process pool while
keeping the result list in input order, so a parallel sweep is
*bit-identical* to the serial one — only faster.

Execution modes (``exec_mode``, or the ``REPRO_EXEC_MODE`` environment
variable):

* ``"process"`` (default) — the process pool described above;
* ``"coop"`` — host every run in **one** process as cooperatively
  interleaved kernels (:mod:`repro.sim.multikernel`): no pickling, no
  worker start-up, and the whole batch shares one warm interpreter.  Runs
  share no RNG state (each owns a seeded
  :class:`~repro.sim.rng.RandomSource`), so results stay bit-identical to
  the serial and pool paths, whatever the interleaving;
* ``"auto"`` — ``coop`` when only one worker is usable or the batch
  contains very large systems (n ≥ :data:`COOP_AUTO_THRESHOLD`, where
  per-run footprints dwarf pool overheads), else ``process``.

Fallbacks keep the engine safe to use unconditionally:

* ``max_workers=1`` (or a single configuration) runs serially in-process;
* configurations or results that cannot be pickled fall back to the serial
  path instead of failing;
* a broken worker pool (e.g. a worker killed by the OS) also falls back to
  the serial path, which reproduces any genuine error deterministically.

The default worker count comes from the ``REPRO_MAX_WORKERS`` environment
variable when set, else from the CPUs usable by this process
(affinity-aware, so container CPU quotas are respected).
"""

from __future__ import annotations

import math
import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Generator, Iterable, Iterator, List, Optional, Sequence

from ..sim.multikernel import DEFAULT_BATCH_EVENTS, CooperativeScheduler
from .aggregate import Reducer
from .runner import ExperimentConfig, RunResult, prepare_consensus, run_consensus

#: Environment variable overriding the default worker count.
WORKERS_ENV_VAR = "REPRO_MAX_WORKERS"

#: Environment variable overriding the default execution mode.
EXEC_MODE_ENV_VAR = "REPRO_EXEC_MODE"

#: The execution modes :func:`run_many` understands.
EXEC_MODES = ("process", "coop", "auto")

#: ``auto`` switches to cooperative hosting at this system size: event
#: counts (and run memory) grow superlinearly in n, so above it the pool's
#: per-task pickling and worker start-up stop paying for themselves.
COOP_AUTO_THRESHOLD = 512


def _cgroup_cpu_quota() -> Optional[int]:
    """Whole CPUs granted by the cgroup CPU quota, or ``None`` if unlimited.

    ``sched_getaffinity`` sees cpusets but not CFS bandwidth limits, so a
    container throttled to 2 CPUs of quota can still report 16 affine CPUs;
    sizing pools (or speedup expectations) off that number oversubscribes.
    """
    try:  # cgroup v2
        with open("/sys/fs/cgroup/cpu.max") as handle:
            quota, period = handle.read().split()[:2]
    except (OSError, ValueError):
        try:  # cgroup v1
            with open("/sys/fs/cgroup/cpu/cpu.cfs_quota_us") as handle:
                quota = handle.read().strip()
            with open("/sys/fs/cgroup/cpu/cpu.cfs_period_us") as handle:
                period = handle.read().strip()
        except OSError:
            return None
    if quota in ("max", "-1"):
        return None
    try:
        return max(1, int(quota) // int(period))
    except (ValueError, ZeroDivisionError):
        return None


def available_cpus() -> int:
    """The CPUs usable by this process (affinity- and cgroup-quota-aware)."""
    try:
        cpus = len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without sched_getaffinity
        cpus = os.cpu_count() or 1
    quota = _cgroup_cpu_quota()
    return min(cpus, quota) if quota is not None else cpus


def default_workers() -> int:
    """The default degree of parallelism (env override, else usable CPUs)."""
    override = os.environ.get(WORKERS_ENV_VAR)
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            pass
    return available_cpus()


def resolve_workers(max_workers: Optional[int], task_count: int) -> int:
    """Clamp the requested worker count to something useful for ``task_count``."""
    if task_count <= 0:
        return 1
    workers = default_workers() if max_workers is None else max_workers
    if workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {workers}")
    return min(workers, task_count)


def default_exec_mode() -> str:
    """The default execution mode (``REPRO_EXEC_MODE`` override, else process)."""
    override = os.environ.get(EXEC_MODE_ENV_VAR, "").strip().lower()
    if override:
        if override not in EXEC_MODES:
            warnings.warn(
                f"ignoring {EXEC_MODE_ENV_VAR}={override!r}: choose from {EXEC_MODES}",
                RuntimeWarning,
                stacklevel=3,
            )
        else:
            return override
    return "process"


def resolve_exec_mode(
    exec_mode: Optional[str],
    configs: Sequence[ExperimentConfig],
    workers: int,
) -> str:
    """Resolve the requested mode to ``"process"`` or ``"coop"``.

    Precedence: explicit argument, then the ``REPRO_EXEC_MODE`` environment
    variable, then ``"process"``.  ``"auto"`` picks ``coop`` when only one
    worker is usable (cooperative hosting beats serial by keeping one warm
    interpreter and costs nothing extra) or when the batch contains a system
    of n ≥ :data:`COOP_AUTO_THRESHOLD`.
    """
    mode = exec_mode if exec_mode is not None else default_exec_mode()
    if mode not in EXEC_MODES:
        raise ValueError(f"unknown exec_mode {mode!r}; choose from {EXEC_MODES}")
    if mode != "auto":
        return mode
    if workers <= 1:
        return "coop"
    largest = max((config.topology.n for config in configs), default=0)
    return "coop" if largest >= COOP_AUTO_THRESHOLD else "process"


def default_chunksize(task_count: int, workers: Optional[int] = None) -> int:
    """Submission chunk size that amortises executor overhead for tiny runs.

    One pickled task per pipe round-trip is wasteful when each simulation
    lasts microseconds; batching ~4 chunks per worker keeps the pipe quiet
    while still letting the pool balance uneven run times.  The cap keeps
    very large batches from degenerating into one chunk per worker (which
    would serialise behind the slowest chunk).
    """
    if task_count <= 0:
        return 1
    if workers is None:
        workers = available_cpus()
    return max(1, min(64, math.ceil(task_count / (max(workers, 1) * 4))))


def _execute(config: ExperimentConfig) -> RunResult:
    """Worker entry point (module-level so the pool can pickle it)."""
    return run_consensus(config)


def _execute_reduced(task) -> Any:
    """Worker entry point for summary mode: run, check, reduce in-worker.

    Only the reducer's compact return value crosses the pipe back.  The
    property check also happens here, so violations surface without ever
    shipping the full result; :class:`~repro.core.properties.ConsensusViolation`
    is an ``AssertionError`` and therefore never mistaken for a pickling
    failure by the fallback logic.
    """
    index, config, reducer, check = task
    result = run_consensus(config)
    if check:
        result.report.raise_on_violation()
    return reducer(result, index)


#: Pool shared by every :func:`run_many` call inside a :func:`worker_pool`
#: context, so callers looping over small batches reuse one set of workers.
_shared_pool: Optional[ProcessPoolExecutor] = None
_shared_pool_workers: int = 0


@contextmanager
def worker_pool(max_workers: Optional[int] = None) -> Iterator[None]:
    """Share one process pool across every :func:`run_many` call inside.

    Experiments with nested parameter loops call :func:`~.sweep.repeat` once
    per point; without this context each of those calls would spawn and tear
    down its own pool, and on spawn-based platforms the interpreter start-up
    can dwarf the simulations themselves.  Inside the context, parallel
    ``run_many`` calls reuse the shared executor (its worker count wins over
    per-call ``max_workers``, except that ``max_workers=1`` still forces the
    serial path).  Nested contexts reuse the outermost pool; ``max_workers=1``
    or a single usable CPU makes the whole context a no-op.
    """
    global _shared_pool, _shared_pool_workers
    if _shared_pool is not None:  # nested: reuse the outer pool
        yield
        return
    workers = default_workers() if max_workers is None else max_workers
    if workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {workers}")
    if workers == 1:
        yield
        return
    pool = ProcessPoolExecutor(max_workers=workers)
    _shared_pool, _shared_pool_workers = pool, workers
    try:
        yield
    finally:
        _shared_pool, _shared_pool_workers = None, 0
        pool.shutdown()


def _run_serial(
    configs: Sequence[ExperimentConfig],
    check: bool,
    reducer: Optional[Reducer] = None,
) -> List[Any]:
    """Serial path: check each run as it finishes, so a violation exits early."""
    results: List[Any] = []
    for index, config in enumerate(configs):
        result = run_consensus(config)
        if check:
            result.report.raise_on_violation()
        results.append(result if reducer is None else reducer(result, index))
    return results


def _drive_coop(
    config: ExperimentConfig,
    index: int,
    check: bool,
    reducer: Optional[Reducer],
    batch_events: int,
) -> Generator[None, None, Any]:
    """Driver generator for one run on the cooperative scheduler.

    Lazily prepares the run on its first turn (so only the scheduler's
    in-flight slots hold live kernels), advances the kernel one event batch
    per turn, and finalizes exactly like the serial path: check as the run
    finishes, reduce in place of shipping the full result.  Only the
    kernel-stepping time enters ``wall`` — the same region the serial path
    times (and the one metric deliberately excluded from summaries).
    """
    prepared = prepare_consensus(config)
    kernel_batch = prepared.kernel.run_batch
    wall = 0.0
    while True:
        started = perf_counter()
        sim_result = kernel_batch(batch_events)
        wall += perf_counter() - started
        if sim_result is not None:
            break
        yield
    result = prepared.finalize(sim_result, wall)
    if check:
        result.report.raise_on_violation()
    return result if reducer is None else reducer(result, index)


def _run_coop(
    configs: Sequence[ExperimentConfig],
    width: int,
    check: bool,
    reducer: Optional[Reducer] = None,
    batch_events: int = DEFAULT_BATCH_EVENTS,
) -> List[Any]:
    """Cooperative path: interleave all runs as co-hosted kernels.

    ``width`` caps how many kernels are live at once (the cooperative
    analogue of the pool's worker count); results come back in input order
    and bit-identical to the serial path — co-hosted runs share no RNG
    state, so the interleaving cannot change any draw.
    """
    drivers = [
        _drive_coop(config, index, check, reducer, batch_events)
        for index, config in enumerate(configs)
    ]
    return CooperativeScheduler(width=width).run(drivers)


def _should_fall_back(error: BaseException) -> bool:
    """Whether a pool error is a pickling/transport problem, not a task bug.

    Genuine exceptions raised by :func:`run_consensus` inside a worker must
    propagate immediately — silently re-running a big batch serially would
    roughly double its runtime before surfacing the same error.  Worker death
    surfaces as ``BrokenProcessPool``; CPython's pickle reports unpicklable
    objects as ``PicklingError`` or as ``TypeError`` / ``AttributeError`` /
    ``OSError`` / ``EOFError`` whose message names pickling, which is what
    the string check distinguishes.
    """
    if isinstance(error, (BrokenProcessPool, pickle.PicklingError)):
        return True
    return (
        isinstance(error, (TypeError, AttributeError, OSError, EOFError))
        and "pickle" in str(error).lower()
    )


def _run_pool(
    configs: Sequence[ExperimentConfig],
    workers: int,
    reducer: Optional[Reducer] = None,
    check: bool = False,
    chunksize: Optional[int] = None,
) -> Optional[List[Any]]:
    """Run configs through a process pool; ``None`` means 'fall back to serial'."""
    global _shared_pool, _shared_pool_workers
    shared = _shared_pool
    pool_workers = _shared_pool_workers if shared is not None else workers
    if chunksize is None:
        chunksize = default_chunksize(len(configs), pool_workers)
    if reducer is None:
        entry, tasks = _execute, list(configs)
    else:
        entry = _execute_reduced
        tasks = [(index, config, reducer, check) for index, config in enumerate(configs)]
    try:
        if shared is not None:
            return list(shared.map(entry, tasks, chunksize=chunksize))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(entry, tasks, chunksize=chunksize))
    except (BrokenProcessPool, pickle.PicklingError, TypeError, AttributeError, EOFError, OSError) as error:
        if not _should_fall_back(error):
            raise
        if shared is not None and isinstance(error, BrokenProcessPool):
            # A dead executor can never recover; uninstall it so later calls
            # in the worker_pool context spawn fresh pools instead of warning
            # and degrading to serial on every remaining point.
            _shared_pool, _shared_pool_workers = None, 0
        # Unpicklable configs/results or a pool whose workers died; the serial
        # rerun reproduces any genuine error deterministically.  Warn so a
        # large sweep never degrades to serial silently.
        warnings.warn(
            f"parallel run_many fell back to the serial path after "
            f"{type(error).__name__}: {error}",
            RuntimeWarning,
            stacklevel=4,
        )
        return None


def run_many(
    configs: Iterable[ExperimentConfig],
    max_workers: Optional[int] = None,
    check: bool = False,
    reducer: Optional[Reducer] = None,
    chunksize: Optional[int] = None,
    exec_mode: Optional[str] = None,
) -> List[Any]:
    """Run every configuration, in parallel when it pays, in input order.

    Results are returned in the order of ``configs`` regardless of worker
    scheduling, so callers see exactly what the serial path would produce.
    With ``check``, the first offending configuration in input order raises;
    on the serial path this exits as soon as the offending run finishes,
    while the pool path checks after the batch completes.

    With a ``reducer``, each worker applies it to its ``RunResult`` before
    returning, so only the reducer's compact output (O(1) bytes for the
    standard :class:`~.aggregate.SummaryReducer`) crosses the pipe instead
    of the full result; the returned list holds the reduced values, still
    in input order, and property checks happen inside the workers.
    ``chunksize`` overrides the :func:`default_chunksize` heuristic for
    batching task submission.

    ``exec_mode`` (``"process"``, ``"coop"`` or ``"auto"``; default from
    ``REPRO_EXEC_MODE``, else process) selects the engine — see the module
    docstring.  In coop mode ``max_workers`` caps how many kernels are
    co-hosted at once instead of spawning anything.
    """
    configs = list(configs)
    if max_workers is None and _shared_pool is not None:
        workers = _shared_pool_workers
    else:
        workers = resolve_workers(max_workers, len(configs))
    mode = resolve_exec_mode(exec_mode, configs, workers)
    if mode == "coop" and len(configs) > 1:
        return _run_coop(configs, workers, check=check, reducer=reducer)
    if mode != "coop" and workers > 1 and len(configs) > 1:
        results = _run_pool(configs, workers, reducer=reducer, check=check, chunksize=chunksize)
        if results is not None:
            if check and reducer is None:
                for result in results:
                    result.report.raise_on_violation()
            return results
    return _run_serial(configs, check, reducer)
