"""Small statistics helpers for aggregating repeated runs."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence


@dataclass(frozen=True)
class SummaryStats:
    """Summary of a sample of numbers."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    p90: float
    ci95_half_width: float

    @property
    def ci95(self) -> tuple:
        """Approximate 95% confidence interval for the mean (normal approx.)."""
        return (self.mean - self.ci95_half_width, self.mean + self.ci95_half_width)

    def format(self, precision: int = 2) -> str:
        """A compact one-line rendering: ``mean ± ci (min, med, max, n)``."""
        return (
            f"{self.mean:.{precision}f} ± {self.ci95_half_width:.{precision}f} "
            f"(min {self.minimum:.{precision}f}, med {self.median:.{precision}f}, "
            f"max {self.maximum:.{precision}f}, n={self.count})"
        )


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (raises on an empty sample)."""
    values = list(values)
    if not values:
        raise ValueError("mean of an empty sample")
    return sum(values) / len(values)


def sample_std(values: Sequence[float]) -> float:
    """Unbiased sample standard deviation (0 for fewer than two values)."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((value - mu) ** 2 for value in values) / (len(values) - 1))


def median(values: Sequence[float]) -> float:
    """The 50th percentile."""
    return percentile(values, 50.0)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100])."""
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(ordered[low])
    lower = float(ordered[low])
    upper = float(ordered[high])
    weight = rank - low
    # ``lower*(1-w) + upper*w`` can land strictly outside [lower, upper] for
    # near-equal tiny floats; the incremental form plus a clamp cannot.
    value = lower + weight * (upper - lower)
    return min(max(value, lower), upper)


def ci95_half_width(count: int, std: float) -> float:
    """Half-width of the normal-approximation 95% CI for a sample mean."""
    if count < 2:
        return 0.0
    return 1.96 * std / math.sqrt(count)


def summarize(values: Iterable[float]) -> SummaryStats:
    """Summary statistics for a sample (raises on an empty sample)."""
    data = [float(value) for value in values]
    if not data:
        raise ValueError("cannot summarize an empty sample")
    mu = mean(data)
    std = sample_std(data)
    half_width = ci95_half_width(len(data), std)
    return SummaryStats(
        count=len(data),
        mean=mu,
        std=std,
        minimum=min(data),
        maximum=max(data),
        median=median(data),
        p90=percentile(data, 90.0),
        ci95_half_width=half_width,
    )


def summarize_field(records: Sequence[Mapping[str, object]], field: str) -> SummaryStats:
    """Summary of one numeric field across a list of record dictionaries."""
    values = []
    for record in records:
        value = record.get(field)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            values.append(float(value))
    return summarize(values)


def proportion(flags: Iterable[bool]) -> float:
    """Fraction of true values (0.0 for an empty sample)."""
    data = list(flags)
    if not data:
        return 0.0
    return sum(1 for flag in data if flag) / len(data)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values."""
    data = [float(value) for value in values]
    if not data:
        raise ValueError("geometric mean of an empty sample")
    if any(value <= 0 for value in data):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(value) for value in data) / len(data))
