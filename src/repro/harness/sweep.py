"""Parameter sweeps over seeds, topologies, algorithms and crash scenarios.

Since the worker-side aggregation pipeline landed, sweeps run in *summary
mode* by default: every repetition is reduced to a compact
:class:`~.aggregate.RunSummary` inside the worker that executes it, and each
sweep point carries a mergeable :class:`~.aggregate.RunAggregate` instead of
a list of full results.  IPC volume is then O(1) per run rather than O(run
size), which is what makes large sweeps cheap.  Pass ``full_results=True``
to any of :func:`repeat`, :func:`sweep` or :func:`grid` to get the previous
behaviour (full :class:`~.runner.RunResult` objects per repetition) — the
aggregate is still populated, parent-side, so downstream consumers work
identically in both modes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .aggregate import SKETCH_CAPACITY, RunAggregate, SummaryReducer
from .metrics import RunMetrics
from .parallel import run_many
from .runner import ExperimentConfig, RunResult, run_seeds
from .stats import SummaryStats


@dataclass
class SweepPoint:
    """All repetitions of one parameter combination.

    ``aggregate`` is always populated; ``results`` holds the full per-run
    objects only when the sweep ran with ``full_results=True``.
    """

    label: str
    parameters: Dict[str, Any]
    aggregate: RunAggregate
    results: Optional[List[RunResult]] = None

    @property
    def runs(self) -> int:
        """How many repetitions this point aggregates."""
        return len(self.aggregate)

    def __len__(self) -> int:
        return len(self.aggregate)

    @property
    def metrics(self) -> List[RunMetrics]:
        """Per-run metrics (full-results mode only)."""
        if self.results is None:
            raise ValueError(
                f"sweep point {self.label!r} ran in summary mode and kept no "
                f"full results; re-run with full_results=True for per-run access"
            )
        return [result.metrics for result in self.results]

    def termination_rate(self) -> float:
        """Fraction of repetitions in which every correct process decided."""
        return self.aggregate.termination_rate()

    def summary(self, metric: str) -> SummaryStats:
        """Summary statistics of one numeric metric field across repetitions."""
        return self.aggregate.summary(metric)

    def mean(self, metric: str) -> float:
        """Mean of one numeric metric across repetitions."""
        return self.aggregate.mean(metric)

    def percentile(self, metric: str, q: float) -> float:
        """Estimated ``q``-th percentile of one metric across repetitions."""
        return self.aggregate.percentile(metric, q)


@dataclass
class SweepResult:
    """The outcome of a sweep: one :class:`SweepPoint` per combination."""

    points: List[SweepPoint] = field(default_factory=list)

    def point(self, label: str) -> SweepPoint:
        """The sweep point with the given label (raises ``KeyError`` if absent)."""
        for candidate in self.points:
            if candidate.label == label:
                return candidate
        raise KeyError(f"no sweep point labelled {label!r}")

    def labels(self) -> List[str]:
        """Every point label, in sweep order."""
        return [point.label for point in self.points]

    def table(self, metrics: Sequence[str]) -> List[Dict[str, Any]]:
        """One row per point with the mean of each requested metric."""
        rows = []
        for point in self.points:
            row: Dict[str, Any] = {"label": point.label, **point.parameters}
            row["runs"] = point.runs
            row["termination_rate"] = point.termination_rate()
            for metric in metrics:
                row[metric] = point.summary(metric).mean
            rows.append(row)
        return rows


def repeat(
    config: ExperimentConfig,
    seeds: Sequence[int],
    check: bool = True,
    max_workers: Optional[int] = None,
    full_results: bool = False,
    capacity: int = SKETCH_CAPACITY,
):
    """Run ``config`` once per seed and aggregate the repetitions.

    Returns a :class:`~.aggregate.RunAggregate` built from worker-side
    summaries (the default), or the list of full :class:`~.runner.RunResult`
    objects in seed order when ``full_results=True``.  Both modes fan out
    over the parallel engine and are deterministic regardless of worker
    scheduling or submission chunking.
    """
    if full_results:
        return run_seeds(config, seeds, check=check, max_workers=max_workers)
    summaries = run_seeds(
        config, seeds, check=check, max_workers=max_workers, reducer=SummaryReducer()
    )
    return RunAggregate.from_summaries(summaries, capacity=capacity)


def sweep(
    base_config: ExperimentConfig,
    variations: Mapping[str, Mapping[str, Any]],
    seeds: Sequence[int],
    check: bool = True,
    max_workers: Optional[int] = None,
    full_results: bool = False,
) -> SweepResult:
    """Run every named variation of ``base_config`` under every seed.

    ``variations`` maps a label to the set of :class:`ExperimentConfig`
    field overrides that define the point, e.g.::

        sweep(base, {
            "hybrid": {"algorithm": "hybrid-local-coin"},
            "ben-or": {"algorithm": "ben-or"},
        }, seeds=range(20))

    All point x seed combinations are fanned out through one parallel batch
    so workers stay busy across point boundaries.
    """
    points = variation_points(base_config, variations)
    return _run_points(points, seeds, check=check, max_workers=max_workers, full_results=full_results)


def grid(
    base_config: ExperimentConfig,
    axes: Mapping[str, Sequence[Any]],
    seeds: Sequence[int],
    label_format: Optional[Callable[[Dict[str, Any]], str]] = None,
    check: bool = True,
    max_workers: Optional[int] = None,
    full_results: bool = False,
) -> SweepResult:
    """Cartesian-product sweep over several config fields.

    ``axes`` maps field names to the values to try; every combination is run
    under every seed.  Labels default to ``field=value`` pairs joined by
    commas.  As with :func:`sweep`, the whole grid is one parallel batch.
    """
    points = grid_points(base_config, axes, label_format=label_format)
    return _run_points(points, seeds, check=check, max_workers=max_workers, full_results=full_results)


def variation_points(
    base_config: ExperimentConfig,
    variations: Mapping[str, Mapping[str, Any]],
) -> List[Tuple[str, Dict[str, Any], ExperimentConfig]]:
    """Expand named variations into ``(label, overrides, config)`` triples.

    This is the point enumeration behind :func:`sweep`, shared with the
    shard planner in :mod:`~repro.harness.distributed` so a sharded sweep
    enumerates exactly the points a single-host sweep would.
    """
    return [
        (label, dict(overrides), replace(base_config, **overrides))
        for label, overrides in variations.items()
    ]


def grid_points(
    base_config: ExperimentConfig,
    axes: Mapping[str, Sequence[Any]],
    label_format: Optional[Callable[[Dict[str, Any]], str]] = None,
) -> List[Tuple[str, Dict[str, Any], ExperimentConfig]]:
    """Expand a cartesian grid into ``(label, overrides, config)`` triples.

    The point enumeration behind :func:`grid`, shared with the shard
    planner in :mod:`~repro.harness.distributed`.
    """
    points = []
    names = list(axes)
    for combination in itertools.product(*(axes[name] for name in names)):
        overrides = dict(zip(names, combination))
        label = (
            label_format(overrides)
            if label_format is not None
            else ", ".join(f"{name}={_short(value)}" for name, value in overrides.items())
        )
        points.append((label, overrides, replace(base_config, **overrides)))
    return points


def _run_points(
    points: Sequence[Tuple[str, Dict[str, Any], ExperimentConfig]],
    seeds: Sequence[int],
    check: bool,
    max_workers: Optional[int],
    full_results: bool = False,
) -> SweepResult:
    """Run every (point, seed) combination in one batch, then regroup by point.

    Sketch priorities are keyed by the run's index in the whole batch, so
    regrouping is a pure slice and aggregates are independent of worker
    scheduling.  In full-results mode the same reducer runs parent-side over
    the returned results, which makes both modes produce identical
    aggregates.
    """
    configs = [config.with_seed(seed) for _, _, config in points for seed in seeds]
    reducer = SummaryReducer()
    if full_results:
        runs: List[RunResult] = run_many(configs, max_workers=max_workers, check=check)
        summaries = [reducer(result, index) for index, result in enumerate(runs)]
    else:
        runs = None
        summaries = run_many(configs, max_workers=max_workers, check=check, reducer=reducer)
    result = SweepResult()
    per_point = len(seeds)
    for index, (label, parameters, _) in enumerate(points):
        start, stop = index * per_point, (index + 1) * per_point
        aggregate = RunAggregate.from_summaries(summaries[start:stop])
        result.points.append(
            SweepPoint(
                label=label,
                parameters=parameters,
                aggregate=aggregate,
                results=runs[start:stop] if runs is not None else None,
            )
        )
    return result


def _short(value: Any) -> str:
    text = getattr(value, "describe", None)
    if callable(text):
        return text()
    return str(value)
