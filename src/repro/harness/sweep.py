"""Parameter sweeps over seeds, topologies, algorithms and crash scenarios."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .metrics import RunMetrics
from .parallel import run_many
from .runner import ExperimentConfig, RunResult, run_seeds
from .stats import SummaryStats, proportion, summarize


@dataclass
class SweepPoint:
    """All repetitions of one parameter combination."""

    label: str
    parameters: Dict[str, Any]
    results: List[RunResult]

    @property
    def metrics(self) -> List[RunMetrics]:
        return [result.metrics for result in self.results]

    def termination_rate(self) -> float:
        return proportion(metrics.terminated for metrics in self.metrics)

    def summary(self, metric: str) -> SummaryStats:
        """Summary statistics of one numeric metric field across repetitions."""
        values = [getattr(metrics, metric) for metrics in self.metrics]
        return summarize(values)

    def mean(self, metric: str) -> float:
        return self.summary(metric).mean


@dataclass
class SweepResult:
    """The outcome of a sweep: one :class:`SweepPoint` per combination."""

    points: List[SweepPoint] = field(default_factory=list)

    def point(self, label: str) -> SweepPoint:
        for candidate in self.points:
            if candidate.label == label:
                return candidate
        raise KeyError(f"no sweep point labelled {label!r}")

    def labels(self) -> List[str]:
        return [point.label for point in self.points]

    def table(self, metrics: Sequence[str]) -> List[Dict[str, Any]]:
        """One row per point with the mean of each requested metric."""
        rows = []
        for point in self.points:
            row: Dict[str, Any] = {"label": point.label, **point.parameters}
            row["runs"] = len(point.results)
            row["termination_rate"] = point.termination_rate()
            for metric in metrics:
                row[metric] = point.summary(metric).mean
            rows.append(row)
        return rows


def repeat(
    config: ExperimentConfig,
    seeds: Sequence[int],
    check: bool = True,
    max_workers: Optional[int] = None,
) -> List[RunResult]:
    """Run ``config`` once per seed, asserting properties when ``check``.

    Seed repetitions fan out over the parallel engine; the result list is
    always in seed order and identical to a serial execution.
    """
    return run_seeds(config, seeds, check=check, max_workers=max_workers)


def sweep(
    base_config: ExperimentConfig,
    variations: Mapping[str, Mapping[str, Any]],
    seeds: Sequence[int],
    check: bool = True,
    max_workers: Optional[int] = None,
) -> SweepResult:
    """Run every named variation of ``base_config`` under every seed.

    ``variations`` maps a label to the set of :class:`ExperimentConfig`
    field overrides that define the point, e.g.::

        sweep(base, {
            "hybrid": {"algorithm": "hybrid-local-coin"},
            "ben-or": {"algorithm": "ben-or"},
        }, seeds=range(20))

    All point x seed combinations are fanned out through one parallel batch
    so workers stay busy across point boundaries.
    """
    points = [
        (label, dict(overrides), replace(base_config, **overrides))
        for label, overrides in variations.items()
    ]
    return _run_points(points, seeds, check=check, max_workers=max_workers)


def grid(
    base_config: ExperimentConfig,
    axes: Mapping[str, Sequence[Any]],
    seeds: Sequence[int],
    label_format: Optional[Callable[[Dict[str, Any]], str]] = None,
    check: bool = True,
    max_workers: Optional[int] = None,
) -> SweepResult:
    """Cartesian-product sweep over several config fields.

    ``axes`` maps field names to the values to try; every combination is run
    under every seed.  Labels default to ``field=value`` pairs joined by
    commas.  As with :func:`sweep`, the whole grid is one parallel batch.
    """
    points = []
    names = list(axes)
    for combination in itertools.product(*(axes[name] for name in names)):
        overrides = dict(zip(names, combination))
        label = (
            label_format(overrides)
            if label_format is not None
            else ", ".join(f"{name}={_short(value)}" for name, value in overrides.items())
        )
        points.append((label, overrides, replace(base_config, **overrides)))
    return _run_points(points, seeds, check=check, max_workers=max_workers)


def _run_points(
    points: Sequence[Tuple[str, Dict[str, Any], ExperimentConfig]],
    seeds: Sequence[int],
    check: bool,
    max_workers: Optional[int],
) -> SweepResult:
    """Run every (point, seed) combination in one batch, then regroup by point."""
    configs = [config.with_seed(seed) for _, _, config in points for seed in seeds]
    runs = run_many(configs, max_workers=max_workers, check=check)
    result = SweepResult()
    per_point = len(seeds)
    for index, (label, parameters, _) in enumerate(points):
        chunk = runs[index * per_point : (index + 1) * per_point]
        result.points.append(SweepPoint(label=label, parameters=parameters, results=chunk))
    return result


def _short(value: Any) -> str:
    text = getattr(value, "describe", None)
    if callable(text):
        return text()
    return str(value)
