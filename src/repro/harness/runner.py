"""The experiment runner: wire substrates and algorithms, run, verify, measure.

``run_consensus(ExperimentConfig(...))`` is the single entry point used by
the examples, the integration tests and the benchmark harness.  It builds a
seeded simulation (network, cluster memories, coins), instantiates one
algorithm object per process, installs the crash pattern, runs the kernel to
completion, checks the consensus properties and returns the collected
metrics.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from ..adversary.adaptive import build_adversary
from ..adversary.scenario import Scenario
from ..baselines.ben_or import BenOrConsensus
from ..baselines.mp_common_coin import MessagePassingCommonCoinConsensus
from ..baselines.shared_memory_only import SharedMemoryConsensus
from ..cluster.failures import FailurePattern
from ..cluster.topology import ClusterTopology
from ..coins.common import CommonCoin
from ..coins.local import LocalCoin
from ..core.base import ProcessEnvironment
from ..core.common_coin import CommonCoinConsensus
from ..core.local_coin import LocalCoinConsensus
from ..core.properties import PropertyReport, verify_run
from ..mm.consensus import MMConsensus
from ..mm.domain import SharedMemoryDomain
from ..mm.memory import build_mm_memories
from ..network.delays import DelayModel, UniformDelay
from ..network.transport import Network
from ..sharedmem.memory import ClusterSharedMemory, build_cluster_memories
from ..sim.kernel import SimConfig, SimulationKernel, SimulationResult
from ..sim.rng import RandomSource
from .metrics import RunMetrics, collect_metrics
from .workloads import ProposalSpec, resolve_proposals

#: Algorithms runnable through the harness, with their requirements.
ALGORITHMS = (
    "hybrid-local-coin",
    "hybrid-common-coin",
    "ben-or",
    "mp-common-coin",
    "shared-memory",
    "mm-local-coin",
)

#: Algorithms whose termination only needs the paper's cluster condition.
_CLUSTER_CONDITION_ALGORITHMS = {"hybrid-local-coin", "hybrid-common-coin"}
#: Algorithms that need a strict majority of correct processes.
_MAJORITY_ALGORITHMS = {"ben-or", "mp-common-coin", "mm-local-coin"}


@dataclass
class ExperimentConfig:
    """Everything needed to reproduce one consensus run."""

    topology: ClusterTopology
    algorithm: str = "hybrid-local-coin"
    proposals: ProposalSpec = "split"
    failure_pattern: FailurePattern = field(default_factory=FailurePattern.none)
    seed: int = 0
    delay_model: DelayModel = field(default_factory=UniformDelay)
    sim: SimConfig = field(default_factory=SimConfig)
    consensus_kind: str = "cas"
    mm_domain: Optional[SharedMemoryDomain] = None
    #: Optional fault-injection scenario (see :mod:`repro.adversary`).  Plain
    #: declarative data: it is pickled to workers and its repr enters sweep
    #: plan fingerprints, so adversarial sweeps shard and merge bit-identically.
    scenario: Optional[Scenario] = None
    tag: Optional[str] = None

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {self.algorithm!r}; choose from {ALGORITHMS}")

    def with_seed(self, seed: int) -> "ExperimentConfig":
        """A copy of this configuration with a different master seed."""
        return replace(self, seed=seed)


@dataclass
class RunResult:
    """The outcome of one :func:`run_consensus` call."""

    config: ExperimentConfig
    proposals: Dict[int, int]
    sim_result: SimulationResult
    metrics: RunMetrics
    report: PropertyReport
    memories: List[ClusterSharedMemory] = field(default_factory=list)

    @property
    def decided_value(self) -> Optional[int]:
        """The decided value, or ``None`` when no process decided."""
        return self.metrics.decided_value

    @property
    def terminated(self) -> bool:
        """Whether every correct process decided."""
        return self.metrics.terminated


def termination_expected(
    algorithm: str,
    topology: ClusterTopology,
    failure_pattern: FailurePattern,
    scenario: Optional[Scenario] = None,
) -> bool:
    """Whether the algorithm is *expected* to terminate under this pattern.

    Hybrid algorithms need the paper's cluster condition; pure message-passing
    algorithms (and the m&m analogue) need a strict majority of correct
    processes; the single-cluster shared-memory baseline only needs one
    correct process.  A fault-injection ``scenario`` that can lose messages
    (omission, dropping partitions) breaks the reliable-channel assumption,
    so termination stops being expected; liveness-preserving scenarios
    (delays, duplication, crash-recovery) keep the guarantee.
    """
    if scenario is not None and not scenario.liveness_preserving:
        return False
    correct = failure_pattern.correct(topology.n)
    if not correct:
        return False
    if algorithm in _CLUSTER_CONDITION_ALGORITHMS:
        return topology.termination_condition_holds(correct)
    if algorithm in _MAJORITY_ALGORITHMS:
        return topology.is_majority(len(correct))
    if algorithm == "shared-memory":
        return True
    raise ValueError(f"unknown algorithm {algorithm!r}")


def _build_algorithm(
    config: ExperimentConfig,
    pid: int,
    proposal: int,
    memories: Sequence[ClusterSharedMemory],
    mm_memories,
    mm_domain,
    local_coins: Mapping[int, LocalCoin],
    common_coin: Optional[CommonCoin],
):
    topology = config.topology
    cluster_memory = memories[topology.cluster_index_of(pid)] if memories else None
    env = ProcessEnvironment(
        pid=pid,
        proposal=proposal,
        topology=topology,
        memory=cluster_memory,
        local_coin=local_coins.get(pid),
        common_coin=common_coin,
    )
    tag = config.tag
    if config.algorithm == "hybrid-local-coin":
        return LocalCoinConsensus(env, tag)
    if config.algorithm == "hybrid-common-coin":
        return CommonCoinConsensus(env, tag)
    if config.algorithm == "ben-or":
        env.memory = None
        return BenOrConsensus(env, tag)
    if config.algorithm == "mp-common-coin":
        env.memory = None
        return MessagePassingCommonCoinConsensus(env, tag)
    if config.algorithm == "shared-memory":
        return SharedMemoryConsensus(env, tag)
    if config.algorithm == "mm-local-coin":
        env.memory = None
        return MMConsensus(env, mm_domain, mm_memories, tag)
    raise ValueError(f"unknown algorithm {config.algorithm!r}")  # pragma: no cover


@dataclass
class PreparedRun:
    """A fully wired consensus run whose kernel has not been stepped yet.

    The seam the cooperative multi-kernel host needs: *build* (network,
    memories, coins, processes, failure pattern, adversary) is split from
    *execute* so the host can drive :meth:`~repro.sim.kernel.SimulationKernel.run_batch`
    itself, then hand the terminal result to :meth:`finalize` for the same
    metrics collection and property verification the serial path performs.
    ``prepare -> kernel.run() -> finalize`` is exactly :func:`run_consensus`.
    """

    config: ExperimentConfig
    kernel: SimulationKernel
    network: Network
    proposals: Dict[int, int]
    memories: List[ClusterSharedMemory]

    def finalize(self, sim_result: SimulationResult, wall_time_seconds: float) -> RunResult:
        """Collect metrics and verify properties for a finished kernel run."""
        config = self.config
        topology = config.topology
        metrics = collect_metrics(
            algorithm=config.algorithm,
            seed=config.seed,
            topology=topology,
            result=sim_result,
            network=self.network,
            memories=self.memories,
            wall_time_seconds=wall_time_seconds,
            delay_model=config.delay_model.describe(),
            scenario=config.scenario.name if config.scenario is not None else "none",
        )
        expected = termination_expected(
            config.algorithm, topology, config.failure_pattern, config.scenario
        )
        report = verify_run(
            sim_result, self.proposals, topology, termination_expected=expected
        )
        return RunResult(
            config=config,
            proposals=self.proposals,
            sim_result=sim_result,
            metrics=metrics,
            report=report,
            memories=self.memories,
        )


def prepare_consensus(
    config: ExperimentConfig,
    local_coin_factory: Optional[Callable[[int], LocalCoin]] = None,
    common_coin: Optional[CommonCoin] = None,
) -> PreparedRun:
    """Build one consensus run -- substrates, coins, processes -- without running it.

    ``local_coin_factory`` / ``common_coin`` override the seeded default
    coins -- the hook the adversarial-coin robustness tests use to hand the
    algorithms pathological coins (stuck, opposing) while keeping the rest
    of the harness identical.  They are test-only knobs and deliberately not
    part of :class:`ExperimentConfig` (they would not belong in a sweep-plan
    fingerprint).
    """
    topology = config.topology
    rng = RandomSource(config.seed)
    kernel = SimulationKernel(config=config.sim, rng=rng)
    network = Network(topology.n, delay_model=config.delay_model, rng=rng)
    kernel.attach_network(network)

    proposals = resolve_proposals(config.proposals, topology.n, rng.stream("proposals"))

    needs_cluster_memory = config.algorithm in ("hybrid-local-coin", "hybrid-common-coin", "shared-memory")
    memories: List[ClusterSharedMemory] = (
        build_cluster_memories(topology, config.consensus_kind) if needs_cluster_memory else []
    )

    mm_domain = None
    mm_memories = None
    if config.algorithm == "mm-local-coin":
        mm_domain = config.mm_domain or SharedMemoryDomain.from_cluster_topology(topology)
        mm_memories = build_mm_memories(mm_domain, config.consensus_kind)

    needs_local_coin = config.algorithm in ("hybrid-local-coin", "ben-or", "mm-local-coin")
    local_coins: Dict[int, LocalCoin] = {}
    if needs_local_coin:
        if local_coin_factory is not None:
            local_coins = {pid: local_coin_factory(pid) for pid in topology.process_ids()}
        else:
            local_coins = {
                pid: LocalCoin(rng.stream("local-coin", pid)) for pid in topology.process_ids()
            }

    needs_common_coin = config.algorithm in ("hybrid-common-coin", "mp-common-coin")
    if needs_common_coin and common_coin is None:
        common_coin = CommonCoin(seed=config.seed)
    if not needs_common_coin:
        common_coin = None

    for pid in topology.process_ids():
        algorithm = _build_algorithm(
            config, pid, proposals[pid], memories, mm_memories, mm_domain, local_coins, common_coin
        )
        kernel.add_process(pid, algorithm.run)

    config.failure_pattern.install(kernel)
    if config.scenario is not None:
        kernel.install_adversary(build_adversary(config.scenario, rng.stream("adversary")))

    all_memories: List[ClusterSharedMemory] = list(memories)
    if mm_memories:
        all_memories.extend(mm_memories.values())

    return PreparedRun(
        config=config,
        kernel=kernel,
        network=network,
        proposals=proposals,
        memories=all_memories,
    )


def run_consensus(
    config: ExperimentConfig,
    local_coin_factory: Optional[Callable[[int], LocalCoin]] = None,
    common_coin: Optional[CommonCoin] = None,
) -> RunResult:
    """Run one consensus instance end to end and verify its properties.

    ``prepare -> run -> finalize`` over :func:`prepare_consensus`; only the
    wall-clock measurement (deliberately excluded from summaries, being the
    one nondeterministic metric) lives here.  See :func:`prepare_consensus`
    for the coin-override knobs.
    """
    prepared = prepare_consensus(
        config, local_coin_factory=local_coin_factory, common_coin=common_coin
    )
    started = _time.perf_counter()
    sim_result = prepared.kernel.run()
    wall = _time.perf_counter() - started
    return prepared.finalize(sim_result, wall)


def run_seeds(
    config: ExperimentConfig,
    seeds: Sequence[int],
    check: bool = True,
    max_workers: Optional[int] = None,
    reducer: Optional[Callable[["RunResult", int], Any]] = None,
    chunksize: Optional[int] = None,
) -> List[Any]:
    """Run the same configuration under several seeds.

    With ``check`` (the default) every run's safety properties are asserted,
    and termination is asserted whenever it is expected for the algorithm and
    crash pattern.  Repetitions fan out over the parallel engine; results
    come back in seed order, identical to a serial execution.  A ``reducer``
    (see :mod:`~repro.harness.aggregate`) is applied worker-side, so only its
    compact output crosses the process pipe — the returned list then holds
    the reduced values instead of full :class:`RunResult` objects.
    """
    from .parallel import run_many  # imported late: parallel imports this module

    configs = [config.with_seed(seed) for seed in seeds]
    return run_many(configs, max_workers=max_workers, check=check, reducer=reducer, chunksize=chunksize)
