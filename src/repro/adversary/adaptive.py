"""Adaptive adversary strategies: fault decisions conditioned on kernel state.

The declarative primitives in :mod:`~repro.adversary.faults` flip seeded
coins without looking at the execution; the strategies here instead watch
the run through the kernel hooks the base :class:`~.scenario.Adversary`
already has -- :meth:`~.scenario.Adversary.defer` sees every event (with
its full message) at dispatch time -- and pick their targets from what the
protocol is actually doing:

* :class:`DelayPivotal` -- defer exactly the delivery that would complete a
  blocked process's wait (the message that would push a ``msg_exchange``
  past its majority quorum), probing each pending delivery against the
  receiver's wait predicate.
* :class:`TargetCoin` -- attack the exchange that feeds the round's coin
  flip.  The paper's coins are *local* objects (no coin value is ever
  broadcast), so there is no coin message to intercept; what the strategy
  can and does attack is the estimate exchange that determines what the
  processes adopt around the flip: deliveries carrying the currently
  *leading* estimate of their ``(tag, round, phase)`` instance are delayed
  (or omitted outright in ``"omit"`` mode), maximising disagreement
  pressure right where the coin is supposed to break symmetry.
* :class:`SplitRounds` -- keep two process groups about one round apart:
  deliveries from the group that is ahead (by observed round number) into
  the group that lags are deferred, so the groups progress out of phase
  without any message being lost.

All three are frozen dataclasses of plain values, registered through
:func:`~.faults.register_fault_type`: they pickle, hash, and carry stable
value-only ``repr``\\ s, so adaptive scenarios enter sweep-plan fingerprints
and shard/steal/coop merges stay bit-identical -- the adaptive decisions
themselves draw no randomness at all (they are pure functions of observed
state), which makes that determinism trivial rather than delicate.

:func:`build_adversary` is the engine factory the harness uses: scenarios
composed purely of declarative primitives get the base engine, scenarios
holding any adaptive strategy get an :class:`AdaptiveAdversary`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..sim.events import Event, MessageDelivery
from ..sim.process import ProcessState
from .faults import (
    MessageCorruption,
    _check_window,
    _normalised_pids,
    register_fault_type,
)
from .scenario import Adversary, Scenario

_INF = math.inf


def _check_strategy(extra_delay: float, max_deferrals: int) -> None:
    if extra_delay <= 0:
        raise ValueError(f"extra_delay must be > 0, got {extra_delay}")
    if max_deferrals < 1:
        raise ValueError(f"max_deferrals must be >= 1, got {max_deferrals}")


@dataclass(frozen=True)
class DelayPivotal:
    """Defer the delivery that would complete the receiver's pending wait.

    At each dispatch of a message delivery, the strategy probes the
    receiver: if it is blocked and its wait predicate is unsatisfied by the
    current mailbox but *would* be satisfied with this message appended,
    the delivery is pivotal -- typically the vote that completes a
    ``msg_exchange`` majority -- and is postponed by ``extra_delay``.  Each
    delivery is deferred at most ``max_deferrals`` times and then released,
    so every message still arrives: the strategy stretches every quorum to
    its last possible moment without ever breaking liveness.
    """

    extra_delay: float = 2.0
    max_deferrals: int = 8
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        _check_strategy(self.extra_delay, self.max_deferrals)
        _check_window(self.start, self.end)

    @property
    def liveness_preserving(self) -> bool:
        """Bounded deferrals only delay the quorum, never prevent it."""
        return True


#: The two TargetCoin attack modes.
TARGET_COIN_MODES = ("delay", "omit")


@dataclass(frozen=True)
class TargetCoin:
    """Attack the estimate exchange feeding the round's coin flip.

    The coins of the paper (and of this reproduction) are local objects:
    no process ever broadcasts its coin value, so an adversary cannot
    literally intercept "the common-coin broadcast".  What it *can* do --
    and what this strategy does -- is suppress the information the coin is
    meant to complement: deliveries whose payload carries the currently
    leading estimate of their ``(tag, round, phase)`` instance (the value
    the exchange is converging on, as counted from deliveries observed so
    far) are delayed by ``extra_delay`` in ``"delay"`` mode, or dropped in
    ``"omit"`` mode.  Ties between estimates leave no unique leader and
    nothing is faulted, so the strategy stays fully deterministic.
    """

    mode: str = "delay"
    extra_delay: float = 2.0
    max_deferrals: int = 8
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.mode not in TARGET_COIN_MODES:
            raise ValueError(
                f"unknown TargetCoin mode {self.mode!r}; choose from {TARGET_COIN_MODES}"
            )
        _check_strategy(self.extra_delay, self.max_deferrals)
        _check_window(self.start, self.end)

    @property
    def liveness_preserving(self) -> bool:
        """Delaying preserves every delivery; omitting loses messages."""
        return self.mode == "delay"


@dataclass(frozen=True)
class SplitRounds:
    """Keep two process groups progressing about one round apart.

    The strategy tracks, per group, the highest round number observed in
    any delivered payload sent by a group member.  A delivery crossing
    from the group that is *ahead* into a group that lags is deferred by
    ``extra_delay`` (at most ``max_deferrals`` times), so the lagging
    group keeps working its older round undisturbed -- the groups stay out
    of phase without a single message being lost.
    """

    groups: Tuple[Tuple[int, ...], ...]
    extra_delay: float = 2.0
    max_deferrals: int = 8

    def __post_init__(self) -> None:
        _check_strategy(self.extra_delay, self.max_deferrals)
        if len(self.groups) < 2:
            raise ValueError("a round split needs at least two groups")
        groups = tuple(_normalised_pids(group, "split group") for group in self.groups)
        seen: set = set()
        for group in groups:
            if not group:
                raise ValueError("split groups must be non-empty")
            overlap = seen.intersection(group)
            if overlap:
                raise ValueError(f"split groups must be disjoint; {sorted(overlap)} repeated")
            seen.update(group)
        object.__setattr__(self, "groups", groups)

    def touched_pids(self) -> Tuple[int, ...]:
        """Every pid named by the split groups."""
        return tuple(pid for group in self.groups for pid in group)

    @property
    def liveness_preserving(self) -> bool:
        """Bounded deferrals desynchronise the groups but starve nobody."""
        return True


#: The adaptive strategy primitives (handled only by AdaptiveAdversary).
ADAPTIVE_FAULT_TYPES = (DelayPivotal, TargetCoin, SplitRounds)

for _fault_type in ADAPTIVE_FAULT_TYPES:
    register_fault_type(_fault_type)


class AdaptiveAdversary(Adversary):
    """The state-observing engine for scenarios with adaptive strategies.

    Extends the base engine's dispatch-time :meth:`defer` verdict: message
    deliveries are first observed (estimate counts per exchange instance,
    per-group round progress), then offered to the adaptive strategies in a
    fixed order -- delay-pivotal, target-coin, split-rounds -- and the
    first strategy that wants the event wins.  A finite verdict re-queues
    the delivery (the kernel offers it again later, and per-event deferral
    counts bound how often); an infinite verdict drops it at dispatch,
    which the kernel accounts as an omission.

    No adaptive decision draws randomness: verdicts are pure functions of
    the observed execution, so identical schedules produce identical
    faults in any execution mode, and the base engine's seeded stream is
    consumed exactly as a non-adaptive run would consume it.
    """

    def __init__(self, scenario: Scenario, rng: random.Random) -> None:
        # The strategy buckets must exist before the base constructor walks
        # the scenario's faults (it hands unknown primitives to
        # _bucket_extra, which fills these).
        self._delay_pivotal: List[DelayPivotal] = []
        self._target_coins: List[TargetCoin] = []
        self._split_rounds: List[SplitRounds] = []
        super().__init__(scenario, rng)
        self._adaptive = bool(
            self._delay_pivotal or self._target_coins or self._split_rounds
        )
        if self._adaptive:
            # Force the kernel to offer every event to defer() even when no
            # declarative slowdown is present.
            self._defers_events = True
        #: id(event) -> times this delivery has been adaptively deferred.
        #: Safe to key on identity: the kernel's _deferred table pins the
        #: event object alive for exactly as long as our entry exists.
        self._defer_counts: Dict[int, int] = {}
        #: (tag, round, phase) -> {est: observed deliveries carrying it}.
        self._est_counts: Dict[tuple, Dict[object, int]] = {}
        #: split-group index -> highest round number observed from it.
        self._group_rounds: Dict[int, int] = {}
        self._group_of: Dict[int, int] = {}
        for fault in self._split_rounds:
            for index, group in enumerate(fault.groups):
                for pid in group:
                    self._group_of[pid] = index
        #: Every adaptive intervention, as ``(now, strategy, action,
        #: sender, dest)`` tuples (action is "defer" or "omit") -- the
        #: inspectable trace the strategy unit tests assert against.
        self.deferral_log: List[Tuple[float, str, str, int, int]] = []

    def _bucket_extra(self, fault) -> bool:
        for fault_type, bucket in (
            (DelayPivotal, self._delay_pivotal),
            (TargetCoin, self._target_coins),
            (SplitRounds, self._split_rounds),
        ):
            if isinstance(fault, fault_type):
                bucket.append(fault)
                return True
        return False

    # --------------------------------------------------- dispatch-time verdict
    def defer(self, event: Event, now: float) -> float:
        """Declarative slowdowns first, then the adaptive strategies."""
        extra = Adversary.defer(self, event, now)
        if extra > 0.0:
            return extra
        if not self._adaptive or type(event) is not MessageDelivery:
            return 0.0
        message = event.message
        payload = getattr(message, "payload", None)
        counts = self._defer_counts
        key = id(event)
        count = counts.get(key)
        if count is None:
            # First offer of this delivery: fold it into the observed state
            # exactly once, no matter how often it is subsequently deferred.
            count = 0
            self._observe(message, payload)
        verdict, strategy = self._strategy_verdict(event, message, payload, now, count)
        if verdict == 0.0:
            counts.pop(key, None)
            return 0.0
        sender = getattr(message, "sender", -1)
        if verdict == _INF:
            counts.pop(key, None)
            self.deferral_log.append((now, strategy, "omit", sender, event.pid))
            return verdict
        counts[key] = count + 1
        self.deferral_log.append((now, strategy, "defer", sender, event.pid))
        return verdict

    # ------------------------------------------------------------- observation
    def _observe(self, message, payload) -> None:
        """Fold one dispatched delivery into the observed protocol state.

        Duck-typed over the algorithm payloads: anything carrying ``est``
        (phase messages) feeds the estimate counts; anything carrying
        ``round_number`` advances its sender's group round.  Foreign
        payloads (including tampered wrappers) contribute nothing.
        """
        est = getattr(payload, "est", None)
        if est is not None:
            instance = (
                getattr(payload, "tag", None),
                getattr(payload, "round_number", 0),
                getattr(payload, "phase", 0),
            )
            bucket = self._est_counts.setdefault(instance, {})
            bucket[est] = bucket.get(est, 0) + 1
        if self._group_of:
            round_number = getattr(payload, "round_number", None)
            if round_number is not None:
                group = self._group_of.get(getattr(message, "sender", -1))
                if group is not None and round_number > self._group_rounds.get(group, -1):
                    self._group_rounds[group] = round_number

    # -------------------------------------------------------------- strategies
    def _strategy_verdict(
        self, event, message, payload, now: float, count: int
    ) -> Tuple[float, str]:
        """The first adaptive strategy that wants this delivery, in order."""
        for pivotal in self._delay_pivotal:
            if (
                pivotal.start <= now < pivotal.end
                and count < pivotal.max_deferrals
                and self._is_pivotal(event)
            ):
                return pivotal.extra_delay, "delay-pivotal"
        for coin in self._target_coins:
            if not coin.start <= now < coin.end:
                continue
            if not self._carries_leading_est(payload):
                continue
            if coin.mode == "omit":
                return _INF, "target-coin"
            if count < coin.max_deferrals:
                return coin.extra_delay, "target-coin"
        for split in self._split_rounds:
            if count < split.max_deferrals and self._crosses_into_lagging_group(
                message, event.pid
            ):
                return split.extra_delay, "split-rounds"
        return 0.0, ""

    def _is_pivotal(self, event) -> bool:
        """Whether delivering ``event`` now would complete a pending wait.

        A pure probe: the receiver's wait predicate is evaluated against
        its current mailbox and against a copy with this message appended;
        neither call mutates anything (predicates are required to be pure
        -- the kernel itself re-evaluates them freely).
        """
        proc = self._kernel.process(event.pid)
        if proc.paused or proc.state is not ProcessState.BLOCKED:
            return False
        predicate = proc.wait_predicate
        if predicate is None:
            return False
        mailbox = proc.mailbox
        if predicate(mailbox) is not None:
            return False
        return predicate(list(mailbox) + [event.message]) is not None

    def _carries_leading_est(self, payload) -> bool:
        """Whether ``payload`` carries the unique leading estimate so far."""
        est = getattr(payload, "est", None)
        if est not in (0, 1):
            return False
        instance = (
            getattr(payload, "tag", None),
            getattr(payload, "round_number", 0),
            getattr(payload, "phase", 0),
        )
        bucket = self._est_counts.get(instance)
        if not bucket:
            return False
        best = max(bucket.values())
        leaders = [value for value, seen in bucket.items() if seen == best]
        return len(leaders) == 1 and leaders[0] == est

    def _crosses_into_lagging_group(self, message, dest: int) -> bool:
        """Whether this delivery flows from a leading into a lagging group."""
        groups = self._group_of
        sender_group = groups.get(getattr(message, "sender", -1))
        if sender_group is None:
            return False
        dest_group = groups.get(dest)
        if dest_group is None or dest_group == sender_group:
            return False
        rounds = self._group_rounds
        return rounds.get(sender_group, -1) > rounds.get(dest_group, -1)


def build_adversary(scenario: Scenario, rng: random.Random) -> Adversary:
    """The engine factory: adaptive scenarios get the observing engine.

    Scenarios composed purely of declarative primitives keep the base
    :class:`~.scenario.Adversary` (and its exact per-event cost); any
    adaptive strategy in the composition selects
    :class:`AdaptiveAdversary`, which handles both kinds side by side.
    """
    if any(isinstance(fault, ADAPTIVE_FAULT_TYPES) for fault in scenario.faults):
        return AdaptiveAdversary(scenario, rng)
    return Adversary(scenario, rng)


# --------------------------------------------------------------------- library
#: The adaptive scenario registry: ``builder(n, intensity) -> Scenario``.
#: Deliberately separate from the declarative registry in
#: :mod:`~repro.adversary.library` -- e9 sweeps that registry wholesale, so
#: adding names there would silently change e9's sweep plan (and void its
#: fingerprints).  Experiment e10 sweeps this one instead.
_ADAPTIVE_REGISTRY: Dict[str, Callable[[int, float], Scenario]] = {}


def register_adaptive_scenario(name: str, builder: Callable[[int, float], Scenario]) -> None:
    """Add a named adaptive builder (refusing duplicate names)."""
    if name in _ADAPTIVE_REGISTRY:
        raise ValueError(f"adaptive scenario {name!r} is already registered")
    _ADAPTIVE_REGISTRY[name] = builder


def adaptive_scenario_names() -> List[str]:
    """Every registered adaptive scenario name, sorted."""
    return sorted(_ADAPTIVE_REGISTRY)


def build_adaptive_scenario(name: str, n: int, intensity: float = 0.2) -> Scenario:
    """Instantiate the named adaptive scenario for an ``n``-process system.

    Mirrors :func:`~repro.adversary.library.build_scenario`: ``intensity``
    in ``[0, 1]`` scales strategy aggressiveness (deferral magnitudes and
    budgets, corruption probability), and 0 yields a behaviourally
    fault-free scenario.
    """
    try:
        builder = _ADAPTIVE_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown adaptive scenario {name!r}; choose from {adaptive_scenario_names()}"
        ) from None
    if n < 2:
        raise ValueError(f"adaptive scenarios need at least 2 processes, got n={n}")
    if not 0.0 <= intensity <= 1.0:
        raise ValueError(f"intensity must be in [0, 1], got {intensity}")
    return builder(n, intensity)


def _budget(intensity: float) -> int:
    """Deferral budget scaling: 1 at the mildest, 8 at full intensity."""
    return 1 + int(7 * intensity)


def _split_halves(n: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Two non-empty contiguous groups (majority first), as in the library."""
    cut = min(n - 1, n // 2 + 1)
    return tuple(range(cut)), tuple(range(cut, n))


def _delay_pivotal(n: int, intensity: float) -> Scenario:
    if intensity == 0.0:
        return Scenario("delay-pivotal", ())
    return Scenario(
        "delay-pivotal",
        (DelayPivotal(extra_delay=5.0 * intensity, max_deferrals=_budget(intensity)),),
    )


def _target_coin(n: int, intensity: float) -> Scenario:
    if intensity == 0.0:
        return Scenario("target-coin", ())
    return Scenario(
        "target-coin",
        (
            TargetCoin(
                mode="delay", extra_delay=5.0 * intensity, max_deferrals=_budget(intensity)
            ),
        ),
    )


def _target_coin_omit(n: int, intensity: float) -> Scenario:
    if intensity == 0.0:
        return Scenario("target-coin-omit", ())
    return Scenario(
        "target-coin-omit",
        (TargetCoin(mode="omit", extra_delay=5.0 * intensity, max_deferrals=_budget(intensity)),),
    )


def _split_rounds(n: int, intensity: float) -> Scenario:
    if intensity == 0.0:
        return Scenario("split-rounds", ())
    return Scenario(
        "split-rounds",
        (
            SplitRounds(
                groups=_split_halves(n),
                extra_delay=5.0 * intensity,
                max_deferrals=_budget(intensity),
            ),
        ),
    )


def _byzantine_tamper(n: int, intensity: float) -> Scenario:
    """Authenticated payload corruption: tampering degrades to omission.

    Unauthenticated corruption is deliberately *not* a sweep scenario --
    forged payloads can derail the protocol into an invariant violation
    (that is the point of modelling them), which would kill sweep workers
    instead of producing rows.  The tests exercise it directly.
    """
    if intensity == 0.0:
        return Scenario("byzantine-tamper", ())
    return Scenario(
        "byzantine-tamper",
        (MessageCorruption(probability=intensity, authenticated=True),),
    )


for _name, _builder in (
    ("delay-pivotal", _delay_pivotal),
    ("target-coin", _target_coin),
    ("target-coin-omit", _target_coin_omit),
    ("split-rounds", _split_rounds),
    ("byzantine-tamper", _byzantine_tamper),
):
    register_adaptive_scenario(_name, _builder)


__all__ = [
    "ADAPTIVE_FAULT_TYPES",
    "AdaptiveAdversary",
    "DelayPivotal",
    "SplitRounds",
    "TargetCoin",
    "adaptive_scenario_names",
    "build_adaptive_scenario",
    "build_adversary",
    "register_adaptive_scenario",
]
