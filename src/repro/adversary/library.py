"""The named scenario registry: CLI-referencable, fingerprintable scenarios.

Each entry is a builder ``(n, intensity) -> Scenario`` so the same name
yields a concrete scenario for any system size, with one ``intensity`` knob
in ``[0, 1]`` scaling how hard the adversary hits (drop probabilities,
window lengths, slowdown magnitudes).  Experiment e9 sweeps the registry
over intensities; ``python -m repro run e9 --scenario <name>`` restricts it
to one entry.

Every library scenario must keep the safety half of the paper's guarantees
intact -- agreement and validity at 100% is what e9 (and the
``examples/adversary_tour.py`` smoke gate) assert.  Builders that lose
messages (``lossy-links``, ``partition-drop``, ``chaos``) void the
termination guarantee; the others are liveness-preserving.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .faults import (
    CrashRecovery,
    MessageDuplication,
    MessageOmission,
    MessageReordering,
    Outage,
    PartitionWindow,
    ProcessSlowdown,
)
from .scenario import Scenario

#: A registry entry: ``builder(n, intensity) -> Scenario``.
ScenarioBuilder = Callable[[int, float], Scenario]

_REGISTRY: Dict[str, ScenarioBuilder] = {}


def register_scenario(name: str, builder: ScenarioBuilder) -> None:
    """Add a named builder to the registry (refusing duplicate names)."""
    if name in _REGISTRY:
        raise ValueError(f"scenario {name!r} is already registered")
    _REGISTRY[name] = builder


def scenario_names() -> List[str]:
    """Every registered scenario name, sorted."""
    return sorted(_REGISTRY)


def build_scenario(name: str, n: int, intensity: float = 0.2) -> Scenario:
    """Instantiate the named scenario for an ``n``-process system.

    ``intensity`` in ``[0, 1]`` scales the scenario's severity; 0 yields a
    scenario whose faults are as mild as the primitives allow (windows of
    minimal length, probabilities of 0), which for every library entry is
    behaviourally fault-free.
    """
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {scenario_names()}"
        ) from None
    if n < 2:
        raise ValueError(f"library scenarios need at least 2 processes, got n={n}")
    if not 0.0 <= intensity <= 1.0:
        raise ValueError(f"intensity must be in [0, 1], got {intensity}")
    return builder(n, intensity)


def _minority(n: int) -> List[int]:
    """The largest set of low pids that is *not* a strict majority of ``n``."""
    return list(range(n // 2))


def _halves(n: int):
    """Split ``0..n-1`` into two non-empty contiguous groups (majority first)."""
    cut = min(n - 1, n // 2 + 1)
    return tuple(range(cut)), tuple(range(cut, n))


def _none(n: int, intensity: float) -> Scenario:
    return Scenario("none", ())


def _lossy_links(n: int, intensity: float) -> Scenario:
    if intensity == 0.0:
        return Scenario("lossy-links", ())
    return Scenario("lossy-links", (MessageOmission(probability=intensity),))


def _duplication_storm(n: int, intensity: float) -> Scenario:
    if intensity == 0.0:
        return Scenario("duplication-storm", ())
    return Scenario("duplication-storm", (MessageDuplication(probability=intensity, copies=2),))


def _reorder_heavy(n: int, intensity: float) -> Scenario:
    if intensity == 0.0:
        return Scenario("reorder-heavy", ())
    return Scenario(
        "reorder-heavy", (MessageReordering(probability=intensity, inflation=10.0),)
    )


def _partition_heal(n: int, intensity: float) -> Scenario:
    if intensity == 0.0:
        return Scenario("partition-heal", ())
    left, right = _halves(n)
    window = PartitionWindow(
        groups=(left, right), start=1.0, end=1.0 + 30.0 * intensity, mode="heal"
    )
    return Scenario("partition-heal", (window,))


def _partition_drop(n: int, intensity: float) -> Scenario:
    if intensity == 0.0:
        return Scenario("partition-drop", ())
    left, right = _halves(n)
    window = PartitionWindow(
        groups=(left, right), start=1.0, end=1.0 + 30.0 * intensity, mode="drop"
    )
    return Scenario("partition-drop", (window,))


def _slow_minority(n: int, intensity: float) -> Scenario:
    victims = _minority(n)
    if not victims or intensity == 0.0:
        return Scenario("slow-minority", ())
    return Scenario(
        "slow-minority", (ProcessSlowdown(pids=tuple(victims), extra_delay=5.0 * intensity),)
    )


def _crash_recovery(n: int, intensity: float) -> Scenario:
    victims = _minority(n)
    if not victims or intensity == 0.0:
        return Scenario("crash-recovery", ())
    outages = tuple(
        Outage(pid=pid, down_at=1.0 + 0.5 * index, up_at=1.5 + 0.5 * index + 20.0 * intensity)
        for index, pid in enumerate(victims)
    )
    return Scenario("crash-recovery", (CrashRecovery(outages),))


def _chaos(n: int, intensity: float) -> Scenario:
    """Everything at once (scaled down so runs still end quickly)."""
    if intensity == 0.0:
        return Scenario("chaos", ())
    left, right = _halves(n)
    faults = [
        MessageReordering(probability=intensity / 2, inflation=5.0),
        PartitionWindow(groups=(left, right), start=2.0, end=2.0 + 10.0 * intensity),
        MessageOmission(probability=intensity / 2),
        MessageDuplication(probability=intensity / 2, copies=1),
    ]
    victims = _minority(n)
    if victims:
        faults.append(
            CrashRecovery((Outage(pid=victims[0], down_at=1.0, up_at=2.0 + 10.0 * intensity),))
        )
    return Scenario("chaos", tuple(faults))


for _name, _builder in (
    ("none", _none),
    ("lossy-links", _lossy_links),
    ("duplication-storm", _duplication_storm),
    ("reorder-heavy", _reorder_heavy),
    ("partition-heal", _partition_heal),
    ("partition-drop", _partition_drop),
    ("slow-minority", _slow_minority),
    ("crash-recovery", _crash_recovery),
    ("chaos", _chaos),
):
    register_scenario(_name, _builder)
