"""Declarative fault primitives composed into adversarial scenarios.

Every primitive is a frozen dataclass of plain values (probabilities, pid
tuples, time windows), so primitives are picklable, hashable and have
stable value-only ``repr``\\ s -- the property that lets a
:class:`~repro.adversary.scenario.Scenario` enter a
:class:`~repro.harness.distributed.SweepPlan` fingerprint and keep sharded
adversarial sweeps bit-identical to single-host ones.

The primitives describe *what* goes wrong; *when* it goes wrong for a
specific execution is decided by the runtime
:class:`~repro.adversary.scenario.Adversary`, which draws every random
choice (per-message omission, duplication, reordering) from a dedicated
seeded kernel stream, so two runs of the same configuration inject the
identical faults.

Self-addressed messages are never faulted: a process's channel to itself is
local, and the paper's ``broadcast`` macro relies on a process hearing its
own value.  The crash/omission/timing primitives cannot forge a payload;
the one deliberate exception is :class:`MessageCorruption`, which models a
Byzantine channel -- together with the receiver-side authentication model
(see :class:`TamperedPayload`) that decides whether a mutation is dropped
like an omission or actually believed.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

#: The two partition semantics (see :class:`PartitionWindow`).
PARTITION_MODES = ("heal", "drop")


def _normalised_pids(pids: object, what: str) -> Tuple[int, ...]:
    """Validate and sort a collection of process ids into a tuple."""
    try:
        values = tuple(sorted(int(pid) for pid in pids))  # type: ignore[union-attr]
    except TypeError as error:
        raise ValueError(f"{what} must be an iterable of process ids, got {pids!r}") from error
    if any(pid < 0 for pid in values):
        raise ValueError(f"{what} must be non-negative process ids, got {values}")
    if len(set(values)) != len(values):
        raise ValueError(f"{what} holds duplicate process ids: {values}")
    return values


def _check_probability(probability: float) -> None:
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")


def _check_window(start: float, end: float) -> None:
    if start < 0:
        raise ValueError(f"window start must be >= 0, got {start}")
    if end <= start:
        raise ValueError(f"window end must be > start, got [{start}, {end})")


@dataclass(frozen=True)
class LinkFault:
    """Base of the per-message faults (omission, duplication, reordering).

    ``senders``/``receivers`` restrict the fault to messages whose sender /
    destination is in the given set (``None`` = any process), and the fault
    is only active for sends inside ``[start, end)``.
    """

    probability: float = 1.0
    senders: Optional[Tuple[int, ...]] = None
    receivers: Optional[Tuple[int, ...]] = None
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        _check_probability(self.probability)
        _check_window(self.start, self.end)
        for attribute in ("senders", "receivers"):
            value = getattr(self, attribute)
            if value is not None:
                object.__setattr__(self, attribute, _normalised_pids(value, attribute))

    def applies(self, sender: int, dest: int, time: float) -> bool:
        """Whether this fault may affect a ``sender -> dest`` send at ``time``."""
        if not self.start <= time < self.end:
            return False
        if self.senders is not None and sender not in self.senders:
            return False
        return self.receivers is None or dest in self.receivers

    def touched_pids(self) -> Tuple[int, ...]:
        """Every pid this fault names explicitly (for install-time validation)."""
        return (self.senders or ()) + (self.receivers or ())

    @property
    def liveness_preserving(self) -> bool:
        """Whether the fault can only delay progress, never prevent it."""
        return True


@dataclass(frozen=True)
class MessageOmission(LinkFault):
    """Drop each matching message independently with ``probability``.

    This breaks the reliable-channel assumption of the paper's model, so
    termination is no longer guaranteed -- which is exactly what experiment
    e9 measures.  Safety must survive regardless.
    """

    @property
    def liveness_preserving(self) -> bool:
        """Omission can starve a wait forever, so liveness is not preserved."""
        return self.probability == 0.0


@dataclass(frozen=True)
class MessageDuplication(LinkFault):
    """Deliver ``copies`` extra copies of each matching message.

    Each copy transits independently (its delay is re-sampled from the
    network's delay model), so duplicates typically arrive out of order
    with the original -- the classic at-least-once channel.
    """

    copies: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.copies < 1:
            raise ValueError(f"copies must be >= 1, got {self.copies}")


@dataclass(frozen=True)
class MessageReordering(LinkFault):
    """Inflate the transit delay of each matching message by ``inflation``.

    Because other messages keep their sampled delays, inflated messages are
    overtaken by later sends -- an aggressive reordering adversary while
    still delivering every message (liveness-preserving).
    """

    inflation: float = 10.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.inflation <= 1.0:
            raise ValueError(f"inflation must be > 1, got {self.inflation}")


@dataclass(frozen=True)
class PartitionWindow:
    """Sever the links between process groups for virtual times ``[start, end)``.

    ``groups`` are disjoint pid sets; a message crossing from one group to a
    *different* group while the window is active is affected (pids in no
    group communicate freely).  With mode ``"heal"`` the message is held and
    delivered once the partition heals (delivery at ``end`` plus its sampled
    delay); with mode ``"drop"`` it is lost outright.
    """

    groups: Tuple[Tuple[int, ...], ...]
    start: float = 0.0
    end: float = math.inf
    mode: str = "heal"

    def __post_init__(self) -> None:
        if self.mode not in PARTITION_MODES:
            raise ValueError(f"unknown partition mode {self.mode!r}; choose from {PARTITION_MODES}")
        _check_window(self.start, self.end)
        if self.mode == "heal" and not math.isfinite(self.end):
            raise ValueError("a healing partition needs a finite end time")
        if len(self.groups) < 2:
            raise ValueError("a partition needs at least two groups")
        groups = tuple(_normalised_pids(group, "partition group") for group in self.groups)
        seen: set = set()
        for group in groups:
            if not group:
                raise ValueError("partition groups must be non-empty")
            overlap = seen.intersection(group)
            if overlap:
                raise ValueError(f"partition groups must be disjoint; {sorted(overlap)} repeated")
            seen.update(group)
        object.__setattr__(self, "groups", groups)

    def _group_of(self, pid: int) -> int:
        for index, group in enumerate(self.groups):
            if pid in group:
                return index
        return -1

    def severs(self, sender: int, dest: int, time: float) -> bool:
        """Whether the link ``sender -> dest`` is cut at ``time``."""
        if not self.start <= time < self.end:
            return False
        sender_group = self._group_of(sender)
        if sender_group < 0:
            return False
        dest_group = self._group_of(dest)
        return dest_group >= 0 and dest_group != sender_group

    def touched_pids(self) -> Tuple[int, ...]:
        """Every pid named by the partition groups."""
        return tuple(pid for group in self.groups for pid in group)

    @property
    def liveness_preserving(self) -> bool:
        """A healing partition only delays; a dropping one loses messages."""
        return self.mode == "heal"


@dataclass(frozen=True)
class ProcessSlowdown:
    """Defer every kernel step of the targeted processes by ``extra_delay``.

    Each :class:`~repro.sim.events.StepResume` (and delivery) dispatched to a
    slowed process inside the window is postponed once by ``extra_delay``
    virtual-time units -- the process still takes every step, just later,
    which models a slow or overloaded replica without violating any model
    assumption.
    """

    pids: Tuple[int, ...]
    extra_delay: float = 1.0
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        object.__setattr__(self, "pids", _normalised_pids(self.pids, "slowdown pids"))
        if not self.pids:
            raise ValueError("a slowdown needs at least one process id")
        if self.extra_delay <= 0:
            raise ValueError(f"extra_delay must be > 0, got {self.extra_delay}")
        _check_window(self.start, self.end)

    def defers(self, pid: int, time: float) -> bool:
        """Whether an event of process ``pid`` is deferred at ``time``."""
        return pid in self.pids and self.start <= time < self.end

    def touched_pids(self) -> Tuple[int, ...]:
        """The slowed pids (for install-time validation)."""
        return self.pids

    @property
    def liveness_preserving(self) -> bool:
        """Slowdowns only delay steps, never suppress them."""
        return True


@dataclass(frozen=True)
class Outage:
    """One crash-recovery episode: ``pid`` is down during ``[down_at, up_at)``."""

    pid: int
    down_at: float
    up_at: float

    def __post_init__(self) -> None:
        if self.pid < 0:
            raise ValueError(f"pid must be >= 0, got {self.pid}")
        _check_window(self.down_at, self.up_at)
        if not math.isfinite(self.up_at):
            raise ValueError("an outage must recover at a finite time; use "
                             "FailurePattern for permanent crashes")


def check_outages_disjoint(outages) -> None:
    """Reject overlapping outages of one process.

    The kernel's pause/recover machinery keys on the pid alone, so a pause
    nested inside another outage would be silently dropped and the first
    recover would truncate the longer outage.  Enforced per
    :class:`CrashRecovery` schedule at construction and across a whole
    scenario's schedules at :meth:`~repro.adversary.scenario.Scenario`
    construction time.
    """
    by_pid: dict = {}
    for outage in outages:
        by_pid.setdefault(outage.pid, []).append(outage)
    for pid, episodes in by_pid.items():
        episodes.sort(key=lambda outage: outage.down_at)
        for previous, current in zip(episodes, episodes[1:]):
            if current.down_at < previous.up_at:
                raise ValueError(
                    f"process {pid} has overlapping outages "
                    f"[{previous.down_at}, {previous.up_at}) and "
                    f"[{current.down_at}, {current.up_at})"
                )


@dataclass(frozen=True)
class CrashRecovery:
    """A schedule of transient process outages (crash *and recover*).

    Generalises the crash-only :class:`~repro.cluster.failures.FailurePattern`:
    during an outage the process takes no steps; its pending steps and
    deliveries are buffered and replayed at recovery, so the episode is
    indistinguishable from the process being arbitrarily slow -- which the
    asynchronous model already permits, making this primitive
    liveness-preserving.  Processes that must *stay* down belong in a
    ``FailurePattern``, not here.
    """

    outages: Tuple[Outage, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        outages = tuple(
            outage if isinstance(outage, Outage) else Outage(*outage) for outage in self.outages
        )
        if not outages:
            raise ValueError("a crash-recovery schedule needs at least one outage")
        check_outages_disjoint(outages)
        object.__setattr__(
            self, "outages", tuple(sorted(outages, key=lambda o: (o.pid, o.down_at)))
        )

    def touched_pids(self) -> Tuple[int, ...]:
        """Every pid with at least one outage."""
        return tuple(sorted({outage.pid for outage in self.outages}))

    @property
    def liveness_preserving(self) -> bool:
        """Every outage recovers, so progress is only delayed."""
        return True


@dataclass(frozen=True)
class TamperedPayload:
    """A corrupted payload whose authentication no longer verifies.

    When an *authenticated* :class:`MessageCorruption` mutates a message,
    the mutation is delivered wrapped in this marker: the receiver's
    message-scanning code (see :func:`repro.core.pattern.scan_mailbox`)
    models signature verification by discarding it, turning the corruption
    into an omission-like fault.  Unauthenticated corruption delivers the
    bare mutated payload instead -- genuine Byzantine behaviour.
    """

    original: Any
    mutated: Any


def mutate_payload(payload: Any) -> Any:
    """The adversary's payload mutation: flip the binary content.

    Duck-typed over the algorithm payloads: a dataclass carrying a binary
    ``est`` (phase messages) or ``value`` (decide messages) comes back with
    that bit flipped.  Payloads with nothing to flip (``⊥`` estimates,
    non-dataclass payloads) are returned unchanged, and the corruption is
    then a no-op rather than a counted fault.
    """
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        for name in ("est", "value"):
            if hasattr(payload, name):
                bit = getattr(payload, name)
                if bit in (0, 1):
                    return dataclasses.replace(payload, **{name: 1 - bit})
    return payload


@dataclass(frozen=True)
class MessageCorruption(LinkFault):
    """Mutate each matching message's payload with ``probability``.

    The Byzantine channel primitive: a corrupted message transits normally
    but carries :func:`mutate_payload`'s flipped content.  With
    ``authenticated`` (the default) the receiver detects the tampering and
    drops the message -- the paper's authenticated-channel assumption, under
    which corruption degrades to omission and safety must survive.  With
    ``authenticated=False`` the mutation is believed, which genuinely breaks
    the model (tests use it to show authentication is load-bearing).
    """

    authenticated: bool = True

    @property
    def liveness_preserving(self) -> bool:
        """Corruption can lose (authenticated) or poison (forged) messages.

        An authenticated mutation is dropped by the receiver, so it starves
        waits exactly like an omission; a forged one can derail the protocol
        outright.  Either way, any positive probability voids the
        termination guarantee.
        """
        return self.probability == 0.0


#: The primitive types a :class:`~repro.adversary.scenario.Scenario` accepts.
#: Extended (never shrunk) by :func:`register_fault_type`; modules must read
#: it through the ``faults`` module at validation time, not import the tuple
#: by value, so later registrations (the adaptive primitives) are honoured.
FAULT_TYPES = (
    MessageOmission,
    MessageDuplication,
    MessageReordering,
    MessageCorruption,
    PartitionWindow,
    ProcessSlowdown,
    CrashRecovery,
)


def register_fault_type(fault_type: type) -> None:
    """Admit ``fault_type`` into :data:`FAULT_TYPES` (idempotent).

    The extension seam for fault primitives defined outside this module
    (the adaptive strategies in :mod:`repro.adversary.adaptive`): a
    registered type passes :class:`~repro.adversary.scenario.Scenario`
    validation, and the runtime engine chosen by
    :func:`~repro.adversary.adaptive.build_adversary` must know how to
    bucket it.  Requirements match the built-ins: frozen dataclasses of
    plain values with ``liveness_preserving`` and (when pids are named)
    ``touched_pids``.
    """
    global FAULT_TYPES
    if not isinstance(fault_type, type):
        raise TypeError(f"fault types are classes, got {fault_type!r}")
    if fault_type not in FAULT_TYPES:
        FAULT_TYPES = FAULT_TYPES + (fault_type,)
