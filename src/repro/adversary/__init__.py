"""Fault-injection adversaries: declarative scenarios for robustness testing.

The paper proves its algorithms safe under *any* asynchronous adversary;
this package lets the simulator actually play one.  A
:class:`~repro.adversary.scenario.Scenario` composes declarative fault
primitives -- message omission, duplication, reordering, corruption,
partition windows, per-process slowdowns and crash-recovery outages -- and
a per-run :class:`~repro.adversary.scenario.Adversary` injects them
deterministically through three narrow kernel hooks: message-send time
(omission, duplication, reordering, partitions, corruption), event-dispatch
time (slowdowns), and scheduled pause/recover events (crash-recovery
outages).

On top of the declarative primitives, :mod:`~repro.adversary.adaptive`
adds *adaptive* strategies that condition their fault decisions on the
observed execution (delay-pivotal, target-coin, split-rounds) through the
same hooks; :func:`~repro.adversary.adaptive.build_adversary` picks the
right engine for a scenario.

Scenarios are plain picklable data with stable reprs, so they ride inside
:class:`~repro.harness.runner.ExperimentConfig`, enter sweep-plan
fingerprints, and keep sharded adversarial sweeps bit-identical to
single-host ones.  The named registry in
:mod:`~repro.adversary.library` makes scenarios referencable from the CLI
(``python -m repro run e9 --scenario lossy-links``); the adaptive registry
in :mod:`~repro.adversary.adaptive` does the same for e10.
"""

from .adaptive import (
    ADAPTIVE_FAULT_TYPES,
    AdaptiveAdversary,
    DelayPivotal,
    SplitRounds,
    TargetCoin,
    adaptive_scenario_names,
    build_adaptive_scenario,
    build_adversary,
    register_adaptive_scenario,
)
from .faults import (
    FAULT_TYPES,
    CrashRecovery,
    LinkFault,
    MessageCorruption,
    MessageDuplication,
    MessageOmission,
    MessageReordering,
    Outage,
    PartitionWindow,
    ProcessSlowdown,
    TamperedPayload,
    register_fault_type,
)
from .library import build_scenario, register_scenario, scenario_names
from .scenario import Adversary, Scenario

__all__ = [
    "ADAPTIVE_FAULT_TYPES",
    "AdaptiveAdversary",
    "Adversary",
    "CrashRecovery",
    "DelayPivotal",
    "FAULT_TYPES",
    "LinkFault",
    "MessageCorruption",
    "MessageDuplication",
    "MessageOmission",
    "MessageReordering",
    "Outage",
    "PartitionWindow",
    "ProcessSlowdown",
    "Scenario",
    "SplitRounds",
    "TamperedPayload",
    "TargetCoin",
    "adaptive_scenario_names",
    "build_adaptive_scenario",
    "build_adversary",
    "build_scenario",
    "register_adaptive_scenario",
    "register_fault_type",
    "register_scenario",
    "scenario_names",
]
