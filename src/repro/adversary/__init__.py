"""Fault-injection adversaries: declarative scenarios for robustness testing.

The paper proves its algorithms safe under *any* asynchronous adversary;
this package lets the simulator actually play one.  A
:class:`~repro.adversary.scenario.Scenario` composes declarative fault
primitives -- message omission, duplication, reordering, partition windows,
per-process slowdowns and crash-recovery outages -- and a per-run
:class:`~repro.adversary.scenario.Adversary` injects them deterministically
through three narrow kernel hooks: message-send time (omission, duplication,
reordering, partitions), event-dispatch time (slowdowns), and scheduled
pause/recover events (crash-recovery outages).

Scenarios are plain picklable data with stable reprs, so they ride inside
:class:`~repro.harness.runner.ExperimentConfig`, enter sweep-plan
fingerprints, and keep sharded adversarial sweeps bit-identical to
single-host ones.  The named registry in
:mod:`~repro.adversary.library` makes scenarios referencable from the CLI
(``python -m repro run e9 --scenario lossy-links``).
"""

from .faults import (
    FAULT_TYPES,
    CrashRecovery,
    LinkFault,
    MessageDuplication,
    MessageOmission,
    MessageReordering,
    Outage,
    PartitionWindow,
    ProcessSlowdown,
)
from .library import build_scenario, register_scenario, scenario_names
from .scenario import Adversary, Scenario

__all__ = [
    "Adversary",
    "CrashRecovery",
    "FAULT_TYPES",
    "LinkFault",
    "MessageDuplication",
    "MessageOmission",
    "MessageReordering",
    "Outage",
    "PartitionWindow",
    "ProcessSlowdown",
    "Scenario",
    "build_scenario",
    "register_scenario",
    "scenario_names",
]
