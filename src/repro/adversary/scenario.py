"""The declarative :class:`Scenario` model and its runtime :class:`Adversary`.

A :class:`Scenario` is pure data -- a named, ordered composition of the
fault primitives from :mod:`~repro.adversary.faults`.  It travels inside an
:class:`~repro.harness.runner.ExperimentConfig` (pickled to workers, its
``repr`` hashed into sweep-plan fingerprints) and runs nothing by itself.

The :class:`Adversary` is the per-run engine built from a scenario: it owns
the seeded random stream the fault coin-flips draw from, and it answers the
two narrow questions the simulation kernel asks:

* :meth:`Adversary.deliveries` -- at message-send time, into which delivery
  delays (none = omitted, several = duplicated) does this send turn?
* :meth:`Adversary.defer` -- at event-dispatch time, should this event be
  postponed (per-process slowdowns)?

Crash-recovery outages are not consulted per event; they are installed once
as :class:`~repro.sim.events.ProcessPause` / ``ProcessRecover`` events in
the kernel's queue.  A kernel with no adversary installed never pays more
than one ``is None`` check per event.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from ..sim.events import (
    Event,
    MessageDelivery,
    ProcessPause,
    ProcessRecover,
    ProcessStart,
    StepResume,
)
from . import faults as _faults
from .faults import (
    CrashRecovery,
    MessageCorruption,
    MessageDuplication,
    MessageOmission,
    MessageReordering,
    PartitionWindow,
    ProcessSlowdown,
    TamperedPayload,
    check_outages_disjoint,
    mutate_payload,
)


@dataclass(frozen=True)
class Scenario:
    """A named, declarative composition of fault primitives.

    Scenarios are plain data with a stable value-only ``repr``: equal
    scenarios compare and hash equal, pickle round-trips preserve them, and
    the ``repr`` entering a sweep-plan fingerprint pins the exact fault
    behaviour of every sharded run.
    """

    name: str
    faults: Tuple[object, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"scenario name must be a non-empty string, got {self.name!r}")
        faults = tuple(self.faults)
        # Read FAULT_TYPES through the module so primitives registered after
        # this module was imported (register_fault_type) are accepted too.
        known_types = _faults.FAULT_TYPES
        for fault in faults:
            if not isinstance(fault, known_types):
                raise ValueError(
                    f"unknown fault primitive {fault!r}; scenarios compose "
                    f"{sorted(t.__name__ for t in known_types)}"
                )
        # Each CrashRecovery schedule validates itself; overlapping outages
        # *across* schedules would be just as silently mis-handled by the
        # kernel's pid-keyed pause machinery, so validate the union too.
        check_outages_disjoint(
            [
                outage
                for fault in faults
                if isinstance(fault, CrashRecovery)
                for outage in fault.outages
            ]
        )
        object.__setattr__(self, "faults", faults)

    @property
    def liveness_preserving(self) -> bool:
        """Whether every fault only delays progress (no message is ever lost).

        Liveness-preserving scenarios keep the paper's termination guarantee
        intact (asynchrony already allows arbitrary delays); scenarios that
        can lose messages void it, and only safety remains guaranteed.
        """
        return all(fault.liveness_preserving for fault in self.faults)

    def describe(self) -> str:
        """A short human-readable summary (name plus fault kinds)."""
        if not self.faults:
            return f"{self.name} (fault-free)"
        kinds = ", ".join(type(fault).__name__ for fault in self.faults)
        return f"{self.name} ({kinds})"

    def touched_pids(self) -> Tuple[int, ...]:
        """Every pid any fault names explicitly, sorted and deduplicated."""
        pids: set = set()
        for fault in self.faults:
            touched = getattr(fault, "touched_pids", None)
            if touched is not None:
                pids.update(touched())
        return tuple(sorted(pids))


class Adversary:
    """The runtime fault-injection engine the kernel consults.

    One adversary serves one simulation run: it is built from a scenario
    and a dedicated :class:`random.Random` stream (derived from the run's
    master seed), installed into a kernel with
    :meth:`~repro.sim.kernel.SimulationKernel.install_adversary`, and never
    crosses process boundaries -- the picklable artifact is the scenario.
    """

    def __init__(self, scenario: Scenario, rng: random.Random) -> None:
        self.scenario = scenario
        self._rng = rng
        self._kernel = None
        self._omissions: List[MessageOmission] = []
        self._duplications: List[MessageDuplication] = []
        self._reorderings: List[MessageReordering] = []
        self._corruptions: List[MessageCorruption] = []
        self._partitions: List[PartitionWindow] = []
        self._slowdowns: List[ProcessSlowdown] = []
        self._crash_recoveries: List[CrashRecovery] = []
        self._deferred_ids: set = set()
        buckets = {
            MessageOmission: self._omissions,
            MessageDuplication: self._duplications,
            MessageReordering: self._reorderings,
            MessageCorruption: self._corruptions,
            PartitionWindow: self._partitions,
            ProcessSlowdown: self._slowdowns,
            CrashRecovery: self._crash_recoveries,
        }
        for fault in scenario.faults:
            # Walk the MRO so user subclasses of the primitives (accepted by
            # Scenario's isinstance validation) land in their base's bucket,
            # mirroring how the kernel dispatches event subclasses.  The
            # MessageCorruption check must precede the LinkFault walk because
            # corruption subclasses LinkFault but needs its own bucket --
            # which the exact-class-first MRO walk already guarantees.
            bucket = next(
                (buckets[base] for base in type(fault).__mro__ if base in buckets), None
            )
            if bucket is not None:
                bucket.append(fault)
            elif not self._bucket_extra(fault):
                raise ValueError(f"no adversary handling for fault {fault!r}")
        self._defers_events = bool(self._slowdowns)
        #: Whether the kernel needs to consult :meth:`corrupt` per send.
        self.corrupts = bool(self._corruptions)

    def _bucket_extra(self, fault) -> bool:
        """Claim a fault primitive no base bucket handles (subclass seam).

        :class:`~repro.adversary.adaptive.AdaptiveAdversary` overrides this
        to take ownership of the adaptive strategy primitives; the base
        engine handles only the declarative ones and returns ``False``.
        """
        return False

    # ------------------------------------------------------------ installation
    def install(self, kernel) -> None:
        """Bind to ``kernel``: validate pids and schedule crash-recovery events.

        Called by :meth:`SimulationKernel.install_adversary` after every
        process is registered, so a scenario naming a pid the run does not
        have fails here with a clear :class:`ValueError` instead of silently
        never firing.
        """
        known = set(kernel.process_ids())
        unknown = sorted(set(self.scenario.touched_pids()) - known)
        if unknown:
            raise ValueError(
                f"scenario {self.scenario.name!r} targets process ids {unknown}, "
                f"but this run only has processes {sorted(known)}"
            )
        self._kernel = kernel
        for schedule in self._crash_recoveries:
            for outage in schedule.outages:
                kernel.schedule_pause(outage.pid, outage.down_at, outage.up_at)

    # ------------------------------------------------------- send-time verdict
    def deliveries(self, sender: int, dest: int, now: float, delay: float) -> Tuple[float, ...]:
        """The delivery delays one ``sender -> dest`` send turns into.

        An empty tuple means the message is omitted; more than one entry
        means duplicates (each extra copy re-samples its transit delay from
        the network's delay model).  Self-addressed messages are never
        faulted.  Faults are applied in a fixed order -- partitions, then
        omission, then reordering, then duplication -- and every random
        choice draws from the adversary's own stream, in deterministic
        event order.
        """
        if sender == dest:
            return (delay,)
        # The hold is the time until the last active severing partition
        # heals; it applies to the original *and* to every duplicate, so no
        # copy can sneak across a partition that is still up.
        hold = 0.0
        for partition in self._partitions:
            if partition.severs(sender, dest, now):
                if partition.mode == "drop":
                    return ()
                hold = max(hold, partition.end - now)
        for omission in self._omissions:
            if omission.applies(sender, dest, now) and self._rng.random() < omission.probability:
                return ()
        for reordering in self._reorderings:
            if reordering.applies(sender, dest, now) and self._rng.random() < reordering.probability:
                delay *= reordering.inflation
        delays = [hold + delay]
        for duplication in self._duplications:
            if duplication.applies(sender, dest, now) and self._rng.random() < duplication.probability:
                network = self._kernel.network
                delays.extend(
                    hold + network.sample_delay(sender=sender, dest=dest)
                    for _ in range(duplication.copies)
                )
        return tuple(delays)

    # ----------------------------------------------------- payload corruption
    def corrupt(self, sender: int, dest: int, payload, now: float):
        """The (possibly tampered) payload one ``sender -> dest`` send carries.

        Consulted by the kernel only when the scenario holds
        :class:`~repro.adversary.faults.MessageCorruption` faults (the
        :attr:`corrupts` flag), *after* :meth:`deliveries` ruled the send is
        delivered at all -- so scenarios without corruption draw exactly the
        random sequence they always did.  An authenticated mutation comes
        back wrapped in :class:`~repro.adversary.faults.TamperedPayload`
        (the receiver will drop it); an unauthenticated one comes back bare.
        Self-addressed messages are never corrupted.
        """
        if sender == dest:
            return payload
        for corruption in self._corruptions:
            if corruption.applies(sender, dest, now) and self._rng.random() < corruption.probability:
                mutated = mutate_payload(payload)
                if mutated is payload:
                    return payload
                if corruption.authenticated:
                    return TamperedPayload(original=payload, mutated=mutated)
                return mutated
        return payload

    #: Event types a slowdown may postpone: the process's own steps and its
    #: deliveries.  Control events (crash, pause, recover) must never be
    #: deferred -- postponing a pause past its matching recover would strand
    #: the process paused forever, and deferring a crash would let a
    #: slowdown rewrite the failure pattern.
    _DEFERRABLE = (StepResume, MessageDelivery, ProcessStart)

    # --------------------------------------------------- dispatch-time verdict
    def defer(self, event: Event, now: float) -> float:
        """Extra delay to postpone ``event`` by at dispatch time (0.0 = none).

        Implements per-process slowdowns: each step or delivery event of a
        slowed process inside its window is postponed exactly once (the
        kernel re-queues it and offers it again; the second offer passes
        through), so a slowdown stretches the process's schedule without
        ever starving it.
        """
        if not self._defers_events:
            return 0.0
        key = id(event)
        if key in self._deferred_ids:
            self._deferred_ids.discard(key)
            return 0.0
        if not isinstance(event, self._DEFERRABLE):
            return 0.0
        extra = 0.0
        for slowdown in self._slowdowns:
            if slowdown.defers(event.pid, now):
                extra += slowdown.extra_delay
        if extra > 0.0:
            self._deferred_ids.add(key)
        return extra


__all__ = ["Adversary", "ProcessPause", "ProcessRecover", "Scenario"]
