"""Crash-failure patterns and adversarial crash-scenario generators.

A :class:`FailurePattern` maps process ids to the virtual times at which they
crash.  Patterns are plain data: the harness installs them into the kernel
with :meth:`FailurePattern.install`, and the experiment modules use the
constructors below to build the scenarios discussed in the paper (crash a
majority outside a majority cluster, crash all-but-one inside a cluster,
violate the termination condition on purpose, ...).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Set

from .topology import ClusterTopology


@dataclass(frozen=True)
class FailurePattern:
    """A crash schedule: ``{pid: crash_time}`` (absent pid = never crashes)."""

    crashes: Mapping[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for pid, time in self.crashes.items():
            if time < 0:
                raise ValueError(f"crash time for process {pid} must be >= 0, got {time}")

    # ---------------------------------------------------------------- queries
    @property
    def crashed(self) -> Set[int]:
        """Ids of processes that eventually crash."""
        return set(self.crashes)

    def correct(self, n: int) -> Set[int]:
        """Ids of processes that never crash, out of ``0..n-1``."""
        return {pid for pid in range(n) if pid not in self.crashes}

    def crash_count(self) -> int:
        """How many distinct processes this pattern crashes."""
        return len(self.crashes)

    def crashes_majority(self, n: int) -> bool:
        """True when the pattern crashes a strict majority of the processes."""
        return 2 * len(self.crashes) > n

    def allows_termination(self, topology: ClusterTopology) -> bool:
        """The paper's termination condition under this pattern.

        True iff the clusters that keep at least one correct process cover a
        strict majority of all processes.
        """
        return topology.termination_condition_holds(self.correct(topology.n))

    def install(self, kernel) -> None:
        """Schedule every crash of this pattern into a simulation kernel.

        Raises a :class:`ValueError` naming the offending pids when the
        pattern crashes a process the kernel does not have -- a pattern
        built for the wrong ``n`` would otherwise fail with an opaque
        per-pid ``KeyError`` (or, if never installed, silently misrepresent
        the run's fault load).
        """
        known = set(kernel.process_ids())
        unknown = sorted(set(self.crashes) - known)
        if unknown:
            raise ValueError(
                f"failure pattern crashes process ids {unknown}, but the kernel only "
                f"has processes {sorted(known)}; build the pattern for this topology's n"
            )
        for pid, time in sorted(self.crashes.items()):
            kernel.schedule_crash(pid, time)

    def merged_with(self, other: "FailurePattern") -> "FailurePattern":
        """Combine two patterns; on conflict the earlier crash time wins."""
        merged: Dict[int, float] = dict(self.crashes)
        for pid, time in other.crashes.items():
            merged[pid] = min(time, merged.get(pid, time))
        return FailurePattern(merged)

    # ------------------------------------------------------------ constructors
    @classmethod
    def none(cls) -> "FailurePattern":
        """The failure-free pattern."""
        return cls({})

    @classmethod
    def crash_set(cls, pids: Iterable[int], time: float = 0.0) -> "FailurePattern":
        """Crash exactly the given processes, all at the same time."""
        return cls({int(pid): time for pid in pids})

    @classmethod
    def crash_all_but_one_in_cluster(
        cls,
        topology: ClusterTopology,
        cluster_index: int,
        survivor: Optional[int] = None,
        time: float = 0.0,
    ) -> "FailurePattern":
        """Crash every member of a cluster except one survivor.

        This is the scenario behind the "one for all and all for one" motto:
        the lone survivor must still represent its whole cluster.
        """
        members = sorted(topology.cluster_members(cluster_index))
        if survivor is None:
            survivor = members[0]
        if survivor not in members:
            raise ValueError(f"survivor {survivor} is not in cluster {cluster_index}")
        return cls({pid: time for pid in members if pid != survivor})

    @classmethod
    def majority_crash_with_surviving_majority_cluster(
        cls,
        topology: ClusterTopology,
        survivor: Optional[int] = None,
        time: float = 0.0,
    ) -> "FailurePattern":
        """The paper's headline scenario (Introduction and Conclusion).

        Requires a cluster holding a strict majority of processes.  Crashes
        *every* process except one survivor inside that majority cluster, so
        a majority of processes crash yet the termination condition holds.
        """
        index = topology.majority_cluster_index()
        if index is None:
            raise ValueError("topology has no majority cluster")
        members = sorted(topology.cluster_members(index))
        if survivor is None:
            survivor = members[0]
        if survivor not in members:
            raise ValueError(f"survivor {survivor} is not in the majority cluster")
        return cls({pid: time for pid in topology.process_ids() if pid != survivor})

    @classmethod
    def violate_termination_condition(
        cls, topology: ClusterTopology, time: float = 0.0
    ) -> "FailurePattern":
        """Crash whole clusters until the surviving clusters cannot cover a majority.

        Used by the indulgence experiment: under the returned pattern the
        algorithms may not terminate, but must never decide inconsistently.
        Clusters are crashed in decreasing size order, which reaches the goal
        with the fewest crashed clusters.
        """
        order = sorted(range(topology.m), key=lambda index: -len(topology.cluster_members(index)))
        crashed: Dict[int, float] = {}
        remaining = set(range(topology.m))
        for index in order:
            remaining.discard(index)
            for pid in topology.cluster_members(index):
                crashed[pid] = time
            if not topology.covers_majority(remaining):
                return cls(crashed)
        return cls(crashed)

    @classmethod
    def random_crashes(
        cls,
        rng: random.Random,
        n: int,
        count: int,
        earliest: float = 0.0,
        latest: float = 10.0,
    ) -> "FailurePattern":
        """Crash ``count`` uniformly chosen processes at uniform random times."""
        if not 0 <= count <= n:
            raise ValueError(f"count must be in [0, n], got {count} for n={n}")
        victims = rng.sample(range(n), count)
        return cls({pid: rng.uniform(earliest, latest) for pid in victims})

    def __repr__(self) -> str:
        if not self.crashes:
            return "FailurePattern(none)"
        parts = ", ".join(f"{pid}@{time:g}" for pid, time in sorted(self.crashes.items()))
        return f"FailurePattern({parts})"
