"""Cluster model: process partitions and crash-failure patterns."""

from .failures import FailurePattern
from .topology import ClusterTopology, TopologyError

__all__ = ["ClusterTopology", "FailurePattern", "TopologyError"]
