"""Cluster topologies: the partition of processes into shared-memory clusters.

The paper (Section II-A) partitions the ``n`` processes into ``m`` non-empty,
pairwise-disjoint clusters ``P[1] .. P[m]``; the processes of a cluster (and
only them) share a memory ``MEM_x``.  Process ids here are 0-based
(``0 .. n-1``); the Figure 1 constructors document the mapping to the paper's
1-based ``p_1 .. p_7``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple


class TopologyError(ValueError):
    """Raised when a cluster description is not a valid partition."""


class ClusterTopology:
    """An immutable partition of processes ``0 .. n-1`` into clusters."""

    def __init__(self, clusters: Sequence[Iterable[int]]) -> None:
        normalized: List[FrozenSet[int]] = [frozenset(int(pid) for pid in c) for c in clusters]
        if not normalized:
            raise TopologyError("a topology needs at least one cluster")
        for index, members in enumerate(normalized):
            if not members:
                raise TopologyError(f"cluster {index} is empty")
        union: Set[int] = set()
        total = 0
        for members in normalized:
            total += len(members)
            union |= members
        if len(union) != total:
            raise TopologyError("clusters must be pairwise disjoint")
        if union != set(range(len(union))):
            raise TopologyError(
                f"cluster members must be exactly 0..n-1, got {sorted(union)}"
            )
        self._clusters: Tuple[FrozenSet[int], ...] = tuple(normalized)
        self._n = len(union)
        self._cluster_of: Dict[int, int] = {}
        for index, members in enumerate(self._clusters):
            for pid in members:
                self._cluster_of[pid] = index

    # ------------------------------------------------------------- properties
    @property
    def n(self) -> int:
        """Total number of processes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of clusters."""
        return len(self._clusters)

    @property
    def clusters(self) -> Tuple[FrozenSet[int], ...]:
        """The clusters, indexed ``0 .. m-1``."""
        return self._clusters

    @property
    def cluster_sizes(self) -> Tuple[int, ...]:
        """Member count of each cluster, in cluster-index order."""
        return tuple(len(members) for members in self._clusters)

    def process_ids(self) -> range:
        """All process ids of the system, ``0 .. n-1``."""
        return range(self._n)

    # --------------------------------------------------------------- queries
    def cluster_index_of(self, pid: int) -> int:
        """Index of the cluster containing ``pid``."""
        try:
            return self._cluster_of[pid]
        except KeyError:
            raise KeyError(f"unknown process id {pid}") from None

    def cluster_of(self, pid: int) -> FrozenSet[int]:
        """The paper's ``cluster(i)``: the members of ``pid``'s cluster."""
        return self._clusters[self.cluster_index_of(pid)]

    def cluster_members(self, index: int) -> FrozenSet[int]:
        """Members of cluster ``index``."""
        return self._clusters[index]

    def same_cluster(self, pid_a: int, pid_b: int) -> bool:
        """Whether two processes share a cluster (and therefore its memory)."""
        return self.cluster_index_of(pid_a) == self.cluster_index_of(pid_b)

    def is_majority(self, count: int) -> bool:
        """The paper's strict-majority test ``count > n/2``."""
        return 2 * count > self._n

    def majority_threshold(self) -> int:
        """Smallest integer count that constitutes a strict majority."""
        return self._n // 2 + 1

    def covers_majority(self, cluster_indices: Iterable[int]) -> bool:
        """Whether the named clusters together contain ``> n/2`` processes."""
        total = sum(len(self._clusters[index]) for index in set(cluster_indices))
        return self.is_majority(total)

    def majority_cluster_index(self) -> int | None:
        """Index of a cluster containing a strict majority, if one exists."""
        for index, members in enumerate(self._clusters):
            if self.is_majority(len(members)):
                return index
        return None

    def termination_condition_holds(self, correct: Iterable[int]) -> bool:
        """The paper's main fault-tolerance condition.

        True iff there is a set of clusters, each containing at least one
        correct process, whose total size exceeds ``n/2``.  (Taking *all*
        clusters with a correct member maximises the covered size, so a
        greedy check is exact.)
        """
        correct_set = set(correct)
        covered = sum(
            len(members)
            for members in self._clusters
            if members & correct_set
        )
        return self.is_majority(covered)

    def describe(self) -> str:
        """Human-readable description, e.g. ``n=7, m=3: {0,1,2} | {3,4} | {5,6}``."""
        parts = " | ".join("{" + ",".join(str(pid) for pid in sorted(c)) + "}" for c in self._clusters)
        return f"n={self.n}, m={self.m}: {parts}"

    # ----------------------------------------------------------- constructors
    @classmethod
    def single_cluster(cls, n: int) -> "ClusterTopology":
        """The ``m = 1`` extreme: the classical shared-memory model."""
        if n < 1:
            raise TopologyError("n must be positive")
        return cls([range(n)])

    @classmethod
    def singleton_clusters(cls, n: int) -> "ClusterTopology":
        """The ``m = n`` extreme: the classical message-passing model."""
        if n < 1:
            raise TopologyError("n must be positive")
        return cls([[pid] for pid in range(n)])

    @classmethod
    def even_split(cls, n: int, m: int) -> "ClusterTopology":
        """Split ``0..n-1`` into ``m`` contiguous clusters of near-equal size."""
        if not 1 <= m <= n:
            raise TopologyError(f"need 1 <= m <= n, got m={m}, n={n}")
        base, extra = divmod(n, m)
        clusters: List[List[int]] = []
        start = 0
        for index in range(m):
            size = base + (1 if index < extra else 0)
            clusters.append(list(range(start, start + size)))
            start += size
        return cls(clusters)

    @classmethod
    def with_majority_cluster(cls, n: int, majority_size: int | None = None, others: int = 1) -> "ClusterTopology":
        """A topology with one cluster holding a strict majority of processes.

        The remaining processes are split into ``others`` clusters (or fewer
        if there are not enough processes left).
        """
        if majority_size is None:
            majority_size = n // 2 + 1
        if not (n // 2 < majority_size <= n):
            raise TopologyError(
                f"majority_size must satisfy n/2 < size <= n, got {majority_size} for n={n}"
            )
        clusters: List[List[int]] = [list(range(majority_size))]
        rest = list(range(majority_size, n))
        if rest:
            others = max(1, min(others, len(rest)))
            base, extra = divmod(len(rest), others)
            start = 0
            for index in range(others):
                size = base + (1 if index < extra else 0)
                clusters.append(rest[start : start + size])
                start += size
        return cls(clusters)

    @classmethod
    def figure1_left(cls) -> "ClusterTopology":
        """The left decomposition of Figure 1: n=7, m=3.

        The figure is schematic; we take ``P[1]={p1,p2,p3}``, ``P[2]={p4,p5}``,
        ``P[3]={p6,p7}`` (0-based: {0,1,2}, {3,4}, {5,6}).  No cluster holds a
        strict majority.
        """
        return cls([[0, 1, 2], [3, 4], [5, 6]])

    @classmethod
    def figure1_right(cls) -> "ClusterTopology":
        """The right decomposition of Figure 1: n=7, m=3, with a majority cluster.

        The paper's conclusion names ``P[2] = {p2, p3, p4, p5}`` as the
        majority cluster of this decomposition, so we take ``P[1]={p1}``,
        ``P[2]={p2,p3,p4,p5}``, ``P[3]={p6,p7}`` (0-based: {0}, {1,2,3,4},
        {5,6}).
        """
        return cls([[0], [1, 2, 3, 4], [5, 6]])

    # --------------------------------------------------------------- dunders
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClusterTopology):
            return NotImplemented
        return set(self._clusters) == set(other._clusters)

    def __hash__(self) -> int:
        return hash(frozenset(self._clusters))

    def __repr__(self) -> str:
        return f"ClusterTopology({[sorted(c) for c in self._clusters]!r})"
