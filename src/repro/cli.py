"""The ``python -m repro`` command line: run, shard, resume and merge experiments.

Four subcommands, designed so one sweep can span several machines with no
coordination beyond a shared (or later collected) output directory::

    python -m repro list                     # what experiments exist
    python -m repro run e8                   # single host: run + print report
    python -m repro run e8 --shard 2/4 --out runs/   # this host's quarter
    python -m repro status runs/             # shard progress at a glance
    python -m repro merge runs/ --report     # fold shards, print the report

``run --shard`` writes one checkpoint per completed sweep point, so a killed
shard re-invoked with the same command resumes instead of restarting.  Every
host must build the same plan, which is why ``run`` exposes the experiment
name and the seed count only -- both map deterministically to the plan; the
seed list itself travels in the shard manifests, so ``merge`` needs nothing
but the directory.
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys
from typing import List, Optional, Sequence

from .adversary.library import scenario_names
from .experiments import ALL_EXPERIMENTS
from .experiments.common import default_seeds, run_planned
from .harness.distributed import (
    ShardError,
    ShardSpec,
    merge_shards,
    read_manifests,
    run_shard,
)
from .harness.report import format_aggregates, format_records


def _resolve_experiment(name: str):
    """Map a CLI experiment name (``e1``/``E1``) to its driver module."""
    module = ALL_EXPERIMENTS.get(name.upper())
    if module is None:
        choices = ", ".join(sorted(key.lower() for key in ALL_EXPERIMENTS))
        raise ShardError(f"unknown experiment {name!r}; choose from: {choices}")
    return module


def _build_plan(
    experiment: str,
    seed_count: Optional[int],
    seeds: Optional[List[int]] = None,
    scenarios: Optional[Sequence[str]] = None,
    require_scenarios: bool = True,
):
    """Build the named experiment's plan, forwarding a scenario restriction.

    ``scenarios`` is forwarded to drivers whose ``plan`` accepts it (e9).
    With ``require_scenarios`` a restriction the driver cannot honour is an
    error; without it (the merge path, which replays whatever the manifests
    recorded) it is silently ignored.
    """
    module = _resolve_experiment(experiment)
    if seeds is None and seed_count is not None:
        seeds = default_seeds(seed_count)
    kwargs = {"seeds": seeds}
    if scenarios is not None:
        if "scenarios" in inspect.signature(module.plan).parameters:
            kwargs["scenarios"] = tuple(scenarios)
        elif require_scenarios:
            raise ShardError(
                f"experiment {experiment!r} does not take --scenario "
                f"(only e9 sweeps fault scenarios)"
            )
    return module, module.plan(**kwargs)


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = []
    for key in sorted(ALL_EXPERIMENTS):
        module = ALL_EXPERIMENTS[key]
        summary = (module.__doc__ or "").strip().splitlines()[0]
        rows.append({"experiment": key.lower(), "summary": summary})
    print(format_records(rows))
    print()
    print("run one with:   python -m repro run <experiment> [--seeds N]")
    print("shard one with: python -m repro run <experiment> --shard I/K --out DIR")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scenarios = None
    if args.scenario is not None:
        if args.scenario not in scenario_names():
            raise ShardError(
                f"unknown scenario {args.scenario!r}; choose from: "
                + ", ".join(scenario_names())
            )
        scenarios = (args.scenario,)
    module, plan = _build_plan(args.experiment, args.seeds, scenarios=scenarios)
    if args.shard is not None and args.out is None:
        raise ShardError("--shard needs --out DIR to hold the manifest and checkpoints")
    if args.out is not None:
        shard = ShardSpec.parse(args.shard) if args.shard is not None else ShardSpec(1, 1)
        result = run_shard(plan, shard, args.out, max_workers=args.max_workers)
        done = result.runs_executed + result.runs_resumed
        print(f"shard {shard} of {plan.key}: {done} runs "
              f"({result.runs_executed} executed, {result.runs_resumed} resumed from checkpoints)")
        for label in result.executed:
            print(f"  computed  {label}")
        for label in result.resumed:
            print(f"  resumed   {label}")
        for label in result.skipped:
            print(f"  not-mine  {label}")
        print(f"manifest: {result.manifest}")
        print(f"when all {shard.count} shards are done:  python -m repro merge {result.out_dir} --report")
        return 0
    report = run_planned(plan, module.build_report, max_workers=args.max_workers)
    print(report.format())
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    manifests = read_manifests(args.out_dir)
    experiment = manifests[0].get("experiment")
    if not experiment:
        raise ShardError(
            f"shards in {args.out_dir} were not produced by the CLI (no experiment "
            f"recorded); merge them with repro.harness.distributed.merge_shards and "
            f"the plan that produced them"
        )
    module, plan = _build_plan(
        experiment,
        None,
        seeds=list(manifests[0]["seeds"]),
        scenarios=manifests[0].get("scenarios"),
        require_scenarios=False,
    )
    merged = merge_shards(args.out_dir, plan)
    if args.report:
        print(module.build_report(merged.plan, merged.aggregates).format())
        return 0
    print(
        format_aggregates(
            merged.aggregates,
            title=f"{plan.key}: {merged.shard_count} shard(s), "
            f"{plan.total_runs} runs over {len(plan.points)} points",
        )
    )
    print()
    print(f"full experiment report:  python -m repro merge {args.out_dir} --report")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    rows = []
    for manifest in read_manifests(args.out_dir):
        points = manifest["points"]
        complete = sum(
            1 for record in points.values() if not record["runs"] or record.get("checkpoint")
        )
        # A killed shard's manifest has records only for the points it
        # reached, so the denominator must be the whole plan (the labels
        # list), not the records seen so far.
        total_points = len(manifest.get("labels") or points)
        rows.append(
            {
                "shard": f"{manifest['shard_index']}/{manifest['shard_count']}",
                "experiment": manifest.get("experiment") or manifest.get("plan_key", "?"),
                "points_done": f"{complete}/{total_points}",
                "runs_done": f"{manifest.get('runs_done', '?')}/{manifest.get('runs_total', '?')}",
            }
        )
    print(format_records(rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run, shard, resume and merge the experiments E1-E9.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the available experiments").set_defaults(func=_cmd_list)

    run_parser = commands.add_parser("run", help="run one experiment, whole or as one shard")
    run_parser.add_argument("experiment", help="experiment name, e.g. e1 or E8")
    run_parser.add_argument(
        "--seeds", type=int, default=None, metavar="N",
        help="number of repetitions per sweep point (default: the experiment's own default)",
    )
    run_parser.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="restrict e9 to one fault scenario from the library "
        "(see repro.adversary.library; e.g. lossy-links, partition-heal)",
    )
    run_parser.add_argument(
        "--shard", default=None, metavar="I/K",
        help="execute only shard I of K (1-based); every host must use the same experiment and --seeds",
    )
    run_parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="directory for shard manifests and per-point checkpoints (required with --shard; "
        "re-running with the same DIR resumes from the checkpoints)",
    )
    run_parser.add_argument(
        "--max-workers", type=int, default=None, metavar="W",
        help="parallel worker processes on this host (default: usable CPUs)",
    )
    run_parser.set_defaults(func=_cmd_run)

    merge_parser = commands.add_parser(
        "merge", help="fold all shards in DIR into the single-host result"
    )
    merge_parser.add_argument("out_dir", metavar="DIR", help="directory holding every shard's output")
    merge_parser.add_argument(
        "--report", action="store_true",
        help="print the full experiment report (identical to an unsharded run)",
    )
    merge_parser.set_defaults(func=_cmd_merge)

    status_parser = commands.add_parser("status", help="show per-shard progress in DIR")
    status_parser.add_argument("out_dir", metavar="DIR", help="directory holding shard manifests")
    status_parser.set_defaults(func=_cmd_status)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code (2 on shard/manifest errors)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ShardError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream consumer (e.g. `... | head`) closed the pipe; point
        # stdout at devnull so the interpreter's exit-time flush stays quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
