"""The ``python -m repro`` command line: run, shard, steal and merge experiments.

Four subcommands, designed so one sweep can span several machines with no
coordination beyond a shared (or later collected) output directory::

    python -m repro list                     # what experiments exist
    python -m repro run e8                   # single host: run + print report
    python -m repro run e8 --shard 2/4 --out runs/   # this host's fixed quarter
    python -m repro run e8 --steal --out runs/       # dynamic: claim and steal
    python -m repro status runs/             # progress at a glance
    python -m repro status runs/ --watch 5   # live terminal view
    python -m repro serve --out runs/        # live HTTP view (JSON + HTML)
    python -m repro merge runs/ --report     # fold the directory, print report

``run --shard`` splits the sweep statically (round-robin by run index) and
writes one checkpoint per completed sweep point, so a killed shard re-invoked
with the same command resumes instead of restarting.  ``run --steal`` replaces
the fixed split with the work-stealing coordinator: each worker claims
un-started sweep points via atomic leases in the shared directory and steals
points whose leases expire, so a slow or dead host sheds its unfinished work
(see ``docs/distributed.md``).  Either way, every host must build the same
plan, which is why ``run`` exposes the experiment name and the seed count
only -- both map deterministically to the plan; the seed list itself travels
in the on-disk artifacts, so ``merge`` and ``status`` need nothing but the
directory.
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys
import time
from typing import List, Optional, Sequence

from .adversary.adaptive import adaptive_scenario_names
from .adversary.library import scenario_names
from .experiments import ALL_EXPERIMENTS
from .experiments.common import default_seeds, run_planned
from .experiments.e11_resilience import resilience_scenario_names
from .harness.coordinator import (
    DEFAULT_LEASE_TTL,
    is_steal_dir,
    merge_stolen,
    read_plan_header,
    run_work_stealing,
    steal_status,
)
from .harness.distributed import (
    ShardError,
    ShardSpec,
    merge_shards,
    read_manifests,
    run_shard,
)
from .harness.report import format_aggregates, format_records


def _resolve_experiment(name: str):
    """Map a CLI experiment name (``e1``/``E1``) to its driver module."""
    module = ALL_EXPERIMENTS.get(name.upper())
    if module is None:
        choices = ", ".join(sorted(key.lower() for key in ALL_EXPERIMENTS))
        raise ShardError(f"unknown experiment {name!r}; choose from: {choices}")
    return module


def _build_plan(
    experiment: str,
    seed_count: Optional[int],
    seeds: Optional[List[int]] = None,
    scenarios: Optional[Sequence[str]] = None,
    require_scenarios: bool = True,
):
    """Build the named experiment's plan, forwarding a scenario restriction.

    ``scenarios`` is forwarded to drivers whose ``plan`` accepts it (e9).
    With ``require_scenarios`` a restriction the driver cannot honour is an
    error; without it (the merge path, which replays whatever the manifests
    recorded) it is silently ignored.
    """
    module = _resolve_experiment(experiment)
    if seeds is None and seed_count is not None:
        seeds = default_seeds(seed_count)
    kwargs = {"seeds": seeds}
    if scenarios is not None:
        if "scenarios" in inspect.signature(module.plan).parameters:
            kwargs["scenarios"] = tuple(scenarios)
        elif require_scenarios:
            raise ShardError(
                f"experiment {experiment!r} does not take --scenario "
                f"(only e9, e10 and e11 sweep fault scenarios)"
            )
    return module, module.plan(**kwargs)


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = []
    for key in sorted(ALL_EXPERIMENTS):
        module = ALL_EXPERIMENTS[key]
        summary = (module.__doc__ or "").strip().splitlines()[0]
        rows.append({"experiment": key.lower(), "summary": summary})
    print(format_records(rows))
    print()
    print("run one with:   python -m repro run <experiment> [--seeds N]")
    print("shard one with: python -m repro run <experiment> --shard I/K --out DIR")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scenarios = None
    if args.scenario is not None:
        # Each scenario-aware experiment validates against its own registry:
        # e10 the adaptive strategies, e11 the resilience schedules, e9 the
        # declarative library.
        experiment = args.experiment.upper()
        if experiment == "E10":
            known = adaptive_scenario_names()
        elif experiment == "E11":
            known = resilience_scenario_names()
        else:
            known = scenario_names()
        if args.scenario not in known:
            raise ShardError(
                f"unknown scenario {args.scenario!r} for {args.experiment}; "
                "choose from: " + ", ".join(known)
            )
        scenarios = (args.scenario,)
    module, plan = _build_plan(args.experiment, args.seeds, scenarios=scenarios)
    if args.steal and args.shard is not None:
        raise ShardError(
            "--steal and --shard are mutually exclusive: a directory is scheduled "
            "either dynamically (leases) or statically (round-robin), never both"
        )
    if not args.steal and (
        args.worker is not None
        or args.lease_ttl is not None
        or args.max_points is not None
        or args.wait
        or args.poll_interval is not None
    ):
        raise ShardError(
            "--worker, --lease-ttl, --max-points, --wait and --poll-interval "
            "only apply with --steal"
        )
    if args.poll_interval is not None and not args.wait:
        raise ShardError("--poll-interval only applies with --wait")
    if args.steal:
        if args.out is None:
            raise ShardError("--steal needs --out DIR to hold the leases and checkpoints")
        result = run_work_stealing(
            plan,
            args.out,
            worker=args.worker,
            lease_ttl=DEFAULT_LEASE_TTL if args.lease_ttl is None else args.lease_ttl,
            max_workers=args.max_workers,
            max_points=args.max_points,
            exec_mode=args.exec_mode,
            wait=args.wait,
            poll_interval=args.poll_interval,
        )
        print(
            f"worker {result.worker} of {plan.key}: "
            f"{len(result.computed)} points computed ({result.runs_executed} runs), "
            f"{len(result.stolen)} stolen, {len(result.already_done)} already done"
        )
        for label in result.executed:
            print(f"  computed  {label}")
        for label in result.stolen:
            print(f"  stolen    {label}")
        for label in result.already_done:
            print(f"  done      {label}")
        for label in result.lost:
            print(f"  lost      {label}  (a thief checkpointed it first)")
        for label in result.left_behind:
            print(f"  left      {label}  (leased by a live worker, or out of --max-points)")
        print(f"worker manifest: {result.manifest}")
        print(f"progress:  python -m repro status {result.out_dir}")
        print(f"when every point is done:  python -m repro merge {result.out_dir} --report")
        return 0
    if args.shard is not None and args.out is None:
        raise ShardError("--shard needs --out DIR to hold the manifest and checkpoints")
    if args.out is not None:
        shard = ShardSpec.parse(args.shard) if args.shard is not None else ShardSpec(1, 1)
        result = run_shard(
            plan, shard, args.out, max_workers=args.max_workers, exec_mode=args.exec_mode
        )
        done = result.runs_executed + result.runs_resumed
        print(f"shard {shard} of {plan.key}: {done} runs "
              f"({result.runs_executed} executed, {result.runs_resumed} resumed from checkpoints)")
        for label in result.executed:
            print(f"  computed  {label}")
        for label in result.resumed:
            print(f"  resumed   {label}")
        for label in result.skipped:
            print(f"  not-mine  {label}")
        print(f"manifest: {result.manifest}")
        print(f"when all {shard.count} shards are done:  python -m repro merge {result.out_dir} --report")
        return 0
    report = run_planned(
        plan, module.build_report, max_workers=args.max_workers, exec_mode=args.exec_mode
    )
    print(report.format())
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from .harness.runner import ALGORITHMS
    from .search import SearchSpec, replay_token, search

    if args.replay is not None:
        try:
            result = replay_token(args.replay)
        except ValueError as error:
            # Malformed tokens (and unknown algorithms inside them) follow
            # the CLI's error convention instead of escaping as tracebacks.
            print(f"error: {error}", file=sys.stderr)
            return 2
        if result.violation is not None:
            print(f"VIOLATION reproduced by {args.replay}")
            print(f"  {result.violation}")
            return 1
        print(f"schedule {args.replay} ran clean (no safety violation)")
        return 0
    if args.algorithm == "all":
        algorithms = list(ALGORITHMS)
    else:
        algorithms = [args.algorithm]
    per_algorithm = (
        None if args.time_budget is None else args.time_budget / max(1, len(algorithms))
    )
    exit_code = 0
    for algorithm in algorithms:
        try:
            spec = SearchSpec(algorithm=algorithm, n=args.n, seed=args.seed)
            outcome = search(
                spec,
                budget=args.budget,
                fanout_cap=args.fanout,
                max_decisions=args.max_decisions,
                wall_budget=per_algorithm,
            )
        except ValueError as error:
            # Unknown algorithms and out-of-range bounds follow the CLI's
            # error convention instead of escaping as tracebacks.
            print(f"error: {error}", file=sys.stderr)
            return 2
        if outcome.found:
            exit_code = 1
            print(f"{algorithm}: VIOLATION after {outcome.runs} schedules")
            print(f"  {outcome.violation}")
            print(f"  replay token: {outcome.token}")
            print(f"  reproduce:    python -m repro search --replay '{outcome.token}'")
        else:
            state = "space exhausted" if outcome.exhausted else "budget spent"
            print(f"{algorithm}: no violation in {outcome.runs} schedules ({state})")
    return exit_code


def _cmd_fit_delays(args: argparse.Namespace) -> int:
    from .network.empirical import fit_delay_model, load_rtt_samples

    try:
        samples = load_rtt_samples(args.dataset)
        model = fit_delay_model(
            samples,
            kind=args.model,
            resolution=args.resolution,
            unit_mean=args.unit_mean,
        )
    except ValueError as error:
        # Unreadable datasets and bad fit parameters follow the CLI's error
        # convention instead of escaping as tracebacks.
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"# fit from {len(samples)} samples in {args.dataset}"
          + (" (normalised to unit mean)" if args.unit_mean else ""))
    print(f"# describe: {model.describe()}")
    print(repr(model))
    return 0


def _recorded_provenance(out_dir: str):
    """The plan provenance a run directory recorded (header or first manifest)."""
    return (
        read_plan_header(out_dir)
        if is_steal_dir(out_dir)
        else read_manifests(out_dir)[0]
    )


def _plan_from_artifacts(out_dir: str):
    """Rebuild ``(module, plan)`` from a directory's recorded provenance.

    Raises :class:`ShardError` when the artifacts were not produced by the
    CLI (no experiment name recorded), since the plan cannot be rebuilt.
    """
    recorded = _recorded_provenance(out_dir)
    experiment = recorded.get("experiment")
    if not experiment:
        raise ShardError(
            f"artifacts in {out_dir} were not produced by the CLI (no experiment "
            f"recorded); merge them with repro.harness.distributed.merge_shards (or "
            f"repro.harness.coordinator.merge_stolen) and the plan that produced them"
        )
    return _build_plan(
        experiment,
        None,
        seeds=list(recorded["seeds"]),
        scenarios=recorded.get("scenarios"),
        require_scenarios=False,
    )


def _cmd_merge(args: argparse.Namespace) -> int:
    module, plan = _plan_from_artifacts(args.out_dir)
    if is_steal_dir(args.out_dir):
        merged = merge_stolen(args.out_dir, plan)
        source = f"{merged.shard_count} worker(s)"
    else:
        merged = merge_shards(args.out_dir, plan)
        source = f"{merged.shard_count} shard(s)"
    if args.report:
        print(module.build_report(merged.plan, merged.aggregates).format())
        return 0
    print(
        format_aggregates(
            merged.aggregates,
            title=f"{plan.key}: {source}, "
            f"{plan.total_runs} runs over {len(plan.points)} points",
        )
    )
    print()
    print(f"full experiment report:  python -m repro merge {args.out_dir} --report")
    return 0


def _telemetry_cell(snapshot: dict) -> str:
    """One compact table cell from a worker's telemetry snapshot.

    The full snapshot (every counter, gauge and timer) is on the
    ``/workers`` endpoint of ``python -m repro serve``; the table keeps
    the load-bearing digest: busy time, idleness, snapshot age.
    """
    parts = []
    timer = (snapshot.get("timers") or {}).get("point_seconds")
    if timer:
        parts.append(f"busy {timer['total']:.2f}s/{int(timer['count'])}pt")
    idle = (snapshot.get("counters") or {}).get("idle_polls")
    if idle:
        parts.append(f"{int(idle)} idle polls")
    stamp = snapshot.get("sampled_at")
    if stamp:
        parts.append(f"sampled {max(time.time() - stamp, 0.0):.0f}s ago")
    return ", ".join(parts) or "-"


def _cmd_status(args: argparse.Namespace) -> int:
    if args.watch is not None:
        if args.watch <= 0:
            raise ShardError(f"--watch interval must be positive, got {args.watch:g}")
        from .obs.serve import watch_status

        try:
            watch_status(args.out_dir, args.watch)
        except KeyboardInterrupt:
            pass
        return 0
    if is_steal_dir(args.out_dir):
        status = steal_status(args.out_dir)
        print(
            f"{status.experiment or status.plan_key or '?'}: "
            f"{status.done}/{status.points_total} points done "
            f"({status.stolen} stolen), {status.leased} leased, "
            f"{status.orphaned} orphaned, {status.unclaimed} unclaimed"
        )
        if status.workers:
            rows = []
            for row in status.workers:
                row = dict(row)
                telemetry = row.pop("telemetry", None)
                if isinstance(telemetry, dict):
                    row["telemetry"] = _telemetry_cell(telemetry)
                rows.append(row)
            print()
            print(format_records(rows))
        return 0
    rows = []
    for manifest in read_manifests(args.out_dir):
        points = manifest["points"]
        complete = sum(
            1 for record in points.values() if not record["runs"] or record.get("checkpoint")
        )
        # A killed shard's manifest has records only for the points it
        # reached, so the denominator must be the whole plan (the labels
        # list), not the records seen so far.
        total_points = len(manifest.get("labels") or points)
        rows.append(
            {
                "shard": f"{manifest['shard_index']}/{manifest['shard_count']}",
                "experiment": manifest.get("experiment") or manifest.get("plan_key", "?"),
                "points_done": f"{complete}/{total_points}",
                "runs_done": f"{manifest.get('runs_done', '?')}/{manifest.get('runs_total', '?')}",
            }
        )
    print(format_records(rows))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .obs.serve import make_server

    try:
        _, plan = _plan_from_artifacts(args.out)
    except ShardError:
        # Serving is read-only and mostly plan-free: without a rebuildable
        # plan (foreign artifacts, or a directory the workers have not
        # started yet) only /aggregate degrades, reporting the gap as JSON.
        plan = None
    server = make_server(args.out, plan, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(f"serving sweep {args.out} at http://{host}:{port}/  (Ctrl-C to stop)")
    print("endpoints: /status /progress /workers /aggregate")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run, shard, resume and merge the experiments E1-E11, "
        "search the schedule space for safety violations, or fit delay "
        "models from measured RTT data.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the available experiments").set_defaults(func=_cmd_list)

    run_parser = commands.add_parser("run", help="run one experiment, whole or as one shard")
    run_parser.add_argument("experiment", help="experiment name, e.g. e1 or E8")
    run_parser.add_argument(
        "--seeds", type=int, default=None, metavar="N",
        help="number of repetitions per sweep point (default: the experiment's own default)",
    )
    run_parser.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="restrict e9/e10/e11 to one fault scenario from the experiment's "
        "registry (e.g. lossy-links for e9, delay-pivotal for e10, "
        "kill-during-recovery for e11)",
    )
    run_parser.add_argument(
        "--shard", default=None, metavar="I/K",
        help="execute only shard I of K (1-based, static round-robin); every host must "
        "use the same experiment and --seeds",
    )
    run_parser.add_argument(
        "--steal", action="store_true",
        help="dynamic scheduling instead of --shard: claim un-started sweep points via "
        "atomic leases in --out and steal points whose leases expire, so slow or dead "
        "workers shed their unfinished work; any number of workers may share DIR",
    )
    run_parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="directory for manifests, leases and per-point checkpoints (required with "
        "--shard/--steal; re-running with the same DIR resumes from the checkpoints)",
    )
    run_parser.add_argument(
        "--worker", default=None, metavar="NAME",
        help="worker identity for --steal lease files (default: <hostname>-<pid>)",
    )
    run_parser.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS",
        help=f"--steal only: how long a silent worker's lease lasts before any other "
        f"worker may steal the point (default {DEFAULT_LEASE_TTL:g}s; leases are "
        f"renewed by heartbeat every TTL/4 while a point is computing)",
    )
    run_parser.add_argument(
        "--max-points", type=int, default=None, metavar="N",
        help="--steal only: compute at most N sweep points in this invocation "
        "(a bounded work grant), then exit",
    )
    run_parser.add_argument(
        "--wait", action="store_true",
        help="--steal only: when everything left is live-leased by other workers, "
        "idle and re-poll instead of exiting, so this worker picks up points as "
        "they free up (checkpoint landed elsewhere, or lease expired)",
    )
    run_parser.add_argument(
        "--poll-interval", type=float, default=None, metavar="SECONDS",
        help="--wait only: how often an idle worker re-scans the directory "
        "(default: lease TTL / 4, matching the heartbeat cadence)",
    )
    run_parser.add_argument(
        "--max-workers", type=int, default=None, metavar="W",
        help="parallel worker processes on this host (default: usable CPUs); with "
        "--exec-mode coop, how many kernels are co-hosted at once instead",
    )
    run_parser.add_argument(
        "--exec-mode", default=None, choices=["process", "coop", "auto"],
        help="execution engine: 'process' fans runs over a process pool, 'coop' hosts "
        "them as cooperatively interleaved kernels in this process (bit-identical "
        "results, no pickling or worker start-up; best for very large n), 'auto' "
        "picks coop for single-worker hosts or n >= 512 sweeps "
        "(default: $REPRO_EXEC_MODE, else process)",
    )
    run_parser.set_defaults(func=_cmd_run)

    search_parser = commands.add_parser(
        "search",
        help="bounded schedule-space search: permute same-timestamp dispatch orders "
        "hunting safety violations; exits 1 with a replay token when one is found",
    )
    search_parser.add_argument(
        "--algorithm", default="all", metavar="NAME",
        help="algorithm to search ('all' = every harness algorithm; "
        "'planted-ben-or' targets the deliberately broken fixture)",
    )
    search_parser.add_argument(
        "--budget", type=int, default=200, metavar="N",
        help="maximum schedules to execute per algorithm (default 200)",
    )
    search_parser.add_argument(
        "--n", type=int, default=4, metavar="N",
        help="system size (default 4; small n keeps the schedule space tight)",
    )
    search_parser.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="master seed fixing proposals and coin flips (default 0)",
    )
    search_parser.add_argument(
        "--fanout", type=int, default=4, metavar="F",
        help="alternatives explored per scheduling decision (default 4)",
    )
    search_parser.add_argument(
        "--max-decisions", type=int, default=64, metavar="D",
        help="how deep into a schedule new branches are opened (default 64)",
    )
    search_parser.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="wall-clock cap split across the searched algorithms (default: none)",
    )
    search_parser.add_argument(
        "--replay", default=None, metavar="TOKEN",
        help="re-execute one schedule from its replay token instead of searching",
    )
    search_parser.set_defaults(func=_cmd_search)

    fit_parser = commands.add_parser(
        "fit-delays",
        help="fit a delay model from a measured RTT dataset (CSV or JSONL) and "
        "print its repr, ready to paste into an ExperimentConfig",
    )
    fit_parser.add_argument(
        "dataset", metavar="FILE",
        help="RTT samples: .jsonl/.ndjson (numbers or objects with an rtt/delay/"
        "latency field) or CSV (a header naming such a column, or numeric rows)",
    )
    fit_parser.add_argument(
        "--model", default="empirical", choices=["empirical", "shifted-lognormal", "replay"],
        help="what to fit: an ECDF quantile grid (empirical, the default), a "
        "three-parameter shifted log-normal, or a deterministic trace replay "
        "of the samples in file order",
    )
    fit_parser.add_argument(
        "--resolution", type=int, default=64, metavar="R",
        help="empirical only: quantile-grid intervals kept by the sketch "
        "(default 64; any model quantile is within one grid cell of the data's)",
    )
    fit_parser.add_argument(
        "--unit-mean", action="store_true",
        help="rescale the samples to mean 1.0 before fitting, matching the "
        "simulator's unit-mean virtual-time convention (what e11 sweeps)",
    )
    fit_parser.set_defaults(func=_cmd_fit_delays)

    merge_parser = commands.add_parser(
        "merge", help="fold all shards or work-stealing workers in DIR into the single-host result"
    )
    merge_parser.add_argument("out_dir", metavar="DIR", help="directory holding every worker's output")
    merge_parser.add_argument(
        "--report", action="store_true",
        help="print the full experiment report (identical to an unsharded run)",
    )
    merge_parser.set_defaults(func=_cmd_merge)

    status_parser = commands.add_parser(
        "status",
        help="show progress in DIR: per-shard counts, or for work-stealing runs the "
        "done/leased/stolen/orphaned point counts and per-worker table",
    )
    status_parser.add_argument(
        "out_dir", metavar="DIR", help="directory holding shard manifests or a plan header"
    )
    status_parser.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="poll and redraw the status every SECONDS (the same renderer as the "
        "serve HTML page); Ctrl-C to stop",
    )
    status_parser.set_defaults(func=_cmd_status)

    serve_parser = commands.add_parser(
        "serve",
        help="serve live progress of DIR over HTTP: /status, /progress, /workers "
        "and /aggregate as JSON, plus an auto-refreshing HTML page at /; the "
        "partial /aggregate is folded incrementally and is bit-identical to "
        "merge over the same completed points",
    )
    serve_parser.add_argument(
        "--out", required=True, metavar="DIR",
        help="run directory to observe (work-stealing or static shards; read-only)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=8321, metavar="P",
        help="TCP port to listen on (default 8321; 0 picks an ephemeral port)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="address to bind (default 127.0.0.1; use 0.0.0.0 to expose on the LAN)",
    )
    serve_parser.set_defaults(func=_cmd_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code (2 on shard/manifest errors)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ShardError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream consumer (e.g. `... | head`) closed the pipe; point
        # stdout at devnull so the interpreter's exit-time flush stays quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
