"""Execution-trace recording.

Traces are optional (they cost memory in long sweeps) and are mainly used
for debugging algorithms and for the example scripts, which print excerpts
so that a reader can follow a consensus execution step by step.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from .events import TraceEntry


class Trace:
    """A bounded, append-only record of simulation activity."""

    def __init__(self, enabled: bool = False, max_entries: int = 100_000) -> None:
        self.enabled = enabled
        self.max_entries = max_entries
        self.entries: List[TraceEntry] = []
        self._sequence = 0
        self.dropped = 0

    def record(self, time: float, kind: str, pid: Optional[int], detail: str) -> None:
        """Append an entry if tracing is enabled and the bound is not hit."""
        if not self.enabled:
            return
        self._sequence += 1
        if len(self.entries) >= self.max_entries:
            self.dropped += 1
            return
        self.entries.append(
            TraceEntry(time=time, sequence=self._sequence, kind=kind, pid=pid, detail=detail)
        )

    def annotate(self, pid: Optional[int], message: str) -> None:
        """Record a free-form annotation originating from algorithm code."""
        self.record(time=-1.0, kind="note", pid=pid, detail=message)

    def for_process(self, pid: int) -> List[TraceEntry]:
        """All entries attributed to process ``pid``."""
        return [entry for entry in self.entries if entry.pid == pid]

    def of_kind(self, kind: str) -> List[TraceEntry]:
        """All entries of a given kind (``step``, ``send``, ``deliver``...)."""
        return [entry for entry in self.entries if entry.kind == kind]

    def format(self, entries: Optional[Iterable[TraceEntry]] = None) -> str:
        """Render entries as aligned text lines."""
        chosen = self.entries if entries is None else list(entries)
        return "\n".join(entry.format() for entry in chosen)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        status = "on" if self.enabled else "off"
        return f"Trace({status}, entries={len(self.entries)}, dropped={self.dropped})"
