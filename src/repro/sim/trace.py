"""Execution-trace recording.

Traces are optional (they cost memory in long sweeps) and are mainly used
for debugging algorithms and for the example scripts, which print excerpts
so that a reader can follow a consensus execution step by step.

Entries are structured (:class:`~repro.sim.events.TraceEntry`): each one
carries the virtual time, a per-trace sequence number, a ``kind``, the
originating process id, a human-readable ``detail`` string, and -- for
entries whose detail used to be the only record of machine-relevant fields
-- a JSON-serializable ``data`` mapping.  :meth:`Trace.to_jsonl` serializes
a whole trace as JSON Lines, one entry per line with stable keys, so a
run's execution can be dumped to disk, diffed against another run's, and
post-processed with any JSONL tooling; the ``trace_sink`` option of
:class:`~repro.sim.kernel.SimulationKernel` dumps automatically when a run
ends.  Recording stays strictly opt-in: a disabled trace records nothing,
and the kernel's hot loop hoists the enabled flag so the dormant cost is
one branch per traced site (bench-gated in ``benchmarks/test_bench_obs.py``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from .events import TraceEntry


class Trace:
    """A bounded, append-only record of simulation activity."""

    def __init__(self, enabled: bool = False, max_entries: int = 100_000) -> None:
        self.enabled = enabled
        self.max_entries = max_entries
        self.entries: List[TraceEntry] = []
        self._sequence = 0
        self.dropped = 0

    def record(
        self,
        time: float,
        kind: str,
        pid: Optional[int],
        detail: str,
        data: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Append an entry if tracing is enabled and the bound is not hit.

        ``data`` carries the entry's machine-readable fields (the send's
        destination, a span marker's round number...); it must hold
        JSON-serializable scalars only, so the trace always dumps cleanly.
        """
        if not self.enabled:
            return
        self._sequence += 1
        if len(self.entries) >= self.max_entries:
            self.dropped += 1
            return
        self.entries.append(
            TraceEntry(
                time=time, sequence=self._sequence, kind=kind, pid=pid, detail=detail, data=data
            )
        )

    def annotate(self, pid: Optional[int], message: str, time: float = 0.0) -> None:
        """Record a free-form annotation originating from algorithm code.

        ``time`` should be the current virtual time; algorithm code goes
        through :meth:`~repro.sim.context.ProcessContext.log`, which threads
        ``kernel.now`` here so annotations land at the simulation time they
        were made (they used to carry a ``-1.0`` sentinel).
        """
        self.record(time=time, kind="note", pid=pid, detail=message)

    def for_process(self, pid: int) -> List[TraceEntry]:
        """All entries attributed to process ``pid``."""
        return [entry for entry in self.entries if entry.pid == pid]

    def of_kind(self, kind: str) -> List[TraceEntry]:
        """All entries of a given kind (``step``, ``send``, ``deliver``...)."""
        return [entry for entry in self.entries if entry.kind == kind]

    def format(self, entries: Optional[Iterable[TraceEntry]] = None) -> str:
        """Render entries as aligned text lines."""
        chosen = self.entries if entries is None else list(entries)
        return "\n".join(entry.format() for entry in chosen)

    # -------------------------------------------------------- serialization
    def to_jsonl(self, entries: Optional[Iterable[TraceEntry]] = None) -> str:
        """Serialize entries as JSON Lines (one compact object per line).

        Keys per line follow :meth:`~repro.sim.events.TraceEntry.to_json`
        and are emitted in that fixed order, so two dumps of equivalent
        executions diff line by line.  The terminating newline is included
        whenever at least one entry is rendered.
        """
        chosen = self.entries if entries is None else entries
        lines = [
            json.dumps(entry.to_json(), separators=(",", ":"), sort_keys=False)
            for entry in chosen
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def dump_jsonl(self, path: Union[str, Path]) -> Path:
        """Write the whole trace to ``path`` as JSONL (atomically) and return it.

        A final ``meta`` line records the entry count and how many entries
        the bound dropped, so a consumer can tell a complete dump from a
        truncated recording.
        """
        target = Path(path)
        payload = self.to_jsonl() + json.dumps(
            {"meta": {"entries": len(self.entries), "dropped": self.dropped}},
            separators=(",", ":"),
        ) + "\n"
        tmp = target.with_name(f"{target.name}.{os.getpid()}.tmp")
        tmp.write_text(payload, encoding="utf-8")
        os.replace(tmp, target)
        return target

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        status = "on" if self.enabled else "off"
        return f"Trace({status}, entries={len(self.entries)}, dropped={self.dropped})"
