"""Cooperative multi-kernel execution: step K kernels in one process.

One :class:`~repro.sim.kernel.SimulationKernel` is synchronous, so a single
run is bound to one core's speed and one heap's worth of events.  This module
hosts **K kernels in one process** and interleaves them in event batches:
each kernel advances through :meth:`~repro.sim.kernel.SimulationKernel.run_batch`
until its budget runs out, yields, and the scheduler steps the next one.
Nothing runs concurrently -- the interleaving is pure cooperative multitasking
over generators -- which is exactly why it is safe.

Why interleaving cannot change results
--------------------------------------
Every run owns a private :class:`~repro.sim.rng.RandomSource` derived from
its own master seed, and every stochastic subsystem inside the run draws
from a *named* stream of that source (``("kernel", "jitter")`` for scheduler
tie-breaks, ``("proposals",)``, ``("local-coin", pid)``, ``("adversary",)``,
the network's delay streams, ...).  Two co-hosted kernels therefore share no
generator state at all; suspending one mid-run cannot perturb another's
draws.  The scheduler's *own* randomness (the optional random interleave
policy) is split off the same way -- per (worker, subsystem) via
:meth:`~repro.sim.rng.RandomSource.spawn` -- so it can never collide with
any run's streams either.  The consequence, enforced by
``tests/test_multikernel.py``: a logical run is **bit-identical** whether it
is hosted alone, on 1 cooperative slot, or interleaved with K-1 neighbours
in any interleave order.

The drivers this scheduler steps are plain generators: yield to hand the
slot back, return (``StopIteration.value``) to deliver the final result.
:func:`kernel_stepper` wraps a bare kernel; the harness wraps a full
prepared consensus run (see ``repro.harness.parallel``).
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, List, Optional, Sequence

from .kernel import SimulationKernel, SimulationResult
from .rng import RandomSource

#: Events granted to a kernel per cooperative turn.  Large enough that the
#: generator send/yield machinery is noise against the events themselves
#: (<0.1% at the measured ~500k events/sec), small enough that K co-hosted
#: kernels make progress in visibly overlapping stripes.
DEFAULT_BATCH_EVENTS = 4096

#: The interleave policies :class:`CooperativeScheduler` knows.
INTERLEAVE_POLICIES = ("round-robin", "random")


def scheduler_rng(seed: int, worker: int = 0) -> RandomSource:
    """The RNG namespace a cooperative scheduler may draw from.

    Split per (worker, subsystem) off a master seed via
    :meth:`~repro.sim.rng.RandomSource.spawn`, mirroring how every other
    subsystem derives its streams -- the scheduler's draws can therefore
    never collide with any hosted run's streams, whatever the seed.
    """
    return RandomSource(seed).spawn("multikernel", worker, "scheduler")


def kernel_stepper(
    kernel: SimulationKernel, batch_events: int = DEFAULT_BATCH_EVENTS
) -> Generator[None, None, SimulationResult]:
    """A driver generator advancing ``kernel`` one event batch per turn.

    Yields after every exhausted budget; returns the final
    :class:`~repro.sim.kernel.SimulationResult` once the run terminates.
    """
    if batch_events < 1:
        raise ValueError(f"batch_events must be >= 1, got {batch_events}")
    while True:
        result = kernel.run_batch(batch_events)
        if result is not None:
            return result
        yield


class CooperativeScheduler:
    """Interleave driver generators over ``width`` cooperative slots.

    ``width`` is how many drivers are in flight at once (the cooperative
    analogue of a pool's worker count); remaining drivers queue behind them
    in input order and backfill slots as runs finish.  Results come back in
    input order, whatever the interleaving.

    ``interleave`` picks which occupied slot runs next: ``"round-robin"``
    (the default -- deterministic, cache-friendly stripes) or ``"random"``,
    which draws from ``rng`` (a :func:`scheduler_rng`-style namespace).
    Because hosted runs share no RNG state with each other or with the
    scheduler, both policies produce bit-identical per-run results -- the
    random policy exists precisely to let tests assert that.
    """

    def __init__(
        self,
        width: int,
        interleave: str = "round-robin",
        rng: Optional[RandomSource] = None,
    ) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if interleave not in INTERLEAVE_POLICIES:
            raise ValueError(
                f"unknown interleave {interleave!r}; choose from {INTERLEAVE_POLICIES}"
            )
        if interleave == "random" and rng is None:
            rng = scheduler_rng(0)
        self.width = width
        self.interleave = interleave
        self._pick_random = (
            rng.stream("interleave").randrange if interleave == "random" else None
        )

    def run(self, drivers: Iterable[Generator[None, None, Any]]) -> List[Any]:
        """Step every driver to completion; results in input order."""
        pending = list(enumerate(drivers))
        results: List[Any] = [None] * len(pending)
        pending.reverse()  # pop() from the tail = input order
        #: Occupied slots, each ``(input_index, driver)``.
        slots: List[Any] = []
        while len(slots) < self.width and pending:
            slots.append(pending.pop())
        cursor = 0
        pick_random = self._pick_random
        while slots:
            if pick_random is not None:
                cursor = pick_random(len(slots))
            elif cursor >= len(slots):
                cursor = 0
            index, driver = slots[cursor]
            try:
                next(driver)
            except StopIteration as stop:
                results[index] = stop.value
                if pending:
                    slots[cursor] = pending.pop()
                else:
                    del slots[cursor]
                # Keep the cursor in place: the backfilled (or shifted-in)
                # driver runs next, so every slot still gets equal turns.
                continue
            cursor += 1
        return results


def run_cooperative(
    kernels: Sequence[SimulationKernel],
    width: Optional[int] = None,
    batch_events: int = DEFAULT_BATCH_EVENTS,
    interleave: str = "round-robin",
    rng: Optional[RandomSource] = None,
) -> List[SimulationResult]:
    """Run every kernel to completion on one cooperative host.

    Convenience wrapper: ``width`` defaults to hosting all kernels at once.
    Each result is bit-identical to calling that kernel's ``run()`` alone.
    """
    scheduler = CooperativeScheduler(
        width=width if width is not None else max(1, len(kernels)),
        interleave=interleave,
        rng=rng,
    )
    return scheduler.run([kernel_stepper(kernel, batch_events) for kernel in kernels])


def drive_to_completion(
    driver: Generator[None, None, Any],
) -> Any:
    """Exhaust one driver generator and return its result (no interleaving)."""
    while True:
        try:
            next(driver)
        except StopIteration as stop:
            return stop.value
