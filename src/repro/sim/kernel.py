"""The discrete-event simulation kernel.

The kernel owns the virtual clock, the event queue, the simulated processes
and the links to the message-passing and shared-memory substrates.  It is an
*asynchronous adversary*: the interleaving of process steps and the delivery
order of messages are controlled entirely by the (seeded) event schedule, so
the algorithms can assume nothing beyond what the paper's model grants them.

The hot path is deliberately flat (see ``docs/performance.md``): the queue
holds ``(time, sequence, kind, pid, payload)`` tuples, dispatch is a direct
list index on :class:`~repro.sim.events.EventKind`, quiescence is a live
counter instead of a per-event scan, and trace strings are only built when
tracing is enabled.  The public :class:`~repro.sim.events.Event` dataclasses
appear only at the boundary (adversary consultation, traces, backlogs).

An explicit fault-injection adversary (:mod:`repro.adversary`) can sharpen
the schedule further: when installed, it is consulted at message-send time
(omission, duplication, reordering, partitions) and at event-dispatch time
(per-process slowdowns), and may schedule transient outages via
:meth:`SimulationKernel.schedule_pause`.  With no adversary installed those
hooks cost one ``is None`` check per event and nothing else.
"""

from __future__ import annotations

import enum
import heapq
import math
from heapq import heappop, heappush
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Set, Tuple, Union

from .context import (
    LocalEffect,
    ProcessContext,
    ProcessStats,
    RoundLimitExceeded,
    SendEffect,
    SharedMemEffect,
    WaitEffect,
)
from .events import (
    EVENT_KIND_NAMES,
    EventKind,
    describe_entry,
    entry_event,
    event_entry_fields,
)
from .process import ProcessState, SimProcess
from .rng import RandomSource
from .trace import Trace

_START = int(EventKind.PROCESS_START)
_RESUME = int(EventKind.STEP_RESUME)
_DELIVERY = int(EventKind.MESSAGE_DELIVERY)
_CRASH = int(EventKind.PROCESS_CRASH)
_PAUSE = int(EventKind.PROCESS_PAUSE)
_RECOVER = int(EventKind.PROCESS_RECOVER)

#: An adversary returning this from ``defer`` drops the delivery outright
#: (an infinite deferral is an omission); only valid for delivery events.
_INF = math.inf


class RunStatus(enum.Enum):
    """Outcome of a simulation run."""

    DECIDED = "decided"
    DEADLOCK = "deadlock"
    TIMEOUT = "timeout"
    ROUND_LIMIT = "round-limit"

    @property
    def terminated(self) -> bool:
        """True when every correct process decided."""
        return self is RunStatus.DECIDED


@dataclass
class SimConfig:
    """Tunable parameters of the simulated execution environment.

    The delay constants are in arbitrary virtual-time units.  Their default
    ratio (shared-memory operation one order of magnitude cheaper than a
    typical message delay, local steps cheaper still) encodes the paper's
    efficiency premise: intra-cluster agreement is cheap, inter-cluster
    message exchange is expensive.
    """

    max_time: float = 1e9
    max_rounds: Optional[int] = 500
    local_step_delay: float = 1e-4
    sm_op_delay: float = 1e-3
    scheduling_jitter: float = 1e-5
    trace: bool = False
    trace_max_entries: int = 100_000


@dataclass
class SimulationResult:
    """Everything the harness needs to know about a finished run."""

    status: RunStatus
    decisions: Dict[int, Any]
    decision_times: Dict[int, float]
    correct: Set[int]
    crashed: Set[int]
    non_terminated: Set[int]
    rounds: Dict[int, int]
    end_time: float
    events_processed: int
    process_stats: Dict[int, ProcessStats]

    @property
    def decided_values(self) -> Set[Any]:
        """The set of distinct values decided by any process."""
        return {value for value in self.decisions.values()}

    @property
    def max_round(self) -> int:
        """Largest round reached by any process (0 if none recorded)."""
        return max(self.rounds.values(), default=0)

    def decision_of_correct(self) -> Optional[Any]:
        """The unique value decided by correct processes, if any decided."""
        values = {self.decisions[pid] for pid in self.correct if pid in self.decisions}
        if not values:
            return None
        if len(values) > 1:
            raise ValueError(f"agreement violated: correct processes decided {values}")
        return next(iter(values))


class SimulationKernel:
    """Seeded discrete-event simulator for hybrid-model executions."""

    def __init__(
        self,
        seed: int = 0,
        config: Optional[SimConfig] = None,
        rng: Optional[RandomSource] = None,
        trace_sink: Optional[Union[str, Path]] = None,
    ) -> None:
        self.config = config or SimConfig()
        self.rng = rng if rng is not None else RandomSource(seed)
        self.now: float = 0.0
        #: When set, the trace is force-enabled and dumped to this path as
        #: JSONL (see :meth:`~repro.sim.trace.Trace.dump_jsonl`) every time
        #: the run reaches a terminal state.  A kernel option rather than a
        #: :class:`SimConfig` field on purpose: where a trace lands on one
        #: host must not perturb plan fingerprints shared across hosts.
        self.trace_sink = Path(trace_sink) if trace_sink is not None else None
        self.trace = Trace(
            enabled=self.config.trace or self.trace_sink is not None,
            max_entries=self.config.trace_max_entries,
        )
        #: Flat event queue: ``(time, sequence, kind, pid, payload)`` tuples.
        self._queue: List[Tuple[float, int, int, int, Any]] = []
        self._sequence = 0
        self._processes: Dict[int, SimProcess] = {}
        #: Registered processes that have not yet reached a terminal state;
        #: maintained by :meth:`_settle` so the run loop's quiescence check
        #: is one integer comparison instead of an O(n) scan per event.
        self._live = 0
        self._network = None
        self._adversary = None
        self._schedule_controller = None
        #: Adversary-deferred events, keyed by the re-queued entry's sequence
        #: number.  Keeps the *same* :class:`Event` object for the second
        #: offer, so the adversary's identity-based once-only bookkeeping
        #: behaves exactly as it did when the queue held event objects.
        self._deferred: Dict[int, Any] = {}
        self.events_processed = 0
        self.dropped_deliveries = 0
        self._sched_rng = self.rng.stream("kernel", "jitter")
        self._sched_random = self._sched_rng.random
        # Kind-indexed dispatch: the run loop indexes this list directly with
        # the entry's EventKind.  Built from the *current* class attributes at
        # construction time, so tests may patch handler methods on the class
        # before instantiating a kernel.
        self._handlers: List[Callable[[int, Any], None]] = [
            self._handle_start,
            self._handle_resume,
            self._handle_delivery,
            self._handle_crash,
            self._handle_pause,
            self._handle_recover,
        ]
        self._effect_handlers: Dict[type, Callable[[SimProcess, Any], None]] = {
            SendEffect: self._do_send,
            SharedMemEffect: self._do_sm_op,
            WaitEffect: self._do_wait,
            LocalEffect: self._do_local,
        }

    # ----------------------------------------------------------------- setup
    def attach_network(self, network) -> None:
        """Attach the message-passing substrate used to time deliveries."""
        self._network = network

    def install_adversary(self, adversary) -> None:
        """Install a fault-injection adversary (see :mod:`repro.adversary`).

        The adversary is consulted at message-send time (which delivery
        delays a send turns into) and at event-dispatch time (whether an
        event is deferred), and may schedule pause/recover events through
        :meth:`schedule_pause`.  Must be called after every process is
        registered; with no adversary installed the kernel pays nothing
        beyond one ``is None`` check per event.
        """
        if self._adversary is not None:
            raise RuntimeError("an adversary is already installed")
        adversary.install(self)
        self._adversary = adversary

    @property
    def adversary(self):
        """The installed fault-injection adversary, or ``None``."""
        return self._adversary

    def install_schedule_controller(self, controller) -> None:
        """Install a dispatch-order controller (see :mod:`repro.search`).

        At every point where the queue's head holds several entries with the
        *same* virtual timestamp, the controller's
        ``choose(now, time, entries)`` picks which entry (by index into the
        sequence-ordered tie list) dispatches next; the rest are re-queued
        untouched.  With no ties -- or no controller -- dispatch order is
        the usual ``(time, sequence)`` order, so a controller that always
        chooses index 0 reproduces the uncontrolled execution exactly.
        Costs one ``is None`` check per event when uninstalled.
        """
        if self._schedule_controller is not None:
            raise RuntimeError("a schedule controller is already installed")
        self._schedule_controller = controller

    @property
    def schedule_controller(self):
        """The installed dispatch-order controller, or ``None``."""
        return self._schedule_controller

    @property
    def network(self):
        """The attached message-passing substrate, or ``None``."""
        return self._network

    def add_process(self, pid: int, factory: Callable[[ProcessContext], Any]) -> SimProcess:
        """Register a process whose behaviour is ``factory(ctx)`` (a generator)."""
        if pid in self._processes:
            raise ValueError(f"duplicate process id {pid}")
        context = ProcessContext(pid, self)
        proc = SimProcess(pid=pid, context=context, factory=factory)
        self._processes[pid] = proc
        self._live += 1
        self._schedule(0.0, _START, pid, None)
        return proc

    def schedule_crash(self, pid: int, time: float) -> None:
        """Schedule process ``pid`` to crash at virtual ``time``."""
        if pid not in self._processes:
            raise KeyError(f"unknown process id {pid}")
        if time < 0:
            raise ValueError("crash time must be non-negative")
        self._schedule(time, _CRASH, pid, None)

    def schedule_pause(self, pid: int, down_at: float, up_at: float) -> None:
        """Schedule a transient outage of ``pid`` during ``[down_at, up_at)``."""
        if pid not in self._processes:
            raise KeyError(f"unknown process id {pid}")
        if down_at < 0 or up_at <= down_at:
            raise ValueError(f"need 0 <= down_at < up_at, got [{down_at}, {up_at})")
        self._schedule(down_at, _PAUSE, pid, None)
        self._schedule(up_at, _RECOVER, pid, None)

    def process_ids(self) -> List[int]:
        """All registered process ids, in ascending order."""
        return sorted(self._processes)

    def process(self, pid: int) -> SimProcess:
        """The kernel-side record of process ``pid``."""
        return self._processes[pid]

    @property
    def processes(self) -> Dict[int, SimProcess]:
        """A snapshot of the registered processes, keyed by pid."""
        return dict(self._processes)

    # ------------------------------------------------------------- scheduling
    def _schedule(self, time: float, kind: int, pid: int, payload: Any) -> None:
        self._sequence += 1
        heappush(self._queue, (time, self._sequence, kind, pid, payload))

    def schedule_event(self, time: float, event) -> None:
        """Schedule a public :class:`~repro.sim.events.Event` object.

        The boundary converter for callers holding event objects (tests,
        tooling); the kernel's own paths schedule flat entries directly.
        """
        kind, pid, payload = event_entry_fields(event)
        self._schedule(time, kind, pid, payload)

    def _controlled_pop(self, controller) -> Tuple[float, int, int, int, Any]:
        """Pop the next entry, letting ``controller`` pick among head ties.

        Entries sharing the head's virtual timestamp form the tie set (in
        sequence order, i.e. the order the uncontrolled kernel would
        dispatch them); the controller returns the index to dispatch now,
        and the rest are pushed back with their original sequence numbers,
        so they re-enter later tie sets unchanged.  A single-entry head is
        never offered -- there is no scheduling freedom to exercise.
        """
        queue = self._queue
        first = heappop(queue)
        time = first[0]
        if not queue or queue[0][0] != time:
            return first
        ties = [first]
        while queue and queue[0][0] == time:
            ties.append(heappop(queue))
        index = controller.choose(self.now, time, ties)
        if not 0 <= index < len(ties):
            raise ValueError(
                f"schedule controller chose index {index} among {len(ties)} tied entries"
            )
        chosen = ties.pop(index)
        for entry in ties:
            heappush(queue, entry)
        return chosen

    def _jitter(self) -> float:
        if self.config.scheduling_jitter <= 0:
            return 0.0
        return self._sched_random() * self.config.scheduling_jitter

    def _resume_later(self, pid: int, value: Any, delay: float) -> None:
        jitter = self.config.scheduling_jitter
        if jitter > 0:
            time = self.now + delay + self._sched_random() * jitter
        else:
            time = self.now + delay
        self._sequence += 1
        heappush(self._queue, (time, self._sequence, _RESUME, pid, value))

    # -------------------------------------------------------------- main loop
    def run(self) -> SimulationResult:
        """Process events until completion, quiescence or the time bound.

        Equivalent to :meth:`run_batch` with an unlimited budget; the batch
        form exists so a cooperative host (:mod:`repro.sim.multikernel`) can
        interleave several kernels in one process.  Running a kernel through
        any sequence of ``run_batch`` calls is bit-identical to one ``run``
        call: the budget only decides *when* control returns, never what the
        kernel does with the next event.
        """
        result = self.run_batch(-1)
        if result is None:  # pragma: no cover - unlimited budgets always finish
            raise AssertionError("unbounded run_batch returned no result")
        return result

    def run_batch(self, max_events: int = -1) -> Optional[SimulationResult]:
        """Process at most ``max_events`` events; ``-1`` means no budget.

        Returns the :class:`SimulationResult` when the run reached a terminal
        state (every process settled, quiescence, or the time bound), or
        ``None`` when the budget ran out with work still queued -- call again
        to continue exactly where the previous batch stopped.  Deferred
        (adversary-postponed) events do not count against the budget; only
        dispatched events do, matching :attr:`events_processed`.

        The two majority event kinds -- message deliveries and step resumes
        (including the resume's send/wait effect handling) -- are inlined
        into the loop body so the whole hot chain runs on loop-hoisted
        locals with no intervening call frames.  The ``_handle_*`` methods
        remain as the dispatch seam for the remaining kinds and for any
        entries handled through the table.  Everything here must stay
        bit-identical to the out-of-line handlers (the golden tests compare
        full e1-e9 summaries against a pre-refactor fixture).
        """
        if max_events == 0 or max_events < -1:
            raise ValueError(f"max_events must be positive or -1, got {max_events}")
        if not self._processes:
            raise RuntimeError("no processes registered")
        budget = max_events
        queue = self._queue
        trace = self.trace
        # Hoisted once per run: tracing cannot be toggled mid-run (and
        # Trace.record self-guards anyway, so boundary paths stay correct).
        trace_enabled = trace.enabled
        adversary = self._adversary
        controller = self._schedule_controller
        handlers = self._handlers
        processes: Any = self._processes
        if set(processes) == set(range(len(processes))):
            # Dense pid range (the common case): a list subscript beats a
            # dict lookup on the two inlined majority paths below.  Sparse
            # pid sets keep the dict.
            processes = [processes[index] for index in range(len(processes))]
        network = self._network
        net_stats = network.stats if network is not None else None
        sched_random = self._sched_random
        effect_handlers = self._effect_handlers
        config = self.config
        max_time = config.max_time
        local_step_delay = config.local_step_delay
        jitter = config.scheduling_jitter
        ready = ProcessState.READY
        blocked = ProcessState.BLOCKED
        crashed = ProcessState.CRASHED
        processed = 0
        try:
            while queue:
                if processed == budget:
                    # Budget spent with work still queued: hand control back
                    # to the cooperative host (the ``finally`` flushes the
                    # counter); the next call resumes on the same queue.
                    return None
                if controller is None:
                    time, sequence, kind, pid, payload = heappop(queue)
                else:
                    time, sequence, kind, pid, payload = self._controlled_pop(controller)
                if time > max_time:
                    self.now = max_time
                    self.events_processed += processed
                    processed = 0
                    return self._result(RunStatus.TIMEOUT)
                if time > self.now:
                    self.now = time
                if adversary is not None:
                    event = self._deferred.pop(sequence, None)
                    if event is None:
                        event = entry_event(kind, pid, payload)
                    extra = adversary.defer(event, self.now)
                    if extra > 0.0:
                        if extra == _INF:
                            # An infinite deferral is an omission: only
                            # deliveries may be dropped this way (dropping a
                            # step would wedge the process outright).
                            if kind != _DELIVERY:
                                raise RuntimeError(
                                    f"adversary returned an infinite deferral for "
                                    f"non-delivery event {event!r}"
                                )
                            self._network.record_fault("omitted")
                            if trace_enabled:
                                trace.record(
                                    self.now,
                                    "omit",
                                    pid,
                                    "dropped at dispatch by adversary",
                                    {"at": "dispatch"},
                                )
                            continue
                        self._sequence += 1
                        self._deferred[self._sequence] = event
                        heappush(
                            queue, (self.now + extra, self._sequence, kind, pid, payload)
                        )
                        continue
                processed += 1
                if trace_enabled:
                    trace.record(
                        self.now,
                        "event",
                        pid,
                        describe_entry(kind, pid, payload),
                        {"event": EVENT_KIND_NAMES[kind]},
                    )
                if kind == _DELIVERY:
                    # Inlined _handle_delivery: deliveries are the majority
                    # event kind, and they can never settle a process, so the
                    # quiescence re-check below is skipped too.
                    proc = processes[pid]
                    state = proc.state
                    if state is crashed:
                        self.dropped_deliveries += 1
                        continue
                    if proc.paused:
                        proc.paused_backlog.append((_DELIVERY, pid, payload))
                        continue
                    proc.mailbox.append(payload)
                    if net_stats is not None:
                        net_stats.messages_delivered += 1
                        net_stats.delivered_to_process[pid] += 1
                    if state is blocked:
                        result = proc.wait_predicate(proc.mailbox)
                        if result is not None:
                            proc.wait_predicate = None
                            proc.state = ready
                            if jitter > 0:
                                time = self.now + local_step_delay + sched_random() * jitter
                            else:
                                time = self.now + local_step_delay
                            self._sequence += 1
                            heappush(queue, (time, self._sequence, _RESUME, pid, result))
                    continue
                if kind == _RESUME:
                    # Inlined _handle_resume, including the _advance body and
                    # the send/wait effect handlers.
                    proc = processes[pid]
                    state = proc.state
                    if state is not ready and state is not blocked:
                        continue
                    if proc.paused:
                        proc.paused_backlog.append((_RESUME, pid, payload))
                        continue
                    proc.stats.steps += 1
                    try:
                        effect = proc.generator.send(payload)
                    except StopIteration as stop:
                        proc.decision = stop.value
                        proc.decision_time = self.now
                        self._settle(
                            proc,
                            ProcessState.DECIDED if stop.value is not None else ProcessState.HALTED,
                        )
                        if stop.value is None:
                            proc.halt_reason = "returned None"
                        if trace_enabled:
                            trace.record(self.now, "decide", pid, repr(stop.value))
                        if self._live == 0:
                            break
                        continue
                    except RoundLimitExceeded as exceeded:
                        self._settle(proc, ProcessState.HALTED)
                        proc.halt_reason = str(exceeded)
                        if trace_enabled:
                            trace.record(self.now, "halt", pid, proc.halt_reason)
                        if self._live == 0:
                            break
                        continue
                    cls = type(effect)
                    if cls is SendEffect:
                        if network is None:
                            raise RuntimeError("no network attached; cannot handle SendEffect")
                        dest = effect.dest
                        now = self.now
                        message, delay = network.transmit(pid, dest, effect.payload, now)
                        if trace_enabled:
                            trace.record(
                                now, "send", pid, f"to={dest} {effect.payload!r}", {"dest": dest}
                            )
                        if adversary is None:
                            # One batched sequence bump covers both pushes; the
                            # delivery keeps the lower number, exactly as two
                            # bumps would assign.
                            sequence = self._sequence + 2
                            self._sequence = sequence
                            heappush(queue, (now + delay, sequence - 1, _DELIVERY, dest, message))
                        else:
                            self._adversarial_send(pid, dest, message, delay)
                            sequence = self._sequence + 1
                            self._sequence = sequence
                        if jitter > 0:
                            time = now + local_step_delay + sched_random() * jitter
                        else:
                            time = now + local_step_delay
                        heappush(queue, (time, sequence, _RESUME, pid, None))
                    elif cls is WaitEffect:
                        result = effect.predicate(proc.mailbox)
                        if result is not None:
                            if jitter > 0:
                                time = self.now + local_step_delay + sched_random() * jitter
                            else:
                                time = self.now + local_step_delay
                            self._sequence += 1
                            heappush(queue, (time, self._sequence, _RESUME, pid, result))
                        else:
                            proc.state = blocked
                            proc.wait_predicate = effect.predicate
                            if trace_enabled:
                                trace.record(self.now, "block", pid, "waiting on messages")
                    else:
                        handler = effect_handlers.get(cls) or self._resolve_effect_handler(effect)
                        if handler is None:
                            raise TypeError(
                                f"process {pid} yielded {effect!r}, which is not a recognised effect"
                            )
                        handler(proc, effect)
                        if self._live == 0:
                            break
                    continue
                handlers[kind](pid, payload)
                if self._live == 0:
                    break
        finally:
            # The counter is accumulated locally (one attribute store per
            # run, not per event) and flushed on every exit path.
            self.events_processed += processed
        return self._result(self._final_status())

    def _all_settled(self) -> bool:
        """Whether every registered process reached a terminal state."""
        return self._live == 0

    def _settle(self, proc: SimProcess, state: ProcessState) -> None:
        """Move ``proc`` into terminal ``state``, maintaining the live count."""
        proc.state = state
        self._live -= 1

    # ---------------------------------------------------------- event handlers
    def _handle_start(self, pid: int, payload: Any) -> None:
        proc = self._processes[pid]
        if proc.state is ProcessState.CRASHED:
            return
        if proc.paused:
            # A deferred start racing into an outage waits it out like any
            # other step: a down process must not execute, let alone send.
            proc.paused_backlog.append((_START, pid, payload))
            return
        proc.start()
        self._advance(proc, None)

    def _handle_resume(self, pid: int, payload: Any) -> None:
        proc = self._processes[pid]
        state = proc.state
        # Identity checks against the two non-terminal states; READY first
        # because it is the overwhelmingly common case on the hot path.
        if state is not ProcessState.READY and state is not ProcessState.BLOCKED:
            return
        if proc.paused:
            proc.paused_backlog.append((_RESUME, pid, payload))
            return
        # The body of _advance (and the send/wait effect handlers) is inlined
        # here: resume -> step -> send is the kernel's hottest chain, and the
        # three call frames it would otherwise cross are pure overhead.
        # Exact-type checks keep effect subclasses on the table path below,
        # which matches _advance bit for bit.
        proc.stats.steps += 1
        try:
            effect = proc.generator.send(payload)
        except StopIteration as stop:
            proc.decision = stop.value
            proc.decision_time = self.now
            self._settle(
                proc, ProcessState.DECIDED if stop.value is not None else ProcessState.HALTED
            )
            if stop.value is None:
                proc.halt_reason = "returned None"
            if self.trace.enabled:
                self.trace.record(self.now, "decide", pid, repr(stop.value))
            return
        except RoundLimitExceeded as exceeded:
            self._settle(proc, ProcessState.HALTED)
            proc.halt_reason = str(exceeded)
            if self.trace.enabled:
                self.trace.record(self.now, "halt", pid, proc.halt_reason)
            return
        cls = type(effect)
        if cls is SendEffect:
            network = self._network
            if network is None:
                raise RuntimeError("no network attached; cannot handle SendEffect")
            dest = effect.dest
            now = self.now
            message, delay = network.transmit(pid, dest, effect.payload, now)
            trace = self.trace
            if trace.enabled:
                trace.record(now, "send", pid, f"to={dest} {effect.payload!r}", {"dest": dest})
            queue = self._queue
            if self._adversary is None:
                # One batched sequence bump covers both pushes; the delivery
                # keeps the lower number, exactly as two bumps would assign.
                sequence = self._sequence + 2
                self._sequence = sequence
                heappush(queue, (now + delay, sequence - 1, _DELIVERY, dest, message))
            else:
                self._adversarial_send(pid, dest, message, delay)
                sequence = self._sequence + 1
                self._sequence = sequence
            config = self.config
            jitter = config.scheduling_jitter
            if jitter > 0:
                time = now + config.local_step_delay + self._sched_random() * jitter
            else:
                time = now + config.local_step_delay
            heappush(queue, (time, sequence, _RESUME, pid, None))
        elif cls is WaitEffect:
            result = effect.predicate(proc.mailbox)
            if result is not None:
                self._resume_later(pid, result, self.config.local_step_delay)
            else:
                proc.state = ProcessState.BLOCKED
                proc.wait_predicate = effect.predicate
                if self.trace.enabled:
                    self.trace.record(self.now, "block", pid, "waiting on messages")
        else:
            handler = self._effect_handlers.get(cls) or self._resolve_effect_handler(effect)
            if handler is None:
                raise TypeError(
                    f"process {pid} yielded {effect!r}, which is not a recognised effect"
                )
            handler(proc, effect)

    def _handle_delivery(self, pid: int, payload: Any) -> None:
        proc = self._processes[pid]
        if proc.state is ProcessState.CRASHED:
            self.dropped_deliveries += 1
            return
        if proc.paused:
            proc.paused_backlog.append((_DELIVERY, pid, payload))
            return
        proc.mailbox.append(payload)
        network = self._network
        if network is not None:
            # Inlined Network.record_delivery (the method remains the public
            # seam); a delivery entry's pid is always the message's dest.
            stats = network.stats
            stats.messages_delivered += 1
            stats.delivered_to_process[pid] += 1
        if proc.state is ProcessState.BLOCKED:
            result = proc.wait_predicate(proc.mailbox)
            if result is not None:
                proc.wait_predicate = None
                proc.state = ProcessState.READY
                self._resume_later(pid, result, self.config.local_step_delay)

    def _handle_crash(self, pid: int, payload: Any) -> None:
        proc = self._processes[pid]
        if proc.state.is_terminal():
            # Crashing an already decided/halted process has no further effect,
            # but the process still counts as crashed for fault accounting.
            if proc.state is not ProcessState.DECIDED:
                proc.state = ProcessState.CRASHED
                proc.crash_time = self.now
            return
        self._settle(proc, ProcessState.CRASHED)
        proc.crash_time = self.now
        proc.wait_predicate = None

    def _handle_pause(self, pid: int, payload: Any) -> None:
        """Begin a transient outage (see :class:`~repro.sim.events.ProcessPause`)."""
        proc = self._processes[pid]
        if proc.state.is_terminal() or proc.paused:
            return
        proc.paused = True
        if self.trace.enabled:
            self.trace.record(self.now, "pause", pid, "transient outage begins")

    def _handle_recover(self, pid: int, payload: Any) -> None:
        """End a transient outage: replay the backlog in its buffered order.

        Replayed events are re-queued at the current time (the buffered
        order is preserved by the queue's sequence tie-break); the regular
        handlers then apply the usual state checks, so a process that
        crashed for good while paused still drops its backlog.
        """
        proc = self._processes[pid]
        if not proc.paused:
            return
        proc.paused = False
        backlog, proc.paused_backlog = proc.paused_backlog, []
        for kind, event_pid, event_payload in backlog:
            self._schedule(self.now, kind, event_pid, event_payload)
        if self.trace.enabled:
            self.trace.record(
                self.now,
                "recover",
                pid,
                f"replaying {len(backlog)} buffered event(s)",
                {"replayed": len(backlog)},
            )

    # ----------------------------------------------------------- process steps
    def _advance(self, proc: SimProcess, value: Any) -> None:
        proc.stats.steps += 1
        try:
            effect = proc.generator.send(value)
        except StopIteration as stop:
            proc.decision = stop.value
            proc.decision_time = self.now
            self._settle(
                proc, ProcessState.DECIDED if stop.value is not None else ProcessState.HALTED
            )
            if stop.value is None:
                proc.halt_reason = "returned None"
            if self.trace.enabled:
                self.trace.record(self.now, "decide", proc.pid, repr(stop.value))
            return
        except RoundLimitExceeded as exceeded:
            self._settle(proc, ProcessState.HALTED)
            proc.halt_reason = str(exceeded)
            if self.trace.enabled:
                self.trace.record(self.now, "halt", proc.pid, proc.halt_reason)
            return
        handler = self._effect_handlers.get(type(effect)) or self._resolve_effect_handler(effect)
        if handler is None:
            raise TypeError(
                f"process {proc.pid} yielded {effect!r}, which is not a recognised effect"
            )
        handler(proc, effect)

    def _handle_effect(self, proc: SimProcess, effect: Any) -> None:
        """Dispatch one yielded effect (the public seam; `_advance` inlines it)."""
        handler = self._effect_handlers.get(type(effect)) or self._resolve_effect_handler(effect)
        if handler is None:
            raise TypeError(
                f"process {proc.pid} yielded {effect!r}, which is not a recognised effect"
            )
        handler(proc, effect)

    def _resolve_effect_handler(self, effect: Any) -> Optional[Callable]:
        """Subclasses of the known effect types dispatch like their base.

        The exact-type lookup misses them, so walk the MRO once and cache the
        match in the table -- the hot path stays a single dict hit afterwards.
        """
        table = self._effect_handlers
        for base in type(effect).__mro__[1:]:
            handler = table.get(base)
            if handler is not None:
                table[type(effect)] = handler
                return handler
        return None

    def _do_send(self, proc: SimProcess, effect: SendEffect) -> None:
        network = self._network
        if network is None:
            raise RuntimeError("no network attached; cannot handle SendEffect")
        pid = proc.pid
        dest = effect.dest
        now = self.now
        message, delay = network.transmit(pid, dest, effect.payload, now)
        if self.trace.enabled:
            self.trace.record(now, "send", pid, f"to={dest} {effect.payload!r}", {"dest": dest})
        if self._adversary is None:
            self._sequence += 1
            heappush(
                self._queue, (now + delay, self._sequence, _DELIVERY, dest, message)
            )
        else:
            self._adversarial_send(pid, dest, message, delay)
        # Inlined _resume_later (this is the hottest reschedule site).
        config = self.config
        jitter = config.scheduling_jitter
        if jitter > 0:
            time = self.now + config.local_step_delay + self._sched_random() * jitter
        else:
            time = self.now + config.local_step_delay
        self._sequence += 1
        heappush(self._queue, (time, self._sequence, _RESUME, pid, None))

    def _adversarial_send(self, sender: int, dest: int, message: Any, delay: float) -> None:
        """Turn one send into the adversary's delivery verdict (slow path).

        An empty verdict omits the message, extra entries are duplicates;
        the network's fault counters account for both.
        """
        adversary = self._adversary
        delays = adversary.deliveries(sender, dest, self.now, delay)
        if not delays:
            self._network.record_fault("omitted")
            if self.trace.enabled:
                self.trace.record(
                    self.now,
                    "omit",
                    dest,
                    f"from={sender} dropped by adversary",
                    {"from": sender},
                )
            return
        if adversary.corrupts:
            mutated = adversary.corrupt(sender, dest, message.payload, self.now)
            if mutated is not message.payload:
                self._network.record_fault("corrupted")
                if self.trace.enabled:
                    self.trace.record(
                        self.now,
                        "corrupt",
                        dest,
                        f"from={sender} payload tampered in transit",
                        {"from": sender},
                    )
                message = type(message)(
                    sender, dest, mutated, message.send_time, message.msg_id
                )
        for position, one_delay in enumerate(delays):
            if position:
                self._network.record_fault("duplicated")
            self._schedule(self.now + one_delay, _DELIVERY, dest, message)

    def _do_sm_op(self, proc: SimProcess, effect: SharedMemEffect) -> None:
        result = effect.operation(*effect.args)
        if self.trace.enabled:
            op_name = str(getattr(effect.operation, "__qualname__", effect.operation))
            self.trace.record(
                self.now,
                "sm-op",
                proc.pid,
                f"{op_name}{effect.args!r} -> {result!r}",
                {"op": op_name},
            )
        self._resume_later(proc.pid, result, self.config.sm_op_delay)

    def _do_wait(self, proc: SimProcess, effect: WaitEffect) -> None:
        result = effect.predicate(proc.mailbox)
        if result is not None:
            self._resume_later(proc.pid, result, self.config.local_step_delay)
            return
        proc.state = ProcessState.BLOCKED
        proc.wait_predicate = effect.predicate
        if self.trace.enabled:
            self.trace.record(self.now, "block", proc.pid, "waiting on messages")

    def _do_local(self, proc: SimProcess, effect: LocalEffect) -> None:
        delay = effect.duration if effect.duration is not None else self.config.local_step_delay
        self._resume_later(proc.pid, None, delay)

    # ------------------------------------------------------------------ ending
    def _final_status(self) -> RunStatus:
        correct = [proc for proc in self._processes.values() if proc.is_correct]
        if correct and all(proc.has_decided for proc in correct):
            return RunStatus.DECIDED
        if any(proc.state is ProcessState.HALTED and "round" in (proc.halt_reason or "") for proc in correct):
            return RunStatus.ROUND_LIMIT
        return RunStatus.DEADLOCK

    def _result(self, status: RunStatus) -> SimulationResult:
        if self.trace_sink is not None:
            self.trace.dump_jsonl(self.trace_sink)
        decisions = {
            pid: proc.decision
            for pid, proc in self._processes.items()
            if proc.has_decided
        }
        decision_times = {
            pid: proc.decision_time
            for pid, proc in self._processes.items()
            if proc.has_decided and proc.decision_time is not None
        }
        correct = {pid for pid, proc in self._processes.items() if proc.is_correct}
        crashed = {pid for pid, proc in self._processes.items() if not proc.is_correct}
        non_terminated = {pid for pid in correct if pid not in decisions}
        rounds = {pid: proc.context.stats.rounds for pid, proc in self._processes.items()}
        stats = {pid: proc.context.stats for pid, proc in self._processes.items()}
        return SimulationResult(
            status=status,
            decisions=decisions,
            decision_times=decision_times,
            correct=correct,
            crashed=crashed,
            non_terminated=non_terminated,
            rounds=rounds,
            end_time=self.now,
            events_processed=self.events_processed,
            process_stats=stats,
        )
