"""The discrete-event simulation kernel.

The kernel owns the virtual clock, the event queue, the simulated processes
and the links to the message-passing and shared-memory substrates.  It is an
*asynchronous adversary*: the interleaving of process steps and the delivery
order of messages are controlled entirely by the (seeded) event schedule, so
the algorithms can assume nothing beyond what the paper's model grants them.

An explicit fault-injection adversary (:mod:`repro.adversary`) can sharpen
that further: when installed, it is consulted at message-send time (omission,
duplication, reordering, partitions) and at event-dispatch time (per-process
slowdowns), and may schedule transient outages via
:meth:`SimulationKernel.schedule_pause`.  With no adversary installed those
hooks cost one ``is None`` check per event and nothing else.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set

from .context import (
    LocalEffect,
    ProcessContext,
    ProcessStats,
    RoundLimitExceeded,
    SendEffect,
    SharedMemEffect,
    WaitEffect,
)
from .events import (
    Event,
    MessageDelivery,
    ProcessCrash,
    ProcessPause,
    ProcessRecover,
    ProcessStart,
    ScheduledEvent,
    StepResume,
    describe,
)
from .process import ProcessState, SimProcess
from .rng import RandomSource
from .trace import Trace


class RunStatus(enum.Enum):
    """Outcome of a simulation run."""

    DECIDED = "decided"
    DEADLOCK = "deadlock"
    TIMEOUT = "timeout"
    ROUND_LIMIT = "round-limit"

    @property
    def terminated(self) -> bool:
        """True when every correct process decided."""
        return self is RunStatus.DECIDED


@dataclass
class SimConfig:
    """Tunable parameters of the simulated execution environment.

    The delay constants are in arbitrary virtual-time units.  Their default
    ratio (shared-memory operation one order of magnitude cheaper than a
    typical message delay, local steps cheaper still) encodes the paper's
    efficiency premise: intra-cluster agreement is cheap, inter-cluster
    message exchange is expensive.
    """

    max_time: float = 1e9
    max_rounds: Optional[int] = 500
    local_step_delay: float = 1e-4
    sm_op_delay: float = 1e-3
    scheduling_jitter: float = 1e-5
    trace: bool = False
    trace_max_entries: int = 100_000


@dataclass
class SimulationResult:
    """Everything the harness needs to know about a finished run."""

    status: RunStatus
    decisions: Dict[int, Any]
    decision_times: Dict[int, float]
    correct: Set[int]
    crashed: Set[int]
    non_terminated: Set[int]
    rounds: Dict[int, int]
    end_time: float
    events_processed: int
    process_stats: Dict[int, ProcessStats]

    @property
    def decided_values(self) -> Set[Any]:
        """The set of distinct values decided by any process."""
        return {value for value in self.decisions.values()}

    @property
    def max_round(self) -> int:
        """Largest round reached by any process (0 if none recorded)."""
        return max(self.rounds.values(), default=0)

    def decision_of_correct(self) -> Optional[Any]:
        """The unique value decided by correct processes, if any decided."""
        values = {self.decisions[pid] for pid in self.correct if pid in self.decisions}
        if not values:
            return None
        if len(values) > 1:
            raise ValueError(f"agreement violated: correct processes decided {values}")
        return next(iter(values))


class SimulationKernel:
    """Seeded discrete-event simulator for hybrid-model executions."""

    def __init__(
        self,
        seed: int = 0,
        config: Optional[SimConfig] = None,
        rng: Optional[RandomSource] = None,
    ) -> None:
        self.config = config or SimConfig()
        self.rng = rng if rng is not None else RandomSource(seed)
        self.now: float = 0.0
        self.trace = Trace(enabled=self.config.trace, max_entries=self.config.trace_max_entries)
        self._queue: List[ScheduledEvent] = []
        self._sequence = 0
        self._processes: Dict[int, SimProcess] = {}
        self._network = None
        self._adversary = None
        self.events_processed = 0
        self.dropped_deliveries = 0
        self._sched_rng = self.rng.stream("kernel", "jitter")
        # Type-keyed dispatch tables: the event/effect mix is decided by the
        # algorithms, so the hot loop should not walk an isinstance chain.
        self._event_handlers: Dict[type, Callable[[Any], None]] = {
            ProcessStart: self._handle_start,
            StepResume: self._handle_resume,
            MessageDelivery: self._handle_delivery,
            ProcessCrash: self._handle_crash,
            ProcessPause: self._handle_pause,
            ProcessRecover: self._handle_recover,
        }
        self._effect_handlers: Dict[type, Callable[[SimProcess, Any], None]] = {
            SendEffect: self._do_send,
            SharedMemEffect: self._do_sm_op,
            WaitEffect: self._do_wait,
            LocalEffect: self._do_local,
        }

    # ----------------------------------------------------------------- setup
    def attach_network(self, network) -> None:
        """Attach the message-passing substrate used to time deliveries."""
        self._network = network

    def install_adversary(self, adversary) -> None:
        """Install a fault-injection adversary (see :mod:`repro.adversary`).

        The adversary is consulted at message-send time (which delivery
        delays a send turns into) and at event-dispatch time (whether an
        event is deferred), and may schedule pause/recover events through
        :meth:`schedule_pause`.  Must be called after every process is
        registered; with no adversary installed the kernel pays nothing
        beyond one ``is None`` check per event.
        """
        if self._adversary is not None:
            raise RuntimeError("an adversary is already installed")
        adversary.install(self)
        self._adversary = adversary

    @property
    def adversary(self):
        """The installed fault-injection adversary, or ``None``."""
        return self._adversary

    @property
    def network(self):
        """The attached message-passing substrate, or ``None``."""
        return self._network

    def add_process(self, pid: int, factory: Callable[[ProcessContext], Any]) -> SimProcess:
        """Register a process whose behaviour is ``factory(ctx)`` (a generator)."""
        if pid in self._processes:
            raise ValueError(f"duplicate process id {pid}")
        context = ProcessContext(pid, self)
        proc = SimProcess(pid=pid, context=context, factory=factory)
        self._processes[pid] = proc
        self._schedule(0.0, ProcessStart(pid=pid))
        return proc

    def schedule_crash(self, pid: int, time: float) -> None:
        """Schedule process ``pid`` to crash at virtual ``time``."""
        if pid not in self._processes:
            raise KeyError(f"unknown process id {pid}")
        if time < 0:
            raise ValueError("crash time must be non-negative")
        self._schedule(time, ProcessCrash(pid=pid))

    def schedule_pause(self, pid: int, down_at: float, up_at: float) -> None:
        """Schedule a transient outage of ``pid`` during ``[down_at, up_at)``."""
        if pid not in self._processes:
            raise KeyError(f"unknown process id {pid}")
        if down_at < 0 or up_at <= down_at:
            raise ValueError(f"need 0 <= down_at < up_at, got [{down_at}, {up_at})")
        self._schedule(down_at, ProcessPause(pid=pid))
        self._schedule(up_at, ProcessRecover(pid=pid))

    def process_ids(self) -> List[int]:
        """All registered process ids, in ascending order."""
        return sorted(self._processes)

    def process(self, pid: int) -> SimProcess:
        """The kernel-side record of process ``pid``."""
        return self._processes[pid]

    @property
    def processes(self) -> Dict[int, SimProcess]:
        """A snapshot of the registered processes, keyed by pid."""
        return dict(self._processes)

    # ------------------------------------------------------------- scheduling
    def _schedule(self, time: float, event: Event) -> None:
        self._sequence += 1
        heapq.heappush(self._queue, ScheduledEvent(time=time, sequence=self._sequence, event=event))

    def _jitter(self) -> float:
        if self.config.scheduling_jitter <= 0:
            return 0.0
        return self._sched_rng.random() * self.config.scheduling_jitter

    def _resume_later(self, pid: int, value: Any, delay: float) -> None:
        self._schedule(self.now + delay + self._jitter(), StepResume(pid=pid, value=value))

    # -------------------------------------------------------------- main loop
    def run(self) -> SimulationResult:
        """Process events until completion, quiescence or the time bound."""
        if not self._processes:
            raise RuntimeError("no processes registered")
        queue = self._queue
        trace = self.trace
        adversary = self._adversary
        max_time = self.config.max_time
        while queue:
            entry = heapq.heappop(queue)
            if entry.time > max_time:
                self.now = max_time
                return self._result(RunStatus.TIMEOUT)
            if entry.time > self.now:
                self.now = entry.time
            if adversary is not None:
                extra = adversary.defer(entry.event, self.now)
                if extra > 0.0:
                    self._schedule(self.now + extra, entry.event)
                    continue
            self.events_processed += 1
            if trace.enabled:
                trace.record(self.now, "event", self._event_pid(entry.event), describe(entry.event))
            self._dispatch(entry.event)
            if self._all_settled():
                break
        return self._result(self._final_status())

    @staticmethod
    def _event_pid(event: Event) -> Optional[int]:
        return getattr(event, "pid", None)

    def _dispatch(self, event: Event) -> None:
        handler = self._event_handlers.get(type(event)) or self._resolve_handler(
            self._event_handlers, event
        )
        if handler is None:  # pragma: no cover - defensive
            raise TypeError(f"unknown event type: {event!r}")
        handler(event)

    @staticmethod
    def _resolve_handler(table: Dict[type, Callable], obj: Any) -> Optional[Callable]:
        """Subclasses of the known event/effect types dispatch like their base.

        The exact-type lookup misses them, so walk the MRO once and cache the
        match in the table — the hot loop stays a single dict hit afterwards.
        """
        for base in type(obj).__mro__[1:]:
            handler = table.get(base)
            if handler is not None:
                table[type(obj)] = handler
                return handler
        return None

    # ---------------------------------------------------------- event handlers
    def _handle_start(self, event: ProcessStart) -> None:
        proc = self._processes[event.pid]
        if proc.state is ProcessState.CRASHED:
            return
        if proc.paused:
            # A deferred start racing into an outage waits it out like any
            # other step: a down process must not execute, let alone send.
            proc.paused_backlog.append(event)
            return
        proc.start()
        self._advance(proc, None)

    def _handle_resume(self, event: StepResume) -> None:
        proc = self._processes[event.pid]
        if proc.state.is_terminal():
            return
        if proc.paused:
            proc.paused_backlog.append(event)
            return
        self._advance(proc, event.value)

    def _handle_delivery(self, event: MessageDelivery) -> None:
        proc = self._processes[event.pid]
        if proc.state is ProcessState.CRASHED:
            self.dropped_deliveries += 1
            return
        if proc.paused:
            proc.paused_backlog.append(event)
            return
        proc.deliver(event.message)
        if self._network is not None:
            self._network.record_delivery(event.message)
        if proc.state is ProcessState.BLOCKED:
            result = proc.check_wait()
            if result is not None:
                proc.wait_predicate = None
                proc.state = ProcessState.READY
                self._resume_later(proc.pid, result, self.config.local_step_delay)

    def _handle_crash(self, event: ProcessCrash) -> None:
        proc = self._processes[event.pid]
        if proc.state.is_terminal():
            # Crashing an already decided/halted process has no further effect,
            # but the process still counts as crashed for fault accounting.
            if proc.state is not ProcessState.DECIDED:
                proc.state = ProcessState.CRASHED
                proc.crash_time = self.now
            return
        proc.state = ProcessState.CRASHED
        proc.crash_time = self.now
        proc.wait_predicate = None

    def _handle_pause(self, event: ProcessPause) -> None:
        """Begin a transient outage (see :class:`~repro.sim.events.ProcessPause`)."""
        proc = self._processes[event.pid]
        if proc.state.is_terminal() or proc.paused:
            return
        proc.paused = True
        if self.trace.enabled:
            self.trace.record(self.now, "pause", proc.pid, "transient outage begins")

    def _handle_recover(self, event: ProcessRecover) -> None:
        """End a transient outage: replay the backlog in its buffered order.

        Replayed events are re-queued at the current time (the buffered
        order is preserved by the queue's sequence tie-break); the regular
        handlers then apply the usual state checks, so a process that
        crashed for good while paused still drops its backlog.
        """
        proc = self._processes[event.pid]
        if not proc.paused:
            return
        proc.paused = False
        backlog, proc.paused_backlog = proc.paused_backlog, []
        for pending in backlog:
            self._schedule(self.now, pending)
        if self.trace.enabled:
            self.trace.record(
                self.now, "recover", proc.pid, f"replaying {len(backlog)} buffered event(s)"
            )

    # ----------------------------------------------------------- process steps
    def _advance(self, proc: SimProcess, value: Any) -> None:
        proc.context.stats.steps += 1
        try:
            effect = proc.generator.send(value)
        except StopIteration as stop:
            proc.decision = stop.value
            proc.decision_time = self.now
            proc.state = ProcessState.DECIDED if stop.value is not None else ProcessState.HALTED
            if stop.value is None:
                proc.halt_reason = "returned None"
            if self.trace.enabled:
                self.trace.record(self.now, "decide", proc.pid, repr(stop.value))
            return
        except RoundLimitExceeded as exceeded:
            proc.state = ProcessState.HALTED
            proc.halt_reason = str(exceeded)
            if self.trace.enabled:
                self.trace.record(self.now, "halt", proc.pid, proc.halt_reason)
            return
        self._handle_effect(proc, effect)

    def _handle_effect(self, proc: SimProcess, effect: Any) -> None:
        handler = self._effect_handlers.get(type(effect)) or self._resolve_handler(
            self._effect_handlers, effect
        )
        if handler is None:
            raise TypeError(
                f"process {proc.pid} yielded {effect!r}, which is not a recognised effect"
            )
        handler(proc, effect)

    def _do_send(self, proc: SimProcess, effect: SendEffect) -> None:
        if self._network is None:
            raise RuntimeError("no network attached; cannot handle SendEffect")
        message = self._network.prepare(sender=proc.pid, dest=effect.dest, payload=effect.payload, time=self.now)
        delay = self._network.sample_delay(sender=proc.pid, dest=effect.dest)
        if self.trace.enabled:
            self.trace.record(self.now, "send", proc.pid, f"to={effect.dest} {effect.payload!r}")
        if self._adversary is None:
            self._schedule(self.now + delay, MessageDelivery(pid=effect.dest, message=message))
        else:
            self._adversarial_send(proc.pid, effect.dest, message, delay)
        self._resume_later(proc.pid, None, self.config.local_step_delay)

    def _adversarial_send(self, sender: int, dest: int, message: Any, delay: float) -> None:
        """Turn one send into the adversary's delivery verdict (slow path).

        An empty verdict omits the message, extra entries are duplicates;
        the network's fault counters account for both.
        """
        delays = self._adversary.deliveries(sender, dest, self.now, delay)
        if not delays:
            self._network.record_fault("omitted")
            if self.trace.enabled:
                self.trace.record(self.now, "omit", dest, f"from={sender} dropped by adversary")
            return
        for position, one_delay in enumerate(delays):
            if position:
                self._network.record_fault("duplicated")
            self._schedule(self.now + one_delay, MessageDelivery(pid=dest, message=message))

    def _do_sm_op(self, proc: SimProcess, effect: SharedMemEffect) -> None:
        result = effect.operation(*effect.args)
        if self.trace.enabled:
            self.trace.record(
                self.now,
                "sm-op",
                proc.pid,
                f"{getattr(effect.operation, '__qualname__', effect.operation)!s}{effect.args!r} -> {result!r}",
            )
        self._resume_later(proc.pid, result, self.config.sm_op_delay)

    def _do_wait(self, proc: SimProcess, effect: WaitEffect) -> None:
        result = effect.predicate(proc.mailbox)
        if result is not None:
            self._resume_later(proc.pid, result, self.config.local_step_delay)
            return
        proc.state = ProcessState.BLOCKED
        proc.wait_predicate = effect.predicate
        if self.trace.enabled:
            self.trace.record(self.now, "block", proc.pid, "waiting on messages")

    def _do_local(self, proc: SimProcess, effect: LocalEffect) -> None:
        delay = effect.duration if effect.duration is not None else self.config.local_step_delay
        self._resume_later(proc.pid, None, delay)

    # ------------------------------------------------------------------ ending
    def _all_settled(self) -> bool:
        return all(proc.state.is_terminal() for proc in self._processes.values())

    def _final_status(self) -> RunStatus:
        correct = [proc for proc in self._processes.values() if proc.is_correct]
        if correct and all(proc.has_decided for proc in correct):
            return RunStatus.DECIDED
        if any(proc.state is ProcessState.HALTED and "round" in (proc.halt_reason or "") for proc in correct):
            return RunStatus.ROUND_LIMIT
        return RunStatus.DEADLOCK

    def _result(self, status: RunStatus) -> SimulationResult:
        decisions = {
            pid: proc.decision
            for pid, proc in self._processes.items()
            if proc.has_decided
        }
        decision_times = {
            pid: proc.decision_time
            for pid, proc in self._processes.items()
            if proc.has_decided and proc.decision_time is not None
        }
        correct = {pid for pid, proc in self._processes.items() if proc.is_correct}
        crashed = {pid for pid, proc in self._processes.items() if not proc.is_correct}
        non_terminated = {pid for pid in correct if pid not in decisions}
        rounds = {pid: proc.context.stats.rounds for pid, proc in self._processes.items()}
        stats = {pid: proc.context.stats for pid, proc in self._processes.items()}
        return SimulationResult(
            status=status,
            decisions=decisions,
            decision_times=decision_times,
            correct=correct,
            crashed=crashed,
            non_terminated=non_terminated,
            rounds=rounds,
            end_time=self.now,
            events_processed=self.events_processed,
            process_stats=stats,
        )
