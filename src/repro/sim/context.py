"""The API that algorithm code uses to interact with the simulated world.

Algorithms are written as Python generators.  Every interaction with the
environment -- sending a message, waiting for messages, executing a
shared-memory primitive -- is expressed by ``yield``-ing an *effect* object
through one of the :class:`ProcessContext` helper generators, e.g.::

    value = yield from ctx.sm_op(register.compare_and_swap, expected, new)
    yield from ctx.broadcast(payload)
    result = yield from ctx.wait_until(predicate)

The kernel interprets each effect as one atomic step of the process, charges
the appropriate virtual-time cost, and resumes the generator with the step's
result.  This mirrors the paper's model of sequential processes executing
atomic steps interleaved by an asynchronous adversary.

Effects are allocated once per process step, so they are plain ``__slots__``
classes rather than dataclasses: construction is a couple of slot stores and
no per-instance dict exists.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence, Tuple


class Effect:
    """Base class of all effects yielded by algorithm generators."""

    __slots__ = ()


class SendEffect(Effect):
    """Send ``payload`` to process ``dest`` over the asynchronous network."""

    __slots__ = ("dest", "payload")

    def __init__(self, dest: int, payload: Any) -> None:
        self.dest = dest
        self.payload = payload

    def __repr__(self) -> str:
        return f"SendEffect(dest={self.dest!r}, payload={self.payload!r})"


class WaitEffect(Effect):
    """Block until ``predicate(mailbox)`` returns a non-``None`` value.

    The predicate receives the process's full mailbox (a list of
    :class:`~repro.network.message.Message` objects, oldest first) and must
    return ``None`` while unsatisfied.  Its first non-``None`` return value
    becomes the result of the wait.
    """

    __slots__ = ("predicate",)

    def __init__(self, predicate: Callable[[Sequence[Any]], Any]) -> None:
        self.predicate = predicate

    def __repr__(self) -> str:
        return f"WaitEffect(predicate={self.predicate!r})"


class SharedMemEffect(Effect):
    """Execute one linearizable shared-memory primitive atomically."""

    __slots__ = ("operation", "args")

    def __init__(self, operation: Callable[..., Any], args: Tuple[Any, ...] = ()) -> None:
        self.operation = operation
        self.args = args

    def __repr__(self) -> str:
        return f"SharedMemEffect(operation={self.operation!r}, args={self.args!r})"


class LocalEffect(Effect):
    """A local computation step with no environment interaction."""

    __slots__ = ("duration",)

    def __init__(self, duration: Optional[float] = None) -> None:
        self.duration = duration

    def __repr__(self) -> str:
        return f"LocalEffect(duration={self.duration!r})"


class RoundLimitExceeded(Exception):
    """Raised by :meth:`ProcessContext.mark_round` past the configured cap.

    Randomized consensus terminates with probability 1 but any individual
    execution may be arbitrarily long; the cap turns "still flipping coins"
    into an explicit, detectable non-termination outcome (used by the
    indulgence experiments).
    """

    def __init__(self, pid: int, round_number: int, limit: int) -> None:
        super().__init__(
            f"process {pid} entered round {round_number}, exceeding the cap of {limit}"
        )
        self.pid = pid
        self.round_number = round_number
        self.limit = limit


class ProcessStats:
    """Per-process counters maintained by the kernel."""

    __slots__ = ("steps", "messages_sent", "sm_ops", "waits", "rounds", "coin_flips")

    def __init__(
        self,
        steps: int = 0,
        messages_sent: int = 0,
        sm_ops: int = 0,
        waits: int = 0,
        rounds: int = 0,
        coin_flips: int = 0,
    ) -> None:
        self.steps = steps
        self.messages_sent = messages_sent
        self.sm_ops = sm_ops
        self.waits = waits
        self.rounds = rounds
        self.coin_flips = coin_flips

    def __getstate__(self):
        """Pickle support (full-results mode ships stats across shards)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state) -> None:
        for name, value in state.items():
            setattr(self, name, value)

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, ProcessStats):
            return NotImplemented
        return all(getattr(self, name) == getattr(other, name) for name in self.__slots__)

    def __repr__(self) -> str:
        parts = ", ".join(f"{name}={getattr(self, name)!r}" for name in self.__slots__)
        return f"ProcessStats({parts})"


class ProcessContext:
    """Handle given to each simulated process.

    The context exposes the process identity, virtual time, per-process
    random stream, and the effect helpers.  Algorithms should interact with
    the world exclusively through this object (plus the shared-memory and
    coin objects handed to them by the harness, whose primitive operations
    are always routed back through :meth:`sm_op`).
    """

    __slots__ = ("pid", "_kernel", "stats")

    def __init__(self, pid: int, kernel: "SimulationKernel") -> None:  # noqa: F821
        self.pid = pid
        self._kernel = kernel
        self.stats = ProcessStats()

    # ------------------------------------------------------------------ time
    def now(self) -> float:
        """Current virtual time."""
        return self._kernel.now

    def random(self):
        """The process-local random stream (used for local coins)."""
        return self._kernel.rng.stream("process", self.pid)

    # --------------------------------------------------------------- effects
    def send(self, dest: int, payload: Any):
        """Send ``payload`` to ``dest``; completes after one local step."""
        self.stats.messages_sent += 1
        yield SendEffect(dest=dest, payload=payload)

    def broadcast(self, payload: Any, include_self: bool = True):
        """The paper's ``broadcast`` macro: send to every process in turn.

        The macro is intentionally *not* atomic: it expands to one send per
        destination, so a crash occurring part-way through delivers the
        message to an arbitrary prefix of the destinations only -- exactly
        the unreliable broadcast of Section II-A.  The body inlines
        :meth:`send` (same accounting, same one effect per destination)
        rather than delegating to a sub-generator per destination, and it
        yields a *single reused* :class:`SendEffect` whose ``dest`` is
        rewritten per destination: the kernel consumes each yielded effect
        synchronously before resuming the generator, so the object is never
        live across two yields.
        """
        stats = self.stats
        pid = self.pid
        effect = SendEffect(dest=pid, payload=payload)
        for dest in self._kernel.process_ids():
            if not include_self and dest == pid:
                continue
            stats.messages_sent += 1
            effect.dest = dest
            yield effect

    def wait_until(self, predicate: Callable[[Sequence[Any]], Any]):
        """Block until ``predicate(mailbox)`` is non-``None``; return it."""
        self.stats.waits += 1
        result = yield WaitEffect(predicate=predicate)
        return result

    def sm_op(self, operation: Callable[..., Any], *args: Any):
        """Execute one shared-memory primitive as an atomic step."""
        self.stats.sm_ops += 1
        result = yield SharedMemEffect(operation=operation, args=args)
        return result

    def local_step(self, duration: Optional[float] = None):
        """Spend one local computation step (optionally of a given length)."""
        yield LocalEffect(duration=duration)

    # ------------------------------------------------------------ accounting
    def mark_round(self, round_number: int) -> None:
        """Record that the process entered ``round_number``.

        When tracing is on, a ``round`` span marker lands in the trace with
        the round number as structured data, so a dumped execution can be
        sliced per round.  Raises :class:`RoundLimitExceeded` when the
        simulation configuration bounds the number of rounds and the bound
        is exceeded (the marker is recorded first: the over-limit round is
        part of the execution's observable history).
        """
        self.stats.rounds = max(self.stats.rounds, round_number)
        kernel = self._kernel
        if kernel.trace.enabled:
            kernel.trace.record(
                kernel.now,
                "round",
                self.pid,
                f"entered round {round_number}",
                {"round": round_number},
            )
        limit = kernel.config.max_rounds
        if limit is not None and round_number > limit:
            raise RoundLimitExceeded(self.pid, round_number, limit)

    def mark_phase(self, name: str) -> None:
        """Record a ``phase`` span marker (e.g. ``propose``/``decide``).

        Purely observational: phases carry no accounting, they only structure
        a dumped trace so post-processing can attribute time and messages to
        algorithm phases within a round.
        """
        kernel = self._kernel
        if kernel.trace.enabled:
            kernel.trace.record(
                kernel.now, "phase", self.pid, f"entered phase {name!r}", {"phase": name}
            )

    def count_coin_flip(self) -> None:
        """Record one coin invocation (local or common) by this process."""
        self.stats.coin_flips += 1

    def log(self, message: str) -> None:
        """Record a free-form annotation in the simulation trace at ``now``."""
        self._kernel.trace.annotate(self.pid, message, time=self._kernel.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ProcessContext(pid={self.pid}, t={self.now():.4f})"
