"""Event types used by the discrete-event simulation kernel.

The kernel's hot path keeps its priority queue as flat
``(time, sequence, kind, pid, payload)`` tuples (see :data:`EventKind` and
the converters below): tuple comparison runs in C, nothing is allocated per
queue entry beyond the tuple itself, and dispatch is a direct array index on
``kind``.  The sequence number breaks ties deterministically, so executions
are reproducible even when several events share a virtual timestamp (and,
because sequences are unique, ``kind``/``pid``/``payload`` never take part
in a heap comparison).

The :class:`Event` dataclasses remain the public, adversary-facing API:
anything that inspects or defers events -- the fault-injection adversary,
traces, tests -- sees real :class:`Event` objects, built at the boundary by
:func:`entry_event` and flattened back by :func:`event_entry_fields`.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


class Event:
    """Base class for all kernel events."""

    __slots__ = ()


@dataclass(frozen=True)
class StepResume(Event):
    """Resume a process generator, sending ``value`` into it."""

    pid: int
    value: Any = None


@dataclass(frozen=True)
class MessageDelivery(Event):
    """Deliver a message object into a process mailbox."""

    pid: int
    message: Any = None


@dataclass(frozen=True)
class ProcessCrash(Event):
    """Crash a process: it takes no further step after this event."""

    pid: int


@dataclass(frozen=True)
class ProcessStart(Event):
    """Initial activation of a process generator."""

    pid: int


@dataclass(frozen=True)
class ProcessPause(Event):
    """Begin a transient outage: the process takes no steps until it recovers.

    Unlike :class:`ProcessCrash`, the process's state (generator, mailbox,
    pending wait) is preserved; steps and deliveries arriving while paused
    are buffered and replayed at the matching :class:`ProcessRecover`.  Used
    by the crash-recovery fault primitive
    (:class:`~repro.adversary.faults.CrashRecovery`).
    """

    pid: int


@dataclass(frozen=True)
class ProcessRecover(Event):
    """End a transient outage: replay the events buffered while paused."""

    pid: int


class EventKind(enum.IntEnum):
    """The dense dispatch index of each kernel event type.

    The kernel keeps one handler per kind in a plain list, so dispatching an
    event is ``handlers[kind](pid, payload)`` -- one C-level list index
    instead of a type-keyed dict lookup or an isinstance chain.
    """

    PROCESS_START = 0
    STEP_RESUME = 1
    MESSAGE_DELIVERY = 2
    PROCESS_CRASH = 3
    PROCESS_PAUSE = 4
    PROCESS_RECOVER = 5


#: How many entries a kind-indexed handler table needs.
N_EVENT_KINDS = len(EventKind)

#: Lower-case kind names indexable by a flat entry's ``kind`` int; used for
#: the structured ``data`` of ``event`` trace records without re-entering
#: the enum machinery per traced event.
EVENT_KIND_NAMES = tuple(kind.name.lower() for kind in EventKind)

#: Exact-type mapping Event class -> kind.  Subclasses of the public event
#: types are resolved (and cached) through their MRO by :func:`event_kind`,
#: mirroring how the kernel dispatches effect subclasses.
_KIND_BY_TYPE = {
    ProcessStart: EventKind.PROCESS_START,
    StepResume: EventKind.STEP_RESUME,
    MessageDelivery: EventKind.MESSAGE_DELIVERY,
    ProcessCrash: EventKind.PROCESS_CRASH,
    ProcessPause: EventKind.PROCESS_PAUSE,
    ProcessRecover: EventKind.PROCESS_RECOVER,
}

#: kind -> Event class, for boundary reconstruction.
_TYPE_BY_KIND = (
    ProcessStart,
    StepResume,
    MessageDelivery,
    ProcessCrash,
    ProcessPause,
    ProcessRecover,
)


def event_kind(event_type: type) -> EventKind:
    """The :class:`EventKind` of an event class (subclasses included).

    The exact-type lookup misses subclasses of the public event types, so
    walk the MRO once and cache the match -- the hot path stays a single
    dict hit afterwards.
    """
    try:
        return _KIND_BY_TYPE[event_type]
    except KeyError:
        for base in event_type.__mro__[1:]:
            kind = _KIND_BY_TYPE.get(base)
            if kind is not None:
                _KIND_BY_TYPE[event_type] = kind
                return kind
        raise TypeError(f"unknown event type: {event_type!r}") from None


def event_entry_fields(event: Event) -> Tuple[int, int, Any]:
    """Flatten a public :class:`Event` object into ``(kind, pid, payload)``.

    The payload slot carries :attr:`StepResume.value` /
    :attr:`MessageDelivery.message` and is ``None`` for the payload-free
    event types.
    """
    kind = event_kind(type(event))
    if kind is EventKind.STEP_RESUME:
        payload = event.value
    elif kind is EventKind.MESSAGE_DELIVERY:
        payload = event.message
    else:
        payload = None
    return (int(kind), event.pid, payload)


def entry_event(kind: int, pid: int, payload: Any) -> Event:
    """Reconstruct the public :class:`Event` object of one flat queue entry."""
    if kind == EventKind.STEP_RESUME:
        return StepResume(pid=pid, value=payload)
    if kind == EventKind.MESSAGE_DELIVERY:
        return MessageDelivery(pid=pid, message=payload)
    return _TYPE_BY_KIND[kind](pid=pid)


def describe_entry(kind: int, pid: int, payload: Any) -> str:
    """Human-readable description of one flat queue entry (for traces)."""
    return describe(entry_event(kind, pid, payload))


@dataclass(order=True)
class ScheduledEvent:
    """A queue entry: an :class:`Event` scheduled at a virtual ``time``.

    The kernel itself now queues flat tuples; this class remains as the
    public representation of "an event at a time" for tests and tooling
    (ordering semantics are identical to the kernel's tuples).
    """

    time: float
    sequence: int
    event: Event = field(compare=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ScheduledEvent(t={self.time:.6f}, seq={self.sequence}, {self.event!r})"


def describe(event: Event) -> str:
    """Return a short human-readable description of an event (for traces)."""
    name = type(event).__name__
    fields = dataclasses.fields(event) if dataclasses.is_dataclass(event) else ()
    parts = []
    for f in fields:
        value = getattr(event, f.name)
        if f.name == "message":
            value = getattr(value, "payload", value)
        parts.append(f"{f.name}={value!r}")
    return f"{name}({', '.join(parts)})"


@dataclass
class TraceEntry:
    """One recorded entry of a simulation trace.

    Entries are structured: besides the virtual ``time``, the per-trace
    ``sequence`` number, the entry ``kind`` (``send``, ``decide``,
    ``round``...), and the originating ``pid``, an entry may carry a
    machine-readable ``data`` mapping (JSON-serializable scalars only) with
    the fields the free-text ``detail`` used to encode -- the send's
    destination, the round number a span marker opens, the corrupted
    message's source.  :meth:`to_json` is the JSONL schema one line of a
    dumped trace holds (see :meth:`~repro.sim.trace.Trace.to_jsonl`).
    """

    time: float
    sequence: int
    kind: str
    pid: Optional[int]
    detail: str
    data: Optional[Dict[str, Any]] = None

    def to_json(self) -> Dict[str, Any]:
        """The entry as one JSON-serializable mapping (the JSONL schema).

        Keys are stable and ordered: ``time``, ``seq``, ``kind``, ``pid``,
        ``detail``, plus ``data`` only when structured fields were recorded
        -- so dumped traces diff cleanly line by line.
        """
        payload: Dict[str, Any] = {
            "time": self.time,
            "seq": self.sequence,
            "kind": self.kind,
            "pid": self.pid,
            "detail": self.detail,
        }
        if self.data:
            payload["data"] = self.data
        return payload

    def format(self) -> str:
        """Render the entry as one aligned, human-readable trace line."""
        pid = "-" if self.pid is None else str(self.pid)
        return f"[{self.time:12.6f}] #{self.sequence:<8d} p{pid:<4s} {self.kind:<12s} {self.detail}"
