"""Event types used by the discrete-event simulation kernel.

The kernel maintains a single priority queue of :class:`ScheduledEvent`
entries ordered by ``(time, sequence)``.  The sequence number breaks ties
deterministically, so executions are reproducible even when several events
share a virtual timestamp.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Optional


class Event:
    """Base class for all kernel events."""

    __slots__ = ()


@dataclass(frozen=True)
class StepResume(Event):
    """Resume a process generator, sending ``value`` into it."""

    pid: int
    value: Any = None


@dataclass(frozen=True)
class MessageDelivery(Event):
    """Deliver a message object into a process mailbox."""

    pid: int
    message: Any = None


@dataclass(frozen=True)
class ProcessCrash(Event):
    """Crash a process: it takes no further step after this event."""

    pid: int


@dataclass(frozen=True)
class ProcessStart(Event):
    """Initial activation of a process generator."""

    pid: int


@dataclass(frozen=True)
class ProcessPause(Event):
    """Begin a transient outage: the process takes no steps until it recovers.

    Unlike :class:`ProcessCrash`, the process's state (generator, mailbox,
    pending wait) is preserved; steps and deliveries arriving while paused
    are buffered and replayed at the matching :class:`ProcessRecover`.  Used
    by the crash-recovery fault primitive
    (:class:`~repro.adversary.faults.CrashRecovery`).
    """

    pid: int


@dataclass(frozen=True)
class ProcessRecover(Event):
    """End a transient outage: replay the events buffered while paused."""

    pid: int


@dataclass(order=True)
class ScheduledEvent:
    """A queue entry: an :class:`Event` scheduled at a virtual ``time``."""

    time: float
    sequence: int
    event: Event = field(compare=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ScheduledEvent(t={self.time:.6f}, seq={self.sequence}, {self.event!r})"


def describe(event: Event) -> str:
    """Return a short human-readable description of an event (for traces)."""
    name = type(event).__name__
    fields = dataclasses.fields(event) if dataclasses.is_dataclass(event) else ()
    parts = []
    for f in fields:
        value = getattr(event, f.name)
        if f.name == "message":
            value = getattr(value, "payload", value)
        parts.append(f"{f.name}={value!r}")
    return f"{name}({', '.join(parts)})"


@dataclass
class TraceEntry:
    """One recorded entry of a simulation trace."""

    time: float
    sequence: int
    kind: str
    pid: Optional[int]
    detail: str

    def format(self) -> str:
        """Render the entry as one aligned, human-readable trace line."""
        pid = "-" if self.pid is None else str(self.pid)
        return f"[{self.time:12.6f}] #{self.sequence:<8d} p{pid:<4s} {self.kind:<12s} {self.detail}"
