"""Deterministic random-number management for simulations.

Every stochastic choice in a simulation (message delays, scheduler
tie-breaking, coin flips, crash times, workload generation) draws from a
named stream derived from a single master seed.  Two runs configured with
the same master seed therefore produce identical executions, which is what
makes the experiments in this repository reproducible.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Tuple

try:  # pragma: no cover - exercised via the public helpers
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is optional everywhere
    _np = None

#: Below this block size the numpy state round-trip costs more than it saves.
_VECTORIZE_THRESHOLD = 8


class RandomSource:
    """A factory of independent, named pseudo-random streams.

    Each stream is a plain :class:`random.Random` seeded from the master
    seed combined with the stream name through SHA-256, so streams with
    different names are statistically independent and insensitive to the
    order in which they are requested.
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = seed
        self._streams: Dict[Tuple[str, ...], random.Random] = {}

    @property
    def seed(self) -> int:
        """The master seed this source was created with."""
        return self._seed

    def _derive(self, name_parts: Tuple[str, ...]) -> int:
        material = repr((self._seed,) + name_parts).encode("utf-8")
        digest = hashlib.sha256(material).digest()
        return int.from_bytes(digest[:8], "big")

    def stream(self, *name_parts: object) -> random.Random:
        """Return the stream registered under ``name_parts`` (cached).

        Repeated calls with the same name return the *same* generator
        object, so a stream's state advances across uses, while different
        names never share state.
        """
        key = tuple(str(part) for part in name_parts)
        if key not in self._streams:
            self._streams[key] = random.Random(self._derive(key))
        return self._streams[key]

    def spawn(self, *name_parts: object) -> "RandomSource":
        """Create a child :class:`RandomSource` with an independent seed.

        Useful when a component (e.g. a workload generator) needs its own
        namespace of streams that cannot collide with the parent's.
        """
        key = tuple(str(part) for part in name_parts)
        return RandomSource(self._derive(("spawn",) + key))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RandomSource(seed={self._seed}, streams={len(self._streams)})"


def random_block(rng: random.Random, k: int) -> List[float]:
    """Draw ``k`` uniform [0, 1) floats from ``rng``, bit-identical to
    calling ``rng.random()`` ``k`` times, leaving ``rng`` in the same state.

    When numpy is available and the block is large enough to amortize the
    state round-trip, the draws are produced by transplanting the Mersenne
    Twister state into ``numpy.random.RandomState`` (both generators build
    doubles with the identical genrand 53-bit recipe, so the streams agree
    to the last bit) and transplanting the advanced state back.  Otherwise
    this is a plain loop.  Callers batching draws through this helper
    therefore consume the stream in exactly the per-call order -- the
    exact-sequence guarantee the delay cache relies on.
    """
    if k <= 0:
        return []
    if _np is None or k < _VECTORIZE_THRESHOLD:
        rand = rng.random
        return [rand() for _ in range(k)]
    version, internal, gauss_next = rng.getstate()
    if version != 3:  # pragma: no cover - all supported CPythons use 3
        rand = rng.random
        return [rand() for _ in range(k)]
    np_state = _np.random.RandomState()
    # CPython keeps (624 key words, pos) flattened in one tuple; numpy keeps
    # them separate.  Neither generator has pending gaussians here (we only
    # ever draw uniforms), so has_gauss/cached_gaussian stay zeroed.
    np_state.set_state(("MT19937", _np.array(internal[:-1], dtype=_np.uint32), internal[-1]))
    block = np_state.random_sample(k)
    _, keys, pos, _, _ = np_state.get_state()
    # keys.tolist() converts the 624 state words to Python ints in C.
    rng.setstate((version, tuple(keys.tolist()) + (pos,), gauss_next))
    return block.tolist()
