"""Deterministic random-number management for simulations.

Every stochastic choice in a simulation (message delays, scheduler
tie-breaking, coin flips, crash times, workload generation) draws from a
named stream derived from a single master seed.  Two runs configured with
the same master seed therefore produce identical executions, which is what
makes the experiments in this repository reproducible.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Tuple


class RandomSource:
    """A factory of independent, named pseudo-random streams.

    Each stream is a plain :class:`random.Random` seeded from the master
    seed combined with the stream name through SHA-256, so streams with
    different names are statistically independent and insensitive to the
    order in which they are requested.
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = seed
        self._streams: Dict[Tuple[str, ...], random.Random] = {}

    @property
    def seed(self) -> int:
        """The master seed this source was created with."""
        return self._seed

    def _derive(self, name_parts: Tuple[str, ...]) -> int:
        material = repr((self._seed,) + name_parts).encode("utf-8")
        digest = hashlib.sha256(material).digest()
        return int.from_bytes(digest[:8], "big")

    def stream(self, *name_parts: object) -> random.Random:
        """Return the stream registered under ``name_parts`` (cached).

        Repeated calls with the same name return the *same* generator
        object, so a stream's state advances across uses, while different
        names never share state.
        """
        key = tuple(str(part) for part in name_parts)
        if key not in self._streams:
            self._streams[key] = random.Random(self._derive(key))
        return self._streams[key]

    def spawn(self, *name_parts: object) -> "RandomSource":
        """Create a child :class:`RandomSource` with an independent seed.

        Useful when a component (e.g. a workload generator) needs its own
        namespace of streams that cannot collide with the parent's.
        """
        key = tuple(str(part) for part in name_parts)
        return RandomSource(self._derive(("spawn",) + key))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RandomSource(seed={self._seed}, streams={len(self._streams)})"
