"""Simulated process bookkeeping."""

from __future__ import annotations

import enum
from typing import Any, Callable, List, Optional

from .context import ProcessContext


class ProcessState(enum.Enum):
    """Lifecycle of a simulated process."""

    READY = "ready"
    BLOCKED = "blocked"
    CRASHED = "crashed"
    DECIDED = "decided"
    HALTED = "halted"

    def is_terminal(self) -> bool:
        """Whether a process in this state can take no further step."""
        return self in (ProcessState.CRASHED, ProcessState.DECIDED, ProcessState.HALTED)


class SimProcess:
    """Kernel-side record of one simulated process.

    The algorithm itself lives in ``generator`` (created by calling the
    algorithm factory with the process context); the kernel drives it by
    sending step results into it and interpreting the effects it yields.

    A ``__slots__`` class rather than a dataclass: the kernel touches these
    records on every event, and slot access skips the per-instance dict.
    """

    __slots__ = (
        "pid",
        "context",
        "stats",
        "factory",
        "generator",
        "state",
        "mailbox",
        "wait_predicate",
        "decision",
        "decision_time",
        "crash_time",
        "halt_reason",
        "started",
        "paused",
        "paused_backlog",
    )

    def __init__(
        self,
        pid: int,
        context: ProcessContext,
        factory: Callable[[ProcessContext], Any],
        generator: Any = None,
        state: ProcessState = ProcessState.READY,
        mailbox: Optional[List[Any]] = None,
        wait_predicate: Optional[Callable[[List[Any]], Any]] = None,
        decision: Any = None,
        decision_time: Optional[float] = None,
        crash_time: Optional[float] = None,
        halt_reason: Optional[str] = None,
        started: bool = False,
        paused: bool = False,
        paused_backlog: Optional[List[Any]] = None,
    ) -> None:
        self.pid = pid
        self.context = context
        #: Direct reference to ``context.stats`` so the kernel's per-event
        #: counter bumps skip one attribute hop.
        self.stats = context.stats if context is not None else None
        self.factory = factory
        self.generator = generator
        self.state = state
        self.mailbox = [] if mailbox is None else mailbox
        self.wait_predicate = wait_predicate
        self.decision = decision
        self.decision_time = decision_time
        self.crash_time = crash_time
        self.halt_reason = halt_reason
        self.started = started
        #: Transient-outage flag (see :class:`~repro.sim.events.ProcessPause`):
        #: while paused, step and delivery events are buffered in
        #: ``paused_backlog`` and replayed at recovery.
        self.paused = paused
        self.paused_backlog = [] if paused_backlog is None else paused_backlog

    def start(self) -> None:
        """Instantiate the algorithm generator (first activation)."""
        if self.started:
            raise RuntimeError(f"process {self.pid} already started")
        self.generator = self.factory(self.context)
        self.started = True

    @property
    def is_correct(self) -> bool:
        """A process is *correct* in a run iff it never crashes."""
        return self.state is not ProcessState.CRASHED

    @property
    def has_decided(self) -> bool:
        """Whether the process terminated by deciding a value."""
        return self.state is ProcessState.DECIDED

    def deliver(self, message: Any) -> None:
        """Append a message to the mailbox (messages are never removed)."""
        self.mailbox.append(message)

    def check_wait(self) -> Any:
        """Evaluate the pending wait predicate against the mailbox.

        Returns the predicate result (non-``None`` when satisfied) or
        ``None`` when unsatisfied or when the process is not blocked.
        """
        if self.state is not ProcessState.BLOCKED or self.wait_predicate is None:
            return None
        return self.wait_predicate(self.mailbox)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SimProcess(pid={self.pid}, state={self.state.value}, "
            f"decision={self.decision!r}, mailbox={len(self.mailbox)})"
        )
