"""Discrete-event simulation substrate.

This package provides the asynchronous execution environment in which the
consensus algorithms of the paper run: a seeded event-driven kernel
(:class:`~repro.sim.kernel.SimulationKernel`), generator-based processes,
crash injection and execution tracing.
"""

from .context import (
    Effect,
    LocalEffect,
    ProcessContext,
    ProcessStats,
    RoundLimitExceeded,
    SendEffect,
    SharedMemEffect,
    WaitEffect,
)
from .events import MessageDelivery, ProcessCrash, ProcessStart, ScheduledEvent, StepResume
from .kernel import RunStatus, SimConfig, SimulationKernel, SimulationResult
from .multikernel import (
    DEFAULT_BATCH_EVENTS,
    CooperativeScheduler,
    kernel_stepper,
    run_cooperative,
    scheduler_rng,
)
from .process import ProcessState, SimProcess
from .rng import RandomSource
from .trace import Trace

__all__ = [
    "CooperativeScheduler",
    "DEFAULT_BATCH_EVENTS",
    "Effect",
    "LocalEffect",
    "MessageDelivery",
    "ProcessCrash",
    "ProcessContext",
    "ProcessStart",
    "ProcessState",
    "ProcessStats",
    "RandomSource",
    "RoundLimitExceeded",
    "RunStatus",
    "ScheduledEvent",
    "SendEffect",
    "SharedMemEffect",
    "SimConfig",
    "SimProcess",
    "SimulationKernel",
    "SimulationResult",
    "StepResume",
    "Trace",
    "WaitEffect",
    "kernel_stepper",
    "run_cooperative",
    "scheduler_rng",
]
