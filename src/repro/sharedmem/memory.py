"""Per-cluster shared memories (the paper's ``MEM_x``).

A :class:`ClusterSharedMemory` is the memory associated with one cluster
``P[x]``: only the members of that cluster may access it.  It hands out
atomic registers, RMW registers and -- most importantly for the consensus
algorithms -- round-indexed arrays of cluster-limited consensus objects
(``CONS_x[r, 1]``, ``CONS_x[r, 2]`` for Algorithm 2, ``CONS_x[r]`` for
Algorithm 3), created lazily on first use.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Set, Tuple

from .consensus_object import CASConsensusObject, ConsensusObject, LLSCConsensusObject
from .register import AtomicRegister, MemoryAccessError
from .rmw import (
    CompareAndSwapRegister,
    FetchAndAddRegister,
    LLSCRegister,
    SwapRegister,
    TestAndSetRegister,
)

_CONSENSUS_FACTORIES = {
    "cas": CASConsensusObject,
    "llsc": LLSCConsensusObject,
}


class ClusterSharedMemory:
    """The shared memory of one cluster, with membership enforcement."""

    def __init__(
        self,
        cluster_index: int,
        members: Iterable[int],
        consensus_kind: str = "cas",
    ) -> None:
        self.cluster_index = cluster_index
        self.members: Set[int] = {int(pid) for pid in members}
        if not self.members:
            raise ValueError("a cluster memory needs at least one member")
        if consensus_kind not in _CONSENSUS_FACTORIES:
            raise ValueError(
                f"unknown consensus object kind {consensus_kind!r}; "
                f"choose from {sorted(_CONSENSUS_FACTORIES)}"
            )
        self.consensus_kind = consensus_kind
        self._registers: Dict[str, AtomicRegister] = {}
        self._consensus_objects: Dict[Tuple[Any, ...], ConsensusObject] = {}

    # ------------------------------------------------------------- membership
    def assert_member(self, pid: int) -> None:
        """Raise :class:`MemoryAccessError` unless ``pid`` belongs to the cluster."""
        if pid not in self.members:
            raise MemoryAccessError(
                f"process {pid} is not a member of cluster {self.cluster_index} "
                f"(members: {sorted(self.members)})"
            )

    # -------------------------------------------------------------- registers
    def _new(self, name: str, register: AtomicRegister) -> AtomicRegister:
        if name in self._registers:
            raise ValueError(f"register {name!r} already exists in MEM_{self.cluster_index}")
        self._registers[name] = register
        return register

    def register(self, name: str, initial: Any = None) -> AtomicRegister:
        """Allocate (or fetch) a plain atomic register."""
        if name in self._registers:
            return self._registers[name]
        return self._new(name, AtomicRegister(self._qualified(name), initial))

    def cas_register(self, name: str, initial: Any = None) -> CompareAndSwapRegister:
        if name in self._registers:
            return self._registers[name]  # type: ignore[return-value]
        return self._new(name, CompareAndSwapRegister(self._qualified(name), initial))  # type: ignore[return-value]

    def faa_register(self, name: str, initial: int = 0) -> FetchAndAddRegister:
        if name in self._registers:
            return self._registers[name]  # type: ignore[return-value]
        return self._new(name, FetchAndAddRegister(self._qualified(name), initial))  # type: ignore[return-value]

    def tas_register(self, name: str) -> TestAndSetRegister:
        if name in self._registers:
            return self._registers[name]  # type: ignore[return-value]
        return self._new(name, TestAndSetRegister(self._qualified(name)))  # type: ignore[return-value]

    def swap_register(self, name: str, initial: Any = None) -> SwapRegister:
        if name in self._registers:
            return self._registers[name]  # type: ignore[return-value]
        return self._new(name, SwapRegister(self._qualified(name), initial))  # type: ignore[return-value]

    def llsc_register(self, name: str, initial: Any = None) -> LLSCRegister:
        if name in self._registers:
            return self._registers[name]  # type: ignore[return-value]
        return self._new(name, LLSCRegister(self._qualified(name), initial))  # type: ignore[return-value]

    def _qualified(self, name: str) -> str:
        return f"MEM_{self.cluster_index}.{name}"

    # ------------------------------------------------------ consensus objects
    def consensus_object(self, *key: Any) -> ConsensusObject:
        """The cluster-limited consensus object indexed by ``key``.

        Keys are arbitrary tuples; the algorithms use ``(tag, round, phase)``
        for Algorithm 2 (``CONS_x[r, 1]`` / ``CONS_x[r, 2]``) and
        ``(tag, round)`` for Algorithm 3 (``CONS_x[r]``).  Objects are created
        lazily and cached, so every member of the cluster that asks for the
        same key gets the very same object.
        """
        if key not in self._consensus_objects:
            factory = _CONSENSUS_FACTORIES[self.consensus_kind]
            name = self._qualified("CONS[" + ", ".join(repr(part) for part in key) + "]")
            self._consensus_objects[key] = factory(name, members=self.members)
        return self._consensus_objects[key]

    # ---------------------------------------------------------------- metrics
    def consensus_objects_created(self) -> int:
        return len(self._consensus_objects)

    def consensus_invocations(self) -> int:
        return sum(obj.stats.invocations for obj in self._consensus_objects.values())

    def register_operations(self) -> int:
        """Total primitive operations on registers allocated directly."""
        return sum(register.stats.total for register in self._registers.values())

    def total_operations(self) -> int:
        """All primitive shared-memory operations performed on this memory."""
        consensus_register_ops = 0
        for obj in self._consensus_objects.values():
            inner = getattr(obj, "_register", None)
            if inner is not None:
                consensus_register_ops += inner.stats.total
        return self.register_operations() + consensus_register_ops

    def __repr__(self) -> str:
        return (
            f"ClusterSharedMemory(cluster={self.cluster_index}, "
            f"members={sorted(self.members)}, objects={len(self._consensus_objects)})"
        )


def build_cluster_memories(topology, consensus_kind: str = "cas") -> List[ClusterSharedMemory]:
    """One :class:`ClusterSharedMemory` per cluster of ``topology``."""
    return [
        ClusterSharedMemory(index, topology.cluster_members(index), consensus_kind)
        for index in range(topology.m)
    ]
