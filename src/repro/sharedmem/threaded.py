"""Thread-safe shared-memory primitives for real-concurrency testing.

The simulator linearizes operations by construction; these classes instead
protect each primitive with a lock so they are linearizable under genuine
Python threads.  They exist to validate the sequential semantics of the
primitives under real interleavings (the test suite hammers them from many
threads), not to benchmark shared-memory performance -- the GIL makes such
wall-clock numbers meaningless, which is why the experiments measure
operation counts in virtual time instead (see DESIGN.md).
"""

from __future__ import annotations

import threading
from typing import Any, Dict


class ThreadSafeRegister:
    """A lock-protected atomic register usable from multiple threads."""

    def __init__(self, initial: Any = None) -> None:
        self._lock = threading.Lock()
        self._value = initial
        self.reads = 0
        self.writes = 0

    def read(self) -> Any:
        with self._lock:
            self.reads += 1
            return self._value

    def write(self, value: Any) -> None:
        with self._lock:
            self.writes += 1
            self._value = value


class ThreadSafeCAS(ThreadSafeRegister):
    """A lock-protected compare&swap register."""

    def compare_and_swap(self, expected: Any, new: Any) -> bool:
        with self._lock:
            if self._value == expected:
                self._value = new
                return True
            return False


class ThreadSafeFetchAndAdd(ThreadSafeRegister):
    """A lock-protected fetch&add register."""

    def __init__(self, initial: int = 0) -> None:
        super().__init__(initial)

    def fetch_and_add(self, delta: int = 1) -> int:
        with self._lock:
            previous = self._value
            self._value = previous + delta
            return previous


class _UnsetT:
    def __repr__(self) -> str:
        return "UNSET"


_UNSET = _UnsetT()


class ThreadedConsensusObject:
    """Single-shot consensus for real threads, built on :class:`ThreadSafeCAS`.

    Exactly the CAS-consensus construction used in the simulator, so the
    thread-based tests double as a check of that construction's correctness
    under uncontrolled OS-level interleavings.
    """

    def __init__(self) -> None:
        self._register = ThreadSafeCAS(_UNSET)
        self._invocations_lock = threading.Lock()
        self.invocations = 0

    def propose(self, value: Any) -> Any:
        with self._invocations_lock:
            self.invocations += 1
        self._register.compare_and_swap(_UNSET, value)
        decided = self._register.read()
        return decided

    @property
    def decided(self) -> Any:
        value = self._register.read()
        return None if value is _UNSET else value


def run_threaded_consensus(proposals: Dict[int, Any]) -> Dict[int, Any]:
    """Run one threaded consensus instance with the given per-thread proposals.

    Returns the value each participant decided.  Used by tests to assert
    agreement and validity under real thread scheduling.
    """
    obj = ThreadedConsensusObject()
    decisions: Dict[int, Any] = {}
    lock = threading.Lock()

    def worker(pid: int, value: Any) -> None:
        decided = obj.propose(value)
        with lock:
            decisions[pid] = decided

    threads = [
        threading.Thread(target=worker, args=(pid, value), name=f"proposer-{pid}")
        for pid, value in proposals.items()
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return decisions
