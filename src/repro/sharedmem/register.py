"""Atomic (linearizable) read/write registers.

In the simulator every primitive operation is executed as one atomic kernel
step (see :class:`~repro.sim.context.SharedMemEffect`), so these objects only
need to implement the sequential semantics plus operation accounting.  The
``threaded`` module provides lock-protected versions for use under real
Python threads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple


class MemoryAccessError(RuntimeError):
    """Raised when a process touches a memory it is not a member of."""


@dataclass
class RegisterStats:
    """Operation counters for one register."""

    reads: int = 0
    writes: int = 0
    rmw_ops: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes + self.rmw_ops


class AtomicRegister:
    """A multi-reader multi-writer atomic register."""

    def __init__(self, name: str = "register", initial: Any = None) -> None:
        self.name = name
        self._value = initial
        self.stats = RegisterStats()
        self._history: List[Tuple[str, Any]] = []

    def read(self) -> Any:
        """Return the current value."""
        self.stats.reads += 1
        return self._value

    def write(self, value: Any) -> None:
        """Overwrite the current value."""
        self.stats.writes += 1
        self._value = value
        self._history.append(("write", value))

    def peek(self) -> Any:
        """Inspect the value without counting an operation (tests/metrics only)."""
        return self._value

    @property
    def history(self) -> List[Tuple[str, Any]]:
        """The sequence of mutating operations applied so far."""
        return list(self._history)

    def _record(self, kind: str, value: Any) -> None:
        self._history.append((kind, value))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, value={self._value!r})"


class RegisterArray:
    """A dynamically sized array of atomic registers with a common prefix name."""

    def __init__(self, name: str = "array", initial: Any = None) -> None:
        self.name = name
        self.initial = initial
        self._registers: Dict[Any, AtomicRegister] = {}

    def __getitem__(self, index: Any) -> AtomicRegister:
        if index not in self._registers:
            self._registers[index] = AtomicRegister(f"{self.name}[{index!r}]", self.initial)
        return self._registers[index]

    def __len__(self) -> int:
        return len(self._registers)

    def allocated_indices(self) -> List[Any]:
        return list(self._registers)

    def total_operations(self) -> int:
        return sum(register.stats.total for register in self._registers.values())
