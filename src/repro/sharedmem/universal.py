"""A universal construction on top of cluster consensus objects.

Herlihy's universality theorem says that consensus objects (together with
registers) allow any sequential object to be implemented wait-free.  The
paper leans on this implicitly: "consensus can be solved by a deterministic
algorithm within each cluster", hence each cluster can expose arbitrarily
powerful agreement abstractions.  This module makes the point concrete: a
:class:`UniversalObject` turns a sequential state machine into a linearizable
cluster-shared object by agreeing, slot after slot, on the next operation to
apply -- the standard consensus-based state-machine-replication construction.

It is not needed by the consensus algorithms themselves, but it is exercised
by tests and by the ``cluster_state_machine`` example to show what the
intra-cluster substrate can do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from .memory import ClusterSharedMemory


@dataclass(frozen=True)
class AppliedOperation:
    """One operation agreed at one slot of the universal object's log."""

    slot: int
    invoker: int
    operation: str
    argument: Any
    result: Any


class UniversalObject:
    """A linearizable object built from per-slot consensus.

    ``transition(state, operation, argument) -> (new_state, result)`` defines
    the sequential behaviour.  Each invocation proposes itself for successive
    log slots until one slot decides it; every process applies the decided
    operations in slot order, so all members observe the same linearization.
    """

    def __init__(
        self,
        memory: ClusterSharedMemory,
        name: str,
        initial_state: Any,
        transition: Callable[[Any, str, Any], Tuple[Any, Any]],
    ) -> None:
        self.memory = memory
        self.name = name
        self.initial_state = initial_state
        self.transition = transition
        self._applied: Dict[int, List[AppliedOperation]] = {pid: [] for pid in memory.members}
        self._state: Dict[int, Any] = {pid: initial_state for pid in memory.members}
        self._next_slot: Dict[int, int] = {pid: 0 for pid in memory.members}

    def invoke(self, ctx, operation: str, argument: Any = None):
        """Invoke ``operation(argument)``; returns its result (generator).

        The invocation is wait-free for the invoking process: it needs at
        most one consensus slot per concurrent competing invocation before
        its own proposal wins a slot.
        """
        self.memory.assert_member(ctx.pid)
        proposal = (ctx.pid, operation, argument, ctx.now())
        while True:
            slot = self._next_slot[ctx.pid]
            cons = self.memory.consensus_object("universal", self.name, slot)
            decided = yield from cons.propose(ctx, proposal)
            invoker, op_name, op_arg, _stamp = decided
            state, result = self.transition(self._state[ctx.pid], op_name, op_arg)
            self._state[ctx.pid] = state
            record = AppliedOperation(slot=slot, invoker=invoker, operation=op_name, argument=op_arg, result=result)
            self._applied[ctx.pid].append(record)
            self._next_slot[ctx.pid] = slot + 1
            if decided == proposal:
                return result

    def local_state(self, pid: int) -> Any:
        """The state as currently observed by ``pid``."""
        return self._state[pid]

    def log_of(self, pid: int) -> List[AppliedOperation]:
        """The prefix of the shared log applied so far by ``pid``."""
        return list(self._applied[pid])


def counter_transition(state: int, operation: str, argument: Any) -> Tuple[int, Any]:
    """Sequential specification of a counter (used by tests and examples)."""
    if operation == "increment":
        amount = 1 if argument is None else int(argument)
        return state + amount, state + amount
    if operation == "read":
        return state, state
    raise ValueError(f"unknown counter operation {operation!r}")


def append_log_transition(state: Tuple[Any, ...], operation: str, argument: Any) -> Tuple[Tuple[Any, ...], Any]:
    """Sequential specification of an append-only log."""
    if operation == "append":
        new_state = state + (argument,)
        return new_state, len(new_state) - 1
    if operation == "read":
        return state, state
    raise ValueError(f"unknown log operation {operation!r}")
