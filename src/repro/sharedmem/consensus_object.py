"""Intra-cluster consensus objects built from synchronization primitives.

Because each cluster memory provides an operation with infinite consensus
number (compare&swap in this implementation), consensus *inside a cluster*
is solvable deterministically and wait-free for any number of crashes
[Herlihy 1991].  The paper assumes each cluster exposes such "cluster-limited
consensus objects"; here they are built explicitly on top of the primitives
of :mod:`repro.sharedmem.rmw`, one shared-memory operation at a time, so the
substrate layering matches the paper's model section.

Algorithms invoke ``propose`` through the process context::

    decided = yield from cons.propose(ctx, value)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set

from .register import MemoryAccessError
from .rmw import CompareAndSwapRegister, LLSCRegister, TestAndSetRegister
from .register import AtomicRegister


class _Unset:
    """Private sentinel for "no value proposed yet" (distinct from ⊥ and None)."""

    _instance: Optional["_Unset"] = None

    def __new__(cls) -> "_Unset":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNSET"


UNSET = _Unset()


@dataclass
class ConsensusObjectStats:
    """Counters of one consensus object's usage."""

    invocations: int = 0
    winners: int = 0
    proposers: Set[int] = field(default_factory=set)


class ConsensusObject:
    """Base class: a single-shot agreement object.

    Subclasses implement :meth:`propose` as a generator that performs the
    underlying shared-memory primitives through the process context.  All of
    them satisfy validity (the decided value was proposed), agreement (every
    ``propose`` returns the same value) and wait-freedom.
    """

    def __init__(self, name: str, members: Optional[Set[int]] = None) -> None:
        self.name = name
        self.members = set(members) if members is not None else None
        self.stats = ConsensusObjectStats()

    def _check_membership(self, pid: int) -> None:
        if self.members is not None and pid not in self.members:
            raise MemoryAccessError(
                f"process {pid} invoked consensus object {self.name!r} owned by cluster "
                f"members {sorted(self.members)}"
            )

    def propose(self, ctx, value):  # pragma: no cover - interface
        raise NotImplementedError

    def decided_value(self) -> Any:
        """The decided value, or ``UNSET`` if nobody proposed yet."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, decided={self.decided_value()!r})"


class CASConsensusObject(ConsensusObject):
    """Consensus from a single compare&swap register.

    ``propose(v)`` attempts ``CAS(UNSET -> v)`` and then reads the register:
    whichever proposal's CAS landed first is the decision for everybody.
    Two shared-memory operations per invocation.
    """

    def __init__(self, name: str, members: Optional[Set[int]] = None) -> None:
        super().__init__(name, members)
        self._register = CompareAndSwapRegister(f"{name}.cas", UNSET)

    def propose(self, ctx, value):
        self._check_membership(ctx.pid)
        self.stats.invocations += 1
        self.stats.proposers.add(ctx.pid)
        won = yield from ctx.sm_op(self._register.compare_and_swap, UNSET, value)
        if won:
            self.stats.winners += 1
        decided = yield from ctx.sm_op(self._register.read)
        return decided

    def decided_value(self) -> Any:
        return self._register.peek()

    @property
    def register(self) -> CompareAndSwapRegister:
        return self._register


class LLSCConsensusObject(ConsensusObject):
    """Consensus from a load-linked/store-conditional register.

    Functionally equivalent to :class:`CASConsensusObject`; provided to show
    that any primitive of infinite consensus number fits the paper's model.
    """

    def __init__(self, name: str, members: Optional[Set[int]] = None) -> None:
        super().__init__(name, members)
        self._register = LLSCRegister(f"{name}.llsc", UNSET)

    def propose(self, ctx, value):
        self._check_membership(ctx.pid)
        self.stats.invocations += 1
        self.stats.proposers.add(ctx.pid)
        while True:
            current = yield from ctx.sm_op(self._register.load_linked, ctx.pid)
            if current is not UNSET:
                return current
            stored = yield from ctx.sm_op(self._register.store_conditional, ctx.pid, value)
            if stored:
                self.stats.winners += 1
                return value

    def decided_value(self) -> Any:
        return self._register.peek()


class TwoProcessTASConsensus(ConsensusObject):
    """Binary consensus for *two* processes from test&set plus registers.

    Test&set has consensus number exactly 2 [Herlihy 1991]; this object
    demonstrates the lower rung of the consensus hierarchy and is used only
    by tests.  ``slots`` maps each of the two participating pids to 0 or 1.
    """

    def __init__(self, name: str, slots: Dict[int, int]) -> None:
        super().__init__(name, set(slots))
        if sorted(slots.values()) != [0, 1]:
            raise ValueError("slots must map the two pids to 0 and 1")
        self._slots = dict(slots)
        self._proposals = [AtomicRegister(f"{name}.prop[0]", UNSET), AtomicRegister(f"{name}.prop[1]", UNSET)]
        self._tas = TestAndSetRegister(f"{name}.tas")

    def propose(self, ctx, value):
        self._check_membership(ctx.pid)
        self.stats.invocations += 1
        self.stats.proposers.add(ctx.pid)
        slot = self._slots[ctx.pid]
        yield from ctx.sm_op(self._proposals[slot].write, value)
        lost = yield from ctx.sm_op(self._tas.test_and_set)
        if not lost:
            self.stats.winners += 1
            return value
        other = yield from ctx.sm_op(self._proposals[1 - slot].read)
        return other

    def decided_value(self) -> Any:
        if not self._tas.peek():
            return UNSET
        for slot, register in enumerate(self._proposals):
            if register.peek() is not UNSET:
                winner_slot = slot
                break
        else:  # pragma: no cover - unreachable once TAS won
            return UNSET
        # The winner is whoever completed test&set first; its proposal register
        # was necessarily written before the test&set, so the first written
        # proposal register of the winner is the decision.  Both registers may
        # be written; decided value equals the winner's proposal, which tests
        # recover through the propose() return values instead.
        return self._proposals[winner_slot].peek()
