"""Read-modify-write synchronization primitives.

The paper's model (Section II-A) enriches each cluster memory with an
operation of infinite consensus number, naming ``compare&swap()`` as the
canonical example.  This module provides compare&swap plus the other
classic RMW objects (fetch&add, test&set, swap, LL/SC) so the consensus
hierarchy can be exercised and tested: test&set has consensus number 2,
whereas compare&swap and LL/SC solve consensus for any number of processes.
"""

from __future__ import annotations

from typing import Any, Dict

from .register import AtomicRegister


class CompareAndSwapRegister(AtomicRegister):
    """An atomic register with ``compare&swap`` (consensus number infinity)."""

    def compare_and_swap(self, expected: Any, new: Any) -> bool:
        """If the value equals ``expected``, replace it with ``new``.

        Returns ``True`` when the swap took effect.
        """
        self.stats.rmw_ops += 1
        if self._value == expected:
            self._value = new
            self._record("cas", new)
            return True
        return False

    def compare_and_exchange(self, expected: Any, new: Any) -> Any:
        """CAS variant returning the value observed *before* the operation."""
        self.stats.rmw_ops += 1
        previous = self._value
        if previous == expected:
            self._value = new
            self._record("cas", new)
        return previous


class FetchAndAddRegister(AtomicRegister):
    """An integer register with atomic ``fetch&add``."""

    def __init__(self, name: str = "faa", initial: int = 0) -> None:
        super().__init__(name, initial)

    def fetch_and_add(self, delta: int = 1) -> int:
        """Add ``delta`` and return the value held *before* the addition."""
        self.stats.rmw_ops += 1
        previous = self._value
        self._value = previous + delta
        self._record("faa", self._value)
        return previous


class TestAndSetRegister(AtomicRegister):
    """A one-shot boolean register with atomic ``test&set`` (consensus number 2)."""

    def __init__(self, name: str = "tas") -> None:
        super().__init__(name, False)

    def test_and_set(self) -> bool:
        """Set the register to ``True``; return the value it held before."""
        self.stats.rmw_ops += 1
        previous = self._value
        self._value = True
        self._record("tas", True)
        return previous


class SwapRegister(AtomicRegister):
    """An atomic register with unconditional ``swap``."""

    def swap(self, new: Any) -> Any:
        """Store ``new`` and return the previous value."""
        self.stats.rmw_ops += 1
        previous = self._value
        self._value = new
        self._record("swap", new)
        return previous


class LLSCRegister(AtomicRegister):
    """A register with load-linked / store-conditional.

    ``store_conditional`` by process ``pid`` succeeds only if no other write
    (by any process, through any operation) happened since ``pid``'s last
    ``load_linked``.
    """

    def __init__(self, name: str = "llsc", initial: Any = None) -> None:
        super().__init__(name, initial)
        self._version = 0
        self._linked_version: Dict[int, int] = {}

    def write(self, value: Any) -> None:
        self._version += 1
        super().write(value)

    def load_linked(self, pid: int) -> Any:
        """Read the value and remember the version seen by ``pid``."""
        self.stats.rmw_ops += 1
        self._linked_version[pid] = self._version
        return self._value

    def store_conditional(self, pid: int, value: Any) -> bool:
        """Write ``value`` iff no write occurred since ``pid``'s load_linked."""
        self.stats.rmw_ops += 1
        linked = self._linked_version.get(pid)
        if linked is None or linked != self._version:
            return False
        self._version += 1
        self._value = value
        self._record("sc", value)
        return True
