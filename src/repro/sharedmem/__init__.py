"""Shared-memory substrate: registers, RMW primitives, cluster memories.

This package implements the intra-cluster shared memory ``MEM_x`` of the
paper's model: atomic read/write registers enriched with synchronization
operations of infinite consensus number, and the cluster-limited consensus
objects the algorithms invoke at every round.
"""

from .consensus_object import (
    UNSET,
    CASConsensusObject,
    ConsensusObject,
    ConsensusObjectStats,
    LLSCConsensusObject,
    TwoProcessTASConsensus,
)
from .memory import ClusterSharedMemory, build_cluster_memories
from .register import AtomicRegister, MemoryAccessError, RegisterArray, RegisterStats
from .rmw import (
    CompareAndSwapRegister,
    FetchAndAddRegister,
    LLSCRegister,
    SwapRegister,
    TestAndSetRegister,
)
from .threaded import (
    ThreadSafeCAS,
    ThreadSafeFetchAndAdd,
    ThreadSafeRegister,
    ThreadedConsensusObject,
    run_threaded_consensus,
)
from .universal import (
    AppliedOperation,
    UniversalObject,
    append_log_transition,
    counter_transition,
)

__all__ = [
    "UNSET",
    "AppliedOperation",
    "AtomicRegister",
    "CASConsensusObject",
    "ClusterSharedMemory",
    "CompareAndSwapRegister",
    "ConsensusObject",
    "ConsensusObjectStats",
    "FetchAndAddRegister",
    "LLSCConsensusObject",
    "LLSCRegister",
    "MemoryAccessError",
    "RegisterArray",
    "RegisterStats",
    "SwapRegister",
    "TestAndSetRegister",
    "ThreadSafeCAS",
    "ThreadSafeFetchAndAdd",
    "ThreadSafeRegister",
    "ThreadedConsensusObject",
    "TwoProcessTASConsensus",
    "UniversalObject",
    "append_log_transition",
    "build_cluster_memories",
    "counter_transition",
    "run_threaded_consensus",
]
