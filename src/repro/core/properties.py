"""Checkers for the three properties defining consensus.

* **Validity** — every decided value was proposed by some process.
* **Agreement** — no two processes decide different values.
* **Termination** — every correct process decides (with probability 1; in a
  bounded simulation this is checked only when the paper's termination
  condition on clusters holds).

The checkers work on :class:`~repro.sim.kernel.SimulationResult` objects and
are used by the harness after every run, by the integration tests and by the
property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Mapping, Optional

from ..cluster.topology import ClusterTopology
from ..sim.kernel import SimulationResult


class ConsensusViolation(AssertionError):
    """Raised when a run violates a consensus safety or liveness property."""


@dataclass
class PropertyReport:
    """Outcome of checking one run against the consensus properties."""

    validity: bool
    agreement: bool
    termination_expected: bool
    termination: bool
    violations: List[str] = field(default_factory=list)

    @property
    def safety_ok(self) -> bool:
        return self.validity and self.agreement

    @property
    def ok(self) -> bool:
        if not self.safety_ok:
            return False
        if self.termination_expected and not self.termination:
            return False
        return True

    def raise_on_violation(self) -> None:
        if not self.ok:
            raise ConsensusViolation("; ".join(self.violations) or "consensus property violated")


def check_agreement(decisions: Mapping[int, Any]) -> Optional[str]:
    """Return a violation description if two processes decided differently."""
    values = set(decisions.values())
    if len(values) > 1:
        return f"agreement violated: decided values {sorted(map(repr, values))}"
    return None


def check_validity(decisions: Mapping[int, Any], proposals: Mapping[int, Any]) -> Optional[str]:
    """Return a violation description if a decided value was never proposed."""
    proposed = set(proposals.values())
    for pid, value in decisions.items():
        if value not in proposed:
            return (
                f"validity violated: process {pid} decided {value!r}, "
                f"which was proposed by nobody (proposals: {sorted(proposed)})"
            )
    return None


def check_termination(result: SimulationResult) -> Optional[str]:
    """Return a violation description if some correct process never decided."""
    if result.non_terminated:
        return (
            f"termination violated: correct processes {sorted(result.non_terminated)} "
            f"did not decide (status: {result.status.value})"
        )
    return None


def verify_run(
    result: SimulationResult,
    proposals: Mapping[int, Any],
    topology: Optional[ClusterTopology] = None,
    termination_expected: Optional[bool] = None,
) -> PropertyReport:
    """Check a finished run against validity, agreement and termination.

    When ``termination_expected`` is not given it is derived from the paper's
    condition: termination is expected iff the clusters containing at least
    one correct process cover a strict majority (which requires ``topology``).
    """
    violations: List[str] = []

    agreement_violation = check_agreement(result.decisions)
    if agreement_violation:
        violations.append(agreement_violation)
    validity_violation = check_validity(result.decisions, proposals)
    if validity_violation:
        violations.append(validity_violation)

    if termination_expected is None:
        if topology is None:
            termination_expected = True
        else:
            termination_expected = topology.termination_condition_holds(result.correct)

    termination_violation = check_termination(result)
    terminated = termination_violation is None
    if termination_expected and termination_violation:
        violations.append(termination_violation)

    return PropertyReport(
        validity=validity_violation is None,
        agreement=agreement_violation is None,
        termination_expected=termination_expected,
        termination=terminated,
        violations=violations,
    )


def decisions_are_unanimous(result: SimulationResult) -> bool:
    """True when at least one process decided and all decisions are equal."""
    return bool(result.decisions) and len(result.decided_values) == 1
