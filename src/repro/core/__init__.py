"""The paper's primary contribution: hybrid-model binary consensus.

* :func:`~repro.core.pattern.msg_exchange` — Algorithm 1, the cluster-aware
  all-to-all communication pattern.
* :class:`~repro.core.local_coin.LocalCoinConsensus` — Algorithm 2.
* :class:`~repro.core.common_coin.CommonCoinConsensus` — Algorithm 3.
"""

from .base import (
    BINARY_VALUES,
    BOT,
    ConsensusProcess,
    DecideMessage,
    PhaseMessage,
    ProcessEnvironment,
    ProtocolInvariantError,
    validate_proposal,
)
from .common_coin import CommonCoinConsensus
from .local_coin import LocalCoinConsensus
from .pattern import ExchangeOutcome, msg_exchange, scan_mailbox
from .properties import (
    ConsensusViolation,
    PropertyReport,
    check_agreement,
    check_termination,
    check_validity,
    decisions_are_unanimous,
    verify_run,
)

__all__ = [
    "BINARY_VALUES",
    "BOT",
    "CommonCoinConsensus",
    "ConsensusProcess",
    "ConsensusViolation",
    "DecideMessage",
    "ExchangeOutcome",
    "LocalCoinConsensus",
    "PhaseMessage",
    "ProcessEnvironment",
    "PropertyReport",
    "ProtocolInvariantError",
    "check_agreement",
    "check_termination",
    "check_validity",
    "decisions_are_unanimous",
    "msg_exchange",
    "scan_mailbox",
    "validate_proposal",
    "verify_run",
]
