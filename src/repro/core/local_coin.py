"""Algorithm 2: local-coin binary consensus for the hybrid model.

The algorithm proceeds in asynchronous rounds of two phases.  In each phase
the members of a cluster first agree on a single value through the cluster's
consensus object (``CONS_x[r, 1]`` then ``CONS_x[r, 2]``), then run the
``msg_exchange`` pattern across all clusters.  Phase 1 selects a value to
*champion* (or ``⊥``); phase 2 decides when only one championed value is
seen, adopts it when it is seen alongside ``⊥``, and otherwise flips a local
coin.  With singleton clusters the cluster consensus is vacuous and the
algorithm degenerates to Ben-Or's 1983 algorithm, of which it is the
hybrid-model extension.
"""

from __future__ import annotations

from typing import Any, Optional

from .base import (
    BOT,
    ConsensusProcess,
    ProcessEnvironment,
    ProtocolInvariantError,
    validate_proposal,
)
from .pattern import msg_exchange


class LocalCoinConsensus(ConsensusProcess):
    """One process's instance of the paper's Algorithm 2."""

    algorithm_name = "hybrid-local-coin"

    def __init__(self, env: ProcessEnvironment, tag: Optional[str] = None) -> None:
        super().__init__(env, tag)
        if env.memory is None:
            raise ValueError("Algorithm 2 needs the cluster shared memory")
        if env.local_coin is None:
            raise ValueError("Algorithm 2 needs a local coin")

    def run(self, ctx):
        env = self.env
        topology = env.topology
        est1: Any = validate_proposal(env.proposal)
        round_number = 0
        while True:
            round_number += 1
            ctx.mark_round(round_number)

            # ----- Phase 1: try to champion a value --------------------------
            # First agree inside the cluster (CONS_x[r, 1])...
            cons1 = env.memory.consensus_object(self.tag, round_number, 1)
            est1 = yield from cons1.propose(ctx, est1)
            # ...then exchange across all clusters.
            outcome = yield from msg_exchange(ctx, env, round_number, 1, est1, self.tag)
            if outcome.is_decide:
                return (yield from self.broadcast_decide(ctx, outcome.decide_value))
            majority_value = outcome.majority_value(topology)
            est2: Any = majority_value if majority_value is not None else BOT
            # Weak agreement WA1: any two processes with est2 != ⊥ hold the
            # same value (two strict majorities intersect and every cluster is
            # univalent in a phase).

            # ----- Phase 2: try to decide from the championed values ---------
            cons2 = env.memory.consensus_object(self.tag, round_number, 2)
            est2 = yield from cons2.propose(ctx, est2)
            outcome = yield from msg_exchange(ctx, env, round_number, 2, est2, self.tag)
            if outcome.is_decide:
                return (yield from self.broadcast_decide(ctx, outcome.decide_value))

            received = set(outcome.values_received)
            championed = received - {BOT}
            if len(championed) > 1:
                raise ProtocolInvariantError(
                    f"round {round_number}: two distinct championed values {championed} "
                    "were received in phase 2, violating weak agreement WA1"
                )
            if championed and BOT not in received:
                # rec_i = {v}: decide v (after flooding DECIDE to avoid deadlock).
                value = championed.pop()
                return (yield from self.broadcast_decide(ctx, value))
            if championed:
                # rec_i = {v, ⊥}: adopt v so no other value can be decided later.
                est1 = next(iter(championed))
            else:
                # rec_i = {⊥}: nobody decided this round, flip the local coin.
                ctx.count_coin_flip()
                est1 = env.local_coin.flip()
