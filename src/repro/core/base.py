"""Shared definitions for the hybrid-model consensus algorithms.

This module defines the value domain (binary values plus the default value
``⊥``), the message payloads exchanged by the algorithms, the per-process
environment handed to each algorithm instance, and the common abstract base
class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..cluster.topology import ClusterTopology
from ..coins.common import CommonCoin
from ..coins.local import LocalCoin
from ..sharedmem.memory import ClusterSharedMemory


class ProtocolInvariantError(RuntimeError):
    """Raised when an execution violates an invariant the paper proves.

    If this ever fires, either the implementation or the environment broke
    one of the algorithm's assumptions (e.g. two processes of one cluster
    broadcast different values in the same phase); tests rely on it to catch
    regressions.
    """


class _Bottom:
    """The paper's default value ``⊥`` ("I champion no value")."""

    _instance: Optional["_Bottom"] = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __reduce__(self):
        return (_Bottom, ())


BOT = _Bottom()

BINARY_VALUES = (0, 1)


def validate_proposal(value: Any) -> int:
    """Check that a proposed value is binary (the algorithms solve *binary* consensus)."""
    if value not in BINARY_VALUES:
        raise ValueError(f"proposals must be 0 or 1, got {value!r}")
    return int(value)


@dataclass(frozen=True)
class PhaseMessage:
    """The triple ``(r, ph, est)`` broadcast by the communication pattern.

    ``tag`` namespaces concurrent consensus instances (and distinguishes the
    algorithms), so several instances can share one network.  ``est`` is 0, 1
    or :data:`BOT`.
    """

    tag: str
    round_number: int
    phase: int
    est: Any


@dataclass(frozen=True)
class DecideMessage:
    """``DECIDE(v)``: broadcast just before deciding, and relayed on receipt.

    Prevents the deadlock in which every member of a cluster has decided (or
    crashed) and therefore no longer feeds the communication pattern of the
    processes still running.
    """

    tag: str
    value: int


@dataclass
class ProcessEnvironment:
    """Everything one algorithm instance needs about its process.

    ``memory`` is the shared memory of the process's cluster (``None`` for
    the pure message-passing baselines), and the coins are per-process /
    global randomness sources as defined in Section II-B.
    """

    pid: int
    proposal: int
    topology: ClusterTopology
    memory: Optional[ClusterSharedMemory] = None
    local_coin: Optional[LocalCoin] = None
    common_coin: Optional[CommonCoin] = None

    def __post_init__(self) -> None:
        self.proposal = validate_proposal(self.proposal)
        if self.pid not in self.topology.process_ids():
            raise ValueError(f"process id {self.pid} not in topology {self.topology.describe()}")
        if self.memory is not None:
            self.memory.assert_member(self.pid)

    @property
    def cluster_index(self) -> int:
        return self.topology.cluster_index_of(self.pid)

    @property
    def cluster(self):
        """The paper's ``cluster(i)`` for this process."""
        return self.topology.cluster_of(self.pid)


class ConsensusProcess:
    """Base class of all per-process consensus algorithm instances.

    Subclasses implement :meth:`run` as a generator driven by the simulation
    kernel; the generator's return value is the decided value.
    """

    algorithm_name: str = "abstract"

    def __init__(self, env: ProcessEnvironment, tag: Optional[str] = None) -> None:
        self.env = env
        self.tag = tag if tag is not None else self.algorithm_name

    def run(self, ctx):  # pragma: no cover - interface
        """The process behaviour (a generator).  Must return the decision."""
        raise NotImplementedError

    def broadcast_decide(self, ctx, value: int):
        """Broadcast ``DECIDE(value)`` to every process, then return the value."""
        yield from ctx.broadcast(DecideMessage(tag=self.tag, value=value))
        return value

    def __repr__(self) -> str:
        return f"{type(self).__name__}(pid={self.env.pid}, proposal={self.env.proposal})"
