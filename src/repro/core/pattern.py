"""Algorithm 1: the ``msg_exchange`` all-to-all communication pattern.

The pattern broadcasts ``(r, ph, est)`` and then waits until it has heard,
*directly or by cluster attribution*, from a strict majority of the
processes.  Cluster attribution is the heart of the paper: when a message
``(r, ph, v)`` from process ``p_j ∈ P[x]`` is received, it is accounted as if
the very same message had been received from every member of ``P[x]`` --
which is sound because the per-cluster consensus objects guarantee that no
two members of a cluster broadcast different values in the same phase
("one for all and all for one").

The pattern also watches for ``DECIDE`` messages so that a process whose
peers have already decided (and stopped sending phase messages) cannot block
forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Optional, Sequence

from ..adversary.faults import TamperedPayload
from .base import BOT, DecideMessage, PhaseMessage, ProcessEnvironment


@dataclass(frozen=True)
class ExchangeOutcome:
    """Result of one ``msg_exchange`` invocation.

    ``kind`` is ``"supporters"`` for a normal completion (a majority of
    processes heard from) or ``"decide"`` when a ``DECIDE`` message
    short-circuited the wait.
    """

    kind: str
    round_number: int
    phase: int
    supporters: Dict[Any, FrozenSet[int]] = field(default_factory=dict)
    heard: FrozenSet[int] = frozenset()
    values_received: FrozenSet[Any] = frozenset()
    decide_value: Optional[int] = None

    @property
    def is_decide(self) -> bool:
        return self.kind == "decide"

    def supporters_of(self, value: Any) -> FrozenSet[int]:
        """Processes (after cluster attribution) supporting ``value``."""
        return self.supporters.get(value, frozenset())

    def majority_value(self, topology) -> Optional[int]:
        """A binary value supported by a strict majority, if any.

        At most one such value can exist because two strict majorities always
        intersect (weak agreement WA1 of the paper).
        """
        for value in (0, 1):
            if topology.is_majority(len(self.supporters_of(value))):
                return value
        return None


def scan_mailbox(
    mailbox: Sequence[Any],
    env: ProcessEnvironment,
    tag: str,
    round_number: int,
    phase: int,
    expand_clusters: bool = True,
) -> ExchangeOutcome:
    """Build the (partial) exchange outcome visible in ``mailbox``.

    With ``expand_clusters`` (the default) a message from ``p_j`` is
    attributed to every member of ``cluster(j)`` -- the paper's rule, which
    is only sound when cluster consensus makes clusters univalent per phase.
    The pure message-passing baselines pass ``False`` to attribute messages
    to their senders only.

    This helper is exposed separately so that tests and the property-based
    suite can exercise the attribution logic on hand-built mailboxes.
    """
    topology = env.topology
    supporters: Dict[Any, set] = {}
    heard: set = set()
    values: set = set()
    for message in mailbox:
        payload = message.payload
        # Authentication modelling: a payload a corruption fault mutated in
        # transit arrives wrapped in TamperedPayload when messages are
        # signed.  The signature check fails, so the receiver discards the
        # message -- an authenticated-channel Byzantine mutation degrades to
        # an omission and never reaches the protocol logic.
        if isinstance(payload, TamperedPayload):
            continue
        if isinstance(payload, DecideMessage) and payload.tag == tag:
            return ExchangeOutcome(
                kind="decide",
                round_number=round_number,
                phase=phase,
                decide_value=payload.value,
            )
        if not isinstance(payload, PhaseMessage):
            continue
        if payload.tag != tag or payload.round_number != round_number or payload.phase != phase:
            continue
        if expand_clusters:
            members = topology.cluster_of(message.sender)
        else:
            members = frozenset((message.sender,))
        supporters.setdefault(payload.est, set()).update(members)
        heard.update(members)
        values.add(payload.est)
    return ExchangeOutcome(
        kind="supporters",
        round_number=round_number,
        phase=phase,
        supporters={value: frozenset(pids) for value, pids in supporters.items()},
        heard=frozenset(heard),
        values_received=frozenset(values),
    )


def msg_exchange(
    ctx,
    env: ProcessEnvironment,
    round_number: int,
    phase: int,
    est: Any,
    tag: str,
    expand_clusters: bool = True,
):
    """The paper's ``msg_exchange(r, ph, est)`` (a generator).

    Broadcasts the phase message, then blocks until either a ``DECIDE``
    message for this instance arrives or the processes heard from (with
    cluster attribution, unless ``expand_clusters`` is ``False``) form a
    strict majority.  Returns the corresponding :class:`ExchangeOutcome`.
    """
    if est not in (0, 1, BOT):
        raise ValueError(f"est must be 0, 1 or ⊥, got {est!r}")
    yield from ctx.broadcast(PhaseMessage(tag=tag, round_number=round_number, phase=phase, est=est))

    topology = env.topology

    def predicate(mailbox: Sequence[Any]) -> Optional[ExchangeOutcome]:
        outcome = scan_mailbox(mailbox, env, tag, round_number, phase, expand_clusters)
        if outcome.is_decide:
            return outcome
        if topology.is_majority(len(outcome.heard)):
            return outcome
        return None

    outcome = yield from ctx.wait_until(predicate)
    return outcome
