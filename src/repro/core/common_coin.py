"""Algorithm 3: common-coin binary consensus for the hybrid model.

Rounds have a single phase.  Each round the cluster members agree on their
estimate through ``CONS_x[r]``, exchange it across clusters, and then query
the common coin.  If a value is supported by a strict majority the process
adopts it and decides when the coin agrees with it; otherwise the coin's bit
becomes the new estimate.  Once every correct process holds the same
estimate, the expected number of additional rounds before the coin matches
it is 2 -- the property checked by experiment E4.

The algorithm is the hybrid-model extension of the crash-failure version of
the Friedman–Mostéfaoui–Raynal common-coin consensus as presented in
Raynal's 2018 book.
"""

from __future__ import annotations

from typing import Any, Optional

from .base import ConsensusProcess, ProcessEnvironment, validate_proposal
from .pattern import msg_exchange


class CommonCoinConsensus(ConsensusProcess):
    """One process's instance of the paper's Algorithm 3."""

    algorithm_name = "hybrid-common-coin"

    #: Phase label used in the (single-phase) communication pattern.
    SINGLE_PHASE = 1

    def __init__(self, env: ProcessEnvironment, tag: Optional[str] = None) -> None:
        super().__init__(env, tag)
        if env.memory is None:
            raise ValueError("Algorithm 3 needs the cluster shared memory")
        if env.common_coin is None:
            raise ValueError("Algorithm 3 needs a common coin")

    def run(self, ctx):
        env = self.env
        topology = env.topology
        est: Any = validate_proposal(env.proposal)
        round_number = 0
        while True:
            round_number += 1
            ctx.mark_round(round_number)

            # Agree inside the cluster (CONS_x[r]), then exchange across clusters.
            cons = env.memory.consensus_object(self.tag, round_number)
            est = yield from cons.propose(ctx, est)
            outcome = yield from msg_exchange(
                ctx, env, round_number, self.SINGLE_PHASE, est, self.tag
            )
            if outcome.is_decide:
                return (yield from self.broadcast_decide(ctx, outcome.decide_value))

            # Every process obtains the same bit for this round.
            ctx.count_coin_flip()
            coin_bit = env.common_coin.bit(round_number, ctx.pid)

            majority_value = outcome.majority_value(topology)
            if majority_value is not None:
                est = majority_value
                if coin_bit == majority_value:
                    return (yield from self.broadcast_decide(ctx, majority_value))
            else:
                est = coin_bit
