"""The message-passing substrate: reliable asynchronous channels.

The network connects every pair of processes with a reliable channel:
messages are never lost, corrupted or duplicated, but transit for an
arbitrary (randomly sampled) finite time, and are therefore not necessarily
delivered in send order.  The kernel consults :meth:`Network.sample_delay`
when it handles a send effect; this class also keeps the traffic counters
used by the benchmark harness.

Reliability can be revoked deliberately: when a fault-injection adversary
(:mod:`repro.adversary`) is installed in the kernel, sends it omits and
copies it duplicates are accounted here through :meth:`Network.record_fault`
-- the network's one adversary hook.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..sim.rng import RandomSource
from .delays import DelayModel, UniformDelay
from .message import Message, payload_size


@dataclass
class TrafficStats:
    """Aggregate traffic counters for one run."""

    messages_sent: int = 0
    messages_delivered: int = 0
    bytes_sent: int = 0
    #: Adversary-injected channel faults (see :meth:`Network.record_fault`):
    #: sends dropped by omission/partition faults, and extra copies injected
    #: by duplication faults.  Both stay 0 without an installed adversary.
    messages_omitted: int = 0
    messages_duplicated: int = 0
    sent_by_process: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    delivered_to_process: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    sent_by_kind: Dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def as_dict(self) -> Dict[str, object]:
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "bytes_sent": self.bytes_sent,
            "messages_omitted": self.messages_omitted,
            "messages_duplicated": self.messages_duplicated,
            "sent_by_kind": dict(self.sent_by_kind),
        }


class Network:
    """Fully connected, reliable, asynchronous point-to-point network."""

    def __init__(
        self,
        n: int,
        delay_model: Optional[DelayModel] = None,
        rng: Optional[RandomSource] = None,
        self_delay_factor: float = 0.1,
    ) -> None:
        if n < 1:
            raise ValueError("network needs at least one process")
        self.n = n
        self.delay_model = delay_model or UniformDelay()
        self._rng = (rng or RandomSource(0)).stream("network", "delays")
        self.self_delay_factor = self_delay_factor
        self.stats = TrafficStats()
        self._next_msg_id = 0

    def prepare(self, sender: int, dest: int, payload: object, time: float) -> Message:
        """Build the message envelope and account for the send."""
        self._validate_pid(sender)
        self._validate_pid(dest)
        self._next_msg_id += 1
        message = Message(
            sender=sender, dest=dest, payload=payload, send_time=time, msg_id=self._next_msg_id
        )
        self.stats.messages_sent += 1
        self.stats.bytes_sent += payload_size(payload)
        self.stats.sent_by_process[sender] += 1
        self.stats.sent_by_kind[type(payload).__name__] += 1
        return message

    def sample_delay(self, sender: int, dest: int) -> float:
        """Transit time for one message; self-addressed messages are faster."""
        delay = self.delay_model.sample(self._rng)
        if sender == dest:
            delay *= self.self_delay_factor
        return delay

    def record_delivery(self, message: Message) -> None:
        """Account for a delivery (called by the kernel)."""
        self.stats.messages_delivered += 1
        self.stats.delivered_to_process[message.dest] += 1

    def record_fault(self, kind: str) -> None:
        """Account one adversary-injected channel fault (called by the kernel).

        ``kind`` is ``"omitted"`` for a send the adversary dropped (omission
        or partition fault) or ``"duplicated"`` for each extra copy it
        injected.  This is the network's single adversary hook: the channel
        itself stays reliable unless the kernel's adversary says otherwise.
        """
        if kind == "omitted":
            self.stats.messages_omitted += 1
        elif kind == "duplicated":
            self.stats.messages_duplicated += 1
        else:
            raise ValueError(f"unknown fault kind {kind!r}; expected 'omitted' or 'duplicated'")

    def _validate_pid(self, pid: int) -> None:
        if not 0 <= pid < self.n:
            raise ValueError(f"process id {pid} out of range 0..{self.n - 1}")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Network(n={self.n}, delay={self.delay_model!r}, "
            f"sent={self.stats.messages_sent})"
        )
