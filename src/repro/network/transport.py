"""The message-passing substrate: reliable asynchronous channels.

The network connects every pair of processes with a reliable channel:
messages are never lost, corrupted or duplicated, but transit for an
arbitrary (randomly sampled) finite time, and are therefore not necessarily
delivered in send order.  The kernel consults :meth:`Network.sample_delay`
when it handles a send effect; this class also keeps the traffic counters
used by the benchmark harness.

Reliability can be revoked deliberately: when a fault-injection adversary
(:mod:`repro.adversary`) is installed in the kernel, sends it omits and
copies it duplicates are accounted here through :meth:`Network.record_fault`
-- the network's one adversary hook.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..sim.rng import RandomSource
from .delays import DelayModel, UniformDelay
from .message import Message, payload_size

#: Direct C-level constructor for the hot path: building the Message tuple
#: through ``tuple.__new__`` skips the ``Message.__new__`` wrapper frame.
#: Must stay equivalent to ``Message(sender, dest, payload, send_time,
#: msg_id)``.
_tuple_new = tuple.__new__

#: Delay-cache refill sizing: first refill, and the cap the block doubles to.
_MIN_BATCH = 16
_MAX_BATCH = 512

#: Payload-size memo cap; one entry per distinct payload object in flight.
_SIZE_MEMO_LIMIT = 8192

#: type -> __name__ memo for the sent_by_kind counter (process-wide; types
#: are immortal here, and distinct payload types are few).
_KIND_NAMES: dict = {}


@dataclass
class TrafficStats:
    """Aggregate traffic counters for one run."""

    messages_sent: int = 0
    messages_delivered: int = 0
    bytes_sent: int = 0
    #: Adversary-injected channel faults (see :meth:`Network.record_fault`):
    #: sends dropped by omission/partition faults, extra copies injected by
    #: duplication faults, and payloads mutated by corruption faults.  All
    #: stay 0 without an installed adversary.
    messages_omitted: int = 0
    messages_duplicated: int = 0
    messages_corrupted: int = 0
    sent_by_process: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    delivered_to_process: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    sent_by_kind: Dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def as_dict(self) -> Dict[str, object]:
        """The counters as one JSON-ready mapping (used by metrics)."""
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "bytes_sent": self.bytes_sent,
            "messages_omitted": self.messages_omitted,
            "messages_duplicated": self.messages_duplicated,
            "messages_corrupted": self.messages_corrupted,
            "sent_by_kind": dict(self.sent_by_kind),
        }


class Network:
    """Fully connected, reliable, asynchronous point-to-point network."""

    def __init__(
        self,
        n: int,
        delay_model: Optional[DelayModel] = None,
        rng: Optional[RandomSource] = None,
        self_delay_factor: float = 0.1,
    ) -> None:
        if n < 1:
            raise ValueError("network needs at least one process")
        self.n = n
        self.delay_model = delay_model or UniformDelay()
        self._rng = (rng or RandomSource(0)).stream("network", "delays")
        self.self_delay_factor = self_delay_factor
        self.stats = TrafficStats()
        self._next_msg_id = 0
        # Refillable delay cache: sample_delay serves raw model draws from
        # this FIFO block and refills it through DelayModel.sample_batch,
        # amortizing the per-draw RNG overhead.  Because sample_batch is
        # exact-sequence and this network object is the delays stream's only
        # consumer, draw i of the run is the same float whether or not it
        # was prefetched.  The block starts small (many runs send only a
        # handful of messages) and doubles up to _MAX_BATCH under load.
        # The refill block is stored reversed so the per-call fast path is a
        # single list.pop() from the end (O(1), in C) in FIFO draw order.
        self._delay_cache: list = []
        self._batch = _MIN_BATCH
        # Payload-size memo, keyed by payload object identity and holding a
        # strong reference (so an id can't be recycled while its entry
        # lives): a broadcast prepares the same payload object once per
        # destination, and those sends interleave with other processes', so
        # the recursive payload_size walk runs once per object instead of
        # once per destination.  Bounded to keep long sweeps from hoarding
        # dead payloads.
        self._size_memo: Dict[int, tuple] = {}

    def prepare(self, sender: int, dest: int, payload: object, time: float) -> Message:
        """Build the message envelope and account for the send."""
        n = self.n
        if not (0 <= sender < n and 0 <= dest < n):
            self._validate_pid(sender)
            self._validate_pid(dest)
        msg_id = self._next_msg_id = self._next_msg_id + 1
        message = Message(sender, dest, payload, time, msg_id)
        memo = self._size_memo
        entry = memo.get(id(payload))
        if entry is not None and entry[0] is payload:
            size = entry[1]
        else:
            size = payload_size(payload)
            if len(memo) >= _SIZE_MEMO_LIMIT:
                memo.clear()
            memo[id(payload)] = (payload, size)
        stats = self.stats
        stats.messages_sent += 1
        stats.bytes_sent += size
        stats.sent_by_process[sender] += 1
        kind = _KIND_NAMES.get(type(payload))
        if kind is None:
            kind = _KIND_NAMES[type(payload)] = type(payload).__name__
        stats.sent_by_kind[kind] += 1
        return message

    def transmit(self, sender: int, dest: int, payload: object, time: float):
        """:meth:`prepare` + :meth:`sample_delay` in one hot-path call.

        Returns ``(message, delay)``.  The kernel's send path crosses the
        network boundary once per message through this seam; the two
        constituent methods remain the public API and this method must stay
        behaviorally identical to calling them in sequence (enforced by the
        delay-batching regression tests).
        """
        n = self.n
        if not (0 <= sender < n and 0 <= dest < n):
            self._validate_pid(sender)
            self._validate_pid(dest)
        msg_id = self._next_msg_id = self._next_msg_id + 1
        message = _tuple_new(Message, (sender, dest, payload, time, msg_id))
        memo = self._size_memo
        entry = memo.get(id(payload))
        if entry is not None and entry[0] is payload:
            size = entry[1]
        else:
            size = payload_size(payload)
            if len(memo) >= _SIZE_MEMO_LIMIT:
                memo.clear()
            memo[id(payload)] = (payload, size)
        stats = self.stats
        stats.messages_sent += 1
        stats.bytes_sent += size
        stats.sent_by_process[sender] += 1
        kind = _KIND_NAMES.get(type(payload))
        if kind is None:
            kind = _KIND_NAMES[type(payload)] = type(payload).__name__
        stats.sent_by_kind[kind] += 1
        cache = self._delay_cache
        if not cache:
            cache = self.delay_model.sample_batch(self._rng, self._batch)
            cache.reverse()
            self._delay_cache = cache
            if self._batch < _MAX_BATCH:
                self._batch *= 2
        delay = cache.pop()
        if sender == dest:
            delay *= self.self_delay_factor
        return message, delay

    def sample_delay(self, sender: int, dest: int) -> float:
        """Transit time for one message; self-addressed messages are faster."""
        cache = self._delay_cache
        if not cache:
            cache = self.delay_model.sample_batch(self._rng, self._batch)
            cache.reverse()
            self._delay_cache = cache
            if self._batch < _MAX_BATCH:
                self._batch *= 2
        delay = cache.pop()
        if sender == dest:
            delay *= self.self_delay_factor
        return delay

    def record_delivery(self, message: Message) -> None:
        """Account for a delivery (called by the kernel)."""
        self.stats.messages_delivered += 1
        self.stats.delivered_to_process[message.dest] += 1

    def record_fault(self, kind: str) -> None:
        """Account one adversary-injected channel fault (called by the kernel).

        ``kind`` is ``"omitted"`` for a send the adversary dropped (omission
        or partition fault, or an adaptive adversary's infinite deferral),
        ``"duplicated"`` for each extra copy it injected, or ``"corrupted"``
        for each payload it mutated in transit.  This is the network's
        single adversary hook: the channel itself stays reliable unless the
        kernel's adversary says otherwise.
        """
        if kind == "omitted":
            self.stats.messages_omitted += 1
        elif kind == "duplicated":
            self.stats.messages_duplicated += 1
        elif kind == "corrupted":
            self.stats.messages_corrupted += 1
        else:
            raise ValueError(
                f"unknown fault kind {kind!r}; expected 'omitted', 'duplicated' or 'corrupted'"
            )

    def _validate_pid(self, pid: int) -> None:
        """Raise ``ValueError`` when ``pid`` is outside ``0..n-1``."""
        if not 0 <= pid < self.n:
            raise ValueError(f"process id {pid} out of range 0..{self.n - 1}")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Network(n={self.n}, delay={self.delay_model!r}, "
            f"sent={self.stats.messages_sent})"
        )
