"""Trace-driven delay models: fit real RTT data, replay recorded traces.

Every model in :mod:`repro.network.delays` is synthetic.  This module closes
the loop to measured networks three ways:

* :class:`EmpiricalDelay` -- inverse-transform sampling over an ECDF
  compressed to a fixed-resolution quantile grid fit from an RTT sample set
  (:meth:`EmpiricalDelay.fit`).  One uniform draw per sample, so the batched
  refill is the same vectorizable arithmetic transform the synthetic models
  use.
* :class:`ShiftedLogNormalDelay` -- a three-parameter shifted log-normal
  (the classic parametric fit for WAN RTTs: a propagation-delay floor plus a
  right-skewed queueing tail), fit by method of moments on the log scale
  (:meth:`ShiftedLogNormalDelay.fit`).
* :class:`TraceReplayDelay` -- replays a recorded per-link delay trace
  deterministically, in order, drawing no randomness at all; running past
  the end raises :class:`TraceExhausted` instead of silently wrapping.

All three honour the exact-sequence ``sample_batch`` contract (see
:class:`~repro.network.delays.DelayModel`) and have stable value-only
``repr``\\ s, so they enter :class:`~repro.harness.distributed.SweepPlan`
fingerprints and keep sharded merges bit-identical to single-host runs.

:func:`load_rtt_samples` reads RTT datasets from CSV or JSONL files (a small
committed fixture lives under ``tests/data/``), and ``python -m repro
fit-delays`` fits a model from such a file and prints its repr, ready to
paste into an :class:`~repro.harness.runner.ExperimentConfig`.
"""

from __future__ import annotations

import csv
import hashlib
import json
import math
import random
import weakref
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from ..sim.rng import random_block
from .delays import DelayModel, register_delay_model

#: Default number of grid intervals an :meth:`EmpiricalDelay.fit` keeps.
DEFAULT_RESOLUTION = 64

#: Column names (case-insensitive) the loader recognises in CSV headers and
#: JSONL objects, in preference order.
RTT_FIELD_NAMES = ("rtt_ms", "rtt", "delay_ms", "delay", "latency_ms", "latency")

#: A reference RTT sample set (milliseconds), shaped like a measured WAN
#: path: a ~23 ms propagation floor, a right-skewed queueing body around
#: 40 ms and occasional congestion spikes past 100 ms.  Committed here (and
#: mirrored in ``tests/data/rtt_sample.csv``) so every host building an e11
#: plan fits the identical models without touching the filesystem.
REFERENCE_RTT_MS: Tuple[float, ...] = (
    46.424, 42.033, 36.458, 42.728, 42.73, 37.121, 39.045, 35.254, 47.335,
    52.329, 65.602, 53.971, 46.468, 38.772, 41.752, 43.11, 34.882, 37.991,
    45.806, 108.106, 41.323, 47.214, 46.519, 31.599, 32.303, 246.575,
    52.909, 26.219, 36.279, 32.055, 147.518, 32.083, 34.18, 61.022, 57.339,
    55.39, 43.774, 27.169, 44.227, 41.498, 40.429, 135.898, 48.542, 28.139,
    62.886, 81.271, 29.631, 44.002, 46.415, 36.042, 34.403, 23.004, 63.762,
    30.342, 150.681, 37.886, 28.896, 30.554, 44.035, 30.78, 35.267, 50.436,
    42.097, 43.167, 43.149, 31.303, 50.495, 62.272, 41.681, 46.021, 26.853,
    35.934, 27.378, 38.628, 252.117, 47.319, 24.363, 183.684, 32.12,
    42.053, 34.746, 228.949, 192.539, 29.54, 74.045, 60.126, 47.592,
    31.827, 35.095, 44.033, 34.571, 57.112, 28.536, 38.104, 55.862, 42.373,
)


class TraceExhausted(RuntimeError):
    """A :class:`TraceReplayDelay` was asked for more draws than it holds."""


def _check_samples(samples: Sequence[float], what: str) -> List[float]:
    """Validate a sample collection: at least two positive finite floats."""
    values = [float(value) for value in samples]
    if len(values) < 2:
        raise ValueError(f"{what} needs at least 2 samples, got {len(values)}")
    for value in values:
        if not math.isfinite(value) or value <= 0.0:
            raise ValueError(f"{what} must be positive finite numbers, got {value!r}")
    return values


def empirical_quantile(sorted_samples: Sequence[float], p: float) -> float:
    """The linearly interpolated empirical quantile of pre-sorted data.

    The same linear-interpolation rule (``numpy.quantile``'s default) both
    :meth:`EmpiricalDelay.fit` and the property tests use, so "within sketch
    error of the source data" is checkable against one shared definition.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"quantile probability must be in [0, 1], got {p}")
    position = p * (len(sorted_samples) - 1)
    index = int(position)
    if index >= len(sorted_samples) - 1:
        return float(sorted_samples[-1])
    fraction = position - index
    low = sorted_samples[index]
    return float(low + (sorted_samples[index + 1] - low) * fraction)


def scale_to_unit_mean(samples: Sequence[float]) -> List[float]:
    """Rescale positive samples so their mean is exactly 1.0.

    The simulator's virtual time unit is "one mean transit" (the default
    ``UniformDelay`` has mean 1), so a measured RTT distribution must be
    normalised before it can replace a synthetic model without rescaling
    every experiment's time windows.  Shape (and therefore tail behaviour)
    is preserved; only the unit changes.
    """
    values = _check_samples(samples, "samples")
    mean = math.fsum(values) / len(values)
    return [value / mean for value in values]


@dataclass(frozen=True)
class EmpiricalDelay(DelayModel):
    """Inverse-transform sampling over an ECDF quantile grid.

    ``quantiles`` holds the inverse CDF evaluated at the evenly spaced
    probabilities ``i / (len(quantiles) - 1)``; a sample draws one uniform
    and linearly interpolates between the two bracketing grid points.  The
    grid is a fixed-size sketch of the source data (see :meth:`fit`), so the
    repr stays bounded no matter how large the RTT capture was, while any
    quantile of the model stays within one grid cell of the source's.
    """

    quantiles: Tuple[float, ...]

    def __post_init__(self) -> None:
        values = tuple(float(value) for value in self.quantiles)
        if len(values) < 2:
            raise ValueError(f"need at least 2 grid quantiles, got {len(values)}")
        previous = 0.0
        for value in values:
            if not math.isfinite(value) or value <= 0.0:
                raise ValueError(f"grid quantiles must be positive and finite, got {value!r}")
            if value < previous:
                raise ValueError(f"grid quantiles must be non-decreasing, got {values}")
            previous = value
        object.__setattr__(self, "quantiles", values)

    @classmethod
    def fit(
        cls, samples: Sequence[float], resolution: int = DEFAULT_RESOLUTION
    ) -> "EmpiricalDelay":
        """Compress ``samples`` into a ``resolution``-interval quantile grid.

        The grid point ``j`` is the (linearly interpolated) empirical
        quantile of the data at probability ``j / resolution``.  Everything
        is plain float arithmetic on sorted data, so two hosts fitting the
        same sample set build the bit-identical model.
        """
        if resolution < 1:
            raise ValueError(f"resolution must be >= 1, got {resolution}")
        data = sorted(_check_samples(samples, "samples"))
        return cls(
            tuple(empirical_quantile(data, j / resolution) for j in range(resolution + 1))
        )

    @property
    def resolution(self) -> int:
        """The number of grid intervals (``len(quantiles) - 1``)."""
        return len(self.quantiles) - 1

    def quantile(self, p: float) -> float:
        """The model's inverse CDF at probability ``p`` in ``[0, 1]``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"quantile probability must be in [0, 1], got {p}")
        quantiles = self.quantiles
        position = p * (len(quantiles) - 1)
        index = int(position)
        if index >= len(quantiles) - 1:
            return quantiles[-1]
        low = quantiles[index]
        return low + (quantiles[index + 1] - low) * (position - index)

    def sample(self, rng: random.Random) -> float:
        """One draw: a single uniform pushed through the interpolated grid."""
        quantiles = self.quantiles
        position = rng.random() * (len(quantiles) - 1)
        index = int(position)
        low = quantiles[index]
        return low + (quantiles[index + 1] - low) * (position - index)

    def sample_batch(self, rng: random.Random, k: int) -> List[float]:
        """Vectorized refill: the same interpolation over a uniform block.

        One ``rng.random()`` per sample, transformed by the identical
        expression :meth:`sample` uses, applied to a
        :func:`~repro.sim.rng.random_block` -- bit-exact to ``k`` per-call
        draws with the rng left in the identical state.
        """
        if type(self) is not EmpiricalDelay:
            return super().sample_batch(rng, k)
        quantiles = self.quantiles
        span = len(quantiles) - 1
        out = []
        append = out.append
        for u in random_block(rng, k):
            position = u * span
            index = int(position)
            low = quantiles[index]
            append(low + (quantiles[index + 1] - low) * (position - index))
        return out

    def describe(self) -> str:
        """A bounded label (the full grid repr can be hundreds of floats)."""
        quantiles = self.quantiles
        return (
            f"EmpiricalDelay(resolution={self.resolution}, lo={quantiles[0]!r}, "
            f"median={self.quantile(0.5)!r}, hi={quantiles[-1]!r})"
        )


@dataclass(frozen=True)
class ShiftedLogNormalDelay(DelayModel):
    """A log-normal body riding on a constant propagation floor.

    ``shift + lognormvariate(log(median), sigma)``: the classic parametric
    RTT model (minimum path latency plus multiplicative queueing noise).
    Like :class:`~repro.network.delays.LogNormalDelay` it keeps the base
    per-call ``sample_batch`` loop -- CPython's ``lognormvariate`` sits on
    rejection-sampled ``normalvariate``, which consumes a variable number of
    uniforms per draw, so no fixed-size block can reproduce the stream.
    """

    shift: float = 0.5
    median: float = 0.4
    sigma: float = 0.5

    def __post_init__(self) -> None:
        if self.shift < 0 or not math.isfinite(self.shift):
            raise ValueError(f"shift must be finite and >= 0, got {self.shift}")
        if self.median <= 0 or self.sigma <= 0:
            raise ValueError("median and sigma must be positive")

    @classmethod
    def fit(cls, samples: Sequence[float]) -> "ShiftedLogNormalDelay":
        """Method-of-moments fit on the log scale.

        The floor is anchored just below the sample minimum (95% of it, the
        standard plug-in estimate keeping every residual positive), then the
        residuals' log mean and log standard deviation give the median and
        sigma.  Deterministic plain-float arithmetic: equal inputs fit the
        bit-identical model on every host.
        """
        values = _check_samples(samples, "samples")
        shift = 0.95 * min(values)
        logs = [math.log(value - shift) for value in values]
        mu = math.fsum(logs) / len(logs)
        variance = math.fsum((value - mu) ** 2 for value in logs) / (len(logs) - 1)
        sigma = max(math.sqrt(variance), 1e-6)
        return cls(shift=shift, median=math.exp(mu), sigma=sigma)

    def sample(self, rng: random.Random) -> float:
        """One shifted log-normal draw."""
        return self.shift + rng.lognormvariate(math.log(self.median), self.sigma)


#: Per-stream replay positions: ``rng -> {model: next_index}``.  Keyed on
#: the consuming rng (each run's network owns a dedicated delays stream), so
#: concurrent runs -- cooperative kernels interleaved in one process, or
#: sequential runs reusing one model object -- each replay the trace from
#: the top without sharing or resetting any state on the (frozen, picklable)
#: model itself.  Weak keys let finished runs' cursors be collected.
_REPLAY_CURSORS: "weakref.WeakKeyDictionary[random.Random, Dict[TraceReplayDelay, int]]" = (
    weakref.WeakKeyDictionary()
)


@dataclass(frozen=True)
class TraceReplayDelay(DelayModel):
    """Replay a recorded delay trace deterministically, in capture order.

    Draws **no** randomness: delay ``i`` of a run is ``trace[i]``, whatever
    the seed, which turns a captured production trace into a repeatable
    schedule.  The replay position is tracked per consuming rng stream (not
    on this frozen value object), so every run starts from the top and the
    exact-sequence ``sample_batch`` contract holds trivially.  Asking for
    more draws than the trace holds raises :class:`TraceExhausted` -- a
    wrapped replay would silently correlate delays across unrelated
    messages, so running dry must be loud.  Mind that the transport's delay
    cache prefetches draws in doubling blocks (up to 512), so a trace needs
    headroom beyond the exact number of messages sent.
    """

    trace: Tuple[float, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "trace", tuple(_check_samples(self.trace, "trace")))

    def __len__(self) -> int:
        return len(self.trace)

    def _cursor(self, rng: random.Random) -> Dict["TraceReplayDelay", int]:
        positions = _REPLAY_CURSORS.get(rng)
        if positions is None:
            positions = _REPLAY_CURSORS[rng] = {}
        return positions

    def sample(self, rng: random.Random) -> float:
        """The next trace entry for this rng stream; ``rng`` is untouched."""
        positions = self._cursor(rng)
        index = positions.get(self, 0)
        if index >= len(self.trace):
            raise TraceExhausted(
                f"delay trace exhausted: draw {index + 1} requested but the trace "
                f"holds only {len(self.trace)} entries; record a longer trace "
                f"(the transport prefetches in blocks) instead of wrapping around"
            )
        positions[self] = index + 1
        return self.trace[index]

    def sample_batch(self, rng: random.Random, k: int) -> List[float]:
        """A slice of the trace in replay order (exact-sequence trivially).

        When fewer than ``k`` entries remain, fall back to the per-call
        loop, which consumes the tail and then raises the identical
        :class:`TraceExhausted` a ``k``-times-``sample`` caller would see.
        """
        if type(self) is not TraceReplayDelay:
            return super().sample_batch(rng, k)
        positions = self._cursor(rng)
        index = positions.get(self, 0)
        if index + k <= len(self.trace):
            positions[self] = index + k
            return list(self.trace[index : index + k])
        return super().sample_batch(rng, k)

    def replayed(self, rng: random.Random) -> int:
        """How many entries this rng stream has consumed (for diagnostics)."""
        return _REPLAY_CURSORS.get(rng, {}).get(self, 0)

    def describe(self) -> str:
        """A bounded label: length plus a digest pinning the exact values."""
        digest = json.dumps([float(v).hex() for v in self.trace]).encode("utf-8")
        return (
            f"TraceReplayDelay(length={len(self.trace)}, "
            f"sha256={hashlib.sha256(digest).hexdigest()[:12]})"
        )


# ------------------------------------------------------------------ loading
def _parse_number(text: str) -> float:
    value = float(text)
    return value


def _rtt_from_mapping(record: dict, where: str) -> float:
    lowered = {str(key).lower(): value for key, value in record.items()}
    for name in RTT_FIELD_NAMES:
        if name in lowered:
            return float(lowered[name])
    raise ValueError(
        f"{where}: no RTT field found; expected one of {', '.join(RTT_FIELD_NAMES)}"
    )


def _load_jsonl(path: Path) -> List[float]:
    samples: List[float] = []
    for line_number, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path.name}:{line_number}: not valid JSON: {error}") from None
        if isinstance(record, bool):
            raise ValueError(f"{path.name}:{line_number}: expected a number or object")
        if isinstance(record, (int, float)):
            samples.append(float(record))
        elif isinstance(record, dict):
            samples.append(_rtt_from_mapping(record, f"{path.name}:{line_number}"))
        else:
            raise ValueError(
                f"{path.name}:{line_number}: expected a number or object, got {record!r}"
            )
    return samples


def _load_csv(path: Path) -> List[float]:
    with path.open(newline="") as handle:
        rows = [row for row in csv.reader(handle) if row and any(cell.strip() for cell in row)]
    if not rows:
        return []
    header = [cell.strip().lower() for cell in rows[0]]
    column = None
    for name in RTT_FIELD_NAMES:
        if name in header:
            column = header.index(name)
            break
    start = 0
    if column is not None:
        start = 1
    else:
        try:
            _parse_number(rows[0][0])
            column = 0
        except ValueError:
            raise ValueError(
                f"{path.name}: no RTT column found; expected a header naming one of "
                f"{', '.join(RTT_FIELD_NAMES)} or a first column of numbers"
            ) from None
    samples: List[float] = []
    for line_number, row in enumerate(rows[start:], start=start + 1):
        if column >= len(row):
            raise ValueError(f"{path.name}:{line_number}: row has no column {column}")
        try:
            samples.append(_parse_number(row[column]))
        except ValueError:
            raise ValueError(
                f"{path.name}:{line_number}: not a number: {row[column]!r}"
            ) from None
    return samples


def load_rtt_samples(path: Union[str, Path]) -> List[float]:
    """Read an RTT sample set from a CSV or JSONL file.

    JSONL (``.jsonl`` / ``.ndjson``): one JSON number per line, or objects
    carrying one of the :data:`RTT_FIELD_NAMES` keys.  Anything else is read
    as CSV: a header row naming such a column, or headerless numeric rows
    (first column).  Values must be positive and finite, and at least two
    are required -- the validation every fit shares.
    """
    path = Path(path)
    if not path.is_file():
        raise ValueError(f"RTT dataset {path} does not exist or is not a file")
    if path.suffix.lower() in (".jsonl", ".ndjson"):
        samples = _load_jsonl(path)
    else:
        samples = _load_csv(path)
    return _check_samples(samples, f"RTT dataset {path.name}")


#: Names ``fit_delay_model`` (and ``python -m repro fit-delays``) accepts.
FIT_MODEL_KINDS = ("empirical", "shifted-lognormal", "replay")


def fit_delay_model(
    samples: Sequence[float],
    kind: str = "empirical",
    resolution: int = DEFAULT_RESOLUTION,
    unit_mean: bool = False,
) -> DelayModel:
    """Fit one of the trace-driven models to an RTT sample set.

    ``unit_mean`` rescales the samples to mean 1.0 first (see
    :func:`scale_to_unit_mean`) so the result can stand in for the synthetic
    unit-mean models without retuning experiment time windows.
    """
    values = scale_to_unit_mean(samples) if unit_mean else _check_samples(samples, "samples")
    if kind == "empirical":
        return EmpiricalDelay.fit(values, resolution=resolution)
    if kind == "shifted-lognormal":
        return ShiftedLogNormalDelay.fit(values)
    if kind == "replay":
        return TraceReplayDelay(tuple(values))
    raise ValueError(f"unknown model kind {kind!r}; choose from {FIT_MODEL_KINDS}")


register_delay_model("empirical", EmpiricalDelay)
register_delay_model("shifted-lognormal", ShiftedLogNormalDelay)
register_delay_model("trace-replay", TraceReplayDelay)
