"""Message-delay models for the asynchronous network.

The paper only assumes that message transit times are finite but arbitrary.
The simulator makes them concrete through a pluggable :class:`DelayModel`;
experiments use different models to check that results do not hinge on a
particular delay distribution.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List

from ..sim.rng import random_block


class DelayModel(ABC):
    """Samples per-message transit delays (virtual-time units)."""

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one delay; must be strictly positive and finite."""

    def sample_batch(self, rng: random.Random, k: int) -> List[float]:
        """Draw ``k`` delays at once, amortizing the per-call overhead.

        The contract is *exact-sequence*: the returned list is bit-identical
        to calling :meth:`sample` ``k`` times, and ``rng`` is left in the
        same state, so a caller may freely interleave batched and per-call
        draws (the transport's delay cache relies on this).  The base
        implementation is the per-call loop; models whose draw recipe is a
        fixed arithmetic transform of ``rng.random()`` override it with a
        vectorizable block (see :func:`repro.sim.rng.random_block`).
        """
        sample = self.sample
        return [sample(rng) for _ in range(k)]

    def describe(self) -> str:
        """A short human-readable label for reports and plots."""
        return repr(self)


@dataclass(frozen=True)
class ConstantDelay(DelayModel):
    """Every message takes exactly ``value`` time units (synchronous-looking)."""

    value: float = 1.0

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ValueError("delay must be positive")

    def sample(self, rng: random.Random) -> float:
        """Return the constant; ``rng`` is untouched."""
        return self.value

    def sample_batch(self, rng: random.Random, k: int) -> List[float]:
        """``k`` copies of the constant; no RNG draws, like :meth:`sample`."""
        if type(self) is not ConstantDelay:
            return super().sample_batch(rng, k)
        return [self.value] * k


@dataclass(frozen=True)
class UniformDelay(DelayModel):
    """Delays drawn uniformly from ``[low, high]`` (the default model)."""

    low: float = 0.5
    high: float = 1.5

    def __post_init__(self) -> None:
        if self.low <= 0 or self.high < self.low:
            raise ValueError("need 0 < low <= high")

    def sample(self, rng: random.Random) -> float:
        """One uniform draw from ``[low, high]``."""
        return rng.uniform(self.low, self.high)

    def sample_batch(self, rng: random.Random, k: int) -> List[float]:
        """Vectorized refill: ``uniform(a, b)`` is ``a + (b - a) * random()``.

        The same affine transform CPython applies per call, applied to a
        :func:`~repro.sim.rng.random_block`, so the sequence is bit-exact.
        """
        if type(self) is not UniformDelay:
            return super().sample_batch(rng, k)
        low = self.low
        span = self.high - self.low
        return [low + span * u for u in random_block(rng, k)]


@dataclass(frozen=True)
class ExponentialDelay(DelayModel):
    """Memoryless delays with the given ``mean`` (plus a small floor)."""

    mean: float = 1.0
    floor: float = 1e-3

    def __post_init__(self) -> None:
        if self.mean <= 0 or self.floor < 0:
            raise ValueError("mean must be positive and floor non-negative")

    def sample(self, rng: random.Random) -> float:
        """One exponential draw of the given mean, shifted by the floor."""
        return self.floor + rng.expovariate(1.0 / self.mean)

    def sample_batch(self, rng: random.Random, k: int) -> List[float]:
        """Vectorized refill via the inverse-CDF recipe ``expovariate`` uses.

        CPython's ``expovariate(lambd)`` is ``-log(1.0 - random()) / lambd``;
        applying the identical expression (``math.log`` per element -- numpy's
        ``log`` may differ in the last ulp) to a
        :func:`~repro.sim.rng.random_block` keeps the sequence bit-exact.
        """
        if type(self) is not ExponentialDelay:
            return super().sample_batch(rng, k)
        floor = self.floor
        lambd = 1.0 / self.mean
        log = math.log
        return [floor + -log(1.0 - u) / lambd for u in random_block(rng, k)]


@dataclass(frozen=True)
class LogNormalDelay(DelayModel):
    """Right-skewed delays typical of datacentre tail latencies.

    Deliberately keeps the base per-call :meth:`DelayModel.sample_batch`
    loop: ``lognormvariate`` sits on CPython's rejection-sampled
    ``normalvariate``, which consumes a *variable* number of uniforms per
    draw, so no fixed-size block can reproduce the stream exactly.
    """

    median: float = 1.0
    sigma: float = 0.5

    def __post_init__(self) -> None:
        if self.median <= 0 or self.sigma <= 0:
            raise ValueError("median and sigma must be positive")

    def sample(self, rng: random.Random) -> float:
        """One log-normal draw with the configured median and shape."""
        return rng.lognormvariate(math.log(self.median), self.sigma)


@dataclass(frozen=True)
class SpikeDelay(DelayModel):
    """Mostly-fast delays with occasional large spikes.

    With probability ``spike_probability`` the delay is drawn uniformly from
    ``[spike_low, spike_high]``; otherwise from ``[low, high]``.  Models an
    adversarial network that occasionally delays messages for a long time.
    """

    low: float = 0.5
    high: float = 1.5
    spike_probability: float = 0.05
    spike_low: float = 10.0
    spike_high: float = 30.0

    def __post_init__(self) -> None:
        if not 0 <= self.spike_probability <= 1:
            raise ValueError("spike_probability must be in [0, 1]")
        if self.low <= 0 or self.high < self.low:
            raise ValueError("need 0 < low <= high")
        if self.spike_low <= 0 or self.spike_high < self.spike_low:
            raise ValueError("need 0 < spike_low <= spike_high")

    def sample(self, rng: random.Random) -> float:
        """Two draws: the spike coin, then the magnitude of either branch."""
        if rng.random() < self.spike_probability:
            return rng.uniform(self.spike_low, self.spike_high)
        return rng.uniform(self.low, self.high)

    def sample_batch(self, rng: random.Random, k: int) -> List[float]:
        """Vectorized refill: every sample consumes exactly two draws.

        One uniform for the spike coin, one for the magnitude -- whichever
        branch the coin picks -- so a block of ``2 * k`` draws maps onto
        ``k`` samples in the per-call order, bit-exactly.
        """
        if type(self) is not SpikeDelay:
            return super().sample_batch(rng, k)
        block = random_block(rng, 2 * k)
        p = self.spike_probability
        low, span = self.low, self.high - self.low
        spike_low, spike_span = self.spike_low, self.spike_high - self.spike_low
        out = []
        for i in range(0, 2 * k, 2):
            if block[i] < p:
                out.append(spike_low + spike_span * block[i + 1])
            else:
                out.append(low + span * block[i + 1])
        return out


_NAMED_MODELS = {
    "constant": ConstantDelay,
    "uniform": UniformDelay,
    "exponential": ExponentialDelay,
    "lognormal": LogNormalDelay,
    "spike": SpikeDelay,
}


def register_delay_model(name: str, factory) -> None:
    """Register a model class under ``name`` for :func:`delay_model_from_name`.

    The seam other modules (e.g. :mod:`repro.network.empirical`) use to join
    the named catalogue without this module importing them.  Re-registering
    the same factory under the same name is a no-op; registering a different
    one is an error, since the name→model mapping feeds reproducibility.
    """
    key = name.lower()
    existing = _NAMED_MODELS.get(key)
    if existing is not None and existing is not factory:
        raise ValueError(f"delay model name {name!r} already taken by {existing!r}")
    _NAMED_MODELS[key] = factory


def delay_model_from_name(name: str, **kwargs) -> DelayModel:
    """Instantiate a delay model by name (``uniform``, ``exponential``, ...)."""
    try:
        factory = _NAMED_MODELS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown delay model {name!r}; choose from {sorted(_NAMED_MODELS)}"
        ) from None
    return factory(**kwargs)
