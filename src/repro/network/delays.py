"""Message-delay models for the asynchronous network.

The paper only assumes that message transit times are finite but arbitrary.
The simulator makes them concrete through a pluggable :class:`DelayModel`;
experiments use different models to check that results do not hinge on a
particular delay distribution.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass


class DelayModel(ABC):
    """Samples per-message transit delays (virtual-time units)."""

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one delay; must be strictly positive and finite."""

    def describe(self) -> str:
        return repr(self)


@dataclass(frozen=True)
class ConstantDelay(DelayModel):
    """Every message takes exactly ``value`` time units (synchronous-looking)."""

    value: float = 1.0

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ValueError("delay must be positive")

    def sample(self, rng: random.Random) -> float:
        return self.value


@dataclass(frozen=True)
class UniformDelay(DelayModel):
    """Delays drawn uniformly from ``[low, high]`` (the default model)."""

    low: float = 0.5
    high: float = 1.5

    def __post_init__(self) -> None:
        if self.low <= 0 or self.high < self.low:
            raise ValueError("need 0 < low <= high")

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class ExponentialDelay(DelayModel):
    """Memoryless delays with the given ``mean`` (plus a small floor)."""

    mean: float = 1.0
    floor: float = 1e-3

    def __post_init__(self) -> None:
        if self.mean <= 0 or self.floor < 0:
            raise ValueError("mean must be positive and floor non-negative")

    def sample(self, rng: random.Random) -> float:
        return self.floor + rng.expovariate(1.0 / self.mean)


@dataclass(frozen=True)
class LogNormalDelay(DelayModel):
    """Right-skewed delays typical of datacentre tail latencies."""

    median: float = 1.0
    sigma: float = 0.5

    def __post_init__(self) -> None:
        if self.median <= 0 or self.sigma <= 0:
            raise ValueError("median and sigma must be positive")

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(math.log(self.median), self.sigma)


@dataclass(frozen=True)
class SpikeDelay(DelayModel):
    """Mostly-fast delays with occasional large spikes.

    With probability ``spike_probability`` the delay is drawn uniformly from
    ``[spike_low, spike_high]``; otherwise from ``[low, high]``.  Models an
    adversarial network that occasionally delays messages for a long time.
    """

    low: float = 0.5
    high: float = 1.5
    spike_probability: float = 0.05
    spike_low: float = 10.0
    spike_high: float = 30.0

    def __post_init__(self) -> None:
        if not 0 <= self.spike_probability <= 1:
            raise ValueError("spike_probability must be in [0, 1]")
        if self.low <= 0 or self.high < self.low:
            raise ValueError("need 0 < low <= high")
        if self.spike_low <= 0 or self.spike_high < self.spike_low:
            raise ValueError("need 0 < spike_low <= spike_high")

    def sample(self, rng: random.Random) -> float:
        if rng.random() < self.spike_probability:
            return rng.uniform(self.spike_low, self.spike_high)
        return rng.uniform(self.low, self.high)


_NAMED_MODELS = {
    "constant": ConstantDelay,
    "uniform": UniformDelay,
    "exponential": ExponentialDelay,
    "lognormal": LogNormalDelay,
    "spike": SpikeDelay,
}


def delay_model_from_name(name: str, **kwargs) -> DelayModel:
    """Instantiate a delay model by name (``uniform``, ``exponential``, ...)."""
    try:
        factory = _NAMED_MODELS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown delay model {name!r}; choose from {sorted(_NAMED_MODELS)}"
        ) from None
    return factory(**kwargs)
