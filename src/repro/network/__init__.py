"""Message-passing substrate: messages, delay models and the network."""

from .delays import (
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    LogNormalDelay,
    SpikeDelay,
    UniformDelay,
    delay_model_from_name,
)
from .message import Message, payload_size
from .transport import Network, TrafficStats

__all__ = [
    "ConstantDelay",
    "DelayModel",
    "ExponentialDelay",
    "LogNormalDelay",
    "Message",
    "Network",
    "SpikeDelay",
    "TrafficStats",
    "UniformDelay",
    "delay_model_from_name",
    "payload_size",
]
