"""Message-passing substrate: messages, delay models and the network."""

from .delays import (
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    LogNormalDelay,
    SpikeDelay,
    UniformDelay,
    delay_model_from_name,
    register_delay_model,
)
from .empirical import (
    REFERENCE_RTT_MS,
    EmpiricalDelay,
    ShiftedLogNormalDelay,
    TraceExhausted,
    TraceReplayDelay,
    fit_delay_model,
    load_rtt_samples,
    scale_to_unit_mean,
)
from .message import Message, payload_size
from .transport import Network, TrafficStats

__all__ = [
    "ConstantDelay",
    "DelayModel",
    "EmpiricalDelay",
    "ExponentialDelay",
    "LogNormalDelay",
    "Message",
    "Network",
    "REFERENCE_RTT_MS",
    "ShiftedLogNormalDelay",
    "SpikeDelay",
    "TraceExhausted",
    "TraceReplayDelay",
    "TrafficStats",
    "UniformDelay",
    "delay_model_from_name",
    "fit_delay_model",
    "load_rtt_samples",
    "payload_size",
    "register_delay_model",
    "scale_to_unit_mean",
]
