"""repro — a reproduction of "One for All and All for One: Scalable Consensus
in a Hybrid Communication Model" (Raynal & Cao, ICDCS 2019).

The package implements the paper's hybrid communication model (clusters with
shared memory plus a global asynchronous message-passing network), its two
randomized binary consensus algorithms, the baselines they extend, the m&m
model they are compared against, and a deterministic simulation and
experiment harness that reproduces the paper's quantitative claims.

Quickstart::

    from repro import ClusterTopology, ExperimentConfig, run_consensus

    topology = ClusterTopology.figure1_right()
    result = run_consensus(ExperimentConfig(topology=topology, algorithm="hybrid-local-coin"))
    print(result.decided_value, result.metrics.rounds_max)
"""

from .cluster import ClusterTopology, FailurePattern, TopologyError
from .coins import CommonCoin, LocalCoin
from .core import (
    BOT,
    CommonCoinConsensus,
    ConsensusProcess,
    ConsensusViolation,
    LocalCoinConsensus,
    ProcessEnvironment,
    PropertyReport,
    msg_exchange,
    verify_run,
)
from .harness import (
    ALGORITHMS,
    ExperimentConfig,
    RunMetrics,
    RunResult,
    run_consensus,
    run_seeds,
    termination_expected,
)
from .mm import MMConsensus, SharedMemoryDomain
from .network import ConstantDelay, ExponentialDelay, LogNormalDelay, Network, SpikeDelay, UniformDelay
from .sharedmem import CASConsensusObject, ClusterSharedMemory, build_cluster_memories
from .sim import RunStatus, SimConfig, SimulationKernel, SimulationResult

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "BOT",
    "CASConsensusObject",
    "ClusterSharedMemory",
    "ClusterTopology",
    "CommonCoin",
    "CommonCoinConsensus",
    "ConsensusProcess",
    "ConsensusViolation",
    "ConstantDelay",
    "ExperimentConfig",
    "ExponentialDelay",
    "FailurePattern",
    "LocalCoin",
    "LocalCoinConsensus",
    "LogNormalDelay",
    "MMConsensus",
    "Network",
    "ProcessEnvironment",
    "PropertyReport",
    "RunMetrics",
    "RunResult",
    "RunStatus",
    "SharedMemoryDomain",
    "SimConfig",
    "SimulationKernel",
    "SimulationResult",
    "SpikeDelay",
    "TopologyError",
    "UniformDelay",
    "__version__",
    "build_cluster_memories",
    "msg_exchange",
    "run_consensus",
    "run_seeds",
    "termination_expected",
    "verify_run",
]
