"""Setuptools shim.

The environment this reproduction targets may be offline and lack the
``wheel`` package, in which case PEP 660 editable installs cannot build an
editable wheel.  Keeping a ``setup.py`` (and no ``[build-system]`` table in
``pyproject.toml``) lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path, which works with a bare setuptools.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Reproduction of 'One for All and All for One: Scalable Consensus in a "
        "Hybrid Communication Model' (Raynal & Cao, ICDCS 2019)"
    ),
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # The code is 3.9-clean (annotations are deferred via `from __future__
    # import annotations` everywhere); CI builds a wheel and runs the tier-1
    # suite on a 3.9-3.12 matrix.
    python_requires=">=3.9",
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.9",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: System :: Distributed Computing",
    ],
    # No hard runtime dependencies: numpy is optional (SeedSequence-based
    # sketch priorities fall back to a SHA-256 derivation without it).
    install_requires=[],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis", "numpy"],
    },
)
