"""Setuptools shim.

The environment this reproduction targets may be offline and lack the
``wheel`` package, in which case PEP 660 editable installs cannot build an
editable wheel.  Keeping a ``setup.py`` (and no ``[build-system]`` table in
``pyproject.toml``) lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path, which works with a bare setuptools.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'One for All and All for One: Scalable Consensus in a "
        "Hybrid Communication Model' (Raynal & Cao, ICDCS 2019)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
