"""Test-session bootstrap.

Ensures the ``repro`` package under ``src/`` is importable even when the
package has not been installed (e.g. running ``pytest`` straight from a
checkout in an offline environment).  When ``repro`` is already installed
(editable or not) this is a no-op.
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent / "src"

try:  # pragma: no cover - trivial import probe
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(_SRC))

# Rerun-once-on-failure for @pytest.mark.timing wall-clock gates
# (REPRO_BENCH_STRICT=1 disables the retry; see the module docstring).
pytest_plugins = ["repro.harness.pytest_timing"]
