# Local gates, matching what CI runs (.github/workflows/ci.yml).
#
#   make test             - the tier-1 suite (see ROADMAP.md)
#   make bench-smoke      - benchmark files with timing disabled (fast sanity)
#   make bench            - full benchmark run with timings (strict: no
#                           timing-gate reruns), then a trajectory measurement
#                           written to the next free BENCH_<n>.json
#                           (BENCH_ARGS forwards extra bench_trajectory.py
#                           flags, e.g. --out/--compare/--fail-on-regression)
#   make bench-trajectory - re-measure and diff events/sec against the
#                           previous BENCH_*.json (warn-only by default;
#                           the nightly CI lane adds --fail-on-regression 25)
#   make coverage         - tier-1 suite under pytest-cov with the measured
#                           line-coverage floor (skips with a notice when
#                           pytest-cov is absent; the CI coverage job runs it)
#   make lint             - ruff check (skips with a notice when ruff is absent)
#   make examples-smoke   - run the quickstart, adversary-tour, sharded-sweep,
#                           work-stealing + empirical-resilience examples and
#                           a fit-delays CLI round trip
#   make search-smoke     - bounded schedule search over every algorithm
#                           (exits nonzero with a replay token on violation)
#   make serve-smoke      - end-to-end smoke of the live sweep service:
#                           kill a worker mid-sweep, drive every serve
#                           endpoint over HTTP, finish, verify bit-identity
#   make linkcheck        - verify relative links in README.md / docs / READMEs

PYTHON ?= python
# Every entry point (pytest, scripts, examples) runs through PY_RUN so local
# and CI invocations resolve the same src/ tree ahead of any installed copy.
PY_RUN = PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON)
# Extra flags for scripts/bench_trajectory.py in `make bench`/`bench-trajectory`.
BENCH_ARGS ?=
# Line-coverage floor for `make coverage` (line coverage measured at 93%
# when the gate was added; the floor sits below that to absorb drift, and
# was raised to 89 with the empirical-delay/e11 suite).
COV_FLOOR ?= 89

.PHONY: test bench-smoke bench bench-trajectory coverage lint examples-smoke search-smoke serve-smoke linkcheck
# Knobs for `make search-smoke` (see docs/adversary.md).
SEARCH_BUDGET ?= 200
SEARCH_TIME ?= 60

test:
	$(PY_RUN) -m pytest -x -q

bench-smoke:
	$(PY_RUN) -m pytest benchmarks -q --benchmark-disable

bench:
	REPRO_BENCH_STRICT=1 $(PY_RUN) -m pytest benchmarks -q --benchmark-only
	$(PY_RUN) scripts/bench_trajectory.py $(BENCH_ARGS)

bench-trajectory:
	$(PY_RUN) scripts/bench_trajectory.py --compare $(BENCH_ARGS)

coverage:
	@if $(PYTHON) -c "import pytest_cov" >/dev/null 2>&1; then \
		$(PY_RUN) -m pytest -q --cov=repro --cov-report=term-missing:skip-covered \
			--cov-report=html --cov-fail-under=$(COV_FLOOR); \
	else \
		echo "pytest-cov is not installed; skipping coverage (the CI coverage job runs it)"; \
	fi

lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check .; \
	elif command -v ruff >/dev/null 2>&1; then \
		ruff check .; \
	else \
		echo "ruff is not installed; skipping lint (the CI lint job runs it)"; \
	fi

examples-smoke:
	$(PY_RUN) examples/quickstart.py
	$(PY_RUN) examples/adversary_tour.py
	$(PY_RUN) examples/sharded_sweep.py
	$(PY_RUN) examples/work_stealing.py
	$(PY_RUN) -m repro fit-delays tests/data/rtt_sample.csv --model empirical --unit-mean
	$(PY_RUN) examples/empirical_resilience.py

search-smoke:
	$(PY_RUN) -m repro search --algorithm all --budget $(SEARCH_BUDGET) --time-budget $(SEARCH_TIME)

serve-smoke:
	$(PY_RUN) scripts/serve_smoke.py

linkcheck:
	$(PY_RUN) scripts/check_markdown_links.py
