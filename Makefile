# Local gates, matching what the CI driver runs.
#
#   make test        - the tier-1 suite (see ROADMAP.md)
#   make bench-smoke - benchmark files with timing disabled (fast sanity)
#   make bench       - full benchmark run with timings

PYTHON ?= python

.PHONY: test bench-smoke bench

test:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest -x -q

bench-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest benchmarks -q --benchmark-disable

bench:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest benchmarks -q --benchmark-only
