# Local gates, matching what CI runs (.github/workflows/ci.yml).
#
#   make test             - the tier-1 suite (see ROADMAP.md)
#   make bench-smoke      - benchmark files with timing disabled (fast sanity)
#   make bench            - full benchmark run with timings (strict: no
#                           timing-gate reruns), then the BENCH_6.json
#                           trajectory measurement
#   make bench-trajectory - re-measure BENCH_6.json and diff events/sec
#                           against the previous BENCH_*.json (warn-only)
#   make lint             - ruff check (skips with a notice when ruff is absent)
#   make examples-smoke   - run the quickstart, adversary-tour, sharded-sweep
#                           + work-stealing examples
#   make linkcheck        - verify relative links in README.md / docs / READMEs

PYTHON ?= python

.PHONY: test bench-smoke bench bench-trajectory lint examples-smoke linkcheck

test:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest -x -q

bench-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest benchmarks -q --benchmark-disable

bench:
	REPRO_BENCH_STRICT=1 PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest benchmarks -q --benchmark-only
	$(PYTHON) scripts/bench_trajectory.py

bench-trajectory:
	$(PYTHON) scripts/bench_trajectory.py --compare

lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check .; \
	elif command -v ruff >/dev/null 2>&1; then \
		ruff check .; \
	else \
		echo "ruff is not installed; skipping lint (the CI lint job runs it)"; \
	fi

examples-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) examples/quickstart.py
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) examples/adversary_tour.py
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) examples/sharded_sweep.py
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) examples/work_stealing.py

linkcheck:
	$(PYTHON) scripts/check_markdown_links.py
