"""Tests for the m&m model: domains, centred memories and the consensus analogue."""

import pytest

from repro.cluster.failures import FailurePattern
from repro.cluster.topology import ClusterTopology
from repro.harness.runner import ExperimentConfig, run_consensus
from repro.mm.domain import DomainError, SharedMemoryDomain
from repro.mm.memory import ProcessCentredMemory, build_mm_memories, memories_accessible_by
from repro.sim.kernel import SimConfig


# ---------------------------------------------------------------------- domain
def test_domain_validation():
    with pytest.raises(DomainError):
        SharedMemoryDomain(0, [])
    with pytest.raises(DomainError):
        SharedMemoryDomain(3, [(0, 3)])
    with pytest.raises(DomainError):
        SharedMemoryDomain(3, [(1, 1)])


def test_domain_neighbours_and_groups():
    domain = SharedMemoryDomain(4, [(0, 1), (1, 2)])
    assert domain.neighbours(1) == frozenset({0, 2})
    assert domain.degree(1) == 2
    assert domain.memory_group(1) == frozenset({0, 1, 2})
    assert domain.memory_group(3) == frozenset({3})
    assert domain.memberships(0) == frozenset({0, 1})
    assert domain.memory_count() == 4
    assert not domain.is_connected()
    assert SharedMemoryDomain(1, []).is_connected()


def test_figure2_domain_matches_paper_appendix():
    domain = SharedMemoryDomain.figure2()
    # 0-based translation of S1..S5 from the appendix.
    assert domain.memory_group(0) == frozenset({0, 1})
    assert domain.memory_group(1) == frozenset({0, 1, 2})
    assert domain.memory_group(2) == frozenset({1, 2, 3, 4})
    assert domain.memory_group(3) == frozenset({2, 3, 4})
    assert domain.memory_group(4) == frozenset({2, 3, 4})
    # The *set* S collapses S4 and S5 into one group: four distinct subsets.
    assert domain.domain() == frozenset(
        {
            frozenset({0, 1}),
            frozenset({0, 1, 2}),
            frozenset({1, 2, 3, 4}),
            frozenset({2, 3, 4}),
        }
    )
    assert domain.is_connected()
    assert "S0=" in domain.describe()


def test_domain_constructors():
    complete = SharedMemoryDomain.complete(4)
    assert all(complete.degree(pid) == 3 for pid in range(4))
    ring = SharedMemoryDomain.ring(5)
    assert all(ring.degree(pid) == 2 for pid in range(5))
    star = SharedMemoryDomain.star(5)
    assert star.degree(0) == 4 and star.degree(1) == 1
    with pytest.raises(DomainError):
        SharedMemoryDomain.ring(2)
    with pytest.raises(DomainError):
        SharedMemoryDomain.star(1)


def test_domain_from_cluster_topology_mirrors_clusters():
    topo = ClusterTopology([[0, 1, 2], [3, 4]])
    domain = SharedMemoryDomain.from_cluster_topology(topo)
    assert domain.memory_group(0) == frozenset({0, 1, 2})
    assert domain.memory_group(3) == frozenset({3, 4})
    # α_i + 1 equals the cluster size of p_i.
    for pid in topo.process_ids():
        assert domain.degree(pid) + 1 == len(topo.cluster_of(pid))


# -------------------------------------------------------------------- memories
def test_centred_memories_membership_and_count():
    domain = SharedMemoryDomain.figure2()
    memories = build_mm_memories(domain)
    assert set(memories) == set(range(5))
    assert isinstance(memories[2], ProcessCentredMemory)
    assert memories[2].members == set(domain.memory_group(2))
    accessible = memories_accessible_by(4, domain, memories)
    # p5 accesses its own memory plus those of its two neighbours: α_i + 1 = 3.
    assert len(accessible) == domain.degree(4) + 1
    assert accessible[0].center == 4  # own memory first


# ------------------------------------------------------------------- consensus
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_mm_consensus_terminates_and_agrees(seed):
    topo = ClusterTopology.even_split(6, 2)
    result = run_consensus(
        ExperimentConfig(topology=topo, algorithm="mm-local-coin", proposals="split", seed=seed)
    )
    result.report.raise_on_violation()
    assert result.terminated


def test_mm_consensus_validity_on_unanimity():
    topo = ClusterTopology.even_split(6, 3)
    result = run_consensus(
        ExperimentConfig(topology=topo, algorithm="mm-local-coin", proposals="unanimous-1", seed=7)
    )
    assert result.decided_value == 1


def test_mm_consensus_uses_alpha_plus_one_invocations_per_phase():
    topo = ClusterTopology.even_split(8, 2)
    result = run_consensus(
        ExperimentConfig(topology=topo, algorithm="mm-local-coin", proposals="unanimous-0", seed=5)
    )
    metrics = result.metrics
    # Matched domain: every process has α_i + 1 = cluster size = 4.
    assert metrics.invocations_per_process_per_phase == pytest.approx(4.0, rel=0.3)
    # One centred memory per process is touched every phase.
    assert metrics.consensus_objects_per_phase == pytest.approx(topo.n, rel=0.3)


def test_mm_consensus_does_not_get_one_for_all_fault_tolerance():
    # Crash a majority: the m&m analogue (like any majority-based MP algorithm)
    # cannot terminate, even though the hybrid algorithm on the same topology can.
    topo = ClusterTopology.with_majority_cluster(7)
    pattern = FailurePattern.majority_crash_with_surviving_majority_cluster(topo)
    result = run_consensus(
        ExperimentConfig(
            topology=topo,
            algorithm="mm-local-coin",
            proposals="split",
            seed=2,
            failure_pattern=pattern,
            sim=SimConfig(max_rounds=15, max_time=5e4),
        )
    )
    assert not result.terminated
    assert result.report.safety_ok

    hybrid = run_consensus(
        ExperimentConfig(
            topology=topo,
            algorithm="hybrid-local-coin",
            proposals="split",
            seed=2,
            failure_pattern=pattern,
        )
    )
    hybrid.report.raise_on_violation()
    assert hybrid.terminated


def test_mm_consensus_with_explicit_figure2_domain():
    topo = ClusterTopology.singleton_clusters(5)
    domain = SharedMemoryDomain.figure2()
    result = run_consensus(
        ExperimentConfig(
            topology=topo,
            algorithm="mm-local-coin",
            proposals="alternating",
            seed=3,
            mm_domain=domain,
        )
    )
    result.report.raise_on_violation()
    assert result.terminated
