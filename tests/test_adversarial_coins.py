"""Safety of every consensus algorithm under adversarial coins.

Randomized consensus is proved correct against an adversary that cannot
predict coin flips -- but *safety* must hold for any coin behaviour
whatsoever.  These tests run every algorithm the harness knows against the
pathological coins from :mod:`repro.coins.adversarial` (stuck-at-0,
stuck-at-1, and opposing coins engineered to disagree across processes),
with round caps so liveness-hostile coins yield bounded non-termination
instead of hangs, and assert agreement and validity always hold.
"""

import pytest

from repro.cluster.topology import ClusterTopology
from repro.coins.adversarial import (
    AdversarialCommonCoin,
    AlwaysOneCoin,
    AlwaysZeroCoin,
    OpposingCoins,
)
from repro.coins.common import FixedSequenceCommonCoin
from repro.harness.runner import ALGORITHMS, ExperimentConfig, run_consensus
from repro.sim.kernel import SimConfig

TOPOLOGY = ClusterTopology.even_split(6, 3)
CAPPED = SimConfig(max_rounds=15, max_time=5e4)
SEEDS = (0, 1, 2)

#: Algorithms drawing from per-process local coins vs a shared common coin.
LOCAL_COIN_ALGORITHMS = ("hybrid-local-coin", "ben-or", "mm-local-coin")
COMMON_COIN_ALGORITHMS = ("hybrid-common-coin", "mp-common-coin")

LOCAL_COIN_FACTORIES = {
    "always-zero": lambda pid: AlwaysZeroCoin(),
    "always-one": lambda pid: AlwaysOneCoin(),
    "opposing": OpposingCoins().coin_for,
}

COMMON_COINS = {
    "stuck-zero": lambda: FixedSequenceCommonCoin([0]),
    "stuck-one": lambda: FixedSequenceCommonCoin([1]),
    "forced-alternating": lambda: AdversarialCommonCoin(
        forced_bits={r: r % 2 for r in range(1, 16)}
    ),
}


def _config(algorithm, seed, proposals="split"):
    return ExperimentConfig(
        topology=TOPOLOGY, algorithm=algorithm, proposals=proposals, seed=seed, sim=CAPPED
    )


def test_every_algorithm_is_exercised():
    """The two coin-kind lists plus the coin-free baseline cover ALGORITHMS."""
    covered = set(LOCAL_COIN_ALGORITHMS) | set(COMMON_COIN_ALGORITHMS) | {"shared-memory"}
    assert covered == set(ALGORITHMS)


@pytest.mark.parametrize("coin_name", sorted(LOCAL_COIN_FACTORIES))
@pytest.mark.parametrize("algorithm", LOCAL_COIN_ALGORITHMS)
def test_local_coin_algorithms_stay_safe_under_adversarial_coins(algorithm, coin_name):
    factory = LOCAL_COIN_FACTORIES[coin_name]
    for seed in SEEDS:
        result = run_consensus(_config(algorithm, seed), local_coin_factory=factory)
        assert result.report.agreement, f"{algorithm}/{coin_name}/seed={seed}"
        assert result.report.validity, f"{algorithm}/{coin_name}/seed={seed}"


@pytest.mark.parametrize("coin_name", sorted(COMMON_COINS))
@pytest.mark.parametrize("algorithm", COMMON_COIN_ALGORITHMS)
def test_common_coin_algorithms_stay_safe_under_adversarial_coins(algorithm, coin_name):
    for seed in SEEDS:
        result = run_consensus(_config(algorithm, seed), common_coin=COMMON_COINS[coin_name]())
        assert result.report.agreement, f"{algorithm}/{coin_name}/seed={seed}"
        assert result.report.validity, f"{algorithm}/{coin_name}/seed={seed}"


def test_shared_memory_baseline_is_coin_free_and_safe():
    topology = ClusterTopology.single_cluster(5)
    for seed in SEEDS:
        result = run_consensus(
            ExperimentConfig(
                topology=topology, algorithm="shared-memory", proposals="split",
                seed=seed, sim=CAPPED,
            )
        )
        result.report.raise_on_violation()
        assert result.metrics.coin_flips == 0


@pytest.mark.parametrize("algorithm", LOCAL_COIN_ALGORITHMS)
def test_unanimous_proposals_decide_despite_stuck_opposite_coin(algorithm):
    """With unanimous input 1, a coin stuck at 0 cannot block or flip the decision."""
    result = run_consensus(
        _config(algorithm, seed=4, proposals="unanimous-1"),
        local_coin_factory=LOCAL_COIN_FACTORIES["always-zero"],
    )
    result.report.raise_on_violation()
    assert result.decided_value == 1


@pytest.mark.parametrize("algorithm", COMMON_COIN_ALGORITHMS)
def test_unanimous_proposals_decide_despite_stuck_opposite_common_coin(algorithm):
    result = run_consensus(
        _config(algorithm, seed=4, proposals="unanimous-1"),
        common_coin=COMMON_COINS["stuck-zero"](),
    )
    assert result.report.agreement and result.report.validity
    if result.decided_value is not None:
        assert result.decided_value == 1


def test_opposing_coins_can_stall_ben_or_but_never_split_it():
    """The engineered worst case: constant disagreement, bounded by the cap.

    Across several seeds some runs may still decide (via the majority path);
    whatever happens, no run may decide two values or an unproposed value.
    """
    stalled = 0
    for seed in range(6):
        result = run_consensus(
            _config("ben-or", seed), local_coin_factory=LOCAL_COIN_FACTORIES["opposing"]
        )
        assert result.report.agreement and result.report.validity
        if not result.terminated:
            stalled += 1
            assert len(result.sim_result.decided_values) <= 1
    # The adversarial coin must actually bite in at least one execution.
    assert stalled >= 1
