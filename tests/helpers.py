"""Shared test helpers.

``SyncContext`` mimics the :class:`repro.sim.context.ProcessContext` API but
executes every effect synchronously and immediately, which lets unit tests
drive algorithm-level generators (consensus-object ``propose``, the universal
construction, ...) without standing up a simulation kernel.  ``drive`` runs
such a generator to completion and returns its value.
"""

from __future__ import annotations

import random
from typing import Any, Callable, List, Optional, Sequence

from repro.network.message import Message


class SyncContext:
    """A ProcessContext stand-in whose effect helpers never suspend."""

    def __init__(self, pid: int = 0, now: float = 0.0, mailbox: Optional[List[Message]] = None) -> None:
        self.pid = pid
        self._now = now
        self.mailbox: List[Message] = mailbox if mailbox is not None else []
        self.sent: List[Message] = []
        self.rounds = 0
        self.coin_flips = 0
        self.sm_ops = 0
        self._rng = random.Random(pid)

    # --- ProcessContext API ------------------------------------------------
    def now(self) -> float:
        return self._now

    def random(self) -> random.Random:
        return self._rng

    def send(self, dest: int, payload: Any):
        self.sent.append(Message(sender=self.pid, dest=dest, payload=payload, send_time=self._now))
        return
        yield  # pragma: no cover - makes this a generator function

    def broadcast(self, payload: Any, include_self: bool = True):
        yield from self.send(self.pid, payload)

    def wait_until(self, predicate: Callable[[Sequence[Any]], Any]):
        result = predicate(self.mailbox)
        if result is None:
            raise AssertionError("SyncContext.wait_until would block; give it a satisfying mailbox")
        return result
        yield  # pragma: no cover

    def sm_op(self, operation: Callable[..., Any], *args: Any):
        self.sm_ops += 1
        return operation(*args)
        yield  # pragma: no cover

    def local_step(self, duration: Optional[float] = None):
        return None
        yield  # pragma: no cover

    def mark_round(self, round_number: int) -> None:
        self.rounds = max(self.rounds, round_number)

    def count_coin_flip(self) -> None:
        self.coin_flips += 1

    def log(self, message: str) -> None:
        pass


def drive(generator) -> Any:
    """Run a generator that never suspends; return its StopIteration value."""
    try:
        next(generator)
    except StopIteration as stop:
        return stop.value
    raise AssertionError("generator suspended; use the simulation kernel for this test")


def make_message(sender: int, payload: Any, dest: int = 0, time: float = 0.0, msg_id: int = 0) -> Message:
    """Build a Message envelope for mailbox-level tests."""
    return Message(sender=sender, dest=dest, payload=payload, send_time=time, msg_id=msg_id)
