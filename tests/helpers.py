"""Shared test helpers.

``SyncContext`` mimics the :class:`repro.sim.context.ProcessContext` API but
executes every effect synchronously and immediately, which lets unit tests
drive algorithm-level generators (consensus-object ``propose``, the universal
construction, ...) without standing up a simulation kernel.  ``drive`` runs
such a generator to completion and returns its value.
"""

from __future__ import annotations

import random
from typing import Any, Callable, List, Optional, Sequence

from repro.network.message import Message


class SyncContext:
    """A ProcessContext stand-in whose effect helpers never suspend."""

    def __init__(self, pid: int = 0, now: float = 0.0, mailbox: Optional[List[Message]] = None) -> None:
        self.pid = pid
        self._now = now
        self.mailbox: List[Message] = mailbox if mailbox is not None else []
        self.sent: List[Message] = []
        self.rounds = 0
        self.coin_flips = 0
        self.sm_ops = 0
        self._rng = random.Random(pid)

    # --- ProcessContext API ------------------------------------------------
    def now(self) -> float:
        return self._now

    def random(self) -> random.Random:
        return self._rng

    def send(self, dest: int, payload: Any):
        self.sent.append(Message(sender=self.pid, dest=dest, payload=payload, send_time=self._now))
        return
        yield  # pragma: no cover - makes this a generator function

    def broadcast(self, payload: Any, include_self: bool = True):
        yield from self.send(self.pid, payload)

    def wait_until(self, predicate: Callable[[Sequence[Any]], Any]):
        result = predicate(self.mailbox)
        if result is None:
            raise AssertionError("SyncContext.wait_until would block; give it a satisfying mailbox")
        return result
        yield  # pragma: no cover

    def sm_op(self, operation: Callable[..., Any], *args: Any):
        self.sm_ops += 1
        return operation(*args)
        yield  # pragma: no cover

    def local_step(self, duration: Optional[float] = None):
        return None
        yield  # pragma: no cover

    def mark_round(self, round_number: int) -> None:
        self.rounds = max(self.rounds, round_number)

    def count_coin_flip(self) -> None:
        self.coin_flips += 1

    def log(self, message: str) -> None:
        pass


def drive(generator) -> Any:
    """Run a generator that never suspends; return its StopIteration value."""
    try:
        next(generator)
    except StopIteration as stop:
        return stop.value
    raise AssertionError("generator suspended; use the simulation kernel for this test")


def make_message(sender: int, payload: Any, dest: int = 0, time: float = 0.0, msg_id: int = 0) -> Message:
    """Build a Message envelope for mailbox-level tests."""
    return Message(sender=sender, dest=dest, payload=payload, send_time=time, msg_id=msg_id)


# --------------------------------------------------------------------- golden
# Small, fast configurations of every kernel-exercising experiment (e1-e9
# plus the empirical-delay e11), used both by
# scripts/gen_golden_summaries.py (which froze the pre-refactor kernel's
# summaries into tests/golden/kernel_summaries.json) and by
# tests/test_golden_kernel.py (which asserts the current kernel still
# reproduces every one of those RunSummary objects bit-for-bit).

GOLDEN_SEEDS = [1000, 1001]

GOLDEN_EXPERIMENTS = [f"e{i}" for i in range(1, 10)] + ["e11"]


def golden_plans():
    """The small sweep plans covered by the golden kernel fixture."""
    from repro.experiments import (
        e1_figure1,
        e2_majority_crash,
        e3_one_for_all,
        e4_rounds,
        e5_mm_comparison,
        e6_degenerate,
        e7_indulgence,
        e8_scalability,
        e9_adversary,
        e11_resilience,
    )

    seeds = list(GOLDEN_SEEDS)
    return {
        "e1": e1_figure1.plan(seeds=seeds),
        "e2": e2_majority_crash.plan(seeds=seeds, sizes=(7,)),
        "e3": e3_one_for_all.plan(seeds=seeds, n=6, m=3),
        "e4": e4_rounds.plan(seeds=seeds, sizes=(6,), proposals=("split",)),
        "e5": e5_mm_comparison.plan(seeds=seeds, sizes=(8,), cluster_counts=(2,)),
        "e6": e6_degenerate.plan(seeds=seeds, n=5),
        "e7": e7_indulgence.plan(seeds=seeds, n=6, m=3, round_cap=12),
        "e8": e8_scalability.plan(seeds=seeds, sizes=(4, 8)),
        "e9": e9_adversary.plan(
            seeds=seeds,
            scenarios=("lossy-links", "duplication-storm", "partition-drop", "crash-recovery"),
            intensities=(0.4,),
            round_cap=15,
        ),
        # One empirical-delay point pins the ECDF inverse-transform sampling
        # (and its batched refill) into the bit-identity fixture.
        "e11": e11_resilience.plan(
            seeds=seeds,
            scenarios=("kill-during-recovery",),
            delays=("empirical",),
            round_cap=15,
        ),
    }


def compute_golden_summaries():
    """Run every golden plan serially and return its summaries, JSON-shaped.

    Floats are serialized with ``float.hex()`` so the fixture comparison is
    exact to the last bit, not merely approximate.
    """
    from repro.harness.aggregate import RunSummary, priority_backend, run_priority
    from repro.harness.runner import run_consensus

    experiments = {}
    for exp_id, plan in sorted(golden_plans().items()):
        points = []
        for point_index, point in enumerate(plan.points):
            runs = []
            for seed_position, seed in enumerate(plan.seeds):
                index = plan.run_index(point_index, seed_position)
                result = run_consensus(point.config.with_seed(seed))
                summary = RunSummary.from_result(
                    result, index, run_priority(plan.entropy, index)
                )
                runs.append(
                    {
                        "seed": summary.seed,
                        "index": summary.index,
                        "priority": float(summary.priority).hex(),
                        "algorithm": summary.algorithm,
                        "terminated": summary.terminated,
                        "safety_ok": summary.safety_ok,
                        "decided": summary.decided,
                        "decided_value": summary.decided_value,
                        "values": {
                            name: float(value).hex()
                            for name, value in sorted(summary.values.items())
                        },
                    }
                )
            points.append({"label": point.label, "runs": runs})
        experiments[exp_id] = points
    return {
        "format": 1,
        "priority_backend": priority_backend(),
        "seeds": list(GOLDEN_SEEDS),
        "experiments": experiments,
    }
