"""Unit tests for atomic registers and RMW synchronization primitives."""


from repro.sharedmem.register import AtomicRegister, RegisterArray
from repro.sharedmem.rmw import (
    CompareAndSwapRegister,
    FetchAndAddRegister,
    LLSCRegister,
    SwapRegister,
)
from repro.sharedmem.rmw import TestAndSetRegister as TASRegister


# -------------------------------------------------------------------- register
def test_register_read_write_and_counts():
    reg = AtomicRegister("r", 0)
    assert reg.read() == 0
    reg.write(5)
    assert reg.read() == 5
    assert reg.stats.reads == 2
    assert reg.stats.writes == 1
    assert reg.stats.total == 3
    assert reg.peek() == 5
    assert ("write", 5) in reg.history


def test_register_default_initial_is_none():
    assert AtomicRegister().read() is None


def test_register_array_lazily_allocates():
    array = RegisterArray("A", initial=0)
    assert len(array) == 0
    array[3].write(7)
    array["key"].write(9)
    assert array[3].read() == 7
    assert array["key"].read() == 9
    assert len(array) == 2
    assert set(array.allocated_indices()) == {3, "key"}
    assert array.total_operations() == 4
    # Same index returns the same register object.
    assert array[3] is array[3]


# ------------------------------------------------------------------------- CAS
def test_cas_succeeds_only_on_expected_value():
    reg = CompareAndSwapRegister("c", None)
    assert reg.compare_and_swap(None, "a") is True
    assert reg.read() == "a"
    assert reg.compare_and_swap(None, "b") is False
    assert reg.read() == "a"
    assert reg.stats.rmw_ops == 2


def test_compare_and_exchange_returns_previous_value():
    reg = CompareAndSwapRegister("c", 1)
    assert reg.compare_and_exchange(1, 2) == 1
    assert reg.read() == 2
    assert reg.compare_and_exchange(1, 3) == 2
    assert reg.read() == 2


def test_cas_first_writer_wins_semantics():
    reg = CompareAndSwapRegister("c", None)
    outcomes = [reg.compare_and_swap(None, value) for value in ("x", "y", "z")]
    assert outcomes == [True, False, False]
    assert reg.read() == "x"


# ------------------------------------------------------------------ fetch&add
def test_fetch_and_add_returns_previous_and_accumulates():
    reg = FetchAndAddRegister("f", 10)
    assert reg.fetch_and_add() == 10
    assert reg.fetch_and_add(5) == 11
    assert reg.read() == 16
    assert reg.fetch_and_add(-6) == 16
    assert reg.read() == 10


# ------------------------------------------------------------------- test&set
def test_test_and_set_returns_false_only_once():
    reg = TASRegister("t")
    results = [reg.test_and_set() for _ in range(4)]
    assert results == [False, True, True, True]
    assert reg.read() is True


# ------------------------------------------------------------------------ swap
def test_swap_returns_previous_value():
    reg = SwapRegister("s", "first")
    assert reg.swap("second") == "first"
    assert reg.swap("third") == "second"
    assert reg.read() == "third"


# ----------------------------------------------------------------------- LL/SC
def test_llsc_store_conditional_succeeds_without_interference():
    reg = LLSCRegister("l", 0)
    assert reg.load_linked(pid=1) == 0
    assert reg.store_conditional(pid=1, value=5) is True
    assert reg.read() == 5


def test_llsc_store_conditional_fails_after_other_write():
    reg = LLSCRegister("l", 0)
    reg.load_linked(pid=1)
    reg.load_linked(pid=2)
    assert reg.store_conditional(pid=2, value=7) is True
    # Process 1's link was broken by process 2's successful SC.
    assert reg.store_conditional(pid=1, value=9) is False
    assert reg.read() == 7


def test_llsc_store_conditional_fails_without_prior_load():
    reg = LLSCRegister("l", 0)
    assert reg.store_conditional(pid=3, value=1) is False


def test_llsc_plain_write_breaks_links():
    reg = LLSCRegister("l", 0)
    reg.load_linked(pid=1)
    reg.write(42)
    assert reg.store_conditional(pid=1, value=5) is False
    assert reg.read() == 42


def test_rmw_ops_counted_separately_from_reads_writes():
    reg = LLSCRegister("l", 0)
    reg.load_linked(pid=1)
    reg.store_conditional(pid=1, value=2)
    reg.read()
    assert reg.stats.rmw_ops == 2
    assert reg.stats.reads == 1
