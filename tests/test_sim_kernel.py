"""Unit tests of the discrete-event kernel: scheduling, effects, crashes."""

import pytest

from repro.network.delays import ConstantDelay
from repro.network.transport import Network
from repro.sim.context import LocalEffect
from repro.sim.events import ScheduledEvent, StepResume, describe
from repro.sim.kernel import RunStatus, SimConfig, SimulationKernel
from repro.sim.process import ProcessState
from repro.sim.rng import RandomSource
from repro.sharedmem.register import AtomicRegister


def make_kernel(n=2, seed=0, **config_kwargs):
    kernel = SimulationKernel(seed=seed, config=SimConfig(**config_kwargs))
    network = Network(n, delay_model=ConstantDelay(1.0), rng=RandomSource(seed))
    kernel.attach_network(network)
    return kernel, network


def test_run_without_processes_raises():
    kernel, _ = make_kernel()
    with pytest.raises(RuntimeError):
        kernel.run()


def _idle(ctx):
    yield from ctx.local_step()
    return "idle"


def test_duplicate_process_id_rejected():
    kernel, _ = make_kernel()
    kernel.add_process(0, _idle)
    with pytest.raises(ValueError):
        kernel.add_process(0, _idle)


def test_single_process_returns_decision():
    kernel, _ = make_kernel(n=1)

    def behaviour(ctx):
        yield from ctx.local_step()
        return 42

    kernel.add_process(0, behaviour)
    result = kernel.run()
    assert result.status is RunStatus.DECIDED
    assert result.decisions == {0: 42}
    assert result.decision_times[0] > 0


def test_process_returning_none_is_halted_not_decided():
    kernel, _ = make_kernel(n=1)

    def behaviour(ctx):
        yield from ctx.local_step()
        return None

    kernel.add_process(0, behaviour)
    result = kernel.run()
    assert result.status is not RunStatus.DECIDED
    assert result.decisions == {}


def test_message_send_and_wait_roundtrip():
    kernel, network = make_kernel(n=2)
    received = {}

    def sender(ctx):
        yield from ctx.send(1, "ping")
        return "sent"

    def receiver(ctx):
        msgs = yield from ctx.wait_until(lambda mailbox: list(mailbox) or None)
        received[ctx.pid] = [m.payload for m in msgs]
        return "got"

    kernel.add_process(0, sender)
    kernel.add_process(1, receiver)
    result = kernel.run()
    assert result.status is RunStatus.DECIDED
    assert received[1] == ["ping"]
    assert network.stats.messages_sent == 1
    assert network.stats.messages_delivered == 1


def test_broadcast_reaches_every_process_including_self():
    kernel, network = make_kernel(n=3)
    seen = {}

    def proc(ctx):
        yield from ctx.broadcast(("hello", ctx.pid))
        msgs = yield from ctx.wait_until(
            lambda mailbox: mailbox if len(mailbox) >= 3 else None
        )
        seen[ctx.pid] = sorted(m.payload[1] for m in msgs)[:3]
        return ctx.pid

    for pid in range(3):
        kernel.add_process(pid, proc)
    result = kernel.run()
    assert result.status is RunStatus.DECIDED
    for pid in range(3):
        assert seen[pid] == [0, 1, 2]
    assert network.stats.messages_sent == 9


def test_crashed_process_takes_no_steps_and_counts_as_faulty():
    kernel, _ = make_kernel(n=2)
    progress = []

    def chatty(ctx):
        while True:
            progress.append(ctx.now())
            yield from ctx.local_step(1.0)

    def quiet(ctx):
        yield from ctx.local_step(10.0)
        return "done"

    kernel.add_process(0, chatty)
    kernel.add_process(1, quiet)
    kernel.schedule_crash(0, 3.5)
    result = kernel.run()
    assert 0 in result.crashed
    assert 1 in result.correct
    assert result.decisions == {1: "done"}
    # The chatty process stops making progress after its crash time.
    assert all(t <= 3.5 for t in progress)


def test_crash_of_unknown_process_rejected():
    kernel, _ = make_kernel(n=1)
    kernel.add_process(0, _idle)
    with pytest.raises(KeyError):
        kernel.schedule_crash(7, 1.0)
    with pytest.raises(ValueError):
        kernel.schedule_crash(0, -1.0)


def test_messages_to_crashed_process_are_dropped():
    kernel, _ = make_kernel(n=3)

    def sender(ctx):
        yield from ctx.local_step(5.0)
        yield from ctx.send(1, "late")
        return "sent"

    def victim(ctx):
        yield from ctx.wait_until(lambda mailbox: list(mailbox) or None)
        return "never"

    def patient(ctx):
        # Keeps the simulation alive past the late delivery, then gives up.
        yield from ctx.wait_until(lambda mailbox: list(mailbox) or None)
        return "never either"

    kernel.add_process(0, sender)
    kernel.add_process(1, victim)
    kernel.add_process(2, patient)
    kernel.schedule_crash(1, 1.0)
    result = kernel.run()
    assert result.decisions == {0: "sent"}
    assert kernel.dropped_deliveries == 1
    assert result.status is RunStatus.DEADLOCK  # the patient process never hears anything


def test_blocked_process_wakes_only_when_predicate_satisfied():
    kernel, _ = make_kernel(n=2)

    def sender(ctx):
        for index in range(3):
            yield from ctx.send(1, index)
        return "sent"

    def receiver(ctx):
        msgs = yield from ctx.wait_until(lambda mailbox: mailbox if len(mailbox) >= 3 else None)
        return len(msgs)

    kernel.add_process(0, sender)
    kernel.add_process(1, receiver)
    result = kernel.run()
    assert result.decisions[1] >= 3


def test_shared_memory_effect_executes_atomically_and_returns_result():
    kernel, _ = make_kernel(n=1)
    register = AtomicRegister("r", 10)

    def proc(ctx):
        value = yield from ctx.sm_op(register.read)
        yield from ctx.sm_op(register.write, value + 1)
        return (yield from ctx.sm_op(register.read))

    kernel.add_process(0, proc)
    result = kernel.run()
    assert result.decisions[0] == 11
    assert register.stats.reads == 2 and register.stats.writes == 1


def test_unknown_effect_raises_type_error():
    kernel, _ = make_kernel(n=1)

    def proc(ctx):
        yield "this is not an effect"

    kernel.add_process(0, proc)
    with pytest.raises(TypeError):
        kernel.run()


def test_effect_subclass_dispatches_like_its_base():
    class DebugLocalEffect(LocalEffect):
        """An effect subclass, e.g. one carrying extra instrumentation."""

    kernel, _ = make_kernel(n=1)

    def proc(ctx):
        yield DebugLocalEffect(duration=0.5)
        return "done"

    kernel.add_process(0, proc)
    result = kernel.run()
    assert result.status is RunStatus.DECIDED
    assert result.decisions == {0: "done"}


def test_round_limit_halts_process():
    kernel, _ = make_kernel(n=1, max_rounds=3)

    def proc(ctx):
        r = 0
        while True:
            r += 1
            ctx.mark_round(r)
            yield from ctx.local_step()

    kernel.add_process(0, proc)
    result = kernel.run()
    assert result.status is RunStatus.ROUND_LIMIT
    assert result.decisions == {}
    assert result.rounds[0] == 4


def test_max_time_produces_timeout_status():
    kernel, _ = make_kernel(n=1, max_time=5.0)

    def proc(ctx):
        while True:
            yield from ctx.local_step(1.0)

    kernel.add_process(0, proc)
    result = kernel.run()
    assert result.status is RunStatus.TIMEOUT
    assert result.end_time <= 5.0


def test_deadlock_status_when_waiting_forever():
    kernel, _ = make_kernel(n=2)

    def waiter(ctx):
        yield from ctx.wait_until(lambda mailbox: list(mailbox) or None)
        return "woke"

    def silent(ctx):
        yield from ctx.local_step()
        return "done"

    kernel.add_process(0, waiter)
    kernel.add_process(1, silent)
    result = kernel.run()
    assert result.status is RunStatus.DEADLOCK
    assert 0 in result.non_terminated


def test_determinism_same_seed_same_execution():
    def build(seed):
        kernel, network = make_kernel(n=3, seed=seed)

        def proc(ctx):
            yield from ctx.broadcast(ctx.pid)
            msgs = yield from ctx.wait_until(lambda mb: mb if len(mb) >= 3 else None)
            return tuple(sorted(m.payload for m in msgs[:3]))

        for pid in range(3):
            kernel.add_process(pid, proc)
        result = kernel.run()
        return result.end_time, result.events_processed, result.decisions

    assert build(123) == build(123)
    assert build(123) != build(321) or build(123)[2] == build(321)[2]


def test_scheduled_event_ordering_and_describe():
    early = ScheduledEvent(time=1.0, sequence=1, event=StepResume(pid=0))
    late = ScheduledEvent(time=2.0, sequence=0, event=StepResume(pid=1))
    assert early < late
    assert "StepResume" in describe(early.event)


def test_process_state_terminal_classification():
    assert ProcessState.CRASHED.is_terminal()
    assert ProcessState.DECIDED.is_terminal()
    assert ProcessState.HALTED.is_terminal()
    assert not ProcessState.READY.is_terminal()
    assert not ProcessState.BLOCKED.is_terminal()


def test_decision_of_correct_raises_on_disagreement():
    kernel, _ = make_kernel(n=2)

    def proc(ctx):
        yield from ctx.local_step()
        return ctx.pid  # different decisions on purpose

    kernel.add_process(0, proc)
    kernel.add_process(1, proc)
    result = kernel.run()
    with pytest.raises(ValueError):
        result.decision_of_correct()


def test_trace_records_when_enabled():
    kernel, _ = make_kernel(n=1, trace=True)

    def proc(ctx):
        ctx.log("starting")
        yield from ctx.local_step()
        return 1

    kernel.add_process(0, proc)
    kernel.run()
    assert len(kernel.trace) > 0
    assert any(entry.kind == "note" for entry in kernel.trace.entries)
