"""Tests of the worker-side aggregation pipeline (`repro.harness.aggregate`)."""

import math
import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import ClusterTopology
from repro.harness.aggregate import (
    SKETCH_CAPACITY,
    RunAggregate,
    RunSummary,
    StreamingStats,
    SummaryReducer,
    run_priority,
)
from repro.harness.runner import ExperimentConfig, run_consensus
from repro.harness.stats import percentile, summarize


def _filled(values, capacity=SKETCH_CAPACITY, entropy=0, base_index=0):
    stats = StreamingStats(capacity=capacity)
    for offset, value in enumerate(values):
        stats.add(value, priority=run_priority(entropy, base_index + offset))
    return stats


# ------------------------------------------------------------------ priorities
def test_run_priority_is_deterministic_and_uniform_range():
    assert run_priority(0, 3) == run_priority(0, 3)
    priorities = [run_priority(0, index) for index in range(200)]
    assert all(0.0 <= priority < 1.0 for priority in priorities)
    assert len(set(priorities)) == 200  # no collisions across run indices
    assert run_priority(1, 3) != run_priority(0, 3)  # entropy matters


# ------------------------------------------------------------- streaming stats
def test_streaming_stats_matches_exact_summary():
    values = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.3, 5.8]
    stats = _filled(values)
    exact = summarize(values)
    assert stats.count == exact.count
    assert stats.mean == pytest.approx(exact.mean, rel=1e-12)
    assert stats.std == pytest.approx(exact.std, rel=1e-12)
    assert stats.minimum == exact.minimum and stats.maximum == exact.maximum
    view = stats.to_summary_stats()
    assert view.median == exact.median  # below capacity: sketch is the sample
    assert view.p90 == exact.p90
    assert view.ci95_half_width == pytest.approx(exact.ci95_half_width, rel=1e-12)


def test_streaming_stats_empty_and_singleton_edges():
    empty = StreamingStats()
    assert empty.count == 0 and empty.std == 0.0 and empty.variance == 0.0
    with pytest.raises(ValueError):
        empty.percentile(50.0)
    with pytest.raises(ValueError):
        empty.to_summary_stats()

    single = _filled([7.5])
    assert single.count == 1
    assert single.mean == 7.5 and single.std == 0.0
    assert single.minimum == single.maximum == 7.5
    assert single.percentile(0.0) == single.percentile(100.0) == 7.5
    assert single.to_summary_stats().ci95_half_width == 0.0

    # merging with an empty accumulator is the identity, both ways
    assert empty.merge(single) == single
    assert single.merge(empty) == single
    assert empty.merge(StreamingStats()).count == 0


def test_streaming_stats_rejects_bad_capacity_and_mixed_merges():
    with pytest.raises(ValueError):
        StreamingStats(capacity=0)
    with pytest.raises(ValueError):
        _filled([1.0], capacity=4).merge(_filled([2.0], capacity=8))


@settings(max_examples=60, deadline=None)
@given(
    left=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=40),
    right=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=40),
)
def test_merge_is_commutative_and_matches_pooled_moments(left, right):
    """merge(a, b) == merge(b, a), and both equal the pooled sample's moments."""
    a = _filled(left, base_index=0)
    b = _filled(right, base_index=len(left))
    ab = a.merge(b)
    ba = b.merge(a)
    # the merge formulas are written symmetrically, so this holds bit for bit
    assert ab.count == ba.count
    assert ab.mean == ba.mean
    assert ab.m2 == ba.m2
    assert ab.minimum == ba.minimum and ab.maximum == ba.maximum
    assert ab.sample == ba.sample
    pooled = summarize(left + right)
    assert ab.mean == pytest.approx(pooled.mean, rel=1e-9, abs=1e-9)
    assert ab.std == pytest.approx(pooled.std, rel=1e-6, abs=1e-9)
    assert ab.minimum == pooled.minimum and ab.maximum == pooled.maximum


@settings(max_examples=30, deadline=None)
@given(
    chunks=st.lists(
        st.lists(st.floats(-1e4, 1e4), min_size=1, max_size=20), min_size=3, max_size=3
    )
)
def test_merge_is_associative_on_pooled_moments(chunks):
    first, second, third = chunks
    a = _filled(first, base_index=0)
    b = _filled(second, base_index=len(first))
    c = _filled(third, base_index=len(first) + len(second))
    left_tree = a.merge(b).merge(c)
    right_tree = a.merge(b.merge(c))
    assert left_tree.count == right_tree.count
    assert left_tree.mean == pytest.approx(right_tree.mean, rel=1e-9, abs=1e-9)
    assert left_tree.m2 == pytest.approx(right_tree.m2, rel=1e-6, abs=1e-9)
    assert left_tree.sample == right_tree.sample  # set semantics: exactly equal
    incremental = _filled(first + second + third)
    assert left_tree.mean == pytest.approx(incremental.mean, rel=1e-9, abs=1e-9)


def test_merge_equals_single_pass_below_capacity():
    """Merging disjoint batches reproduces the single-pass sketch exactly."""
    values = [random.Random(7).uniform(0, 100) for _ in range(64)]
    whole = _filled(values)
    split = _filled(values[:20]).merge(_filled(values[20:], base_index=20))
    assert split.sample == whole.sample
    assert split.count == whole.count
    assert split.percentile(90.0) == whole.percentile(90.0)


# ------------------------------------------------------------ percentile sketch
def test_sketch_percentiles_within_rank_error_bound_on_10k_samples():
    rng = random.Random(0)
    values = [rng.lognormvariate(0.0, 1.0) for _ in range(10_000)]
    stats = _filled(values)
    assert not stats.exact
    assert len(stats.sample) == SKETCH_CAPACITY
    # A uniform subsample of size k has rank error ~1/sqrt(k); with k=512
    # allow +-7.5 percentile ranks (>4 sigma, and deterministic anyway since
    # priorities are fixed by run index).
    for q in (10.0, 50.0, 90.0, 99.0):
        estimate = stats.percentile(q)
        low = percentile(values, max(q - 7.5, 0.0))
        high = percentile(values, min(q + 7.5, 100.0))
        assert low <= estimate <= high, f"q={q}: {estimate} outside [{low}, {high}]"
    # moments stay exact regardless of sketching
    exact = summarize(values)
    assert stats.mean == pytest.approx(exact.mean, rel=1e-9)
    assert stats.std == pytest.approx(exact.std, rel=1e-9)
    assert stats.minimum == exact.minimum and stats.maximum == exact.maximum


def test_sketch_is_exact_up_to_capacity():
    values = list(range(32))
    stats = _filled(values, capacity=32)
    assert stats.exact
    for q in (0.0, 25.0, 50.0, 75.0, 100.0):
        assert stats.percentile(q) == percentile(values, q)
    stats.add(99.0, priority=run_priority(0, 32))
    assert not stats.exact
    assert len(stats.sample) == 32


# --------------------------------------------------------------- run aggregate
def _run_summaries(seeds, algorithm="hybrid-local-coin"):
    config = ExperimentConfig(
        topology=ClusterTopology.even_split(4, 2), algorithm=algorithm, proposals="split"
    )
    reducer = SummaryReducer()
    summaries = []
    for index, seed in enumerate(seeds):
        summaries.append(reducer(run_consensus(config.with_seed(seed)), index))
    return summaries


def test_run_summary_contents_and_compactness():
    summaries = _run_summaries([3])
    (summary,) = summaries
    assert summary.seed == 3 and summary.index == 0
    assert summary.algorithm == "hybrid-local-coin"
    assert summary.terminated and summary.safety_ok and summary.decided
    assert summary.decided_value in (0, 1)
    assert summary.values["messages_sent"] > 0
    assert "consensus_objects_per_phase" in summary.values  # derived ratios ride along
    assert "wall_time_seconds" not in summary.values  # nondeterministic: excluded
    config = ExperimentConfig(
        topology=ClusterTopology.even_split(4, 2), algorithm="hybrid-local-coin", proposals="split"
    )
    full = run_consensus(config.with_seed(3))
    assert len(pickle.dumps(summary)) < len(pickle.dumps(full)) / 4


def test_run_aggregate_folding_and_merge_agree():
    summaries = _run_summaries(range(6))
    folded = RunAggregate.from_summaries(summaries)
    merged = RunAggregate.from_summaries(summaries[:2]).merge(
        RunAggregate.from_summaries(summaries[2:])
    )
    assert len(folded) == len(merged) == 6
    assert folded.termination_rate() == merged.termination_rate() == 1.0
    assert folded.safety_rate() == merged.safety_rate() == 1.0
    for metric in ("messages_sent", "rounds_max", "sm_ops"):
        assert folded.mean(metric) == pytest.approx(merged.mean(metric), rel=1e-12)
        assert folded.summary(metric).median == merged.summary(metric).median
        assert folded.minimum(metric) == merged.minimum(metric)
        assert folded.maximum(metric) == merged.maximum(metric)


def test_run_aggregate_edges_and_errors():
    empty = RunAggregate()
    assert len(empty) == 0
    assert empty.termination_rate() == 0.0
    assert empty.safety_rate() == 0.0 and empty.decided_rate() == 0.0
    assert empty.metric_names() == []
    with pytest.raises(KeyError, match="no aggregated metric"):
        empty.mean("messages_sent")
    with pytest.raises(ValueError):
        RunAggregate(capacity=8).merge(RunAggregate(capacity=16))

    (summary,) = _run_summaries([0])
    singleton = RunAggregate.from_summaries([summary])
    assert len(singleton) == 1
    assert singleton.std("messages_sent") == 0.0
    assert singleton.summary("messages_sent").ci95_half_width == 0.0
    # merging with empty is the identity either way
    assert empty.merge(singleton) == singleton
    assert singleton.merge(RunAggregate()) == singleton


def test_run_aggregate_merges_disjoint_metric_sets():
    base = RunSummary(
        seed=0, index=0, priority=run_priority(0, 0), algorithm="x",
        terminated=True, safety_ok=True, decided=True, decided_value=1,
        values={"only_left": 2.0},
    )
    other = RunSummary(
        seed=1, index=1, priority=run_priority(0, 1), algorithm="x",
        terminated=False, safety_ok=True, decided=False, decided_value=None,
        values={"only_right": 5.0},
    )
    merged = RunAggregate.from_summaries([base]).merge(RunAggregate.from_summaries([other]))
    assert merged.metric_names() == ["only_left", "only_right"]
    assert merged.mean("only_left") == 2.0 and merged.mean("only_right") == 5.0
    assert merged.termination_rate() == 0.5


def test_summary_reducer_is_picklable():
    reducer = SummaryReducer(entropy=42)
    clone = pickle.loads(pickle.dumps(reducer))
    assert clone == reducer
    assert math.isclose(run_priority(42, 7), run_priority(42, 7))
