"""Property-based tests (hypothesis) on core data structures and invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.helpers import SyncContext, drive, make_message

from repro.cluster.failures import FailurePattern
from repro.cluster.topology import ClusterTopology
from repro.core.base import BOT, PhaseMessage, ProcessEnvironment
from repro.core.pattern import scan_mailbox
from repro.harness.runner import ExperimentConfig, run_consensus
from repro.harness.stats import percentile, summarize
from repro.sharedmem.consensus_object import CASConsensusObject, LLSCConsensusObject
from repro.sim.rng import RandomSource


# ----------------------------------------------------------------------- helpers
@st.composite
def partitions(draw, max_n=12):
    """A random partition of 0..n-1 into non-empty clusters."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    pids = list(range(n))
    rng = random.Random(draw(st.integers(min_value=0, max_value=2**16)))
    rng.shuffle(pids)
    clusters = []
    index = 0
    while index < n:
        size = rng.randint(1, n - index)
        clusters.append(pids[index : index + size])
        index += size
    return clusters


# --------------------------------------------------------------------- topology
@given(partitions())
@settings(max_examples=60, deadline=None)
def test_topology_partition_invariants(clusters):
    topology = ClusterTopology(clusters)
    # Every process belongs to exactly one cluster and cluster_of round-trips.
    seen = set()
    for index, members in enumerate(topology.clusters):
        for pid in members:
            assert topology.cluster_index_of(pid) == index
            assert pid not in seen
            seen.add(pid)
    assert seen == set(range(topology.n))
    assert sum(topology.cluster_sizes) == topology.n
    # A strict majority never fits twice in n processes.
    threshold = topology.majority_threshold()
    assert topology.is_majority(threshold)
    assert not topology.is_majority(threshold - 1)
    assert 2 * threshold > topology.n


@given(partitions(), st.sets(st.integers(min_value=0, max_value=11)))
@settings(max_examples=60, deadline=None)
def test_termination_condition_monotone_in_correct_set(clusters, extra):
    topology = ClusterTopology(clusters)
    correct = {pid for pid in extra if pid < topology.n}
    holds = topology.termination_condition_holds(correct)
    # Adding more correct processes can only help.
    for pid in range(topology.n):
        if topology.termination_condition_holds(correct | {pid}) is False:
            assert not holds or pid in correct or True
    assert topology.termination_condition_holds(set(range(topology.n))) or topology.n == 0
    if holds:
        assert topology.termination_condition_holds(set(range(topology.n)))
    if not correct:
        assert not holds


@given(partitions())
@settings(max_examples=40, deadline=None)
def test_majority_cluster_condition_equivalence(clusters):
    topology = ClusterTopology(clusters)
    index = topology.majority_cluster_index()
    if index is not None:
        # One correct process inside the majority cluster suffices.
        survivor = next(iter(topology.cluster_members(index)))
        assert topology.termination_condition_holds({survivor})


# --------------------------------------------------------------- failure patterns
@given(
    partitions(),
    st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=40, deadline=None)
def test_violate_termination_condition_always_succeeds(clusters, seed):
    topology = ClusterTopology(clusters)
    pattern = FailurePattern.violate_termination_condition(topology)
    assert not pattern.allows_termination(topology)
    # And the pattern never crashes a process twice or outside the range.
    assert all(0 <= pid < topology.n for pid in pattern.crashed)


@given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=30), st.integers())
@settings(max_examples=50, deadline=None)
def test_random_crash_pattern_counts(n, count, seed):
    count = min(count, n)
    pattern = FailurePattern.random_crashes(random.Random(seed), n, count)
    assert pattern.crash_count() == count
    assert pattern.correct(n) == set(range(n)) - pattern.crashed


# ---------------------------------------------------------------- pattern scanning
@given(
    partitions(max_n=10),
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=9), st.sampled_from([0, 1, "BOT"])),
        max_size=25,
    ),
)
@settings(max_examples=60, deadline=None)
def test_scan_mailbox_supporters_are_unions_of_clusters(clusters, raw_messages):
    topology = ClusterTopology(clusters)
    env = ProcessEnvironment(pid=0, proposal=0, topology=topology)
    mailbox = []
    senders_seen = set()
    cluster_value = {}
    for sender, value in raw_messages:
        if sender >= topology.n or sender in senders_seen:
            # In the crash-failure model a process broadcasts a single value
            # per (round, phase); keep only its first message.
            continue
        senders_seen.add(sender)
        est = BOT if value == "BOT" else value
        # Cluster consensus makes clusters univalent per phase: members of an
        # already-heard cluster repeat the cluster's value.
        cluster_index = topology.cluster_index_of(sender)
        est = cluster_value.setdefault(cluster_index, est)
        mailbox.append(make_message(sender, PhaseMessage(tag="t", round_number=1, phase=1, est=est)))
    outcome = scan_mailbox(mailbox, env, "t", 1, 1)
    # Heard set is exactly the union of the senders' clusters.
    expected_heard = set()
    for message in mailbox:
        expected_heard |= topology.cluster_of(message.sender)
    assert outcome.heard == frozenset(expected_heard)
    # Supporters of every value are unions of whole clusters.
    for value, supporters in outcome.supporters.items():
        for pid in supporters:
            assert topology.cluster_of(pid) <= supporters
    # A value's supporters never exceed the heard set.
    for supporters in outcome.supporters.values():
        assert supporters <= outcome.heard
    # At most one binary value can hold a strict majority.
    majorities = [v for v in (0, 1) if topology.is_majority(len(outcome.supporters_of(v)))]
    assert len(majorities) <= 1


# -------------------------------------------------------------- consensus objects
@given(
    st.lists(st.tuples(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=1)),
             min_size=1, max_size=8),
    st.sampled_from(["cas", "llsc"]),
)
@settings(max_examples=60, deadline=None)
def test_consensus_object_agreement_validity_any_schedule(proposals, kind):
    factory = CASConsensusObject if kind == "cas" else LLSCConsensusObject
    obj = factory("prop", members=set(range(8)))
    decisions = []
    proposed_values = []
    for pid, value in proposals:
        proposed_values.append(value)
        decisions.append(drive(obj.propose(SyncContext(pid=pid), value)))
    assert len(set(decisions)) == 1
    assert decisions[0] in proposed_values
    assert decisions[0] == proposed_values[0]  # first proposal wins under sequential schedule


# ------------------------------------------------------------------------- stats
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=50))
@settings(max_examples=80, deadline=None)
def test_summary_statistics_invariants(values):
    stats = summarize(values)
    tolerance = 1e-9 * max(1.0, abs(stats.minimum), abs(stats.maximum))
    assert stats.minimum <= stats.median <= stats.maximum
    assert stats.minimum - tolerance <= stats.mean <= stats.maximum + tolerance
    assert stats.std >= 0
    assert stats.count == len(values)
    assert stats.minimum <= stats.p90 <= stats.maximum
    assert stats.ci95[0] <= stats.mean <= stats.ci95[1]


@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=30),
    st.floats(min_value=0, max_value=100),
)
@settings(max_examples=80, deadline=None)
def test_percentile_bounds_and_monotonicity(values, q):
    value = percentile(values, q)
    assert min(values) <= value <= max(values)
    assert percentile(values, 0) == min(values)
    assert percentile(values, 100) == max(values)


# ----------------------------------------------------------------------- rng
@given(st.integers(min_value=0, max_value=2**32), st.text(min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_rng_streams_reproducible_for_any_seed_and_name(seed, name):
    a = RandomSource(seed).stream(name)
    b = RandomSource(seed).stream(name)
    assert [a.random() for _ in range(3)] == [b.random() for _ in range(3)]


# --------------------------------------------------------- end-to-end (sampled)
@given(
    st.integers(min_value=2, max_value=7),
    st.integers(min_value=1, max_value=7),
    st.integers(min_value=0, max_value=50),
    st.sampled_from(["hybrid-local-coin", "hybrid-common-coin"]),
)
@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_random_small_configurations_satisfy_consensus(n, m, seed, algorithm):
    m = min(m, n)
    topology = ClusterTopology.even_split(n, m)
    proposals = {pid: (pid * 7 + seed) % 2 for pid in range(n)}
    result = run_consensus(
        ExperimentConfig(topology=topology, algorithm=algorithm, proposals=proposals, seed=seed)
    )
    result.report.raise_on_violation()
    assert result.decided_value in set(proposals.values())
