"""Adaptive adversary strategies: primitives, engine semantics, determinism.

Four layers, mirroring the subsystem:

* the strategy primitives (``DelayPivotal``, ``TargetCoin``, ``SplitRounds``)
  are plain frozen values -- validation, pickling, stable reprs;
* the authentication model -- ``MessageCorruption``'s liveness truth table
  and ``scan_mailbox`` dropping tampered-but-authenticated payloads while
  believing forged ones (which demonstrably breaks the protocol);
* the :class:`AdaptiveAdversary` engine -- unit tests against hand-built
  kernel state proving delay-pivotal defers exactly the quorum-completing
  delivery (and respects its deferral budget), plus end-to-end runs whose
  ``deferral_log`` shows the strategies actually intervene;
* e10 harness integration -- adaptive sweeps must merge bit-identically
  across shard counts and execution modes, exactly like e9's declarative
  ones (the adaptive decisions draw no randomness, so this is structural).
"""

import pickle
import random

import pytest

from tests.helpers import make_message

from repro.adversary.adaptive import (
    ADAPTIVE_FAULT_TYPES,
    AdaptiveAdversary,
    DelayPivotal,
    SplitRounds,
    TargetCoin,
    adaptive_scenario_names,
    build_adaptive_scenario,
    build_adversary,
    register_adaptive_scenario,
)
from repro.adversary.faults import (
    MessageCorruption,
    MessageOmission,
    TamperedPayload,
    mutate_payload,
)
from repro.adversary.scenario import Adversary, Scenario
from repro.cluster.topology import ClusterTopology
from repro.core.base import BOT, PhaseMessage, ProcessEnvironment, ProtocolInvariantError
from repro.core.pattern import scan_mailbox
from repro.experiments import e10_adaptive
from repro.experiments.common import default_seeds
from repro.harness.distributed import ShardSpec, merge_shards, run_plan, run_shard
from repro.harness.runner import ExperimentConfig, prepare_consensus
from repro.sim.events import MessageDelivery
from repro.sim.kernel import SimConfig
from repro.sim.process import ProcessState


# -------------------------------------------------------------- the primitives
def test_adaptive_primitives_pickle_hash_and_repr():
    primitives = [
        DelayPivotal(extra_delay=3.0, max_deferrals=4),
        TargetCoin(mode="delay", extra_delay=2.5),
        TargetCoin(mode="omit"),
        SplitRounds(groups=((0, 1), (2, 3)), extra_delay=1.5),
    ]
    for fault in primitives:
        clone = pickle.loads(pickle.dumps(fault))
        assert clone == fault
        assert hash(clone) == hash(fault)
        assert repr(clone) == repr(fault)
        assert type(fault).__name__ in repr(fault)
    assert set(type(f) for f in primitives) == set(ADAPTIVE_FAULT_TYPES)


def test_adaptive_primitives_are_valid_scenario_members():
    scenario = Scenario("adaptive", (DelayPivotal(), TargetCoin(), MessageOmission(probability=0.1)))
    assert len(scenario.faults) == 3


def test_strategy_validation_refuses_bad_values():
    with pytest.raises(ValueError, match="extra_delay"):
        DelayPivotal(extra_delay=0.0)
    with pytest.raises(ValueError, match="max_deferrals"):
        DelayPivotal(max_deferrals=0)
    with pytest.raises(ValueError, match="mode"):
        TargetCoin(mode="corrupt")
    with pytest.raises(ValueError, match="window"):
        DelayPivotal(start=5.0, end=5.0)


def test_split_rounds_validates_groups():
    with pytest.raises(ValueError, match="two groups"):
        SplitRounds(groups=((0, 1, 2),))
    with pytest.raises(ValueError, match="disjoint"):
        SplitRounds(groups=((0, 1), (1, 2)))
    with pytest.raises(ValueError, match="non-empty"):
        SplitRounds(groups=((0, 1), ()))
    split = SplitRounds(groups=((1, 0), (3, 2)))
    assert split.groups == ((0, 1), (2, 3))  # normalised sorted tuples
    assert split.touched_pids() == (0, 1, 2, 3)


def test_strategy_liveness_flags():
    assert DelayPivotal().liveness_preserving
    assert SplitRounds(groups=((0,), (1,))).liveness_preserving
    assert TargetCoin(mode="delay").liveness_preserving
    assert not TargetCoin(mode="omit").liveness_preserving


# ------------------------------------------------- corruption truth table (fix)
@pytest.mark.parametrize(
    "probability, authenticated, preserving",
    [
        (0.0, True, True),
        (0.0, False, True),
        (0.3, True, False),  # tampered+authenticated = dropped = omission-like
        (0.3, False, False),
        (1.0, True, False),
    ],
)
def test_corruption_liveness_truth_table(probability, authenticated, preserving):
    fault = MessageCorruption(probability=probability, authenticated=authenticated)
    assert fault.liveness_preserving is preserving
    scenario = Scenario("tamper", (fault,))
    assert scenario.liveness_preserving is preserving


# --------------------------------------------------------- authentication model
TOPO3 = ClusterTopology.even_split(3, 3)


def _env(pid=0):
    return ProcessEnvironment(pid=pid, proposal=0, topology=TOPO3)


def _phase_msg(sender, est, r=1, ph=1):
    return make_message(sender, PhaseMessage(tag="t", round_number=r, phase=ph, est=est))


def test_scan_mailbox_drops_tampered_payloads():
    good = _phase_msg(0, est=1)
    tampered = make_message(1, TamperedPayload(original=good.payload, mutated=mutate_payload(good.payload)))
    outcome = scan_mailbox([good, tampered], _env(), "t", 1, 1)
    # The signature check fails: only the untampered sender is heard.
    assert outcome.heard == frozenset({0})


def test_scan_mailbox_believes_forged_payloads():
    forged = mutate_payload(_phase_msg(0, est=0).payload)
    assert forged.est == 1  # the bit was flipped in transit
    outcome = scan_mailbox([make_message(0, forged)], _env(), "t", 1, 1)
    assert outcome.heard == frozenset({0})
    assert 1 in outcome.values_received


def test_mutate_payload_flips_bits_and_ignores_bot():
    assert mutate_payload(PhaseMessage(tag="t", round_number=1, phase=1, est=0)).est == 1
    bottom = PhaseMessage(tag="t", round_number=1, phase=1, est=BOT)
    assert mutate_payload(bottom) is bottom
    assert mutate_payload("not-a-dataclass") == "not-a-dataclass"


# ------------------------------------------------------- engine unit semantics
class _FakeProcess:
    def __init__(self, mailbox, predicate, state=ProcessState.BLOCKED, paused=False):
        self.mailbox = mailbox
        self.wait_predicate = predicate
        self.state = state
        self.paused = paused


class _FakeKernel:
    """Just enough kernel for AdaptiveAdversary.defer(): pid -> process."""

    def __init__(self, processes):
        self._processes = processes

    def process(self, pid):
        return self._processes[pid]


def _adaptive(scenario, kernel):
    adversary = AdaptiveAdversary(scenario, random.Random(0))
    adversary._kernel = kernel
    return adversary


def _quorum_of_two(mailbox):
    return "quorum" if len(mailbox) >= 2 else None


def test_delay_pivotal_defers_exactly_the_quorum_completing_delivery():
    held = _phase_msg(0, est=1)
    receiver = _FakeProcess(mailbox=[held], predicate=_quorum_of_two)
    adversary = _adaptive(
        Scenario("t", (DelayPivotal(extra_delay=3.0, max_deferrals=8),)),
        _FakeKernel({1: receiver}),
    )
    pivotal = MessageDelivery(pid=1, message=_phase_msg(2, est=1))
    assert adversary.defer(pivotal, 0.0) == 3.0
    assert adversary.deferral_log == [(0.0, "delay-pivotal", "defer", 2, 1)]

    # Once the quorum is already satisfied the same delivery is not pivotal.
    receiver.mailbox = [held, _phase_msg(3, est=0)]
    extra = MessageDelivery(pid=1, message=_phase_msg(2, est=1))
    assert adversary.defer(extra, 0.0) == 0.0

    # Nor is any delivery to a non-blocked or paused receiver.
    receiver.mailbox = [held]
    receiver.state = ProcessState.READY
    assert adversary.defer(MessageDelivery(pid=1, message=_phase_msg(2, est=1)), 0.0) == 0.0
    receiver.state = ProcessState.BLOCKED
    receiver.paused = True
    assert adversary.defer(MessageDelivery(pid=1, message=_phase_msg(2, est=1)), 0.0) == 0.0


def test_delay_pivotal_releases_after_its_deferral_budget():
    receiver = _FakeProcess(mailbox=[_phase_msg(0, est=1)], predicate=_quorum_of_two)
    adversary = _adaptive(
        Scenario("t", (DelayPivotal(extra_delay=2.0, max_deferrals=2),)),
        _FakeKernel({1: receiver}),
    )
    event = MessageDelivery(pid=1, message=_phase_msg(2, est=1))
    assert adversary.defer(event, 0.0) == 2.0
    assert adversary.defer(event, 2.0) == 2.0
    # Budget exhausted: the delivery is released, so liveness is preserved.
    assert adversary.defer(event, 4.0) == 0.0
    assert [entry[2] for entry in adversary.deferral_log] == ["defer", "defer"]


def test_target_coin_attacks_only_the_unique_leading_estimate():
    adversary = _adaptive(Scenario("t", (TargetCoin(mode="omit"),)), _FakeKernel({}))
    first = MessageDelivery(pid=1, message=_phase_msg(0, est=0))
    # One observation makes est=0 the unique leader: omitted at dispatch.
    assert adversary.defer(first, 0.0) == float("inf")
    assert adversary.deferral_log[-1] == (0.0, "target-coin", "omit", 0, 1)
    # est=1 ties the counts: no unique leader, nothing is faulted.
    tied = MessageDelivery(pid=2, message=_phase_msg(0, est=1))
    assert adversary.defer(tied, 1.0) == 0.0


def test_split_rounds_defers_leading_to_lagging_crossings_only():
    split = SplitRounds(groups=((0, 1), (2, 3)), extra_delay=4.0)
    adversary = _adaptive(Scenario("t", (split,)), _FakeKernel({}))
    # Group 0 shows round 2 via an intra-group delivery (observed, not faulted
    # across groups since the payload carries no estimate leader yet).
    intra = MessageDelivery(pid=1, message=_phase_msg(0, est=BOT, r=2))
    assert adversary.defer(intra, 0.0) == 0.0
    # Ahead -> lagging crossing is deferred; the reverse direction is not.
    ahead = MessageDelivery(pid=2, message=_phase_msg(0, est=BOT, r=2))
    assert adversary.defer(ahead, 1.0) == 4.0
    assert adversary.deferral_log[-1] == (1.0, "split-rounds", "defer", 0, 2)
    behind = MessageDelivery(pid=0, message=_phase_msg(2, est=BOT, r=1))
    assert adversary.defer(behind, 2.0) == 0.0


def test_build_adversary_selects_the_observing_engine_only_when_needed():
    rng = random.Random(0)
    declarative = build_adversary(Scenario("plain", (MessageOmission(probability=0.1),)), rng)
    assert type(declarative) is Adversary
    adaptive = build_adversary(Scenario("sharp", (DelayPivotal(),)), random.Random(0))
    assert type(adaptive) is AdaptiveAdversary
    mixed = build_adversary(
        Scenario("both", (MessageOmission(probability=0.1), TargetCoin())), random.Random(0)
    )
    assert type(mixed) is AdaptiveAdversary


# --------------------------------------------------------- end-to-end behaviour
def _run(scenario, seed=1, algorithm="ben-or", n=4, m=2):
    config = ExperimentConfig(
        topology=ClusterTopology.even_split(n, m),
        algorithm=algorithm,
        proposals="split",
        scenario=scenario,
        seed=seed,
        sim=SimConfig(max_rounds=30, max_time=5e4),
    )
    prepared = prepare_consensus(config)
    sim_result = prepared.kernel.run()
    return prepared.finalize(sim_result, 0.0), prepared.kernel.adversary


def test_delay_pivotal_intervenes_without_costing_safety_or_liveness():
    baseline, _ = _run(None)
    attacked, adversary = _run(build_adaptive_scenario("delay-pivotal", n=4, intensity=0.5))
    log = adversary.deferral_log
    assert log, "delay-pivotal never found a pivotal delivery to defer"
    assert {entry[1] for entry in log} == {"delay-pivotal"}
    assert {entry[2] for entry in log} == {"defer"}  # delays only, no omissions
    assert attacked.metrics.messages_omitted == 0
    assert attacked.report.safety_ok and attacked.terminated
    assert attacked.metrics.decision_time_max >= baseline.metrics.decision_time_max


def test_authenticated_tampering_keeps_safety_and_counts_corruptions():
    result, _ = _run(
        Scenario("tamper", (MessageCorruption(probability=0.6, authenticated=True),)), seed=0
    )
    assert result.report.safety_ok
    assert result.metrics.messages_corrupted > 0


def test_forged_payloads_break_the_protocol_without_authentication():
    """Authentication is load-bearing: believed mutations void the model."""
    with pytest.raises(ProtocolInvariantError):
        _run(Scenario("forge", (MessageCorruption(probability=0.6, authenticated=False),)), seed=0)


# ------------------------------------------------------------ scenario registry
def test_adaptive_registry_lists_sorted_names():
    names = adaptive_scenario_names()
    assert names == sorted(names)
    assert {"delay-pivotal", "target-coin", "target-coin-omit", "split-rounds", "byzantine-tamper"} <= set(names)


def test_adaptive_registry_refuses_unknown_and_duplicate_names():
    with pytest.raises(ValueError, match="unknown adaptive scenario"):
        build_adaptive_scenario("no-such-strategy", n=4)
    with pytest.raises(ValueError, match="already registered"):
        register_adaptive_scenario("delay-pivotal", lambda n, intensity: Scenario("dup", ()))


def test_adaptive_builders_validate_parameters():
    with pytest.raises(ValueError, match="at least 2"):
        build_adaptive_scenario("delay-pivotal", n=1)
    with pytest.raises(ValueError, match="intensity"):
        build_adaptive_scenario("delay-pivotal", n=4, intensity=1.5)
    for name in adaptive_scenario_names():
        assert build_adaptive_scenario(name, n=4, intensity=0.0).faults == ()
        scenario = build_adaptive_scenario(name, n=5, intensity=0.7)
        assert pickle.loads(pickle.dumps(scenario)) == scenario


# ----------------------------------------------- e10 distributed bit-identity
SEEDS = default_seeds(2)
E10_KWARGS = dict(
    seeds=SEEDS,
    scenarios=("delay-pivotal", "split-rounds", "byzantine-tamper"),
    intensities=(0.5,),
    n=4,
    m=2,
    round_cap=20,
    algorithms=("ben-or",),
)


def _shard_and_merge(plan, out_dir, shard_count):
    for index in range(1, shard_count + 1):
        run_shard(plan, ShardSpec(index, shard_count), out_dir, max_workers=1)
    return merge_shards(out_dir, plan)


@pytest.mark.parametrize("shard_count", [1, 3, 7])
def test_e10_shard_merge_is_bit_identical_to_single_host(tmp_path, shard_count):
    single = run_plan(e10_adaptive.plan(**E10_KWARGS), max_workers=1)
    merged = _shard_and_merge(e10_adaptive.plan(**E10_KWARGS), tmp_path, shard_count)
    assert set(merged.aggregates) == set(single)
    for label, aggregate in single.items():
        assert merged.aggregates[label] == aggregate  # dataclass eq: bit-for-bit


def test_e10_coop_execution_is_bit_identical_to_process_mode():
    process_mode = run_plan(e10_adaptive.plan(**E10_KWARGS), max_workers=2)
    coop_mode = run_plan(e10_adaptive.plan(**E10_KWARGS), max_workers=2, exec_mode="coop")
    assert set(process_mode) == set(coop_mode)
    for label, aggregate in process_mode.items():
        assert coop_mode[label] == aggregate


def test_e10_sharded_report_reproduces_driver_report(tmp_path):
    direct = e10_adaptive.run(max_workers=1, **E10_KWARGS)
    merged = _shard_and_merge(e10_adaptive.plan(**E10_KWARGS), tmp_path, 3)
    report = e10_adaptive.build_report(merged.plan, merged.aggregates)
    assert report.format(precision=12) == direct.format(precision=12)
    assert report.passed and direct.passed


def test_adaptive_scenarios_are_part_of_the_plan_fingerprint():
    base = e10_adaptive.plan(**E10_KWARGS)
    assert base.fingerprint() == e10_adaptive.plan(**E10_KWARGS).fingerprint()
    other = dict(E10_KWARGS, scenarios=("delay-pivotal", "split-rounds", "target-coin"))
    assert base.fingerprint() != e10_adaptive.plan(**other).fingerprint()
    hotter = dict(E10_KWARGS, intensities=(0.7,))
    assert base.fingerprint() != e10_adaptive.plan(**hotter).fingerprint()
    shuffled = dict(E10_KWARGS, scenarios=("byzantine-tamper", "delay-pivotal", "split-rounds"))
    assert base.fingerprint() == e10_adaptive.plan(**shuffled).fingerprint()
