"""Unit tests for the process context, stats accounting and the trace."""


from repro.network.delays import ConstantDelay
from repro.network.transport import Network
from repro.sim.context import (
    LocalEffect,
    ProcessStats,
    RoundLimitExceeded,
    SendEffect,
    SharedMemEffect,
    WaitEffect,
)
from repro.sim.events import TraceEntry
from repro.sim.kernel import SimConfig, SimulationKernel
from repro.sim.rng import RandomSource
from repro.sim.trace import Trace


def _idle(ctx):
    yield from ctx.local_step()
    return "idle"


def build_kernel(max_rounds=None):
    kernel = SimulationKernel(seed=1, config=SimConfig(max_rounds=max_rounds))
    kernel.attach_network(Network(2, delay_model=ConstantDelay(1.0), rng=RandomSource(1)))
    return kernel


def test_context_effect_objects_are_yielded():
    kernel = build_kernel()
    captured = []

    def proc(ctx):
        gen_send = ctx.send(1, "x")
        captured.append(next(gen_send))
        gen_sm = ctx.sm_op(lambda: 5)
        captured.append(next(gen_sm))
        gen_wait = ctx.wait_until(lambda mb: mb or None)
        captured.append(next(gen_wait))
        gen_local = ctx.local_step(0.5)
        captured.append(next(gen_local))
        return 0
        yield

    kernel.add_process(0, proc)
    kernel.add_process(1, _idle)
    kernel.run()
    assert isinstance(captured[0], SendEffect) and captured[0].dest == 1
    assert isinstance(captured[1], SharedMemEffect)
    assert isinstance(captured[2], WaitEffect)
    assert isinstance(captured[3], LocalEffect) and captured[3].duration == 0.5


def test_context_counters_track_activity():
    kernel = build_kernel()

    def proc(ctx):
        yield from ctx.send(1, "a")
        yield from ctx.sm_op(lambda: None)
        ctx.mark_round(3)
        ctx.count_coin_flip()
        return "done"

    record = kernel.add_process(0, proc)
    kernel.add_process(1, _idle)
    kernel.run()
    stats = record.context.stats
    assert stats.messages_sent == 1
    assert stats.sm_ops == 1
    assert stats.rounds == 3
    assert stats.coin_flips == 1
    assert stats.steps >= 1


def test_mark_round_respects_round_cap():
    kernel = build_kernel(max_rounds=2)

    def proc(ctx):
        ctx.mark_round(1)
        yield from ctx.local_step()
        ctx.mark_round(3)
        return "unreachable"

    kernel.add_process(0, proc)
    result = kernel.run()
    assert result.decisions == {}


def test_mark_round_keeps_maximum():
    stats = ProcessStats()
    stats.rounds = 5
    assert stats.rounds == 5


def test_round_limit_exception_carries_details():
    exc = RoundLimitExceeded(pid=3, round_number=7, limit=5)
    assert exc.pid == 3 and exc.round_number == 7 and exc.limit == 5
    assert "round 7" in str(exc)


def test_context_random_stream_is_per_process_and_deterministic():
    kernel_a = build_kernel()
    kernel_b = build_kernel()
    values = {}

    def proc(ctx):
        values.setdefault(id(ctx._kernel), {})[ctx.pid] = ctx.random().random()
        yield from ctx.local_step()
        return 1

    for kernel in (kernel_a, kernel_b):
        kernel.add_process(0, proc)
        kernel.add_process(1, proc)
        kernel.run()
    a_vals = values[id(kernel_a)]
    b_vals = values[id(kernel_b)]
    assert a_vals[0] != a_vals[1]  # different processes, independent streams
    assert a_vals == b_vals  # same seed, reproducible


def test_trace_disabled_records_nothing():
    trace = Trace(enabled=False)
    trace.record(1.0, "step", 0, "x")
    assert len(trace) == 0


def test_trace_bounded_and_counts_drops():
    trace = Trace(enabled=True, max_entries=2)
    for index in range(5):
        trace.record(float(index), "step", 0, f"entry {index}")
    assert len(trace) == 2
    assert trace.dropped == 3


def test_trace_filters_by_process_and_kind():
    trace = Trace(enabled=True)
    trace.record(0.0, "send", 1, "a")
    trace.record(1.0, "send", 2, "b")
    trace.record(2.0, "deliver", 1, "c")
    assert len(trace.for_process(1)) == 2
    assert len(trace.of_kind("send")) == 2
    formatted = trace.format()
    assert "send" in formatted and "deliver" in formatted


def test_trace_entry_format_contains_fields():
    entry = TraceEntry(time=1.5, sequence=7, kind="send", pid=3, detail="hello")
    text = entry.format()
    assert "send" in text and "hello" in text and "3" in text


# ------------------------------------------------------- structured tracing
def build_traced_kernel():
    kernel = SimulationKernel(seed=1, config=SimConfig(trace=True))
    kernel.attach_network(Network(2, delay_model=ConstantDelay(1.0), rng=RandomSource(1)))
    return kernel


def test_log_annotation_carries_simulation_time():
    # Regression: annotations used to land at a -1.0 sentinel time instead
    # of the virtual time at which the algorithm logged them.
    kernel = build_traced_kernel()

    def proc(ctx):
        yield from ctx.local_step(2.5)
        ctx.log("after the step")
        return 0

    kernel.add_process(0, proc)
    kernel.add_process(1, _idle)
    kernel.run()
    notes = kernel.trace.of_kind("note")
    assert len(notes) == 1
    # The local step costs 2.5 virtual seconds (plus scheduling epsilon),
    # so a correctly timed annotation cannot land before it.
    assert notes[0].time >= 2.5


def test_round_and_phase_markers_are_structured():
    kernel = build_traced_kernel()

    def proc(ctx):
        ctx.mark_round(1)
        ctx.mark_phase("vote")
        yield from ctx.local_step()
        ctx.mark_round(2)
        return 0

    kernel.add_process(0, proc)
    kernel.add_process(1, _idle)
    kernel.run()
    rounds = kernel.trace.of_kind("round")
    assert [entry.data for entry in rounds] == [{"round": 1}, {"round": 2}]
    phases = kernel.trace.of_kind("phase")
    assert phases[0].data == {"phase": "vote"} and phases[0].pid == 0


def test_markers_cost_nothing_when_tracing_is_off():
    kernel = build_kernel()

    def proc(ctx):
        ctx.mark_round(1)
        ctx.mark_phase("vote")
        yield from ctx.local_step()
        return 0

    kernel.add_process(0, proc)
    kernel.run()
    assert len(kernel.trace) == 0


def test_send_entries_carry_destination_data():
    kernel = build_traced_kernel()

    def proc(ctx):
        yield from ctx.send(1, "payload")
        return 0

    kernel.add_process(0, proc)
    kernel.add_process(1, _idle)
    kernel.run()
    sends = kernel.trace.of_kind("send")
    assert sends and sends[0].data == {"dest": 1}
    events = kernel.trace.of_kind("event")
    assert events and all("event" in entry.data for entry in events)


def test_trace_jsonl_is_one_stable_object_per_line():
    import json

    trace = Trace(enabled=True)
    trace.record(0.0, "send", 1, "to=2", {"dest": 2})
    trace.record(1.0, "note", None, "free text")
    lines = trace.to_jsonl().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert list(first) == ["time", "seq", "kind", "pid", "detail", "data"]
    assert first["data"] == {"dest": 2}
    second = json.loads(lines[1])
    assert second["pid"] is None and "data" not in second
    assert Trace(enabled=True).to_jsonl() == ""


def test_trace_sink_dumps_jsonl_on_run_end(tmp_path):
    import json

    sink = tmp_path / "trace.jsonl"
    kernel = SimulationKernel(seed=1, trace_sink=sink)
    kernel.attach_network(Network(2, delay_model=ConstantDelay(1.0), rng=RandomSource(1)))

    def proc(ctx):
        ctx.mark_round(1)
        yield from ctx.send(1, "x")
        return 0

    kernel.add_process(0, proc)
    kernel.add_process(1, _idle)
    # A sink force-enables tracing even though the config leaves it off.
    assert kernel.trace.enabled
    kernel.run()
    lines = sink.read_text().splitlines()
    records = [json.loads(line) for line in lines]
    assert records[-1] == {"meta": {"entries": len(records) - 1, "dropped": 0}}
    kinds = {record["kind"] for record in records[:-1]}
    assert {"round", "send", "event"} <= kinds
