"""Tests of the experiment modules E1–E9 (small seed counts for speed)."""

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.common import ExperimentReport, default_seeds
from repro.experiments import (
    e1_figure1,
    e2_majority_crash,
    e3_one_for_all,
    e4_rounds,
    e5_mm_comparison,
    e6_degenerate,
    e7_indulgence,
    e8_scalability,
    e9_adversary,
)

SEEDS = default_seeds(3)


# ------------------------------------------------------------------ common bits
def test_default_seeds_are_distinct_and_deterministic():
    assert default_seeds(5) == default_seeds(5)
    assert len(set(default_seeds(10))) == 10


def test_experiment_report_helpers():
    report = ExperimentReport(experiment_id="X", title="t", paper_claim="c")
    report.add_row(a=1, b=2)
    report.add_row(a=3, b=4)
    report.add_note("hello")
    assert report.column("a") == [1, 3]
    assert report.row_where(a=3) == {"a": 3, "b": 4}
    with pytest.raises(KeyError):
        report.row_where(a=99)
    report.passed = True
    text = report.format()
    assert "X" in text and "hello" in text and "PASSED" in text


def test_registry_contains_all_experiments():
    # The nine paper experiments plus the large-n (E8L), adaptive
    # adversary (E10) and flaky-host resilience (E11) extension drivers.
    assert sorted(ALL_EXPERIMENTS) == (
        ["E1", "E10", "E11"] + [f"E{i}" for i in range(2, 9)] + ["E8L", "E9"]
    )
    for module in ALL_EXPERIMENTS.values():
        assert hasattr(module, "run") and hasattr(module, "main")
        assert isinstance(module.PAPER_CLAIM, str) and module.PAPER_CLAIM


# -------------------------------------------------------------- individual runs
def test_e1_figure1_reproduces():
    report = e1_figure1.run(seeds=SEEDS)
    assert report.passed
    assert {row["decomposition"] for row in report.rows} == {"figure1-left", "figure1-right"}
    assert all(row["n"] == 7 and row["m"] == 3 for row in report.rows)


def test_e2_majority_crash_reproduces():
    report = e2_majority_crash.run(seeds=SEEDS, sizes=(7,))
    assert report.passed
    hybrid = report.row_where(algorithm="hybrid-local-coin", n=7)
    control = report.row_where(algorithm="ben-or (control)", n=7)
    assert hybrid["crashed_majority"] and hybrid["termination_rate"] == 1.0
    assert control["termination_rate"] == 0.0 and control["safety_rate"] == 1.0


def test_e3_one_for_all_reproduces():
    report = e3_one_for_all.run(seeds=SEEDS, n=6, m=3)
    assert report.passed
    lone = report.row_where(algorithm="hybrid-local-coin", scenario="one-survivor-per-cluster")
    assert lone["termination_rate"] == 1.0
    assert lone["crashed"] == 3


def test_e4_rounds_reproduces():
    report = e4_rounds.run(seeds=default_seeds(10), sizes=(6,), cluster_counts=(3,))
    assert report.passed
    unanimous = report.row_where(algorithm="hybrid-local-coin", proposals="unanimous-1", n=6)
    assert unanimous["max_rounds"] == 1


def test_e5_mm_comparison_reproduces():
    report = e5_mm_comparison.run(seeds=SEEDS, sizes=(8,), cluster_counts=(2,))
    assert report.passed
    hybrid = report.row_where(model="hybrid-local-coin", n=8, m=2)
    mm = report.row_where(model="mm-local-coin", n=8, m=2)
    assert hybrid["predicted_objects_per_phase"] == 2.0
    assert mm["predicted_objects_per_phase"] == 8.0
    assert hybrid["invocations_per_process_per_phase"] < mm["invocations_per_process_per_phase"]


def test_e6_degenerate_reproduces():
    report = e6_degenerate.run(seeds=default_seeds(6), n=5)
    assert report.passed
    shared = report.row_where(configuration="shared-memory baseline")
    assert shared["mean_messages"] == 0.0


def test_e7_indulgence_reproduces():
    report = e7_indulgence.run(seeds=SEEDS, n=6, m=3, round_cap=12)
    assert report.passed
    assert all(row["safety_rate"] == 1.0 for row in report.rows)
    assert all(not row["termination_expected"] for row in report.rows)


def test_e9_adversary_reproduces():
    report = e9_adversary.run(
        seeds=SEEDS, scenarios=("none", "lossy-links", "partition-drop"), intensities=(0.3,)
    )
    assert report.passed
    assert all(row["safety_rate"] == 1.0 for row in report.rows)
    assert report.row_where(scenario="none")["termination_rate"] == 1.0
    lossy = report.row_where(scenario="lossy-links")
    assert not lossy["liveness_preserving"] and lossy["mean_omitted"] > 0


def test_e8_scalability_reproduces():
    report = e8_scalability.run(seeds=default_seeds(2), sizes=(4, 8))
    assert report.passed
    assert e8_scalability.figure2_domain_matches()
    single = report.row_where(n=8, layout="m=1")
    singleton = report.row_where(n=8, layout="m=n")
    assert single["mean_messages"] <= singleton["mean_messages"]
    assert single["mean_sm_ops"] > 0
