"""Unit tests for failure patterns and adversarial crash scenarios."""

import random

import pytest

from repro.cluster.failures import FailurePattern
from repro.cluster.topology import ClusterTopology


def test_none_pattern_has_no_crashes():
    pattern = FailurePattern.none()
    assert pattern.crash_count() == 0
    assert pattern.correct(5) == {0, 1, 2, 3, 4}
    assert not pattern.crashes_majority(5)
    assert repr(pattern) == "FailurePattern(none)"


def test_negative_crash_time_rejected():
    with pytest.raises(ValueError):
        FailurePattern({0: -1.0})


def test_crash_set_and_correct():
    pattern = FailurePattern.crash_set([1, 3], time=2.5)
    assert pattern.crashed == {1, 3}
    assert pattern.correct(5) == {0, 2, 4}
    assert pattern.crashes[1] == 2.5


def test_crashes_majority():
    assert FailurePattern.crash_set(range(4)).crashes_majority(7)
    assert not FailurePattern.crash_set(range(3)).crashes_majority(7)


def test_crash_all_but_one_in_cluster_default_and_explicit_survivor():
    topo = ClusterTopology([[0, 1, 2], [3, 4]])
    pattern = FailurePattern.crash_all_but_one_in_cluster(topo, 0)
    assert pattern.crashed == {1, 2}
    pattern2 = FailurePattern.crash_all_but_one_in_cluster(topo, 0, survivor=2)
    assert pattern2.crashed == {0, 1}
    with pytest.raises(ValueError):
        FailurePattern.crash_all_but_one_in_cluster(topo, 0, survivor=4)


def test_majority_crash_with_surviving_majority_cluster():
    topo = ClusterTopology.figure1_right()
    pattern = FailurePattern.majority_crash_with_surviving_majority_cluster(topo, survivor=3)
    assert pattern.crashed == {0, 1, 2, 4, 5, 6}
    assert pattern.crashes_majority(topo.n)
    assert pattern.allows_termination(topo)
    with pytest.raises(ValueError):
        FailurePattern.majority_crash_with_surviving_majority_cluster(topo, survivor=6)


def test_majority_crash_requires_majority_cluster():
    topo = ClusterTopology.figure1_left()
    with pytest.raises(ValueError):
        FailurePattern.majority_crash_with_surviving_majority_cluster(topo)


def test_violate_termination_condition():
    topo = ClusterTopology.even_split(8, 4)
    pattern = FailurePattern.violate_termination_condition(topo)
    assert not pattern.allows_termination(topo)
    # A single-cluster topology can never have its condition violated short of
    # crashing everybody.
    single = ClusterTopology.single_cluster(4)
    total = FailurePattern.violate_termination_condition(single)
    assert total.crashed == {0, 1, 2, 3}


def test_allows_termination_matches_topology_condition():
    topo = ClusterTopology.figure1_right()
    ok = FailurePattern.crash_set({0, 5, 6, 1, 2, 3})  # p4 (pid 4) survives in majority cluster
    assert ok.allows_termination(topo)
    bad = FailurePattern.crash_set({1, 2, 3, 4})  # whole majority cluster gone
    assert not bad.allows_termination(topo)


def test_random_crashes_bounds_and_determinism():
    rng = random.Random(5)
    pattern = FailurePattern.random_crashes(rng, n=10, count=4, earliest=1.0, latest=2.0)
    assert pattern.crash_count() == 4
    assert all(1.0 <= time <= 2.0 for time in pattern.crashes.values())
    again = FailurePattern.random_crashes(random.Random(5), n=10, count=4, earliest=1.0, latest=2.0)
    assert pattern.crashes == again.crashes
    with pytest.raises(ValueError):
        FailurePattern.random_crashes(rng, n=3, count=5)


def test_merged_with_keeps_earliest_time():
    a = FailurePattern({0: 5.0, 1: 1.0})
    b = FailurePattern({0: 2.0, 2: 3.0})
    merged = a.merged_with(b)
    assert merged.crashes == {0: 2.0, 1: 1.0, 2: 3.0}


def test_install_schedules_crashes_into_kernel():
    from repro.network.delays import ConstantDelay
    from repro.network.transport import Network
    from repro.sim.kernel import SimulationKernel
    from repro.sim.rng import RandomSource

    kernel = SimulationKernel(seed=0)
    kernel.attach_network(Network(2, ConstantDelay(1.0), RandomSource(0)))

    def forever(ctx):
        while True:
            yield from ctx.local_step(1.0)

    def quick(ctx):
        yield from ctx.local_step()
        return "ok"

    kernel.add_process(0, forever)
    kernel.add_process(1, quick)
    FailurePattern({0: 2.0}).install(kernel)
    result = kernel.run()
    assert 0 in result.crashed and 1 in result.correct


def test_install_rejects_pid_out_of_range_with_clear_error():
    from repro.sim.kernel import SimulationKernel

    kernel = SimulationKernel(seed=0)
    kernel.add_process(0, lambda ctx: iter(()))
    kernel.add_process(1, lambda ctx: iter(()))
    with pytest.raises(ValueError, match=r"crashes process ids \[2, 5\].*has processes \[0, 1\]"):
        FailurePattern({2: 1.0, 5: 0.5, 0: 1.0}).install(kernel)


def test_repr_lists_crashes():
    text = repr(FailurePattern({2: 1.0, 0: 3.0}))
    assert "0@3" in text and "2@1" in text
