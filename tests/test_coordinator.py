"""Work-stealing coordinator: lease protocol, theft, and bit-identity.

The headline guarantee under test: executing a plan through any number of
work-stealing workers -- killed, restarted, stolen-from, racing -- and
merging the directory yields aggregates *bit-identical* to the single-host
sweep.  Plus the lease protocol's edges: single-winner claims and steals,
expiry by heartbeat silence, corrupt lease files treated as expired, and
clear refusals for mixed or foreign directories.
"""

import pickle
import time

import pytest

from repro.cluster.topology import ClusterTopology
from repro.experiments import e1_figure1, e9_adversary
from repro.experiments.common import default_seeds
from repro.harness import coordinator, distributed
from repro.harness.coordinator import (
    Lease,
    LeaseError,
    current_lease,
    lease_dir,
    merge_stolen,
    plan_header_path,
    point_checkpoint_path,
    read_plan_header,
    renew_lease,
    run_work_stealing,
    sanitize_worker_name,
    steal_status,
    try_claim,
    try_steal,
    worker_manifest_path,
    write_plan_header,
)
from repro.harness.distributed import (
    ManifestError,
    ShardSpec,
    plan_sweep,
    run_plan,
    run_shard,
)
from repro.harness.runner import ExperimentConfig

SEEDS = default_seeds(4)
BASE = ExperimentConfig(topology=ClusterTopology.figure1_right())
VARIATIONS = {
    "local": {"algorithm": "hybrid-local-coin"},
    "common": {"algorithm": "hybrid-common-coin"},
}
TTL = 0.05  # tiny lease, so tests exercise expiry without real waiting
EXPIRE = 3 * TTL  # sleeping this long guarantees any TTL lease has expired


def make_plan():
    """A fresh two-point plan (plans are cheap, and rebuilt like real hosts do)."""
    return plan_sweep(BASE, VARIATIONS, SEEDS)


def kill_after(monkeypatch, points):
    """Make ``run_many`` die with KeyboardInterrupt after ``points`` calls."""
    real_run_many = distributed.run_many
    calls = {"count": 0}

    def dying(*args, **kwargs):
        if calls["count"] >= points:
            raise KeyboardInterrupt("simulated kill")
        calls["count"] += 1
        return real_run_many(*args, **kwargs)

    monkeypatch.setattr(distributed, "run_many", dying)
    return lambda: monkeypatch.setattr(distributed, "run_many", real_run_many)


# ------------------------------------------------------------------ leases
class TestLeaseProtocol:
    def test_claim_is_single_winner(self, tmp_path):
        plan = make_plan()
        assert try_claim(tmp_path, plan, 0, "alpha", 60.0) is not None
        assert try_claim(tmp_path, plan, 0, "beta", 60.0) is None

    def test_live_lease_cannot_be_stolen(self, tmp_path):
        plan = make_plan()
        lease = try_claim(tmp_path, plan, 0, "alpha", 60.0)
        assert not lease.expired()
        with pytest.raises(LeaseError, match="has not expired"):
            try_steal(tmp_path, plan, 0, "thief", 60.0, lease)

    def test_expired_lease_steal_race_has_one_winner(self, tmp_path):
        plan = make_plan()
        try_claim(tmp_path, plan, 0, "mayfly", TTL)
        time.sleep(EXPIRE)
        expired = current_lease(tmp_path, 0)
        assert expired.expired()
        first = try_steal(tmp_path, plan, 0, "thief-1", 60.0, expired)
        second = try_steal(tmp_path, plan, 0, "thief-2", 60.0, expired)
        winners = [steal for steal in (first, second) if steal is not None]
        assert len(winners) == 1 and winners[0].worker == "thief-1"
        live = current_lease(tmp_path, 0)
        assert live.worker == "thief-1" and live.generation == 1

    def test_renewal_advances_heartbeat(self, tmp_path):
        plan = make_plan()
        lease = try_claim(tmp_path, plan, 0, "alpha", 60.0)
        time.sleep(0.02)
        renewed = renew_lease(lease, plan.fingerprint())
        assert renewed is not None
        assert renewed.renewed_at > lease.renewed_at
        assert renewed.generation == lease.generation

    def test_renewal_after_theft_reports_superseded(self, tmp_path):
        plan = make_plan()
        lease = try_claim(tmp_path, plan, 0, "alpha", TTL)
        time.sleep(EXPIRE)
        assert try_steal(tmp_path, plan, 0, "thief", 60.0, current_lease(tmp_path, 0))
        assert renew_lease(lease, plan.fingerprint()) is None

    def test_corrupt_lease_file_is_expired_with_warning(self, tmp_path):
        plan = make_plan()
        lease_dir(tmp_path).mkdir(parents=True)
        (lease_dir(tmp_path) / "point-0000-gen-0000.json").write_text("{ torn write")
        with pytest.warns(RuntimeWarning, match="corrupt lease"):
            lease = current_lease(tmp_path, 0)
        assert lease.corrupt and lease.expired()
        stolen = try_steal(tmp_path, plan, 0, "thief", 60.0, lease)
        assert stolen is not None and stolen.generation == 1

    def test_nonpositive_ttl_is_refused(self, tmp_path):
        with pytest.raises(LeaseError, match="ttl"):
            try_claim(tmp_path, make_plan(), 0, "alpha", 0.0)

    def test_out_of_range_point_is_refused(self, tmp_path):
        with pytest.raises(LeaseError, match="point index"):
            try_claim(tmp_path, make_plan(), 99, "alpha", 60.0)

    def test_worker_names_are_sanitized(self):
        assert sanitize_worker_name("host.example.com-42") == "host.example.com-42"
        assert sanitize_worker_name("a b/c") == "a-b-c"
        with pytest.raises(LeaseError, match="unusable"):
            sanitize_worker_name("///")


# ------------------------------------------------------------ bit-identity
def finish_with_workers(plan_builder, out_dir, worker_count, ttl=60.0):
    """Run ``worker_count`` bounded workers, then sweep up any remainder."""
    results = []
    for index in range(1, worker_count + 1):
        results.append(
            run_work_stealing(
                plan_builder(), out_dir, worker=f"w{index}", lease_ttl=ttl,
                max_workers=1, max_points=1,
            )
        )
    while merge_ready(plan_builder(), out_dir) is False:
        results.append(
            run_work_stealing(
                plan_builder(), out_dir, worker=f"sweep{len(results)}",
                lease_ttl=ttl, max_workers=1,
            )
        )
    return results


def merge_ready(plan, out_dir):
    """Whether every point of ``plan`` is checkpointed under ``out_dir``."""
    return all(
        point_checkpoint_path(out_dir, pi).exists() for pi in range(len(plan.points))
    )


@pytest.mark.parametrize("worker_count", [1, 3, 7])
def test_stolen_sweep_merges_bit_identical(tmp_path, worker_count):
    single = run_plan(make_plan(), max_workers=1)
    results = finish_with_workers(make_plan, tmp_path, worker_count)
    assert sum(len(result.computed) for result in results) == len(make_plan().points)
    merged = merge_stolen(tmp_path, make_plan())
    for label, aggregate in single.items():
        assert merged.aggregates[label] == aggregate


@pytest.mark.parametrize("worker_count", [1, 3, 7])
def test_killed_workers_shed_points_to_stealers_bit_identical(
    tmp_path, worker_count, monkeypatch
):
    """Workers die holding leases; stealers recover every point, bit for bit."""
    plan = e1_figure1.plan(seeds=SEEDS)
    single = run_plan(e1_figure1.plan(seeds=SEEDS), max_workers=1)
    for index in range(1, worker_count + 1):
        restore = kill_after(monkeypatch, points=1)
        try:
            # Each victim computes one point, then dies attempting its next
            # claim or steal (a victim that found only one claimable point
            # simply exits; its single point still counts).
            run_work_stealing(
                plan, tmp_path, worker=f"victim{index}", lease_ttl=TTL, max_workers=1
            )
        except KeyboardInterrupt:
            pass
        restore()
        time.sleep(EXPIRE)
    for attempt in range(3):
        if merge_ready(plan, tmp_path):
            break
        run_work_stealing(
            e1_figure1.plan(seeds=SEEDS), tmp_path, worker=f"sweeper{attempt}",
            lease_ttl=TTL, max_workers=1,
        )
        time.sleep(EXPIRE)
    # Finishing required stealing at least one dead victim's lease.
    assert steal_status(tmp_path).stolen >= 1
    merged = merge_stolen(tmp_path, e1_figure1.plan(seeds=SEEDS))
    for label, aggregate in single.items():
        assert merged.aggregates[label] == aggregate


def test_restarted_worker_finds_its_point_stolen(tmp_path, monkeypatch):
    """A crashed worker restarts to find a thief finished its claim: no recompute."""
    plan = make_plan()
    restore = kill_after(monkeypatch, points=0)  # dies inside its first point
    with pytest.raises(KeyboardInterrupt):
        run_work_stealing(plan, tmp_path, worker="original", lease_ttl=TTL, max_workers=1)
    restore()
    claimed = [pi for pi in range(len(plan.points)) if current_lease(tmp_path, pi, warn=False)]
    assert len(claimed) == 1  # died holding exactly one lease, checkpoint-less
    time.sleep(EXPIRE)
    thief = run_work_stealing(
        make_plan(), tmp_path, worker="thief", lease_ttl=TTL, max_workers=1
    )
    assert len(thief.stolen) == 1 and len(thief.executed) == len(plan.points) - 1
    comeback = run_work_stealing(
        make_plan(), tmp_path, worker="original", lease_ttl=TTL, max_workers=1
    )
    assert comeback.runs_executed == 0 and not comeback.computed
    assert sorted(comeback.already_done) == sorted(point.label for point in plan.points)
    stolen_lease = current_lease(tmp_path, claimed[0], warn=False)
    assert stolen_lease.worker == "thief" and stolen_lease.generation == 1


def test_corrupt_lease_blocking_a_point_is_stolen_with_warning(tmp_path):
    plan = make_plan()
    write_plan_header(tmp_path, plan)
    lease_dir(tmp_path).mkdir(exist_ok=True)
    (lease_dir(tmp_path) / "point-0000-gen-0000.json").write_text("not json at all")
    with pytest.warns(RuntimeWarning, match="corrupt lease"):
        result = run_work_stealing(
            make_plan(), tmp_path, worker="sweeper", lease_ttl=TTL, max_workers=1
        )
    assert plan.points[0].label in result.stolen
    assert merge_ready(plan, tmp_path)


def test_corrupt_checkpoint_is_recomputed_after_lease_expiry(tmp_path):
    plan = make_plan()
    run_work_stealing(plan, tmp_path, worker="first", lease_ttl=TTL, max_workers=1)
    point_checkpoint_path(tmp_path, 0).write_bytes(b"not a pickle")
    time.sleep(EXPIRE)
    with pytest.warns(RuntimeWarning, match="recomputing"):
        again = run_work_stealing(
            make_plan(), tmp_path, worker="second", lease_ttl=TTL, max_workers=1
        )
    assert len(again.computed) == 1
    single = run_plan(make_plan(), max_workers=1)
    merged = merge_stolen(tmp_path, make_plan())
    for label, aggregate in single.items():
        assert merged.aggregates[label] == aggregate


def test_live_leased_points_are_left_behind_not_fought_over(tmp_path):
    plan = make_plan()
    write_plan_header(tmp_path, plan)
    assert try_claim(tmp_path, plan, 1, "busy-worker", 3600.0) is not None
    result = run_work_stealing(
        make_plan(), tmp_path, worker="polite", lease_ttl=TTL, max_workers=1
    )
    assert result.left_behind == [plan.points[1].label]
    with pytest.raises(ManifestError, match="1 leased"):
        merge_stolen(tmp_path, make_plan())


def test_checkpoints_record_lease_provenance(tmp_path):
    plan = make_plan()
    write_plan_header(tmp_path, plan)
    try_claim(tmp_path, plan, 0, "mayfly", TTL)
    time.sleep(EXPIRE)
    run_work_stealing(make_plan(), tmp_path, worker="prov", lease_ttl=TTL, max_workers=1)
    stolen = pickle.loads(point_checkpoint_path(tmp_path, 0).read_bytes())
    assert stolen["schedule"] == "steal" and stolen["worker"] == "prov"
    assert stolen["stolen"] is True and stolen["lease_generation"] == 1
    fresh = pickle.loads(point_checkpoint_path(tmp_path, 1).read_bytes())
    assert fresh["stolen"] is False and fresh["lease_generation"] == 0


def test_max_points_bounds_the_work_grant(tmp_path):
    result = run_work_stealing(
        make_plan(), tmp_path, worker="bounded", lease_ttl=60.0,
        max_workers=1, max_points=1,
    )
    assert len(result.computed) == 1
    assert len(result.left_behind) == len(make_plan().points) - 1


# ------------------------------------------------------------------ status
def test_steal_status_counts_each_state(tmp_path):
    plan = make_plan()
    write_plan_header(tmp_path, plan)
    status = steal_status(tmp_path)
    assert (status.points_total, status.done, status.unclaimed) == (2, 0, 2)
    try_claim(tmp_path, plan, 0, "mayfly", TTL)
    assert steal_status(tmp_path).leased == 1
    time.sleep(EXPIRE)
    status = steal_status(tmp_path)
    assert status.orphaned == 1 and status.leased == 0
    run_work_stealing(make_plan(), tmp_path, worker="fin", lease_ttl=TTL, max_workers=1)
    status = steal_status(tmp_path)
    assert status.done == 2 and status.stolen == 1 and status.unclaimed == 0
    assert any(row["worker"] == "fin" and row["stolen"] == 1 for row in status.workers)


# -------------------------------------------------------------- refusals
def test_steal_directory_refuses_static_shards_and_vice_versa(tmp_path):
    plan = make_plan()
    steal_out = tmp_path / "steal"
    run_work_stealing(plan, steal_out, worker="w", lease_ttl=60.0, max_workers=1)
    with pytest.raises(ManifestError, match="work-stealing"):
        run_shard(make_plan(), ShardSpec(1, 1), steal_out, max_workers=1)
    static_out = tmp_path / "static"
    run_shard(make_plan(), ShardSpec(1, 1), static_out, max_workers=1)
    with pytest.raises(ManifestError, match="static"):
        run_work_stealing(make_plan(), static_out, worker="w", lease_ttl=60.0, max_workers=1)


def test_foreign_plan_header_is_refused(tmp_path):
    run_work_stealing(make_plan(), tmp_path, worker="w", lease_ttl=60.0, max_workers=1)
    foreign = plan_sweep(BASE, VARIATIONS, default_seeds(2))
    with pytest.raises(ManifestError, match="different plan"):
        run_work_stealing(foreign, tmp_path, worker="w2", lease_ttl=60.0, max_workers=1)
    with pytest.raises(ManifestError, match="different plan"):
        merge_stolen(tmp_path, foreign)


def test_merge_refuses_incomplete_run_with_state_counts(tmp_path):
    run_work_stealing(
        make_plan(), tmp_path, worker="half", lease_ttl=60.0, max_workers=1, max_points=1
    )
    with pytest.raises(ManifestError, match="incomplete.*1 unclaimed"):
        merge_stolen(tmp_path, make_plan())


def test_malformed_plan_header_is_refused(tmp_path):
    run_work_stealing(make_plan(), tmp_path, worker="w", lease_ttl=60.0, max_workers=1)
    plan_header_path(tmp_path).write_text("{ broken")
    with pytest.raises(ManifestError, match="malformed plan header"):
        read_plan_header(tmp_path)


def test_worker_manifest_records_outcomes(tmp_path):
    plan = make_plan()
    run_work_stealing(plan, tmp_path, worker="solo", lease_ttl=60.0, max_workers=1)
    manifest = worker_manifest_path(tmp_path, "solo")
    assert manifest.exists()
    raw = read_plan_header(tmp_path)
    assert raw["fingerprint"] == plan.fingerprint()
    status = steal_status(tmp_path)
    assert status.workers[0]["computed"] == len(plan.points)


# ----------------------------------------------------------- e9 stealing
E9_KWARGS = dict(
    seeds=default_seeds(3), scenarios=("none", "lossy-links"), intensities=(0.25,)
)


def test_e9_steal_merge_is_bit_identical_to_single_host(tmp_path, monkeypatch):
    single = run_plan(e9_adversary.plan(**E9_KWARGS), max_workers=1)
    restore = kill_after(monkeypatch, points=1)
    with pytest.raises(KeyboardInterrupt):
        run_work_stealing(
            e9_adversary.plan(**E9_KWARGS), tmp_path, worker="victim",
            lease_ttl=TTL, max_workers=1,
        )
    restore()
    time.sleep(EXPIRE)
    sweeper = run_work_stealing(
        e9_adversary.plan(**E9_KWARGS), tmp_path, worker="sweeper",
        lease_ttl=TTL, max_workers=1,
    )
    assert sweeper.stolen
    merged = merge_stolen(tmp_path, e9_adversary.plan(**E9_KWARGS))
    assert set(merged.aggregates) == set(single)
    for label, aggregate in single.items():
        assert merged.aggregates[label] == aggregate
    report = e9_adversary.build_report(merged.plan, merged.aggregates)
    direct = e9_adversary.build_report(
        e9_adversary.plan(**E9_KWARGS), single
    )
    assert report.format(precision=12) == direct.format(precision=12)


def test_superseded_worker_loses_gracefully(tmp_path):
    """A worker whose lease was stolen mid-run, thief finishing first, records a loss."""
    plan = make_plan()
    scheduler = coordinator.WorkStealingScheduler(
        plan, tmp_path, worker="slow", lease_ttl=60.0
    )
    claims = scheduler.claims()
    task = next(claims)
    # The thief takes over and completes the point while "slow" stalls.
    task.superseded = True
    summaries = coordinator.execute_point(plan, task, max_workers=1)
    coordinator._write_checkpoint(
        task.checkpoint, plan, coordinator._WHOLE, task.point_index, summaries,
        provenance={"schedule": "steal", "worker": "thief", "lease_generation": 1,
                    "stolen": True},
    )
    scheduler.complete(task, summaries)
    assert scheduler.result.lost == [task.label]
    assert task.label not in scheduler.result.executed
