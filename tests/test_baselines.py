"""Behavioural tests of the baseline algorithms (Ben-Or, MP common coin, shared memory)."""

import pytest

from repro.cluster.failures import FailurePattern
from repro.cluster.topology import ClusterTopology
from repro.core.base import ProcessEnvironment
from repro.baselines.ben_or import BenOrConsensus
from repro.baselines.mp_common_coin import MessagePassingCommonCoinConsensus
from repro.baselines.shared_memory_only import SharedMemoryConsensus
from repro.harness.runner import ExperimentConfig, run_consensus
from repro.sharedmem.memory import ClusterSharedMemory
from repro.sim.kernel import SimConfig

MESSAGE_PASSING = ("ben-or", "mp-common-coin")


# -------------------------------------------------------------- constructor checks
def test_ben_or_requires_local_coin():
    topo = ClusterTopology.singleton_clusters(3)
    with pytest.raises(ValueError):
        BenOrConsensus(ProcessEnvironment(pid=0, proposal=0, topology=topo))


def test_mp_common_coin_requires_common_coin():
    topo = ClusterTopology.singleton_clusters(3)
    with pytest.raises(ValueError):
        MessagePassingCommonCoinConsensus(ProcessEnvironment(pid=0, proposal=0, topology=topo))


def test_shared_memory_baseline_requires_memory_and_single_cluster():
    single = ClusterTopology.single_cluster(3)
    split = ClusterTopology.even_split(4, 2)
    with pytest.raises(ValueError):
        SharedMemoryConsensus(ProcessEnvironment(pid=0, proposal=0, topology=single))
    memory = ClusterSharedMemory(0, split.cluster_members(0))
    with pytest.raises(ValueError):
        SharedMemoryConsensus(
            ProcessEnvironment(pid=0, proposal=0, topology=split, memory=memory)
        )


# ------------------------------------------------------------------ basic behaviour
@pytest.mark.parametrize("algorithm", MESSAGE_PASSING)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_message_passing_baselines_terminate_failure_free(algorithm, seed):
    topo = ClusterTopology.singleton_clusters(5)
    result = run_consensus(
        ExperimentConfig(topology=topo, algorithm=algorithm, proposals="split", seed=seed)
    )
    result.report.raise_on_violation()
    assert result.terminated
    assert result.decided_value in (0, 1)


@pytest.mark.parametrize("algorithm", MESSAGE_PASSING)
@pytest.mark.parametrize("value", [0, 1])
def test_message_passing_baselines_validity_on_unanimity(algorithm, value):
    topo = ClusterTopology.singleton_clusters(4)
    result = run_consensus(
        ExperimentConfig(
            topology=topo, algorithm=algorithm, proposals=f"unanimous-{value}", seed=5
        )
    )
    result.report.raise_on_violation()
    assert result.decided_value == value


@pytest.mark.parametrize("algorithm", MESSAGE_PASSING)
def test_message_passing_baselines_tolerate_minority_crashes(algorithm):
    topo = ClusterTopology.singleton_clusters(7)
    pattern = FailurePattern.crash_set({0, 1, 2}, time=1.0)
    result = run_consensus(
        ExperimentConfig(
            topology=topo, algorithm=algorithm, proposals="split", seed=3, failure_pattern=pattern
        )
    )
    result.report.raise_on_violation()
    assert result.terminated


@pytest.mark.parametrize("algorithm", MESSAGE_PASSING)
def test_message_passing_baselines_blocked_by_majority_crash_but_safe(algorithm):
    topo = ClusterTopology.singleton_clusters(7)
    pattern = FailurePattern.crash_set(range(4), time=0.0)
    result = run_consensus(
        ExperimentConfig(
            topology=topo,
            algorithm=algorithm,
            proposals="split",
            seed=3,
            failure_pattern=pattern,
            sim=SimConfig(max_rounds=25, max_time=5e4),
        )
    )
    assert not result.terminated
    assert result.report.safety_ok
    assert not result.report.termination_expected


def test_ben_or_uses_no_shared_memory():
    topo = ClusterTopology.singleton_clusters(5)
    result = run_consensus(
        ExperimentConfig(topology=topo, algorithm="ben-or", proposals="split", seed=1)
    )
    assert result.metrics.sm_ops == 0
    assert result.metrics.consensus_invocations == 0


def test_ben_or_ignores_cluster_structure_for_attribution():
    # Even when run on a topology with a majority cluster, Ben-Or must not
    # benefit from cluster attribution: crashing the whole majority cluster
    # except one process removes the correct majority and blocks it.
    topo = ClusterTopology.figure1_right()
    pattern = FailurePattern.majority_crash_with_surviving_majority_cluster(topo, survivor=1)
    result = run_consensus(
        ExperimentConfig(
            topology=topo,
            algorithm="ben-or",
            proposals="split",
            seed=2,
            failure_pattern=pattern,
            sim=SimConfig(max_rounds=20, max_time=5e4),
        )
    )
    assert not result.terminated
    assert result.report.safety_ok


def test_shared_memory_baseline_decides_without_messages():
    topo = ClusterTopology.single_cluster(6)
    result = run_consensus(
        ExperimentConfig(topology=topo, algorithm="shared-memory", proposals="split", seed=0)
    )
    result.report.raise_on_violation()
    assert result.terminated
    assert result.metrics.messages_sent == 0
    assert result.metrics.sm_ops > 0
    assert result.metrics.rounds_max == 1


def test_shared_memory_baseline_tolerates_all_but_one_crash():
    topo = ClusterTopology.single_cluster(6)
    pattern = FailurePattern.crash_set(range(1, 6), time=0.0)
    result = run_consensus(
        ExperimentConfig(
            topology=topo, algorithm="shared-memory", proposals="split", seed=0, failure_pattern=pattern
        )
    )
    result.report.raise_on_violation()
    assert result.terminated
    assert 0 in result.sim_result.decisions


def test_shared_memory_baseline_decides_first_proposers_value():
    topo = ClusterTopology.single_cluster(3)
    result = run_consensus(
        ExperimentConfig(topology=topo, algorithm="shared-memory", proposals={0: 1, 1: 0, 2: 0}, seed=4)
    )
    assert result.decided_value in (0, 1)
    # Whatever was decided, every process decided the same thing.
    assert len(set(result.sim_result.decisions.values())) == 1
