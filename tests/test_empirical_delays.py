"""The trace-driven delay models: fits, loaders, replay and the CLI.

Property tests (hypothesis) pin the ECDF sketch to its accuracy contract --
every model quantile within one grid cell of the source data's, inverse CDF
monotone -- and the deterministic pieces (dataset loaders, trace replay
exhaustion, ``python -m repro fit-delays``) get example-based coverage.
"""

import math
import random
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.network.delays import delay_model_from_name
from repro.network.empirical import (
    REFERENCE_RTT_MS,
    EmpiricalDelay,
    ShiftedLogNormalDelay,
    TraceExhausted,
    TraceReplayDelay,
    empirical_quantile,
    fit_delay_model,
    load_rtt_samples,
    scale_to_unit_mean,
)

# Positive, finite, spread over several decades, immune to degenerate
# float artefacts (subnormals, inf) that would test float trivia rather
# than the sketch.
sample_sets = st.lists(
    st.floats(min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=2,
    max_size=300,
)


# ------------------------------------------------------------------ ECDF fit
def _ulp_slack(*values):
    """A few ulps of headroom: linear interpolation may overshoot its cell
    endpoint by rounding (``low + (high - low) * f`` with ``f`` just below
    1), which is measurement noise, not sketch error."""
    return 4.0 * math.ulp(max(1.0, *map(abs, values)))


@given(samples=sample_sets, resolution=st.integers(min_value=1, max_value=128))
@settings(max_examples=80, deadline=None)
def test_fit_quantiles_stay_within_one_grid_cell_of_the_data(samples, resolution):
    """Sketch accuracy: any model quantile is sandwiched between the source
    data's quantiles at the bracketing grid probabilities."""
    model = EmpiricalDelay.fit(samples, resolution=resolution)
    data = sorted(samples)
    for p in (0.0, 0.01, 0.1, 0.25, 0.5, 0.7, 0.75, 0.9, 0.99, 1.0):
        cell = math.floor(p * resolution)
        low = empirical_quantile(data, min(cell / resolution, 1.0))
        high = empirical_quantile(data, min((cell + 1) / resolution, 1.0))
        slack = _ulp_slack(low, high)
        assert low - slack <= model.quantile(p) <= high + slack, (p, resolution)


@given(samples=sample_sets, resolution=st.integers(min_value=1, max_value=64))
@settings(max_examples=80, deadline=None)
def test_fit_inverse_cdf_is_monotone_and_range_bounded(samples, resolution):
    """The inverse CDF never decreases and never leaves the sample range."""
    model = EmpiricalDelay.fit(samples, resolution=resolution)
    probabilities = [i / 50 for i in range(51)]
    values = [model.quantile(p) for p in probabilities]
    assert all(a <= b + _ulp_slack(a, b) for a, b in zip(values, values[1:]))
    assert values[0] == min(samples)
    assert values[-1] == max(samples)


@given(samples=sample_sets, seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_fit_samples_land_inside_the_source_range(samples, seed):
    """Every draw interpolates the grid, so it stays within the data range."""
    model = EmpiricalDelay.fit(samples, resolution=16)
    rng = random.Random(seed)
    low, high = min(samples), max(samples)
    slack = _ulp_slack(low, high)
    for value in model.sample_batch(rng, 64):
        assert low - slack <= value <= high + slack


@given(samples=sample_sets)
@settings(max_examples=60, deadline=None)
def test_scale_to_unit_mean_preserves_shape(samples):
    """Normalisation divides by one constant: mean 1, ratios preserved."""
    scaled = scale_to_unit_mean(samples)
    assert math.fsum(scaled) / len(scaled) == pytest.approx(1.0)
    factor = samples[0] / scaled[0]
    for raw, unit in zip(samples, scaled):
        assert unit * factor == pytest.approx(raw, rel=1e-9)


def test_fit_validates_inputs():
    with pytest.raises(ValueError, match="at least 2 samples"):
        EmpiricalDelay.fit([1.0])
    with pytest.raises(ValueError, match="positive finite"):
        EmpiricalDelay.fit([1.0, -2.0])
    with pytest.raises(ValueError, match="positive finite"):
        EmpiricalDelay.fit([1.0, math.inf])
    with pytest.raises(ValueError, match="resolution"):
        EmpiricalDelay.fit([1.0, 2.0], resolution=0)
    with pytest.raises(ValueError, match="non-decreasing"):
        EmpiricalDelay(quantiles=(2.0, 1.0))
    with pytest.raises(ValueError, match="probability"):
        EmpiricalDelay(quantiles=(1.0, 2.0)).quantile(1.5)


def test_fit_is_deterministic_with_value_only_repr():
    """Two hosts fitting the same data build fingerprint-identical models."""
    unit = scale_to_unit_mean(REFERENCE_RTT_MS)
    one, two = EmpiricalDelay.fit(unit), EmpiricalDelay.fit(unit)
    assert one == two
    assert repr(one) == repr(two)
    assert eval(repr(one), {"EmpiricalDelay": EmpiricalDelay}) == one
    assert "resolution=64" in one.describe()


# ------------------------------------------------------- shifted log-normal
def test_shifted_lognormal_fit_recovers_parameters():
    """Fitting draws from a known shifted log-normal finds it approximately."""
    rng = random.Random(424242)
    shift, median, sigma = 0.4, 0.6, 0.5
    draws = [shift + rng.lognormvariate(math.log(median), sigma) for _ in range(4000)]
    model = ShiftedLogNormalDelay.fit(draws)
    assert model.shift == pytest.approx(shift, abs=0.1)
    assert model.median == pytest.approx(median, rel=0.25)
    assert model.sigma == pytest.approx(sigma, rel=0.25)


@given(samples=sample_sets)
@settings(max_examples=60, deadline=None)
def test_shifted_lognormal_fit_is_always_constructible(samples):
    """Any valid sample set fits to a valid model with a positive floor gap."""
    model = ShiftedLogNormalDelay.fit(samples)
    assert 0.0 < model.shift < min(samples)
    assert model.median > 0 and model.sigma > 0
    value = model.sample(random.Random(1))
    assert value > model.shift


def test_shifted_lognormal_validates_parameters():
    with pytest.raises(ValueError):
        ShiftedLogNormalDelay(shift=-0.1)
    with pytest.raises(ValueError):
        ShiftedLogNormalDelay(median=0.0)
    with pytest.raises(ValueError):
        ShiftedLogNormalDelay(sigma=0.0)


# ------------------------------------------------------------- trace replay
def test_trace_replay_is_deterministic_and_seed_independent():
    """Draw i is trace[i] for every rng; the rng is never consumed."""
    trace = tuple(scale_to_unit_mean(REFERENCE_RTT_MS))
    model = TraceReplayDelay(trace)
    for seed in (0, 7, 999):
        rng = random.Random(seed)
        state = rng.getstate()
        assert [model.sample(rng) for _ in range(10)] == list(trace[:10])
        assert rng.getstate() == state
        assert model.replayed(rng) == 10


def test_trace_replay_streams_are_independent_per_rng():
    """Two concurrent consumers (coop kernels, repeated runs) each replay
    from the top without resetting anything on the shared model object."""
    model = TraceReplayDelay((1.0, 2.0, 3.0, 4.0))
    first, second = random.Random(1), random.Random(2)
    assert model.sample(first) == 1.0
    assert model.sample(first) == 2.0
    assert model.sample(second) == 1.0
    assert model.sample_batch(first, 2) == [3.0, 4.0]
    assert model.sample_batch(second, 3) == [2.0, 3.0, 4.0]


@given(length=st.integers(min_value=2, max_value=64), extra=st.integers(min_value=1, max_value=8))
@settings(max_examples=60, deadline=None)
def test_trace_exhaustion_raises_instead_of_wrapping(length, extra):
    """Running past the end is a loud TraceExhausted, never a silent wrap."""
    model = TraceReplayDelay(tuple(float(i + 1) for i in range(length)))
    rng = random.Random(0)
    for _ in range(length):
        model.sample(rng)
    with pytest.raises(TraceExhausted, match="record a longer trace"):
        model.sample(rng)
    # A fresh stream that over-asks in one batch gets the same error, after
    # consuming the whole tail exactly like per-call draws would.
    fresh = random.Random(1)
    with pytest.raises(TraceExhausted):
        model.sample_batch(fresh, length + extra)
    assert model.replayed(fresh) == length


def test_trace_replay_validates_and_pickles():
    import pickle

    with pytest.raises(ValueError, match="at least 2"):
        TraceReplayDelay((1.0,))
    with pytest.raises(ValueError, match="positive finite"):
        TraceReplayDelay((1.0, 0.0))
    model = TraceReplayDelay((1.0, 2.0, 3.0))
    rng = random.Random(0)
    model.sample(rng)
    clone = pickle.loads(pickle.dumps(model))
    assert clone == model
    # The replay position is per-process transient state, not model state:
    # a worker unpickling the model starts its own streams from the top.
    assert clone.sample(random.Random(5)) == 1.0
    assert len(model) == 3
    assert model.describe().startswith("TraceReplayDelay(length=3, sha256=")


# ------------------------------------------------------------------ loaders
DATA_DIR = Path(__file__).parent / "data"


def test_load_rtt_samples_csv_fixture_matches_reference():
    assert load_rtt_samples(DATA_DIR / "rtt_sample.csv") == list(REFERENCE_RTT_MS)


def test_load_rtt_samples_jsonl_fixture_matches_reference():
    assert load_rtt_samples(DATA_DIR / "rtt_sample.jsonl") == list(REFERENCE_RTT_MS)


def test_load_rtt_samples_csv_variants(tmp_path):
    headerless = tmp_path / "plain.csv"
    headerless.write_text("1.5\n2.5\n3.5\n")
    assert load_rtt_samples(headerless) == [1.5, 2.5, 3.5]
    other_column = tmp_path / "named.csv"
    other_column.write_text("host,latency\na,4.0\nb,5.0\n")
    assert load_rtt_samples(other_column) == [4.0, 5.0]


def test_load_rtt_samples_jsonl_numbers(tmp_path):
    path = tmp_path / "plain.jsonl"
    path.write_text("1.25\n\n2.5\n")
    assert load_rtt_samples(path) == [1.25, 2.5]


@pytest.mark.parametrize(
    "name, content, match",
    [
        ("bad.csv", "host\na\nb\n", "no RTT column"),
        ("bad2.csv", "rtt\n1.0\noops\n", "not a number"),
        ("bad.jsonl", "{not json}\n", "not valid JSON"),
        ("bad2.jsonl", '{"host": "a"}\n', "no RTT field"),
        ("bad3.jsonl", "[1, 2]\n", "expected a number or object"),
        ("empty.csv", "", "at least 2 samples"),
        ("negative.csv", "rtt\n1.0\n-3.0\n", "positive finite"),
    ],
)
def test_load_rtt_samples_rejects_malformed_input(tmp_path, name, content, match):
    path = tmp_path / name
    path.write_text(content)
    with pytest.raises(ValueError, match=match):
        load_rtt_samples(path)


def test_load_rtt_samples_missing_file():
    with pytest.raises(ValueError, match="does not exist"):
        load_rtt_samples("tests/data/no_such_file.csv")


# ------------------------------------------------------------- fit frontend
def test_fit_delay_model_kinds():
    unit = scale_to_unit_mean(REFERENCE_RTT_MS)
    assert isinstance(fit_delay_model(unit, "empirical"), EmpiricalDelay)
    assert isinstance(fit_delay_model(unit, "shifted-lognormal"), ShiftedLogNormalDelay)
    replay = fit_delay_model(REFERENCE_RTT_MS, "replay", unit_mean=True)
    assert isinstance(replay, TraceReplayDelay)
    assert list(replay.trace) == unit
    with pytest.raises(ValueError, match="unknown model kind"):
        fit_delay_model(unit, "gaussian")


def test_named_model_registry_covers_the_trace_driven_models():
    assert delay_model_from_name("empirical", quantiles=(0.5, 1.0)) == EmpiricalDelay(
        quantiles=(0.5, 1.0)
    )
    assert delay_model_from_name("shifted-lognormal") == ShiftedLogNormalDelay()
    assert delay_model_from_name("trace-replay", trace=(1.0, 2.0)) == TraceReplayDelay((1.0, 2.0))


def test_cli_fit_delays_prints_a_reusable_repr(capsys):
    assert cli_main(["fit-delays", str(DATA_DIR / "rtt_sample.csv"), "--unit-mean"]) == 0
    out = capsys.readouterr().out
    lines = [line for line in out.splitlines() if not line.startswith("#")]
    model = eval(lines[-1], {"EmpiricalDelay": EmpiricalDelay})
    assert model == EmpiricalDelay.fit(scale_to_unit_mean(REFERENCE_RTT_MS))
    assert "96 samples" in out and "unit mean" in out


def test_cli_fit_delays_other_models(capsys):
    assert cli_main(
        ["fit-delays", str(DATA_DIR / "rtt_sample.jsonl"), "--model", "shifted-lognormal"]
    ) == 0
    assert "ShiftedLogNormalDelay(" in capsys.readouterr().out
    assert cli_main(
        ["fit-delays", str(DATA_DIR / "rtt_sample.csv"), "--model", "replay", "--unit-mean"]
    ) == 0
    assert "TraceReplayDelay(" in capsys.readouterr().out


def test_cli_fit_delays_errors_follow_the_exit_convention(capsys, tmp_path):
    assert cli_main(["fit-delays", str(tmp_path / "missing.csv")]) == 2
    assert "error:" in capsys.readouterr().err
    bad = tmp_path / "bad.csv"
    bad.write_text("host\na\nb\n")
    assert cli_main(["fit-delays", str(bad)]) == 2
    assert "no RTT column" in capsys.readouterr().err


def test_cli_fit_delays_resolution_flag(capsys):
    assert cli_main(
        ["fit-delays", str(DATA_DIR / "rtt_sample.csv"), "--resolution", "8", "--unit-mean"]
    ) == 0
    out = capsys.readouterr().out
    assert "resolution=8" in out


def test_reference_dataset_shape():
    """The committed reference set keeps its story: a WAN-like skewed body
    with a heavy congestion tail (what makes the e11 sweep interesting)."""
    assert len(REFERENCE_RTT_MS) == 96
    assert min(REFERENCE_RTT_MS) > 20.0
    median = empirical_quantile(sorted(REFERENCE_RTT_MS), 0.5)
    assert 35.0 < median < 50.0
    assert max(REFERENCE_RTT_MS) > 5 * median  # the tail is genuinely heavy
    assert all(value == round(value, 3) for value in REFERENCE_RTT_MS)
