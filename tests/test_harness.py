"""Tests of the harness: workloads, runner, metrics, sweeps, stats, reporting."""

import random

import pytest

from repro.cluster.failures import FailurePattern
from repro.cluster.topology import ClusterTopology
from repro.harness.metrics import PHASES_PER_ROUND, RunMetrics
from repro.harness.report import (
    aggregate_records,
    comparison_rows,
    format_records,
    format_series,
    format_table,
)
from repro.harness.runner import (
    ALGORITHMS,
    ExperimentConfig,
    run_consensus,
    run_seeds,
    termination_expected,
)
from repro.harness.stats import (
    geometric_mean,
    mean,
    median,
    percentile,
    proportion,
    sample_std,
    summarize,
    summarize_field,
)
from repro.harness.sweep import grid, repeat, sweep
from repro.harness.workloads import crash_scenarios, resolve_proposals, standard_topologies


# ------------------------------------------------------------------- workloads
def test_resolve_proposals_named_patterns():
    assert resolve_proposals("unanimous-0", 3) == {0: 0, 1: 0, 2: 0}
    assert resolve_proposals("unanimous-1", 2) == {0: 1, 1: 1}
    assert resolve_proposals("split", 4) == {0: 0, 1: 0, 2: 1, 3: 1}
    assert resolve_proposals("alternating", 4) == {0: 0, 1: 1, 2: 0, 3: 1}
    assert resolve_proposals("one-dissenter", 3) == {0: 0, 1: 0, 2: 1}
    randoms = resolve_proposals("random", 10, random.Random(0))
    assert set(randoms.values()) <= {0, 1}


def test_resolve_proposals_explicit_forms_and_errors():
    assert resolve_proposals({0: 1, 1: 0}, 2) == {0: 1, 1: 0}
    assert resolve_proposals([1, 0, 1], 3) == {0: 1, 1: 0, 2: 1}
    with pytest.raises(ValueError):
        resolve_proposals("random", 3)  # no rng
    with pytest.raises(ValueError):
        resolve_proposals("weird-pattern", 3)
    with pytest.raises(ValueError):
        resolve_proposals([1, 0], 3)  # wrong length
    with pytest.raises(ValueError):
        resolve_proposals({0: 1}, 2)  # incomplete mapping
    with pytest.raises(ValueError):
        resolve_proposals([2, 0], 2)  # not binary


def test_standard_topologies_cover_extremes():
    topos = standard_topologies(8)
    assert topos["single-cluster"].m == 1
    assert topos["singletons"].m == 8
    assert topos["majority-cluster"].majority_cluster_index() is not None
    assert all(topo.n == 8 for topo in topos.values())


def test_crash_scenarios_names_and_consistency():
    topo = ClusterTopology.figure1_right()
    scenarios = crash_scenarios(topo, rng=random.Random(0))
    assert scenarios["none"].crash_count() == 0
    assert scenarios["minority"].crash_count() == 3
    assert "majority-with-majority-cluster" in scenarios
    assert scenarios["majority-with-majority-cluster"].crashes_majority(topo.n)
    assert not scenarios["condition-violated"].allows_termination(topo)
    assert scenarios["one-per-cluster-survives"].allows_termination(topo)
    assert scenarios["random-minority"].crash_count() == 3
    no_majority = crash_scenarios(ClusterTopology.figure1_left())
    assert "majority-with-majority-cluster" not in no_majority


# ---------------------------------------------------------------------- runner
def test_experiment_config_rejects_unknown_algorithm():
    with pytest.raises(ValueError):
        ExperimentConfig(topology=ClusterTopology.single_cluster(2), algorithm="paxos")


def test_with_seed_changes_only_the_seed():
    config = ExperimentConfig(topology=ClusterTopology.single_cluster(2), seed=1)
    other = config.with_seed(9)
    assert other.seed == 9
    assert other.topology is config.topology
    assert other.algorithm == config.algorithm


def test_termination_expected_rules():
    topo = ClusterTopology.figure1_right()
    headline = FailurePattern.majority_crash_with_surviving_majority_cluster(topo)
    assert termination_expected("hybrid-local-coin", topo, headline)
    assert not termination_expected("ben-or", topo, headline)
    assert termination_expected("ben-or", topo, FailurePattern.crash_set({0, 5}))
    assert termination_expected("shared-memory", topo, headline)
    everyone = FailurePattern.crash_set(range(topo.n))
    assert not termination_expected("shared-memory", topo, everyone)
    with pytest.raises(ValueError):
        termination_expected("paxos", topo, headline)


@pytest.mark.parametrize("algorithm", sorted(set(ALGORITHMS) - {"shared-memory"}))
def test_run_consensus_smoke_every_algorithm(algorithm):
    topo = ClusterTopology.even_split(4, 2)
    result = run_consensus(
        ExperimentConfig(topology=topo, algorithm=algorithm, proposals="alternating", seed=1)
    )
    result.report.raise_on_violation()
    assert result.metrics.algorithm == algorithm
    assert result.metrics.n == 4 and result.metrics.m == 2


def test_run_seeds_checks_and_returns_all_runs():
    topo = ClusterTopology.even_split(4, 2)
    config = ExperimentConfig(topology=topo, algorithm="hybrid-local-coin", proposals="split")
    results = run_seeds(config, seeds=[1, 2, 3])
    assert len(results) == 3
    assert {result.config.seed for result in results} == {1, 2, 3}


# --------------------------------------------------------------------- metrics
def test_metrics_fields_and_derived_quantities():
    topo = ClusterTopology.even_split(6, 3)
    result = run_consensus(
        ExperimentConfig(topology=topo, algorithm="hybrid-local-coin", proposals="unanimous-0", seed=0)
    )
    metrics = result.metrics
    assert metrics.status == "decided"
    assert metrics.decided_value == 0
    assert metrics.messages_sent >= metrics.n * metrics.n  # at least one all-to-all per phase
    assert metrics.sm_ops > 0
    assert metrics.consensus_objects_created >= topo.m
    assert metrics.phases_per_round == PHASES_PER_ROUND["hybrid-local-coin"]
    assert metrics.consensus_objects_per_phase == pytest.approx(topo.m, rel=0.01)
    assert metrics.invocations_per_process_per_phase == pytest.approx(1.0, rel=0.01)
    assert metrics.messages_per_round > 0
    assert metrics.decision_time_max >= metrics.decision_time_mean > 0
    as_dict = metrics.as_dict()
    assert as_dict["algorithm"] == "hybrid-local-coin"
    assert "consensus_objects_per_phase" in as_dict


def test_metrics_handle_zero_round_runs():
    metrics = RunMetrics(
        algorithm="shared-memory", n=3, m=1, seed=0, status="decided", terminated=True,
        decided_value=1, crashed=0, correct_deciders=3, rounds_max=0, rounds_mean=0.0,
        phases_per_round=1, messages_sent=0, messages_delivered=0, bytes_sent=0, sm_ops=6,
        consensus_objects_created=1, consensus_invocations=3, coin_flips=0,
        decision_time_max=0.1, decision_time_mean=0.1, end_time=0.1, events_processed=5,
    )
    assert metrics.consensus_objects_per_phase == 0.0
    assert metrics.invocations_per_process_per_phase == 0.0
    assert metrics.messages_per_round == 0.0


# ----------------------------------------------------------------------- stats
def test_basic_statistics():
    values = [1.0, 2.0, 3.0, 4.0]
    assert mean(values) == 2.5
    assert median(values) == 2.5
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert sample_std([5.0, 5.0, 5.0]) == 0.0
    assert sample_std([1.0]) == 0.0
    assert proportion([True, False, True, True]) == 0.75
    assert proportion([]) == 0.0
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)


def test_statistics_error_cases():
    with pytest.raises(ValueError):
        mean([])
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 150)
    with pytest.raises(ValueError):
        summarize([])
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([0.0, 1.0])


def test_summarize_and_summarize_field():
    stats = summarize([2.0, 4.0, 6.0, 8.0])
    assert stats.count == 4
    assert stats.mean == 5.0
    assert stats.minimum == 2.0 and stats.maximum == 8.0
    assert stats.median == 5.0
    low, high = stats.ci95
    assert low < stats.mean < high
    assert "±" in stats.format()
    field_stats = summarize_field([{"x": 1, "y": "skip"}, {"x": 3}], "x")
    assert field_stats.mean == 2.0


def test_percentile_single_value_and_interpolation():
    assert percentile([7.0], 90) == 7.0
    assert percentile([0.0, 10.0], 25) == 2.5


def test_percentile_duplicates_never_leave_the_sample_range():
    # Regression: the old form low*(1-w) + high*w could exceed max(values)
    # for near-equal tiny floats (hypothesis found this exact example).
    tiny = 9.238261545377998e-156
    for q in (0.0, 37.5, 50.0, 81.1875, 99.9, 100.0):
        assert percentile([tiny, tiny], q) == tiny
    assert percentile([5.0] * 7, 33.3) == 5.0


def test_percentile_denormal_values_stay_in_bounds():
    denormals = [5e-324, 1e-323, 2.5e-323, 4e-323]
    previous = None
    for q in range(0, 101):
        value = percentile(denormals, q)
        assert min(denormals) <= value <= max(denormals)
        if previous is not None:
            assert value >= previous  # monotone in q
        previous = value


def test_percentile_exact_at_q_0_50_100():
    values = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6]
    assert percentile(values, 0) == min(values)
    assert percentile(values, 100) == max(values)
    assert percentile(values, 50) == median(values)
    odd = [2.0, 8.0, 5.0]
    assert percentile(odd, 50) == 5.0


# ----------------------------------------------------------------------- sweeps
def test_repeat_and_sweep_and_grid():
    topo = ClusterTopology.even_split(4, 2)
    base = ExperimentConfig(topology=topo, algorithm="hybrid-local-coin", proposals="unanimous-1")
    runs = repeat(base, seeds=[0, 1])
    assert len(runs) == 2

    swept = sweep(
        base,
        {
            "local": {"algorithm": "hybrid-local-coin"},
            "common": {"algorithm": "hybrid-common-coin"},
        },
        seeds=[0, 1],
    )
    assert swept.labels() == ["local", "common"]
    point = swept.point("local")
    assert point.termination_rate() == 1.0
    assert point.summary("rounds_max").count == 2
    assert point.mean("messages_sent") > 0
    rows = swept.table(["rounds_max", "messages_sent"])
    assert len(rows) == 2 and "rounds_max" in rows[0]
    with pytest.raises(KeyError):
        swept.point("missing")

    gridded = grid(base, {"algorithm": ["hybrid-local-coin", "hybrid-common-coin"]}, seeds=[3])
    assert len(gridded.points) == 2
    assert all("algorithm=" in label for label in gridded.labels())


# ------------------------------------------------------------------- reporting
def test_aggregate_records_from_aggregates_and_sweep_points():
    topo = ClusterTopology.even_split(4, 2)
    base = ExperimentConfig(topology=topo, algorithm="hybrid-local-coin", proposals="split")
    swept = sweep(
        base,
        {
            "local": {"algorithm": "hybrid-local-coin"},
            "common": {"algorithm": "hybrid-common-coin"},
        },
        seeds=[0, 1, 2],
    )
    # works on RunAggregate and on SweepPoint alike (same interface)
    by_aggregate = aggregate_records(
        {point.label: point.aggregate for point in swept.points},
        ["messages_sent", "rounds_max"],
        ci=True,
    )
    by_point = aggregate_records(
        {point.label: point for point in swept.points}, ["messages_sent", "rounds_max"]
    )
    assert [record["label"] for record in by_aggregate] == ["local", "common"]
    for full, bare in zip(by_aggregate, by_point):
        assert full["runs"] == bare["runs"] == 3
        assert full["termination_rate"] == bare["termination_rate"] == 1.0
        assert full["messages_sent"] == bare["messages_sent"] > 0
        assert full["messages_sent_ci95"] >= 0.0
        assert "messages_sent_ci95" not in bare
    assert "rounds_max" in format_records(by_point)


def test_format_table_and_records_and_series():
    table = format_table(["a", "b"], [[1, 2.345], ["x", True]], precision=1, title="T")
    assert "T" in table and "2.3" in table and "yes" in table
    records = format_records([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
    assert "a" in records and "3" in records
    assert format_records([], title="empty") == "empty"
    series = format_series("n", "msgs", [(1, 10.0), (2, 20.0)], title="S")
    assert "msgs" in series and "20.00" in series
    rows = comparison_rows({"hybrid": {"x": 1}, "mm": {"x": 2}}, ["x"])
    assert rows == [["hybrid", 1], ["mm", 2]]
