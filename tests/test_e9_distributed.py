"""Sharded adversarial sweeps: e9 bit-identity and provenance-field refusals.

The acceptance bar for the adversary subsystem's harness integration:
``python -m repro run e9 --shard i/k`` + ``merge`` must reproduce the
single-host adversarial sweep *bit for bit* (the scenario is part of the
plan fingerprint), for k in {1, 3, 7} -- and shards produced under a
different delay model or fault scenario must be refused with an error that
names the offending field.
"""

import pytest

from repro.cluster.topology import ClusterTopology
from repro.experiments import e9_adversary
from repro.experiments.common import default_seeds
from repro.harness.distributed import (
    ManifestError,
    ShardSpec,
    merge_shards,
    plan_repeat,
    run_plan,
    run_shard,
)
from repro.harness.runner import ExperimentConfig
from repro.network.delays import ConstantDelay

SEEDS = default_seeds(3)
E9_KWARGS = dict(
    seeds=SEEDS, scenarios=("none", "lossy-links", "crash-recovery"), intensities=(0.25,)
)


def _shard_and_merge(plan, out_dir, shard_count):
    for index in range(1, shard_count + 1):
        run_shard(plan, ShardSpec(index, shard_count), out_dir, max_workers=1)
    return merge_shards(out_dir, plan)


@pytest.mark.parametrize("shard_count", [1, 3, 7])
def test_e9_shard_merge_is_bit_identical_to_single_host(tmp_path, shard_count):
    single = run_plan(e9_adversary.plan(**E9_KWARGS), max_workers=1)
    merged = _shard_and_merge(e9_adversary.plan(**E9_KWARGS), tmp_path, shard_count)
    assert set(merged.aggregates) == set(single)
    for label, aggregate in single.items():
        assert merged.aggregates[label] == aggregate  # dataclass eq: bit-for-bit


def test_e9_sharded_report_reproduces_driver_report(tmp_path):
    direct = e9_adversary.run(max_workers=1, **E9_KWARGS)
    merged = _shard_and_merge(e9_adversary.plan(**E9_KWARGS), tmp_path, 3)
    report = e9_adversary.build_report(merged.plan, merged.aggregates)
    assert report.format(precision=12) == direct.format(precision=12)
    assert report.passed and direct.passed


def test_scenario_is_part_of_the_plan_fingerprint():
    base = e9_adversary.plan(**E9_KWARGS)
    assert base.fingerprint() == e9_adversary.plan(**E9_KWARGS).fingerprint()
    other = e9_adversary.plan(
        seeds=SEEDS, scenarios=("none", "lossy-links", "chaos"), intensities=(0.25,)
    )
    assert base.fingerprint() != other.fingerprint()
    hotter = e9_adversary.plan(
        seeds=SEEDS, scenarios=E9_KWARGS["scenarios"], intensities=(0.5,)
    )
    assert base.fingerprint() != hotter.fingerprint()


def test_manifests_record_scenarios_and_delay_models():
    plan = e9_adversary.plan(**E9_KWARGS)
    assert plan.scenario_names() == ["crash-recovery", "lossy-links", "none"]
    assert plan.delay_models() == ["UniformDelay(low=0.5, high=1.5)"]


def test_merge_refuses_mismatched_scenarios_with_named_field(tmp_path):
    ran = e9_adversary.plan(seeds=SEEDS, scenarios=("lossy-links",), intensities=(0.25,))
    run_shard(ran, ShardSpec(1, 1), tmp_path, max_workers=1)
    foreign = e9_adversary.plan(seeds=SEEDS, scenarios=("chaos",), intensities=(0.25,))
    with pytest.raises(ManifestError, match="'scenarios'"):
        merge_shards(tmp_path, foreign)


def test_merge_refuses_mismatched_delay_models_with_named_field(tmp_path):
    topology = ClusterTopology.figure1_right()
    ran = plan_repeat(ExperimentConfig(topology=topology), SEEDS)
    run_shard(ran, ShardSpec(1, 1), tmp_path, max_workers=1)
    foreign = plan_repeat(
        ExperimentConfig(topology=topology, delay_model=ConstantDelay(1.0)), SEEDS
    )
    with pytest.raises(ManifestError, match="'delay_models'"):
        merge_shards(tmp_path, foreign)


def test_resume_works_for_adversarial_shards(tmp_path):
    plan = e9_adversary.plan(**E9_KWARGS)
    first = run_shard(plan, ShardSpec(1, 2), tmp_path, max_workers=1)
    assert first.runs_executed > 0
    again = run_shard(plan, ShardSpec(1, 2), tmp_path, max_workers=1)
    assert not again.executed and again.resumed == first.executed


def test_scenario_restricted_plans_normalise_name_order():
    forward = e9_adversary.plan(seeds=SEEDS, scenarios=("none", "lossy-links"))
    backward = e9_adversary.plan(seeds=SEEDS, scenarios=("lossy-links", "none"))
    assert forward.fingerprint() == backward.fingerprint()


def test_workers_reproduce_adversarial_runs(tmp_path):
    """Scenario configs pickle to pool workers and fold bit-identically."""
    plan = e9_adversary.plan(**E9_KWARGS)
    serial = run_plan(plan, max_workers=1)
    parallel = run_plan(e9_adversary.plan(**E9_KWARGS), max_workers=2)
    for label, aggregate in serial.items():
        assert parallel[label] == aggregate
