"""Unit tests for messages, delay models and the network transport."""

import random

import pytest

from repro.network.delays import (
    ConstantDelay,
    ExponentialDelay,
    LogNormalDelay,
    SpikeDelay,
    UniformDelay,
    delay_model_from_name,
)
from repro.network.message import Message, payload_size
from repro.network.transport import Network
from repro.sim.rng import RandomSource


# --------------------------------------------------------------------- message
def test_message_is_frozen_and_reprs():
    msg = Message(sender=1, dest=2, payload="x", send_time=0.5, msg_id=7)
    with pytest.raises(AttributeError):
        msg.payload = "y"
    assert "1->2" in repr(msg)


def test_payload_size_monotone_in_content():
    assert payload_size(None) == 1
    assert payload_size(7) >= 1
    assert payload_size("hello") == 5
    assert payload_size((1, 2, 3)) > payload_size((1,))
    assert payload_size({"a": 1}) > 0
    assert payload_size(3.14) == 8
    assert payload_size(object()) == 16


def test_payload_size_handles_dataclasses():
    from repro.core.base import PhaseMessage

    assert payload_size(PhaseMessage(tag="t", round_number=1, phase=1, est=0)) > 3


# ---------------------------------------------------------------------- delays
@pytest.mark.parametrize(
    "model",
    [
        ConstantDelay(1.0),
        UniformDelay(0.5, 1.5),
        ExponentialDelay(1.0),
        LogNormalDelay(1.0, 0.5),
        SpikeDelay(),
    ],
)
def test_delay_models_positive_and_finite(model):
    rng = random.Random(0)
    samples = [model.sample(rng) for _ in range(200)]
    assert all(s > 0 for s in samples)
    assert all(s < 1e6 for s in samples)


def test_constant_delay_is_constant():
    rng = random.Random(1)
    model = ConstantDelay(2.5)
    assert {model.sample(rng) for _ in range(10)} == {2.5}


def test_uniform_delay_respects_bounds():
    rng = random.Random(2)
    model = UniformDelay(1.0, 3.0)
    assert all(1.0 <= model.sample(rng) <= 3.0 for _ in range(500))


def test_spike_delay_produces_occasional_spikes():
    rng = random.Random(3)
    model = SpikeDelay(low=0.5, high=1.0, spike_probability=0.5, spike_low=10.0, spike_high=11.0)
    samples = [model.sample(rng) for _ in range(300)]
    assert any(s >= 10.0 for s in samples)
    assert any(s <= 1.0 for s in samples)


def test_delay_model_validation():
    with pytest.raises(ValueError):
        ConstantDelay(0.0)
    with pytest.raises(ValueError):
        UniformDelay(2.0, 1.0)
    with pytest.raises(ValueError):
        ExponentialDelay(-1.0)
    with pytest.raises(ValueError):
        LogNormalDelay(0.0, 1.0)
    with pytest.raises(ValueError):
        SpikeDelay(spike_probability=2.0)


def test_delay_model_from_name():
    assert isinstance(delay_model_from_name("uniform"), UniformDelay)
    assert isinstance(delay_model_from_name("constant", value=2.0), ConstantDelay)
    assert isinstance(delay_model_from_name("exponential"), ExponentialDelay)
    assert isinstance(delay_model_from_name("lognormal"), LogNormalDelay)
    assert isinstance(delay_model_from_name("spike"), SpikeDelay)
    with pytest.raises(ValueError):
        delay_model_from_name("carrier-pigeon")


# --------------------------------------------------------------------- network
def test_network_rejects_bad_sizes_and_pids():
    with pytest.raises(ValueError):
        Network(0)
    net = Network(3, rng=RandomSource(0))
    with pytest.raises(ValueError):
        net.prepare(sender=0, dest=5, payload="x", time=0.0)
    with pytest.raises(ValueError):
        net.prepare(sender=-1, dest=0, payload="x", time=0.0)


def test_network_counts_traffic_and_assigns_ids():
    net = Network(2, delay_model=ConstantDelay(1.0), rng=RandomSource(0))
    first = net.prepare(sender=0, dest=1, payload="abc", time=0.0)
    second = net.prepare(sender=1, dest=0, payload="d", time=1.0)
    assert first.msg_id != second.msg_id
    assert net.stats.messages_sent == 2
    assert net.stats.bytes_sent == 4
    assert net.stats.sent_by_process[0] == 1
    net.record_delivery(first)
    assert net.stats.messages_delivered == 1
    assert net.stats.delivered_to_process[1] == 1
    assert net.stats.sent_by_kind["str"] == 2
    assert "messages_sent" in net.stats.as_dict()


def test_self_messages_are_faster():
    net = Network(2, delay_model=ConstantDelay(1.0), rng=RandomSource(0), self_delay_factor=0.1)
    assert net.sample_delay(0, 0) == pytest.approx(0.1)
    assert net.sample_delay(0, 1) == pytest.approx(1.0)


def test_network_delay_sequence_is_seed_deterministic():
    a = Network(2, delay_model=UniformDelay(), rng=RandomSource(7))
    b = Network(2, delay_model=UniformDelay(), rng=RandomSource(7))
    assert [a.sample_delay(0, 1) for _ in range(10)] == [b.sample_delay(0, 1) for _ in range(10)]
