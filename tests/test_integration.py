"""End-to-end integration tests across many configurations.

These runs exercise the full stack (kernel + network + cluster memories +
coins + algorithms + harness) under combinations of topology, proposals,
delays and crash patterns, asserting the consensus properties on every run.
"""

import pytest

from repro.cluster.failures import FailurePattern
from repro.cluster.topology import ClusterTopology
from repro.harness.runner import ExperimentConfig, run_consensus
from repro.harness.workloads import crash_scenarios, standard_topologies
from repro.network.delays import ConstantDelay, ExponentialDelay, UniformDelay
from repro.sim.kernel import SimConfig


HYBRID = ("hybrid-local-coin", "hybrid-common-coin")


@pytest.mark.parametrize("algorithm", HYBRID)
@pytest.mark.parametrize("topology_name", ["single-cluster", "singletons", "even-2", "even-3", "majority-cluster"])
def test_all_topology_shapes_terminate(algorithm, topology_name):
    topology = standard_topologies(6)[topology_name]
    result = run_consensus(
        ExperimentConfig(topology=topology, algorithm=algorithm, proposals="split", seed=17)
    )
    result.report.raise_on_violation()
    assert result.terminated


@pytest.mark.parametrize("algorithm", HYBRID)
@pytest.mark.parametrize("proposals", ["unanimous-0", "unanimous-1", "split", "alternating", "one-dissenter"])
def test_all_proposal_patterns(algorithm, proposals):
    topology = ClusterTopology.even_split(7, 3)
    result = run_consensus(
        ExperimentConfig(topology=topology, algorithm=algorithm, proposals=proposals, seed=23)
    )
    result.report.raise_on_violation()
    assert result.decided_value in (0, 1)
    if proposals.startswith("unanimous"):
        assert result.decided_value == int(proposals[-1])


@pytest.mark.parametrize("algorithm", HYBRID)
def test_every_named_crash_scenario_is_safe(algorithm):
    topology = ClusterTopology.figure1_right()
    for name, pattern in crash_scenarios(topology).items():
        result = run_consensus(
            ExperimentConfig(
                topology=topology,
                algorithm=algorithm,
                proposals="split",
                seed=31,
                failure_pattern=pattern,
                sim=SimConfig(max_rounds=30, max_time=1e5),
            )
        )
        assert result.report.safety_ok, f"safety violated under scenario {name!r}"
        if pattern.allows_termination(topology):
            assert result.terminated, f"expected termination under scenario {name!r}"


@pytest.mark.parametrize(
    "delay_model",
    [ConstantDelay(1.0), UniformDelay(0.1, 5.0), ExponentialDelay(mean=2.0)],
)
def test_delay_distributions_full_matrix(delay_model):
    topology = ClusterTopology.even_split(6, 3)
    for algorithm in HYBRID:
        result = run_consensus(
            ExperimentConfig(
                topology=topology,
                algorithm=algorithm,
                proposals="alternating",
                seed=41,
                delay_model=delay_model,
            )
        )
        result.report.raise_on_violation()


@pytest.mark.parametrize("seed", range(12))
def test_many_seeds_agree_and_are_valid(seed):
    topology = ClusterTopology.even_split(8, 3)
    result = run_consensus(
        ExperimentConfig(topology=topology, algorithm="hybrid-local-coin", proposals="split", seed=seed)
    )
    result.report.raise_on_violation()
    decisions = set(result.sim_result.decisions.values())
    assert len(decisions) == 1 and decisions <= {0, 1}


@pytest.mark.parametrize("seed", range(6))
def test_common_coin_many_seeds(seed):
    topology = ClusterTopology.even_split(7, 3)
    result = run_consensus(
        ExperimentConfig(
            topology=topology, algorithm="hybrid-common-coin", proposals="alternating", seed=seed
        )
    )
    result.report.raise_on_violation()


def test_concurrent_instances_do_not_interfere_via_tags():
    """Two consensus instances with different tags share one network safely."""
    from repro.coins.local import LocalCoin
    from repro.core.base import ProcessEnvironment
    from repro.core.local_coin import LocalCoinConsensus
    from repro.network.transport import Network
    from repro.sharedmem.memory import build_cluster_memories
    from repro.sim.kernel import SimulationKernel
    from repro.sim.rng import RandomSource

    topology = ClusterTopology.even_split(4, 2)
    rng = RandomSource(55)
    kernel = SimulationKernel(config=SimConfig(), rng=rng)
    kernel.attach_network(Network(topology.n, rng=rng))
    memories_a = build_cluster_memories(topology)
    memories_b = build_cluster_memories(topology)
    decisions = {}

    def make(pid, tag, memories, proposal):
        env = ProcessEnvironment(
            pid=pid,
            proposal=proposal,
            topology=topology,
            memory=memories[topology.cluster_index_of(pid)],
            local_coin=LocalCoin(rng.stream("coin", tag, pid)),
        )
        return LocalCoinConsensus(env, tag=tag)

    # Interleave both instances inside each simulated process.
    def combined(ctx, pid=None):
        first = yield from make(pid, "instance-a", memories_a, pid % 2).run(ctx)
        second = yield from make(pid, "instance-b", memories_b, 1 - (pid % 2)).run(ctx)
        decisions[pid] = (first, second)
        return first

    for pid in topology.process_ids():
        kernel.add_process(pid, lambda ctx, pid=pid: combined(ctx, pid=pid))
    result = kernel.run()
    assert result.status.terminated
    firsts = {pair[0] for pair in decisions.values()}
    seconds = {pair[1] for pair in decisions.values()}
    assert len(firsts) == 1 and len(seconds) == 1


def test_larger_system_with_clusters_and_crashes():
    topology = ClusterTopology.even_split(20, 4)
    pattern = FailurePattern.crash_set({0, 5, 10, 15, 19}, time=3.0)
    result = run_consensus(
        ExperimentConfig(
            topology=topology,
            algorithm="hybrid-local-coin",
            proposals="split",
            seed=3,
            failure_pattern=pattern,
        )
    )
    result.report.raise_on_violation()
    assert result.terminated
    assert result.metrics.n == 20


def test_decide_messages_unblock_lagging_clusters():
    """A fully crashed cluster cannot block the others, and a cluster whose
    peers already decided is released by the DECIDE flood."""
    topology = ClusterTopology.even_split(9, 3)
    pattern = FailurePattern.crash_set(topology.cluster_members(2), time=0.0)
    result = run_consensus(
        ExperimentConfig(
            topology=topology,
            algorithm="hybrid-local-coin",
            proposals="split",
            seed=19,
            failure_pattern=pattern,
        )
    )
    result.report.raise_on_violation()
    assert result.terminated
    assert set(result.sim_result.decisions) == set(range(9)) - set(topology.cluster_members(2))
