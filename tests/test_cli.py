"""The ``python -m repro`` CLI: run, shard, resume, status and merge."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.harness import distributed
from repro.experiments import e1_figure1
from repro.experiments.common import default_seeds

E1_ARGS = ["--seeds", "2", "--max-workers", "1"]


def run_cli(capsys, *argv):
    """Invoke the CLI in-process, returning (exit_code, stdout, stderr)."""
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_list_names_every_experiment(capsys):
    code, out, _ = run_cli(capsys, "list")
    assert code == 0
    for experiment in ("e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9"):
        assert experiment in out


def test_run_prints_the_driver_report(capsys):
    code, out, _ = run_cli(capsys, "run", "e1", *E1_ARGS)
    assert code == 0
    direct = e1_figure1.run(seeds=default_seeds(2), max_workers=1)
    assert out.strip() == direct.format().strip()


def test_shard_merge_report_equals_unsharded_run(tmp_path, capsys):
    out_dir = str(tmp_path / "runs")
    for shard in ("2/2", "1/2"):  # out of order on purpose
        code, _, _ = run_cli(capsys, "run", "e1", *E1_ARGS, "--shard", shard, "--out", out_dir)
        assert code == 0
    code, merged_out, _ = run_cli(capsys, "merge", out_dir, "--report")
    assert code == 0
    code, direct_out, _ = run_cli(capsys, "run", "e1", *E1_ARGS)
    assert code == 0
    assert merged_out == direct_out


def test_rerun_of_a_finished_shard_resumes(tmp_path, capsys):
    out_dir = str(tmp_path / "runs")
    code, first, _ = run_cli(capsys, "run", "e1", *E1_ARGS, "--shard", "1/2", "--out", out_dir)
    assert code == 0 and "resumed" in first
    code, second, _ = run_cli(capsys, "run", "e1", *E1_ARGS, "--shard", "1/2", "--out", out_dir)
    assert code == 0
    assert "0 executed" in second and "computed" not in second


def test_status_shows_progress(tmp_path, capsys):
    out_dir = str(tmp_path / "runs")
    run_cli(capsys, "run", "e1", *E1_ARGS, "--shard", "1/2", "--out", out_dir)
    code, out, _ = run_cli(capsys, "status", out_dir)
    assert code == 0
    assert "1/2" in out and "4/4" in out


def test_status_of_killed_shard_shows_partial_points(tmp_path, capsys, monkeypatch):
    out_dir = str(tmp_path / "runs")
    real_run_many = distributed.run_many
    calls = {"count": 0}

    def dies_after_one_point(*args, **kwargs):
        if calls["count"] >= 1:
            raise KeyboardInterrupt("simulated kill")
        calls["count"] += 1
        return real_run_many(*args, **kwargs)

    monkeypatch.setattr(distributed, "run_many", dies_after_one_point)
    with pytest.raises(KeyboardInterrupt):
        main(["run", "e1", *E1_ARGS, "--shard", "1/1", "--out", out_dir])
    monkeypatch.setattr(distributed, "run_many", real_run_many)
    capsys.readouterr()

    code, out, _ = run_cli(capsys, "status", out_dir)
    assert code == 0
    assert "1/4" in out  # 1 of the plan's 4 points done, not "1/1"
    code, _, err = run_cli(capsys, "merge", out_dir)
    assert code == 2 and "resume it by re-running" in err


def test_merge_summary_without_report_flag(tmp_path, capsys):
    out_dir = str(tmp_path / "runs")
    run_cli(capsys, "run", "e1", *E1_ARGS, "--out", out_dir)  # --out alone = shard 1/1
    code, out, _ = run_cli(capsys, "merge", out_dir)
    assert code == 0
    assert "figure1-right/hybrid-local-coin" in out
    assert "termination_rate" in out


E9_ARGS = ["--seeds", "2", "--max-workers", "1", "--scenario", "lossy-links"]


def test_run_e9_with_scenario_restriction(capsys):
    from repro.experiments import e9_adversary

    code, out, _ = run_cli(capsys, "run", "e9", *E9_ARGS)
    assert code == 0
    direct = e9_adversary.run(
        seeds=default_seeds(2), scenarios=("lossy-links",), max_workers=1
    )
    assert out.strip() == direct.format().strip()


def test_scenario_restricted_e9_shards_and_merges(tmp_path, capsys):
    out_dir = str(tmp_path / "runs")
    for shard in ("2/2", "1/2"):
        code, _, _ = run_cli(capsys, "run", "e9", *E9_ARGS, "--shard", shard, "--out", out_dir)
        assert code == 0
    code, merged_out, _ = run_cli(capsys, "merge", out_dir, "--report")
    assert code == 0
    code, direct_out, _ = run_cli(capsys, "run", "e9", *E9_ARGS)
    assert code == 0
    assert merged_out == direct_out


def test_scenario_on_non_e9_experiment_is_an_error(capsys):
    code, _, err = run_cli(capsys, "run", "e1", "--scenario", "lossy-links")
    assert code == 2
    assert "does not take --scenario" in err


def test_unknown_scenario_is_an_error(capsys):
    code, _, err = run_cli(capsys, "run", "e9", "--scenario", "no-such-fault")
    assert code == 2
    assert "unknown scenario" in err and "lossy-links" in err


def test_shard_without_out_is_an_error(capsys):
    code, _, err = run_cli(capsys, "run", "e1", "--shard", "1/2")
    assert code == 2
    assert "error:" in err and "--out" in err


def test_unknown_experiment_is_an_error(capsys):
    code, _, err = run_cli(capsys, "run", "e99")
    assert code == 2
    assert "unknown experiment" in err


def test_bad_shard_spec_is_an_error(capsys, tmp_path):
    code, _, err = run_cli(capsys, "run", "e1", "--shard", "4/2", "--out", str(tmp_path))
    assert code == 2
    assert "shard index" in err


def test_merge_of_empty_directory_is_an_error(capsys, tmp_path):
    code, _, err = run_cli(capsys, "merge", str(tmp_path))
    assert code == 2
    assert "no shard manifests" in err


def test_mismatched_shard_seeds_are_rejected_at_merge(tmp_path, capsys):
    out_dir = str(tmp_path / "runs")
    code, _, _ = run_cli(capsys, "run", "e1", "--seeds", "2", "--max-workers", "1",
                         "--shard", "1/2", "--out", out_dir)
    assert code == 0
    code, _, err = run_cli(capsys, "run", "e1", "--seeds", "3", "--max-workers", "1",
                           "--shard", "2/2", "--out", out_dir)
    assert code == 2
    assert "different plan" in err


STEAL_ARGS = ["--seeds", "2", "--max-workers", "1", "--steal"]


def test_steal_merge_report_equals_unsharded_run(tmp_path, capsys):
    out_dir = str(tmp_path / "runs")
    for worker in ("a", "b"):
        code, _, _ = run_cli(
            capsys, "run", "e1", *STEAL_ARGS, "--worker", worker,
            "--max-points", "2", "--out", out_dir,
        )
        assert code == 0
    code, merged_out, _ = run_cli(capsys, "merge", out_dir, "--report")
    assert code == 0
    code, direct_out, _ = run_cli(capsys, "run", "e1", *E1_ARGS)
    assert code == 0
    assert merged_out == direct_out


def test_steal_status_shows_lease_counts(tmp_path, capsys):
    out_dir = str(tmp_path / "runs")
    code, _, _ = run_cli(
        capsys, "run", "e1", *STEAL_ARGS, "--worker", "w1",
        "--max-points", "1", "--out", out_dir,
    )
    assert code == 0
    code, out, _ = run_cli(capsys, "status", out_dir)
    assert code == 0
    assert "1/4 points done" in out
    for word in ("stolen", "leased", "orphaned", "unclaimed"):
        assert word in out
    assert "w1" in out  # the per-worker table


def test_steal_worker_reports_already_done_points(tmp_path, capsys):
    out_dir = str(tmp_path / "runs")
    run_cli(capsys, "run", "e1", *STEAL_ARGS, "--worker", "w1", "--out", out_dir)
    code, out, _ = run_cli(
        capsys, "run", "e1", *STEAL_ARGS, "--worker", "w2", "--out", out_dir
    )
    assert code == 0
    assert "0 points computed" in out and "4 already done" in out


def test_steal_merge_of_incomplete_run_is_an_error(tmp_path, capsys):
    out_dir = str(tmp_path / "runs")
    run_cli(
        capsys, "run", "e1", *STEAL_ARGS, "--worker", "w1",
        "--max-points", "1", "--out", out_dir,
    )
    code, _, err = run_cli(capsys, "merge", out_dir)
    assert code == 2
    assert "incomplete" in err and "unclaimed" in err


def test_steal_e9_scenario_merge_equals_direct_run(tmp_path, capsys):
    out_dir = str(tmp_path / "runs")
    code, _, _ = run_cli(
        capsys, "run", "e9", *E9_ARGS, "--steal", "--worker", "w1", "--out", out_dir
    )
    assert code == 0
    code, merged_out, _ = run_cli(capsys, "merge", out_dir, "--report")
    assert code == 0
    code, direct_out, _ = run_cli(capsys, "run", "e9", *E9_ARGS)
    assert code == 0
    assert merged_out == direct_out


def test_steal_with_shard_is_an_error(capsys, tmp_path):
    code, _, err = run_cli(
        capsys, "run", "e1", "--steal", "--shard", "1/2", "--out", str(tmp_path)
    )
    assert code == 2
    assert "mutually exclusive" in err


def test_steal_without_out_is_an_error(capsys):
    code, _, err = run_cli(capsys, "run", "e1", "--steal")
    assert code == 2
    assert "--out" in err


def test_steal_flags_without_steal_are_an_error(capsys, tmp_path):
    code, _, err = run_cli(
        capsys, "run", "e1", "--worker", "w1", "--out", str(tmp_path)
    )
    assert code == 2
    assert "only apply with --steal" in err


def test_steal_directory_refuses_static_shards(tmp_path, capsys):
    out_dir = str(tmp_path / "runs")
    run_cli(capsys, "run", "e1", *E1_ARGS, "--shard", "1/2", "--out", out_dir)
    code, _, err = run_cli(capsys, "run", "e1", *STEAL_ARGS, "--out", out_dir)
    assert code == 2
    assert "static" in err


def test_python_dash_m_entry_point():
    """`python -m repro` resolves through __main__.py in a real subprocess."""
    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    src = str(repo_root / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "list"],
        capture_output=True, text=True, env=env, cwd=str(repo_root), timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    assert "e8" in completed.stdout


# ------------------------------------------------------------- schedule search
def test_search_replay_of_safe_token_is_clean(capsys):
    code, out, _ = run_cli(capsys, "search", "--replay", "v1/ben-or/n4/s11/one-dissenter/3")
    assert code == 0
    assert "ran clean" in out


def test_search_replay_reproduces_the_planted_violation(capsys):
    token = "v1/planted-ben-or/n4/s11/one-dissenter/3"
    code, out, _ = run_cli(capsys, "search", "--replay", token)
    assert code == 1
    assert "VIOLATION reproduced" in out
    assert "agreement" in out


def test_search_finds_the_planted_bug_and_prints_its_token(capsys):
    code, out, _ = run_cli(
        capsys, "search", "--algorithm", "planted-ben-or", "--budget", "50", "--seed", "11"
    )
    assert code == 1
    assert "replay token: v1/planted-ben-or/n4/s11/one-dissenter/" in out
    assert "--replay" in out  # the reproduce hint


def test_search_on_a_real_algorithm_is_clean(capsys):
    code, out, _ = run_cli(capsys, "search", "--algorithm", "ben-or", "--budget", "10")
    assert code == 0
    assert "no violation" in out


def test_search_malformed_replay_token_is_an_error(capsys):
    code, _, err = run_cli(capsys, "search", "--replay", "not-a-token")
    assert code == 2
    assert "malformed replay token" in err


def test_search_unknown_algorithm_is_an_error(capsys):
    code, _, err = run_cli(capsys, "search", "--algorithm", "raft")
    assert code == 2
    assert "unknown algorithm" in err


def test_search_bad_budget_is_an_error(capsys):
    code, _, err = run_cli(capsys, "search", "--algorithm", "ben-or", "--budget", "0")
    assert code == 2
    assert "budget" in err
