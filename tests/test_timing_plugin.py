"""The ``timing``/``random_failure`` marker plugin: rerun semantics, strict mode.

Uses pytest's ``pytester`` fixture to run a miniature suite in-process: a
flaky test that fails on its first call and passes on the second must end
up green under the plugin, stay red with ``REPRO_BENCH_STRICT=1``, and an
unmarked flaky test must stay red regardless.  ``random_failure(max_runs=N)``
generalises the rerun budget to ``N`` attempts, passing as soon as one
attempt passes.
"""

import pytest

pytest_plugins = ["pytester"]

FLAKY_SUITE = """
    import pytest

    COUNTS = {"marked": 0, "plain": 0}

    @pytest.mark.timing
    def test_flaky_marked():
        COUNTS["marked"] += 1
        assert COUNTS["marked"] >= 2, "first attempt always fails"

    def test_flaky_plain():
        COUNTS["plain"] += 1
        assert COUNTS["plain"] >= 2, "first attempt always fails"

    @pytest.mark.timing
    def test_steady():
        assert True
"""


@pytest.fixture
def timing_pytester(pytester, monkeypatch):
    """A pytester session with the plugin active and strict mode unset."""
    monkeypatch.delenv("REPRO_BENCH_STRICT", raising=False)
    pytester.makepyfile(FLAKY_SUITE)
    return pytester


def test_marked_test_gets_one_rerun(timing_pytester):
    result = timing_pytester.runpytest("-p", "repro.harness.pytest_timing", "-q")
    # The marked flaky test recovers on its retry; the unmarked one does not.
    result.assert_outcomes(passed=2, failed=1)


def test_strict_mode_disables_reruns(timing_pytester, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_STRICT", "1")
    result = timing_pytester.runpytest("-p", "repro.harness.pytest_timing", "-q")
    result.assert_outcomes(passed=1, failed=2)


def test_strict_mode_zero_means_off(timing_pytester, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_STRICT", "0")
    result = timing_pytester.runpytest("-p", "repro.harness.pytest_timing", "-q")
    result.assert_outcomes(passed=2, failed=1)


def test_marker_is_registered(timing_pytester):
    result = timing_pytester.runpytest("-p", "repro.harness.pytest_timing", "--markers")
    result.stdout.fnmatch_lines(["*timing: wall-clock-gated test*"])


RANDOM_SUITE = """
    import pytest

    COUNTS = {"third": 0, "exhausted": 0, "first": 0}

    @pytest.mark.random_failure(max_runs=3)
    def test_passes_on_third_attempt():
        COUNTS["third"] += 1
        assert COUNTS["third"] >= 3, "needs exactly three attempts"

    @pytest.mark.random_failure(max_runs=2)
    def test_budget_exhausted():
        COUNTS["exhausted"] += 1
        assert COUNTS["exhausted"] >= 3, "needs more attempts than the budget"

    @pytest.mark.random_failure
    def test_default_budget_first_try():
        COUNTS["first"] += 1
        assert COUNTS["first"] == 1, "passes immediately, no rerun consumed"
"""


@pytest.fixture
def random_pytester(pytester, monkeypatch):
    """A pytester session around the ``random_failure`` suite."""
    monkeypatch.delenv("REPRO_BENCH_STRICT", raising=False)
    pytester.makepyfile(RANDOM_SUITE)
    return pytester


def test_random_failure_reruns_within_budget(random_pytester):
    result = random_pytester.runpytest("-p", "repro.harness.pytest_timing", "-q")
    # max_runs=3 recovers on the third attempt; max_runs=2 exhausts its
    # budget and stays red; the immediately-green test burns no reruns.
    result.assert_outcomes(passed=2, failed=1)


def test_random_failure_strict_mode_first_try_truth(random_pytester, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_STRICT", "1")
    result = random_pytester.runpytest("-p", "repro.harness.pytest_timing", "-q")
    result.assert_outcomes(passed=1, failed=2)


def test_random_failure_marker_is_registered(random_pytester):
    result = random_pytester.runpytest("-p", "repro.harness.pytest_timing", "--markers")
    result.stdout.fnmatch_lines(["*random_failure(max_runs=N): inherently probabilistic test*"])


def test_random_failure_positional_budget(pytester, monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_STRICT", raising=False)
    pytester.makepyfile(
        """
        import pytest

        COUNTS = {"calls": 0}

        @pytest.mark.random_failure(4)
        def test_positional():
            COUNTS["calls"] += 1
            assert COUNTS["calls"] >= 4
        """
    )
    result = pytester.runpytest("-p", "repro.harness.pytest_timing", "-q")
    result.assert_outcomes(passed=1)


# The shape the benchmarks/ files use after the flaky-timing audit: a
# wall-clock-gated speedup assert under random_failure(max_runs=3).  The
# policy being proven: reruns absorb scheduler noise in plain runs, while
# `make bench` (REPRO_BENCH_STRICT=1) still measures first-try truth, so
# the marker can never mask a real perf regression in the strict lane.
BENCH_GATE_SUITE = """
    import pytest

    ATTEMPTS = {"speedup": 0}

    def measured_speedup():
        # A stand-in for timed(serial) / timed(parallel): noisy on the
        # first two "runs" of the box, honest afterwards.
        ATTEMPTS["speedup"] += 1
        return 1.2 if ATTEMPTS["speedup"] < 3 else 2.4

    @pytest.mark.random_failure(max_runs=3)
    def test_bench_style_speedup_gate():
        assert measured_speedup() >= 2.0
"""


def test_benchmark_gate_pattern_reruns_in_plain_mode(pytester, monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_STRICT", raising=False)
    pytester.makepyfile(BENCH_GATE_SUITE)
    result = pytester.runpytest("-p", "repro.harness.pytest_timing", "-q")
    result.assert_outcomes(passed=1)


def test_benchmark_gate_pattern_strict_mode_disables_reruns(pytester, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_STRICT", "1")
    pytester.makepyfile(BENCH_GATE_SUITE)
    result = pytester.runpytest("-p", "repro.harness.pytest_timing", "-q")
    result.assert_outcomes(failed=1)


def test_random_failure_invalid_budget_errors(pytester, monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_STRICT", raising=False)
    pytester.makepyfile(
        """
        import pytest

        @pytest.mark.random_failure(max_runs=0)
        def test_bad_budget():
            assert True
        """
    )
    result = pytester.runpytest("-p", "repro.harness.pytest_timing", "-q")
    assert result.ret != 0
    result.stdout.fnmatch_lines(["*must be a positive int*"])
