"""The ``timing`` marker plugin: rerun-once semantics and strict mode.

Uses pytest's ``pytester`` fixture to run a miniature suite in-process: a
flaky test that fails on its first call and passes on the second must end
up green under the plugin, stay red with ``REPRO_BENCH_STRICT=1``, and an
unmarked flaky test must stay red regardless.
"""

import pytest

pytest_plugins = ["pytester"]

FLAKY_SUITE = """
    import pytest

    COUNTS = {"marked": 0, "plain": 0}

    @pytest.mark.timing
    def test_flaky_marked():
        COUNTS["marked"] += 1
        assert COUNTS["marked"] >= 2, "first attempt always fails"

    def test_flaky_plain():
        COUNTS["plain"] += 1
        assert COUNTS["plain"] >= 2, "first attempt always fails"

    @pytest.mark.timing
    def test_steady():
        assert True
"""


@pytest.fixture
def timing_pytester(pytester, monkeypatch):
    """A pytester session with the plugin active and strict mode unset."""
    monkeypatch.delenv("REPRO_BENCH_STRICT", raising=False)
    pytester.makepyfile(FLAKY_SUITE)
    return pytester


def test_marked_test_gets_one_rerun(timing_pytester):
    result = timing_pytester.runpytest("-p", "repro.harness.pytest_timing", "-q")
    # The marked flaky test recovers on its retry; the unmarked one does not.
    result.assert_outcomes(passed=2, failed=1)


def test_strict_mode_disables_reruns(timing_pytester, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_STRICT", "1")
    result = timing_pytester.runpytest("-p", "repro.harness.pytest_timing", "-q")
    result.assert_outcomes(passed=1, failed=2)


def test_strict_mode_zero_means_off(timing_pytester, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_STRICT", "0")
    result = timing_pytester.runpytest("-p", "repro.harness.pytest_timing", "-q")
    result.assert_outcomes(passed=2, failed=1)


def test_marker_is_registered(timing_pytester):
    result = timing_pytester.runpytest("-p", "repro.harness.pytest_timing", "--markers")
    result.stdout.fnmatch_lines(["*timing: wall-clock-gated test*"])
