"""The schedule-space search: stateful exploration, tokens, the corpus.

Three kinds of evidence that the harness hunts real bugs and only real
bugs:

* a hypothesis :class:`~hypothesis.stateful.RuleBasedStateMachine` drives
  dispatch-order choices step by step (n in {4, 7}) and re-verifies
  agreement and validity after *every* step -- the real algorithms must
  survive arbitrary tie-breaking;
* the bounded DFS finds the planted agreement bug in
  ``planted-ben-or`` within a small budget and the returned replay token
  deterministically reproduces the violation, while the same search over
  the real algorithms comes back empty;
* every token committed under ``tests/schedules/`` is replayed against its
  recorded expectation, so a found schedule, once committed, stays a
  regression test forever.
"""

import json
from pathlib import Path

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, rule

from repro.harness.runner import ALGORITHMS
from repro.search import (
    ReplayController,
    SearchSpec,
    format_token,
    parse_token,
    replay_token,
    run_schedule,
    search,
    search_all,
)
from repro.search.explorer import PLANTED_ALGORITHMS

SCHEDULE_DIR = Path(__file__).parent / "schedules"

#: The committed regression token for the planted bug (see the corpus).
PLANTED_TOKEN = "v1/planted-ben-or/n4/s11/one-dissenter/3"


# ------------------------------------------------------------ stateful search
class _ScheduleMachine(RuleBasedStateMachine):
    """Extend a choice prefix one dispatch decision at a time.

    Each step appends one tie-break index and re-executes the whole
    schedule from scratch (executions are cheap and fully deterministic),
    asserting the safety half of the consensus contract -- agreement and
    validity -- on every intermediate schedule, not just the final one.
    """

    n = 4

    def __init__(self):
        super().__init__()
        self.prefix = ()
        self.spec = SearchSpec(algorithm="ben-or", n=self.n, seed=0)

    @rule(choice=st.integers(min_value=0, max_value=3))
    def extend_and_verify(self, choice):
        self.prefix = self.prefix + (choice,)
        result = run_schedule(self.spec, self.prefix)
        assert result.violation is None, result.violation
        assert len(set(result.decisions.values())) <= 1  # agreement
        assert set(result.decisions.values()) <= {0, 1}  # validity (binary)


class _ScheduleMachine4(_ScheduleMachine):
    n = 4


class _ScheduleMachine7(_ScheduleMachine):
    n = 7


_ScheduleMachine4.TestCase.settings = settings(
    max_examples=8, stateful_step_count=6, deadline=None, derandomize=True
)
_ScheduleMachine7.TestCase.settings = settings(
    max_examples=5, stateful_step_count=5, deadline=None, derandomize=True
)

TestScheduleSpaceN4 = _ScheduleMachine4.TestCase
TestScheduleSpaceN7 = _ScheduleMachine7.TestCase


# ----------------------------------------------------------- replay controller
def _entries(count, time=1.0):
    return [(time, sequence, 2, 0, None) for sequence in range(count)]


def test_replay_controller_replays_prefix_then_defaults_to_sequence_order():
    controller = ReplayController([2, 1])
    assert controller.choose(0.0, 1.0, _entries(3)) == 2
    assert controller.choose(0.0, 1.0, _entries(3)) == 1
    assert controller.choose(0.0, 1.0, _entries(3)) == 0  # beyond the prefix
    assert controller.trail == [2, 1, 0]
    assert controller.fanouts == [3, 3, 3]


def test_replay_controller_clamps_out_of_range_choices():
    controller = ReplayController([7])
    assert controller.choose(0.0, 1.0, _entries(2)) == 1  # clamped to last tie
    assert controller.trail == [1]


def test_empty_prefix_reproduces_the_uncontrolled_execution():
    free = run_schedule(SearchSpec())
    controlled = run_schedule(SearchSpec(), ())
    assert free.decisions == controlled.decisions
    assert free.trail == controlled.trail


# -------------------------------------------------------------------- the spec
def test_spec_validation():
    with pytest.raises(ValueError, match="unknown algorithm"):
        SearchSpec(algorithm="raft")
    with pytest.raises(ValueError, match="at least 2"):
        SearchSpec(n=1)
    with pytest.raises(ValueError, match="token-safe"):
        SearchSpec(proposals="a/b")


def test_spec_cluster_defaults():
    assert SearchSpec(algorithm="shared-memory").clusters == 1
    assert SearchSpec(algorithm="ben-or", n=4).clusters == 2
    assert SearchSpec(algorithm="ben-or", n=4, m=4).clusters == 4


# ---------------------------------------------------------------- token format
@st.composite
def _specs(draw):
    return SearchSpec(
        algorithm=draw(st.sampled_from(ALGORITHMS + PLANTED_ALGORITHMS)),
        n=draw(st.integers(min_value=2, max_value=16)),
        seed=draw(st.integers(min_value=0, max_value=10**6)),
    )


@pytest.mark.parametrize("choices", [(), (0,), (3, 1, 0, 2)])
def test_token_round_trip(choices):
    spec = SearchSpec(algorithm="planted-ben-or", n=4, seed=11)
    token = format_token(spec, choices)
    parsed_spec, parsed_choices = parse_token(token)
    assert parsed_spec == spec
    assert parsed_choices == tuple(choices)


def test_token_round_trip_property():
    from hypothesis import given

    @given(
        spec=_specs(),
        choices=st.lists(st.integers(min_value=0, max_value=9), max_size=8),
    )
    @settings(max_examples=40, deadline=None)
    def inner(spec, choices):
        parsed_spec, parsed_choices = parse_token(format_token(spec, choices))
        assert parsed_spec == spec and parsed_choices == tuple(choices)

    inner()


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "v0/ben-or/n4/s0/split/-",
        "v1/ben-or/n4/s0/-",
        "v1/ben-or/x4/s0/split/-",
        "v1/ben-or/n4/s0/split/1.x.2",
        "v1/ben-or/n4/s0/split/-1",
        "v1/no-such-algorithm/n4/s0/split/-",
    ],
)
def test_malformed_tokens_are_refused(bad):
    with pytest.raises(ValueError):
        parse_token(bad)


# ------------------------------------------------------------- the bounded DFS
def test_search_validates_its_bounds():
    spec = SearchSpec()
    with pytest.raises(ValueError, match="budget"):
        search(spec, budget=0)
    with pytest.raises(ValueError, match="fanout_cap"):
        search(spec, fanout_cap=1)
    with pytest.raises(ValueError, match="max_decisions"):
        search(spec, max_decisions=0)


def test_search_finds_and_replays_the_planted_violation():
    outcome = search(SearchSpec(algorithm="planted-ben-or", seed=11), budget=50)
    assert outcome.found
    assert outcome.token == PLANTED_TOKEN
    assert "agreement" in outcome.violation
    # The token alone deterministically reproduces the disagreement.
    replayed = replay_token(outcome.token)
    assert replayed.violation is not None
    assert len(set(replayed.decisions.values())) == 2


def test_search_respects_its_run_budget():
    outcome = search(SearchSpec(algorithm="ben-or"), budget=1)
    assert outcome.runs == 1
    assert not outcome.found


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_real_algorithms_survive_the_search_budget(algorithm):
    outcome = search(SearchSpec(algorithm=algorithm), budget=60)
    assert not outcome.found, outcome.token


@pytest.mark.random_failure(max_runs=3)
def test_search_all_hunts_within_a_wall_budget():
    """Budget smoke: the planted bug must fall inside a tight wall budget.

    Wall-clock bounded, so a loaded box can genuinely starve the search --
    exactly the case the random_failure rerun budget exists for.
    """
    outcomes = search_all(
        ["ben-or", "planted-ben-or"], budget=50, seed=11, wall_budget=30.0
    )
    by_algorithm = {outcome.spec.algorithm: outcome for outcome in outcomes}
    assert not by_algorithm["ben-or"].found
    assert by_algorithm["planted-ben-or"].found


# ----------------------------------------------------------------- the corpus
def _corpus():
    return sorted(SCHEDULE_DIR.glob("*.json"))


def test_corpus_exists_and_contains_the_planted_regression():
    tokens = [json.loads(path.read_text())["token"] for path in _corpus()]
    assert PLANTED_TOKEN in tokens


@pytest.mark.parametrize("path", _corpus(), ids=lambda path: path.stem)
def test_committed_schedules_replay_to_their_recorded_expectation(path):
    entry = json.loads(path.read_text())
    result = replay_token(entry["token"])
    if entry["expect"] == "violation":
        assert result.violation is not None, f"{entry['token']} no longer violates"
    else:
        assert entry["expect"] == "safe", f"unknown expectation {entry['expect']!r}"
        assert result.violation is None, result.violation
