"""Tests of the parallel execution engine (`repro.harness.parallel`)."""

import pytest

from repro.cluster.topology import ClusterTopology
from repro.harness.aggregate import RunAggregate, SummaryReducer
from repro.harness.parallel import (
    default_chunksize,
    default_workers,
    resolve_workers,
    run_many,
    worker_pool,
)
from repro.harness.runner import ExperimentConfig
from repro.harness.stats import summarize
from repro.harness.sweep import grid, repeat, sweep
from repro.network.delays import ConstantDelay


def _base_config(algorithm="hybrid-local-coin"):
    return ExperimentConfig(
        topology=ClusterTopology.even_split(6, 3), algorithm=algorithm, proposals="split"
    )


def _comparable(result):
    """Everything observable about a run except wall-clock time."""
    metrics = result.metrics.as_dict()
    metrics.pop("wall_time_seconds")
    return (
        metrics,
        result.sim_result.decisions,
        result.sim_result.decision_times,
        result.sim_result.rounds,
        result.proposals,
        result.report.ok,
    )


# -------------------------------------------------------------- worker resolution
def test_resolve_workers_clamps_to_task_count():
    assert resolve_workers(8, 3) == 3
    assert resolve_workers(2, 10) == 2
    assert resolve_workers(None, 0) == 1
    with pytest.raises(ValueError):
        resolve_workers(0, 5)


def test_default_workers_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_MAX_WORKERS", "3")
    assert default_workers() == 3
    assert resolve_workers(None, 10) == 3
    monkeypatch.setenv("REPRO_MAX_WORKERS", "not-a-number")
    assert default_workers() >= 1


def test_default_chunksize_heuristic():
    assert default_chunksize(0, 4) == 1
    assert default_chunksize(1, 4) == 1
    assert default_chunksize(16, 4) == 1
    assert default_chunksize(160, 4) == 10
    assert default_chunksize(10_000, 4) == 64  # capped so chunks stay balanced
    assert default_chunksize(8) >= 1  # workers default to available_cpus()


# ------------------------------------------------------------------ determinism
def test_run_many_serial_is_seed_ordered():
    config = _base_config()
    seeds = [5, 1, 9]
    results = run_many([config.with_seed(seed) for seed in seeds], max_workers=1, check=True)
    assert [result.config.seed for result in results] == seeds


def test_run_many_parallel_matches_serial_exactly():
    config = _base_config()
    configs = [config.with_seed(seed) for seed in range(6)]
    serial = run_many(configs, max_workers=1, check=True)
    parallel = run_many(configs, max_workers=3, check=True)
    assert [result.config.seed for result in parallel] == list(range(6))
    for left, right in zip(serial, parallel):
        assert _comparable(left) == _comparable(right)


def test_repeat_parallel_matches_serial_for_every_algorithm():
    for algorithm in ("hybrid-common-coin", "ben-or"):
        config = _base_config(algorithm)
        serial = repeat(config, seeds=[0, 1, 2], check=True, max_workers=1, full_results=True)
        parallel = repeat(config, seeds=[0, 1, 2], check=True, max_workers=2, full_results=True)
        assert [_comparable(result) for result in serial] == [
            _comparable(result) for result in parallel
        ]


def test_repeat_summary_mode_is_deterministic_across_scheduling():
    """Regression: serial == parallel == chunked, bit for bit.

    Sketch priorities are spawned from the run index (never the worker), so
    the aggregate a sweep produces must not depend on the worker count or on
    how the batch was chunked for submission.
    """
    config = _base_config()
    seeds = list(range(8))
    serial = repeat(config, seeds, check=True, max_workers=1)
    parallel = repeat(config, seeds, check=True, max_workers=3)
    chunked_summaries = run_many(
        [config.with_seed(seed) for seed in seeds],
        max_workers=2,
        check=True,
        reducer=SummaryReducer(),
        chunksize=4,
    )
    chunked = RunAggregate.from_summaries(chunked_summaries)
    assert serial == parallel == chunked
    assert len(serial) == len(seeds)
    assert serial.termination_rate() == 1.0


def test_summary_and_full_modes_agree_exactly_below_sketch_capacity():
    config = _base_config()
    seeds = list(range(6))
    aggregate = repeat(config, seeds, check=True, max_workers=2)
    results = repeat(config, seeds, check=True, max_workers=2, full_results=True)
    for metric in ("messages_sent", "rounds_max", "sm_ops", "decision_time_max"):
        values = [getattr(result.metrics, metric) for result in results]
        exact = summarize(values)
        sketched = aggregate.summary(metric)
        assert sketched.count == exact.count
        assert sketched.mean == pytest.approx(exact.mean, rel=1e-12)
        assert sketched.minimum == exact.minimum and sketched.maximum == exact.maximum
        # below capacity the sketch holds the entire sample: exact percentiles
        assert sketched.median == exact.median
        assert sketched.p90 == exact.p90


def test_sweep_and_grid_parallel_match_serial():
    base = _base_config()
    variations = {
        "local": {"algorithm": "hybrid-local-coin"},
        "common": {"algorithm": "hybrid-common-coin"},
    }
    serial = sweep(base, variations, seeds=[0, 1], max_workers=1, full_results=True)
    parallel = sweep(base, variations, seeds=[0, 1], max_workers=2, full_results=True)
    assert serial.labels() == parallel.labels() == ["local", "common"]
    for label in serial.labels():
        left = [_comparable(result) for result in serial.point(label).results]
        right = [_comparable(result) for result in parallel.point(label).results]
        assert left == right

    axes = {"algorithm": ["hybrid-local-coin", "hybrid-common-coin"]}
    serial_grid = grid(base, axes, seeds=[3, 4], max_workers=1)
    parallel_grid = grid(base, axes, seeds=[3, 4], max_workers=2)
    assert serial_grid.labels() == parallel_grid.labels()
    assert serial_grid.table(["rounds_max", "messages_sent"]) == parallel_grid.table(
        ["rounds_max", "messages_sent"]
    )


def test_sweep_summary_mode_matches_full_mode_aggregates():
    base = _base_config()
    variations = {
        "local": {"algorithm": "hybrid-local-coin"},
        "common": {"algorithm": "hybrid-common-coin"},
    }
    summary_mode = sweep(base, variations, seeds=[0, 1, 2], max_workers=2)
    full_mode = sweep(base, variations, seeds=[0, 1, 2], max_workers=1, full_results=True)
    for label in summary_mode.labels():
        assert summary_mode.point(label).aggregate == full_mode.point(label).aggregate
        assert summary_mode.point(label).results is None
        assert len(full_mode.point(label).results) == 3
        with pytest.raises(ValueError, match="summary mode"):
            summary_mode.point(label).metrics


def test_summary_mode_check_raises_in_worker():
    from repro.core.properties import ConsensusViolation
    from repro.sim.kernel import SimConfig

    # Failure-free Ben-Or is expected to terminate, but split proposals can
    # never produce a round-1 majority, so a one-round cap guarantees a
    # liveness violation.  check=True in summary mode must surface it from
    # inside the worker -- without ever shipping the full result back.
    config = ExperimentConfig(
        topology=ClusterTopology.even_split(6, 3),
        algorithm="ben-or",
        proposals="split",
        sim=SimConfig(max_rounds=1, max_time=5e4),
    )
    with pytest.raises(ConsensusViolation):
        repeat(config, seeds=[0, 1], check=True, max_workers=2)
    aggregate = repeat(config, seeds=[0, 1], check=False, max_workers=2)
    assert aggregate.safety_rate() == 1.0
    assert aggregate.termination_rate() == 0.0


# -------------------------------------------------------------------- fallbacks
def test_run_many_falls_back_for_non_picklable_configs():
    class LocalDelay(ConstantDelay):
        """Defined inside the test function, so workers cannot unpickle it."""

    config = ExperimentConfig(
        topology=ClusterTopology.even_split(4, 2),
        algorithm="hybrid-local-coin",
        proposals="split",
        delay_model=LocalDelay(1.0),
    )
    with pytest.warns(RuntimeWarning, match="fell back to the serial path"):
        results = run_many(
            [config.with_seed(seed) for seed in (0, 1)], max_workers=2, check=True
        )
    assert len(results) == 2
    assert all(result.terminated for result in results)


def test_fallback_only_for_pickling_and_transport_errors():
    import pickle

    from repro.harness.parallel import _should_fall_back

    assert _should_fall_back(pickle.PicklingError("boom"))
    assert _should_fall_back(TypeError("cannot pickle '_thread.lock' object"))
    assert _should_fall_back(AttributeError("Can't pickle local object 'f.<locals>.C'"))
    assert not _should_fall_back(TypeError("unsupported operand type(s) for +"))
    assert not _should_fall_back(AttributeError("'NoneType' object has no attribute 'x'"))
    assert not _should_fall_back(FileNotFoundError("missing.json"))


def test_worker_pool_shares_one_executor_and_matches_serial(monkeypatch):
    import repro.harness.parallel as parallel_mod

    created = []
    real_pool = parallel_mod.ProcessPoolExecutor

    class CountingPool(real_pool):
        def __init__(self, *args, **kwargs):
            created.append(self)
            super().__init__(*args, **kwargs)

    monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", CountingPool)
    configs = [_base_config().with_seed(seed) for seed in (0, 1)]
    serial = [_comparable(result) for result in run_many(configs, max_workers=1)]
    with worker_pool(2):
        first = run_many(configs)
        second = run_many(configs)
    assert len(created) == 1, "both run_many calls should reuse the context's pool"
    assert [_comparable(result) for result in first] == serial
    assert [_comparable(result) for result in second] == serial


def test_worker_pool_is_a_noop_for_one_worker():
    with worker_pool(1):
        (result,) = run_many([_base_config().with_seed(3)])
    assert result.terminated


def test_worker_pool_rejects_invalid_worker_counts():
    for bad in (0, -2):
        with pytest.raises(ValueError):
            with worker_pool(bad):
                pass


def test_run_many_empty_and_single_config():
    assert run_many([], max_workers=4) == []
    config = _base_config().with_seed(7)
    (result,) = run_many([config], max_workers=4, check=True)
    assert result.config.seed == 7 and result.terminated
