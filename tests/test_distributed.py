"""Sharded sweep subsystem: bit-identity, resume, and artifact validation.

The headline guarantee under test: executing a plan as k shards (any k, any
order, any host count) and merging the artifacts yields aggregates
*bit-identical* to the single-host sweep -- every float, every sketch entry.
Plus the failure modes: interrupted shards resume from their checkpoints,
and malformed / mismatched / incomplete artifacts fail with clear errors.
"""

import json
import pickle

import pytest

from repro.cluster.topology import ClusterTopology
from repro.experiments import e1_figure1
from repro.experiments.common import default_seeds
from repro.harness import distributed
from repro.harness.aggregate import SummaryReducer, run_priority
from repro.harness.distributed import (
    MANIFEST_VERSION,
    ManifestError,
    PlanPoint,
    ShardError,
    ShardSpec,
    SweepPlan,
    checkpoint_path,
    manifest_path,
    merge_shards,
    plan_grid,
    plan_repeat,
    plan_sweep,
    run_plan,
    run_shard,
)
from repro.harness.runner import ExperimentConfig, run_consensus
from repro.harness.sweep import grid, repeat, sweep

SEEDS = default_seeds(5)
BASE = ExperimentConfig(topology=ClusterTopology.figure1_right())
VARIATIONS = {
    "local": {"algorithm": "hybrid-local-coin"},
    "common": {"algorithm": "hybrid-common-coin"},
}


def shard_and_merge(plan, out_dir, shard_count, max_workers=1):
    """Run every shard of ``plan`` into ``out_dir`` and merge them."""
    for index in range(1, shard_count + 1):
        run_shard(plan, ShardSpec(index, shard_count), out_dir, max_workers=max_workers)
    return merge_shards(out_dir, plan)


# ------------------------------------------------------------------ specs
class TestShardSpec:
    def test_parse(self):
        assert ShardSpec.parse("2/4") == ShardSpec(2, 4)
        assert ShardSpec.parse(" 1 / 1 ") == ShardSpec(1, 1)

    @pytest.mark.parametrize("text", ["", "2", "0/4", "5/4", "a/b", "2/0", "-1/4", "1/4/2"])
    def test_parse_rejects(self, text):
        with pytest.raises(ShardError):
            ShardSpec.parse(text)

    def test_round_robin_partition(self):
        spec_owns = [
            [position for position in range(17) if ShardSpec(index, 3).owns(position)]
            for index in (1, 2, 3)
        ]
        flat = sorted(position for owned in spec_owns for position in owned)
        assert flat == list(range(17))


class TestPlanValidation:
    def test_duplicate_labels_rejected(self):
        point = PlanPoint(label="p", config=BASE)
        with pytest.raises(ShardError, match="unique"):
            SweepPlan(key="k", seeds=[1], points=[point, point])

    def test_empty_seeds_rejected(self):
        with pytest.raises(ShardError, match="seed"):
            SweepPlan(key="k", seeds=[], points=[PlanPoint(label="p", config=BASE)])

    def test_unknown_indexing_rejected(self):
        with pytest.raises(ShardError, match="indexing"):
            SweepPlan(
                key="k", seeds=[1], points=[PlanPoint(label="p", config=BASE)], indexing="zig"
            )

    def test_fingerprint_pins_configuration(self):
        plan_a = plan_sweep(BASE, VARIATIONS, SEEDS)
        plan_b = plan_sweep(BASE, VARIATIONS, SEEDS)
        assert plan_a.fingerprint() == plan_b.fingerprint()
        assert plan_a.fingerprint() != plan_sweep(BASE, VARIATIONS, SEEDS[:-1]).fingerprint()
        other_base = ExperimentConfig(topology=ClusterTopology.figure1_left())
        assert plan_a.fingerprint() != plan_sweep(other_base, VARIATIONS, SEEDS).fingerprint()

    def test_fingerprint_pins_priority_backend(self, monkeypatch):
        """Shards from numpy and numpy-free hosts must never merge silently.

        The two run_priority backends assign different sketch priorities to
        the same run index, so the backend is part of the fingerprint.
        """
        from repro.harness import aggregate

        if aggregate._SeedSequence is None:
            pytest.skip("numpy absent: only one priority backend exists on this host")
        with_numpy = plan_sweep(BASE, VARIATIONS, SEEDS).fingerprint()
        monkeypatch.setattr(aggregate, "_SeedSequence", None)
        without_numpy = plan_sweep(BASE, VARIATIONS, SEEDS).fingerprint()
        assert with_numpy != without_numpy

    def test_merge_names_the_backend_on_cross_backend_merge(self, tmp_path, monkeypatch):
        from repro.harness import aggregate

        if aggregate._SeedSequence is None:
            pytest.skip("numpy absent: only one priority backend exists on this host")
        plan = plan_sweep(BASE, VARIATIONS, SEEDS)
        run_shard(plan, ShardSpec(1, 1), tmp_path, max_workers=1)
        monkeypatch.setattr(aggregate, "_SeedSequence", None)
        with pytest.raises(ManifestError, match="numpy availability"):
            merge_shards(tmp_path, plan_sweep(BASE, VARIATIONS, SEEDS))


def test_strided_reducer_restores_original_indices():
    result = run_consensus(BASE.with_seed(7))
    summary = SummaryReducer(start=5, step=3)(result, 2)
    assert summary.index == 11
    assert summary.priority == run_priority(0, 11)


# ------------------------------------------------------------ bit-identity
@pytest.mark.parametrize("shard_count", [1, 2, 3, 7, 16])
def test_sharded_sweep_merges_bit_identical(tmp_path, shard_count):
    single = sweep(BASE, VARIATIONS, SEEDS, max_workers=1)
    merged = shard_and_merge(plan_sweep(BASE, VARIATIONS, SEEDS), tmp_path, shard_count)
    for point in single.points:
        assert merged.aggregates[point.label] == point.aggregate

    result = merged.sweep_result()
    assert result.labels() == single.labels()
    for label in single.labels():
        assert result.point(label).aggregate == single.point(label).aggregate


def test_sharded_grid_merges_bit_identical(tmp_path):
    axes = {"algorithm": ["hybrid-local-coin", "hybrid-common-coin"], "proposals": ["split", "unanimous-1"]}
    single = grid(BASE, axes, SEEDS, max_workers=1)
    merged = shard_and_merge(plan_grid(BASE, axes, SEEDS), tmp_path, 3)
    for point in single.points:
        assert merged.aggregates[point.label] == point.aggregate


def test_sharded_repeat_merges_bit_identical(tmp_path):
    single = repeat(BASE, SEEDS, max_workers=1)
    merged = shard_and_merge(plan_repeat(BASE, SEEDS), tmp_path, 2)
    assert merged.aggregates["repeat"] == single


def test_shard_order_and_grouping_is_irrelevant(tmp_path):
    plan = plan_sweep(BASE, VARIATIONS, SEEDS)
    for index in (3, 1, 2):  # out of order, as independent hosts would finish
        run_shard(plan, ShardSpec(index, 3), tmp_path, max_workers=1)
    merged = merge_shards(tmp_path, plan_sweep(BASE, VARIATIONS, SEEDS))
    single = sweep(BASE, VARIATIONS, SEEDS, max_workers=1)
    for point in single.points:
        assert merged.aggregates[point.label] == point.aggregate


def test_run_plan_matches_sweep_and_repeat():
    single = sweep(BASE, VARIATIONS, SEEDS, max_workers=1)
    local = run_plan(plan_sweep(BASE, VARIATIONS, SEEDS), max_workers=1)
    for point in single.points:
        assert local[point.label] == point.aggregate
    assert run_plan(plan_repeat(BASE, SEEDS), max_workers=1)["repeat"] == repeat(
        BASE, SEEDS, max_workers=1
    )


def test_sharded_experiment_reproduces_driver_report(tmp_path):
    seeds = default_seeds(3)
    direct = e1_figure1.run(seeds=seeds, max_workers=1)
    merged = shard_and_merge(e1_figure1.plan(seeds=seeds), tmp_path, 2)
    report = e1_figure1.build_report(merged.plan, merged.aggregates)
    assert report.format(precision=12) == direct.format(precision=12)
    assert report.rows == direct.rows
    assert report.passed == direct.passed


# ----------------------------------------------------------------- resume
def test_rerun_resumes_every_checkpointed_point(tmp_path):
    plan = plan_sweep(BASE, VARIATIONS, SEEDS)
    first = run_shard(plan, ShardSpec(1, 2), tmp_path, max_workers=1)
    assert first.runs_executed > 0 and not first.resumed
    again = run_shard(plan, ShardSpec(1, 2), tmp_path, max_workers=1)
    assert not again.executed
    assert again.resumed == first.executed
    assert again.runs_resumed == first.runs_executed


def test_killed_shard_resumes_from_last_checkpoint(tmp_path, monkeypatch):
    plan = plan_sweep(BASE, VARIATIONS, SEEDS)
    real_run_many = distributed.run_many
    calls = {"count": 0}

    def dies_after_one_point(*args, **kwargs):
        if calls["count"] >= 1:
            raise KeyboardInterrupt("simulated kill")
        calls["count"] += 1
        return real_run_many(*args, **kwargs)

    monkeypatch.setattr(distributed, "run_many", dies_after_one_point)
    with pytest.raises(KeyboardInterrupt):
        run_shard(plan, ShardSpec(1, 1), tmp_path, max_workers=1)
    monkeypatch.setattr(distributed, "run_many", real_run_many)

    # The killed invocation left a manifest and one checkpoint behind.
    assert manifest_path(tmp_path, ShardSpec(1, 1)).exists()
    resumed = run_shard(plan, ShardSpec(1, 1), tmp_path, max_workers=1)
    assert len(resumed.resumed) == 1  # the checkpointed point was not recomputed
    assert len(resumed.executed) == len(plan.points) - 1

    merged = merge_shards(tmp_path, plan_sweep(BASE, VARIATIONS, SEEDS))
    single = sweep(BASE, VARIATIONS, SEEDS, max_workers=1)
    for point in single.points:
        assert merged.aggregates[point.label] == point.aggregate


def test_corrupt_checkpoint_is_recomputed_with_warning(tmp_path):
    plan = plan_sweep(BASE, VARIATIONS, SEEDS)
    shard = ShardSpec(1, 1)
    run_shard(plan, shard, tmp_path, max_workers=1)
    checkpoint_path(tmp_path, shard, 0).write_bytes(b"not a pickle")
    with pytest.warns(RuntimeWarning, match="recomputing"):
        again = run_shard(plan, shard, tmp_path, max_workers=1)
    assert len(again.executed) == 1 and len(again.resumed) == len(plan.points) - 1
    merged = merge_shards(tmp_path, plan)
    single = sweep(BASE, VARIATIONS, SEEDS, max_workers=1)
    for point in single.points:
        assert merged.aggregates[point.label] == point.aggregate


def test_out_dir_of_a_different_plan_is_refused(tmp_path):
    run_shard(plan_sweep(BASE, VARIATIONS, SEEDS), ShardSpec(1, 1), tmp_path, max_workers=1)
    other = plan_sweep(BASE, VARIATIONS, default_seeds(2))
    with pytest.raises(ManifestError, match="different plan"):
        run_shard(other, ShardSpec(1, 1), tmp_path, max_workers=1)


# ------------------------------------------------------------- validation
def test_merge_reports_missing_shards(tmp_path):
    plan = plan_sweep(BASE, VARIATIONS, SEEDS)
    run_shard(plan, ShardSpec(1, 3), tmp_path, max_workers=1)
    run_shard(plan, ShardSpec(3, 3), tmp_path, max_workers=1)
    with pytest.raises(ManifestError, match=r"missing shards \[2\]"):
        merge_shards(tmp_path, plan)


def test_merge_rejects_malformed_manifest(tmp_path):
    plan = plan_repeat(BASE, SEEDS)
    run_shard(plan, ShardSpec(1, 1), tmp_path, max_workers=1)
    manifest_path(tmp_path, ShardSpec(1, 1)).write_text("{ this is not json")
    with pytest.raises(ManifestError, match="malformed manifest"):
        merge_shards(tmp_path, plan)


def test_merge_rejects_version_mismatch(tmp_path):
    plan = plan_repeat(BASE, SEEDS)
    shard = ShardSpec(1, 1)
    run_shard(plan, shard, tmp_path, max_workers=1)
    payload = json.loads(manifest_path(tmp_path, shard).read_text())
    payload["version"] = MANIFEST_VERSION + 1
    manifest_path(tmp_path, shard).write_text(json.dumps(payload))
    with pytest.raises(ManifestError, match="version"):
        merge_shards(tmp_path, plan)


def test_merge_rejects_foreign_plan(tmp_path):
    ran = plan_sweep(BASE, VARIATIONS, SEEDS)
    run_shard(ran, ShardSpec(1, 1), tmp_path, max_workers=1)
    foreign = plan_sweep(BASE, VARIATIONS, default_seeds(3))
    with pytest.raises(ManifestError, match="different plan"):
        merge_shards(tmp_path, foreign)


def test_merge_rejects_incomplete_shard(tmp_path, monkeypatch):
    plan = plan_sweep(BASE, VARIATIONS, SEEDS)
    real_run_many = distributed.run_many
    calls = {"count": 0}

    def dies_after_one_point(*args, **kwargs):
        if calls["count"] >= 1:
            raise KeyboardInterrupt("simulated kill")
        calls["count"] += 1
        return real_run_many(*args, **kwargs)

    monkeypatch.setattr(distributed, "run_many", dies_after_one_point)
    with pytest.raises(KeyboardInterrupt):
        run_shard(plan, ShardSpec(1, 1), tmp_path, max_workers=1)
    # match on message text that cannot collide with tmp_path (which contains
    # this test's name, and therefore words like "incomplete").
    with pytest.raises(ManifestError, match="resume it by re-running"):
        merge_shards(tmp_path, plan)


def test_merge_rejects_checkpoint_from_other_plan(tmp_path):
    plan = plan_sweep(BASE, VARIATIONS, SEEDS)
    shard = ShardSpec(1, 1)
    run_shard(plan, shard, tmp_path, max_workers=1)
    cpath = checkpoint_path(tmp_path, shard, 0)
    payload = pickle.loads(cpath.read_bytes())
    payload["fingerprint"] = "0" * 64
    cpath.write_bytes(pickle.dumps(payload))
    with pytest.raises(ManifestError, match="different plan"):
        merge_shards(tmp_path, plan)


def test_merge_empty_directory_fails_clearly(tmp_path):
    with pytest.raises(ManifestError, match="no shard manifests"):
        merge_shards(tmp_path, plan_repeat(BASE, SEEDS))
