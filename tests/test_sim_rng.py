"""Unit tests for the deterministic random-source machinery."""

import random

import pytest

from repro.sim.rng import RandomSource


def test_seed_must_be_int():
    with pytest.raises(TypeError):
        RandomSource("not-a-seed")


def test_same_seed_same_streams():
    a = RandomSource(42).stream("x")
    b = RandomSource(42).stream("x")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = RandomSource(1).stream("x")
    b = RandomSource(2).stream("x")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_names_differ():
    source = RandomSource(7)
    a = source.stream("alpha")
    b = source.stream("beta")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_stream_is_cached_and_stateful():
    source = RandomSource(3)
    first = source.stream("s")
    value = first.random()
    second = source.stream("s")
    assert first is second
    assert second.random() != value or True  # state advanced; object identity is the real check


def test_stream_name_parts_are_stringified():
    source = RandomSource(5)
    assert source.stream(1, "a") is source.stream("1", "a")


def test_order_of_stream_creation_does_not_matter():
    source_a = RandomSource(11)
    source_b = RandomSource(11)
    a_first = source_a.stream("first").random()
    source_b.stream("second")  # created in a different order
    b_first = source_b.stream("first").random()
    assert a_first == b_first


def test_spawn_creates_independent_namespace():
    parent = RandomSource(13)
    child = parent.spawn("workload")
    assert isinstance(child, RandomSource)
    assert child.seed != parent.seed
    # Deterministic: same spawn name gives the same child seed.
    assert parent.spawn("workload").seed == child.seed
    assert parent.spawn("other").seed != child.seed


def test_streams_return_standard_random_objects():
    assert isinstance(RandomSource(0).stream("x"), random.Random)


def test_seed_property_round_trips():
    assert RandomSource(99).seed == 99
