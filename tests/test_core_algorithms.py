"""Behavioural tests of Algorithm 2 and Algorithm 3 through the harness."""

import pytest

from repro.cluster.failures import FailurePattern
from repro.cluster.topology import ClusterTopology
from repro.core.base import ProcessEnvironment
from repro.core.common_coin import CommonCoinConsensus
from repro.core.local_coin import LocalCoinConsensus
from repro.harness.runner import ExperimentConfig, run_consensus
from repro.network.delays import ExponentialDelay, SpikeDelay
from repro.sharedmem.memory import ClusterSharedMemory
from repro.sim.kernel import SimConfig

HYBRID = ("hybrid-local-coin", "hybrid-common-coin")


# ------------------------------------------------------------- constructor checks
def test_local_coin_consensus_requires_memory_and_coin():
    topo = ClusterTopology.single_cluster(2)
    memory = ClusterSharedMemory(0, [0, 1])
    env_no_memory = ProcessEnvironment(pid=0, proposal=0, topology=topo)
    with pytest.raises(ValueError):
        LocalCoinConsensus(env_no_memory)
    env_no_coin = ProcessEnvironment(pid=0, proposal=0, topology=topo, memory=memory)
    with pytest.raises(ValueError):
        LocalCoinConsensus(env_no_coin)


def test_common_coin_consensus_requires_memory_and_coin():
    topo = ClusterTopology.single_cluster(2)
    memory = ClusterSharedMemory(0, [0, 1])
    with pytest.raises(ValueError):
        CommonCoinConsensus(ProcessEnvironment(pid=0, proposal=0, topology=topo))
    with pytest.raises(ValueError):
        CommonCoinConsensus(ProcessEnvironment(pid=0, proposal=0, topology=topo, memory=memory))


# ----------------------------------------------------------------- basic behaviour
@pytest.mark.parametrize("algorithm", HYBRID)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_hybrid_consensus_terminates_and_agrees_failure_free(algorithm, seed):
    topo = ClusterTopology.figure1_left()
    result = run_consensus(
        ExperimentConfig(topology=topo, algorithm=algorithm, proposals="split", seed=seed)
    )
    result.report.raise_on_violation()
    assert result.terminated
    assert result.decided_value in (0, 1)
    assert set(result.sim_result.decisions) == set(range(topo.n))


@pytest.mark.parametrize("algorithm", HYBRID)
@pytest.mark.parametrize("value", [0, 1])
def test_unanimous_proposals_decide_that_value(algorithm, value):
    topo = ClusterTopology.even_split(6, 3)
    result = run_consensus(
        ExperimentConfig(
            topology=topo, algorithm=algorithm, proposals=f"unanimous-{value}", seed=11
        )
    )
    result.report.raise_on_violation()
    assert result.decided_value == value


def test_local_coin_decides_in_one_round_on_unanimous_input():
    topo = ClusterTopology.even_split(9, 3)
    result = run_consensus(
        ExperimentConfig(topology=topo, algorithm="hybrid-local-coin", proposals="unanimous-1", seed=5)
    )
    assert result.metrics.rounds_max == 1


@pytest.mark.parametrize("algorithm", HYBRID)
def test_single_cluster_converges_fast(algorithm):
    # With m = 1 every process adopts the cluster-consensus value immediately,
    # so phase 1 already exhibits a unanimous majority: Algorithm 2 decides in
    # round 1, Algorithm 3 as soon as the common coin matches (geometric with
    # mean 2, so a handful of rounds at most for any fixed seed).
    topo = ClusterTopology.single_cluster(5)
    result = run_consensus(
        ExperimentConfig(topology=topo, algorithm=algorithm, proposals="split", seed=3)
    )
    result.report.raise_on_violation()
    if algorithm == "hybrid-local-coin":
        assert result.metrics.rounds_max == 1
    else:
        assert result.metrics.rounds_max <= 8


@pytest.mark.parametrize("algorithm", HYBRID)
def test_works_with_singleton_clusters(algorithm):
    topo = ClusterTopology.singleton_clusters(5)
    result = run_consensus(
        ExperimentConfig(topology=topo, algorithm=algorithm, proposals="alternating", seed=9)
    )
    result.report.raise_on_violation()
    assert result.terminated


@pytest.mark.parametrize("algorithm", HYBRID)
def test_works_with_n_equals_one(algorithm):
    topo = ClusterTopology.single_cluster(1)
    result = run_consensus(
        ExperimentConfig(topology=topo, algorithm=algorithm, proposals={0: 1}, seed=0)
    )
    result.report.raise_on_violation()
    assert result.decided_value == 1


# ------------------------------------------------------------------ fault tolerance
@pytest.mark.parametrize("algorithm", HYBRID)
def test_headline_scenario_majority_crash(algorithm):
    topo = ClusterTopology.figure1_right()
    pattern = FailurePattern.majority_crash_with_surviving_majority_cluster(topo, survivor=2)
    result = run_consensus(
        ExperimentConfig(
            topology=topo, algorithm=algorithm, proposals="split", seed=4, failure_pattern=pattern
        )
    )
    result.report.raise_on_violation()
    assert result.terminated
    assert pattern.crashes_majority(topo.n)
    assert result.sim_result.decisions  # the survivor decided
    assert 2 in result.sim_result.decisions


@pytest.mark.parametrize("algorithm", HYBRID)
def test_one_survivor_per_cluster_still_terminates(algorithm):
    topo = ClusterTopology.even_split(9, 3)
    pattern = FailurePattern.none()
    for index in range(topo.m):
        pattern = pattern.merged_with(FailurePattern.crash_all_but_one_in_cluster(topo, index))
    result = run_consensus(
        ExperimentConfig(
            topology=topo, algorithm=algorithm, proposals="split", seed=6, failure_pattern=pattern
        )
    )
    result.report.raise_on_violation()
    assert result.terminated


@pytest.mark.parametrize("algorithm", HYBRID)
def test_mid_run_crashes_preserve_safety(algorithm):
    topo = ClusterTopology.even_split(8, 4)
    pattern = FailurePattern({0: 1.5, 3: 2.5, 6: 0.5})
    result = run_consensus(
        ExperimentConfig(
            topology=topo, algorithm=algorithm, proposals="split", seed=13, failure_pattern=pattern
        )
    )
    result.report.raise_on_violation()
    assert result.terminated


@pytest.mark.parametrize("algorithm", HYBRID)
def test_condition_violating_pattern_never_decides_wrongly(algorithm):
    topo = ClusterTopology.even_split(8, 4)
    pattern = FailurePattern.violate_termination_condition(topo)
    result = run_consensus(
        ExperimentConfig(
            topology=topo,
            algorithm=algorithm,
            proposals="split",
            seed=8,
            failure_pattern=pattern,
            sim=SimConfig(max_rounds=20, max_time=1e5),
        )
    )
    assert result.report.safety_ok
    assert not result.report.termination_expected


# ------------------------------------------------------------------- environment
@pytest.mark.parametrize("algorithm", HYBRID)
@pytest.mark.parametrize("delay_model", [ExponentialDelay(mean=1.0), SpikeDelay()])
def test_robust_to_delay_distributions(algorithm, delay_model):
    topo = ClusterTopology.even_split(6, 2)
    result = run_consensus(
        ExperimentConfig(
            topology=topo, algorithm=algorithm, proposals="split", seed=21, delay_model=delay_model
        )
    )
    result.report.raise_on_violation()
    assert result.terminated


@pytest.mark.parametrize("algorithm", HYBRID)
def test_llsc_consensus_objects_work_too(algorithm):
    topo = ClusterTopology.even_split(6, 3)
    result = run_consensus(
        ExperimentConfig(
            topology=topo, algorithm=algorithm, proposals="split", seed=2, consensus_kind="llsc"
        )
    )
    result.report.raise_on_violation()
    assert result.terminated


def test_same_seed_reproduces_identical_metrics():
    topo = ClusterTopology.figure1_right()
    config = ExperimentConfig(topology=topo, algorithm="hybrid-local-coin", proposals="split", seed=77)
    first = run_consensus(config)
    second = run_consensus(config)
    assert first.metrics.messages_sent == second.metrics.messages_sent
    assert first.metrics.rounds_max == second.metrics.rounds_max
    assert first.sim_result.decisions == second.sim_result.decisions
    assert first.metrics.decision_time_max == pytest.approx(second.metrics.decision_time_max)


@pytest.mark.parametrize("algorithm", HYBRID)
def test_cluster_members_send_identical_phase_values(algorithm):
    """Within a round and phase, all members of a cluster broadcast the same value.

    This is the univalence property that makes the one-for-all attribution
    sound; we check it on the recorded network traffic.
    """
    from repro.core.base import PhaseMessage
    from repro.network.transport import Network
    from repro.sim.kernel import SimulationKernel
    from repro.sim.rng import RandomSource
    from repro.sharedmem.memory import build_cluster_memories
    from repro.coins.local import LocalCoin
    from repro.coins.common import CommonCoin
    from repro.core.local_coin import LocalCoinConsensus
    from repro.core.common_coin import CommonCoinConsensus

    topo = ClusterTopology.even_split(6, 2)
    rng = RandomSource(31)
    kernel = SimulationKernel(config=SimConfig(), rng=rng)
    network = Network(topo.n, rng=rng)
    kernel.attach_network(network)
    memories = build_cluster_memories(topo)
    common = CommonCoin(31)
    sent_values = {}

    original_prepare = network.prepare

    def recording_prepare(sender, dest, payload, time):
        if isinstance(payload, PhaseMessage):
            key = (topo.cluster_index_of(sender), payload.round_number, payload.phase)
            sent_values.setdefault(key, set()).add((payload.est if payload.est in (0, 1) else "BOT"))
        return original_prepare(sender=sender, dest=dest, payload=payload, time=time)

    network.prepare = recording_prepare

    for pid in topo.process_ids():
        env = ProcessEnvironment(
            pid=pid,
            proposal=pid % 2,
            topology=topo,
            memory=memories[topo.cluster_index_of(pid)],
            local_coin=LocalCoin(rng.stream("coin", pid)),
            common_coin=common,
        )
        algo = LocalCoinConsensus(env) if algorithm == "hybrid-local-coin" else CommonCoinConsensus(env)
        kernel.add_process(pid, algo.run)
    kernel.run()

    for key, values in sent_values.items():
        assert len(values) == 1, f"cluster {key[0]} sent {values} in round {key[1]} phase {key[2]}"
