"""Tests for the universal construction and the thread-safe primitives."""

import threading

import pytest

from tests.helpers import SyncContext, drive

from repro.sharedmem.memory import ClusterSharedMemory
from repro.sharedmem.threaded import (
    ThreadSafeCAS,
    ThreadSafeFetchAndAdd,
    ThreadSafeRegister,
    ThreadedConsensusObject,
    run_threaded_consensus,
)
from repro.sharedmem.universal import (
    UniversalObject,
    append_log_transition,
    counter_transition,
)


# --------------------------------------------------------------- universal object
def make_counter(members=(0, 1, 2)):
    memory = ClusterSharedMemory(0, members)
    return UniversalObject(memory, "counter", initial_state=0, transition=counter_transition), memory


def test_universal_counter_single_invoker():
    counter, _ = make_counter()
    ctx = SyncContext(pid=0)
    assert drive(counter.invoke(ctx, "increment")) == 1
    assert drive(counter.invoke(ctx, "increment", 4)) == 5
    assert drive(counter.invoke(ctx, "read")) == 5
    assert counter.local_state(0) == 5


def test_universal_counter_all_members_converge_to_same_log():
    counter, _ = make_counter()
    contexts = {pid: SyncContext(pid=pid) for pid in (0, 1, 2)}
    drive(counter.invoke(contexts[0], "increment"))
    drive(counter.invoke(contexts[1], "increment"))
    drive(counter.invoke(contexts[2], "increment"))
    # Everyone catches up by reading.
    for pid in (0, 1, 2):
        drive(counter.invoke(contexts[pid], "read"))
    states = {counter.local_state(pid) for pid in (0, 1, 2)}
    assert states == {3}
    logs = [tuple((entry.operation, entry.invoker) for entry in counter.log_of(pid)) for pid in (0, 1, 2)]
    # Logs are prefixes of one another (the slowest reader saw the fewest slots).
    longest = max(logs, key=len)
    assert all(longest[: len(log)] == log for log in logs)


def test_universal_object_membership_enforced():
    counter, _ = make_counter(members=(0, 1))
    with pytest.raises(Exception):
        drive(counter.invoke(SyncContext(pid=9), "increment"))


def test_universal_log_transition():
    memory = ClusterSharedMemory(0, [0, 1])
    log = UniversalObject(memory, "log", initial_state=(), transition=append_log_transition)
    ctx0, ctx1 = SyncContext(pid=0), SyncContext(pid=1)
    assert drive(log.invoke(ctx0, "append", "a")) == 0
    assert drive(log.invoke(ctx1, "append", "b")) == 1
    assert drive(log.invoke(ctx0, "read")) == ("a", "b")


def test_counter_transition_rejects_unknown_operation():
    with pytest.raises(ValueError):
        counter_transition(0, "frobnicate", None)
    with pytest.raises(ValueError):
        append_log_transition((), "frobnicate", None)


# ------------------------------------------------------------ thread-safe backend
def test_thread_safe_register_basicops():
    reg = ThreadSafeRegister(0)
    reg.write(3)
    assert reg.read() == 3
    assert reg.reads == 1 and reg.writes == 1


def test_thread_safe_cas_semantics():
    reg = ThreadSafeCAS(None)
    assert reg.compare_and_swap(None, "x")
    assert not reg.compare_and_swap(None, "y")
    assert reg.read() == "x"


def test_thread_safe_fetch_and_add_under_threads():
    reg = ThreadSafeFetchAndAdd(0)

    def hammer():
        for _ in range(500):
            reg.fetch_and_add(1)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert reg.read() == 8 * 500


def test_threaded_consensus_object_agreement_under_threads():
    proposals = {pid: pid % 2 for pid in range(16)}
    decisions = run_threaded_consensus(proposals)
    assert set(decisions) == set(proposals)
    decided_values = set(decisions.values())
    assert len(decided_values) == 1
    assert decided_values.pop() in set(proposals.values())


def test_threaded_consensus_object_validity_unanimous():
    decisions = run_threaded_consensus({pid: 1 for pid in range(8)})
    assert set(decisions.values()) == {1}


def test_threaded_consensus_decided_property():
    obj = ThreadedConsensusObject()
    assert obj.decided is None
    obj.propose("v")
    assert obj.decided == "v"
    assert obj.invocations == 1
