"""Sharded resilience sweeps: e11 bit-identity under both exec modes.

The acceptance bar for the trace-driven delay models' harness integration:
``python -m repro run e11 --shard i/k`` + ``merge`` must reproduce the
single-host sweep *bit for bit* for k in {1, 3, 7} -- under the process
pool AND the cooperative multi-kernel engine -- because the fitted
:class:`EmpiricalDelay` / :class:`ShiftedLogNormalDelay` models enter the
plan fingerprint through their value-only reprs exactly like the synthetic
models.  Shards produced under a different delay catalogue must be refused
with an error naming the offending field.
"""

import pytest

from repro.experiments import e11_resilience
from repro.experiments.common import default_seeds
from repro.harness.distributed import (
    ManifestError,
    ShardSpec,
    merge_shards,
    run_plan,
    run_shard,
)

SEEDS = default_seeds(2)
E11_KWARGS = dict(
    seeds=SEEDS,
    scenarios=("none", "kill-during-recovery", "replica-loss-2"),
    delays=("empirical", "shifted-lognormal"),
    round_cap=15,
)


def _shard_and_merge(plan, out_dir, shard_count, exec_mode=None):
    for index in range(1, shard_count + 1):
        run_shard(
            plan, ShardSpec(index, shard_count), out_dir, max_workers=1, exec_mode=exec_mode
        )
    return merge_shards(out_dir, plan)


@pytest.mark.parametrize("shard_count", [1, 3, 7])
@pytest.mark.parametrize("exec_mode", ["process", "coop"])
def test_e11_shard_merge_is_bit_identical_to_single_host(tmp_path, shard_count, exec_mode):
    single = run_plan(e11_resilience.plan(**E11_KWARGS), max_workers=1)
    merged = _shard_and_merge(
        e11_resilience.plan(**E11_KWARGS), tmp_path, shard_count, exec_mode=exec_mode
    )
    assert set(merged.aggregates) == set(single)
    for label, aggregate in single.items():
        assert merged.aggregates[label] == aggregate  # dataclass eq: bit-for-bit


def test_e11_coop_equals_process_run_summaries():
    """The coop engine interleaves kernels without perturbing one draw:
    the folded RunSummary streams match the process pool's exactly."""
    reference = run_plan(e11_resilience.plan(**E11_KWARGS), max_workers=1, exec_mode="process")
    coop = run_plan(e11_resilience.plan(**E11_KWARGS), max_workers=3, exec_mode="coop")
    assert sorted(coop) == sorted(reference)
    for label, aggregate in reference.items():
        assert coop[label] == aggregate


def test_e11_sharded_report_reproduces_driver_report(tmp_path):
    direct = e11_resilience.run(max_workers=1, **E11_KWARGS)
    merged = _shard_and_merge(e11_resilience.plan(**E11_KWARGS), tmp_path, 3)
    report = e11_resilience.build_report(merged.plan, merged.aggregates)
    assert report.format(precision=12) == direct.format(precision=12)
    assert report.passed and direct.passed


def test_fitted_models_are_part_of_the_plan_fingerprint():
    base = e11_resilience.plan(**E11_KWARGS)
    assert base.fingerprint() == e11_resilience.plan(**E11_KWARGS).fingerprint()
    other_delays = e11_resilience.plan(
        seeds=SEEDS,
        scenarios=E11_KWARGS["scenarios"],
        delays=("uniform",),
        round_cap=15,
    )
    assert base.fingerprint() != other_delays.fingerprint()
    other_scenarios = e11_resilience.plan(
        seeds=SEEDS,
        scenarios=("none", "replica-loss-1"),
        delays=E11_KWARGS["delays"],
        round_cap=15,
    )
    assert base.fingerprint() != other_scenarios.fingerprint()


def test_manifests_record_scenarios_and_fitted_delay_models():
    plan = e11_resilience.plan(**E11_KWARGS)
    assert plan.scenario_names() == ["kill-during-recovery", "none", "replica-loss-2"]
    models = plan.delay_models()
    assert len(models) == 2
    assert any(model.startswith("EmpiricalDelay(resolution=64") for model in models)
    assert any(model.startswith("ShiftedLogNormalDelay(") for model in models)


def test_merge_refuses_mismatched_delay_catalogue_with_named_field(tmp_path):
    ran = e11_resilience.plan(
        seeds=SEEDS, scenarios=("none",), delays=("empirical",), round_cap=15
    )
    run_shard(ran, ShardSpec(1, 1), tmp_path, max_workers=1)
    foreign = e11_resilience.plan(
        seeds=SEEDS, scenarios=("none",), delays=("uniform",), round_cap=15
    )
    with pytest.raises(ManifestError, match="'delay_models'"):
        merge_shards(tmp_path, foreign)


def test_plan_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown delay name"):
        e11_resilience.plan(seeds=SEEDS, delays=("gaussian",))
    with pytest.raises(ValueError, match="unknown resilience scenario"):
        e11_resilience.plan(seeds=SEEDS, scenarios=("chaos",))


def test_resume_works_for_resilience_shards(tmp_path):
    plan = e11_resilience.plan(**E11_KWARGS)
    first = run_shard(plan, ShardSpec(1, 2), tmp_path, max_workers=1)
    assert first.runs_executed > 0
    again = run_shard(plan, ShardSpec(1, 2), tmp_path, max_workers=1)
    assert not again.executed and again.resumed == first.executed


def test_restricted_plans_normalise_name_order():
    forward = e11_resilience.plan(
        seeds=SEEDS, scenarios=("none", "replica-loss-1"), delays=("empirical", "uniform")
    )
    backward = e11_resilience.plan(
        seeds=SEEDS, scenarios=("replica-loss-1", "none"), delays=("uniform", "empirical")
    )
    assert forward.fingerprint() == backward.fingerprint()


def test_workers_reproduce_empirical_delay_runs(tmp_path):
    """Fitted models pickle to pool workers and fold bit-identically."""
    plan = e11_resilience.plan(**E11_KWARGS)
    serial = run_plan(plan, max_workers=1)
    parallel = run_plan(e11_resilience.plan(**E11_KWARGS), max_workers=2)
    for label, aggregate in serial.items():
        assert parallel[label] == aggregate


def test_replica_loss_ladder_tracks_the_majority_boundary():
    """The ladder's meta walks survivors down to exactly the majority edge;
    asking for a rung past n // 2 is rejected at plan time."""
    plan = e11_resilience.plan(seeds=SEEDS, delays=("empirical",), round_cap=15)
    rungs = {
        point.meta["scenario"]: point.meta
        for point in plan.points
        if point.meta["scenario"].startswith("replica-loss-")
    }
    assert set(rungs) == {"replica-loss-1", "replica-loss-2", "replica-loss-3"}
    for meta in rungs.values():
        assert meta["min_survivors"] == 6 - meta["replicas_down"]
        assert meta["majority"] == 4
        assert meta["liveness_preserving"]
    assert rungs["replica-loss-3"]["min_survivors"] < rungs["replica-loss-3"]["majority"]
    with pytest.raises(ValueError, match="majority can always return"):
        e11_resilience.build_resilience_scenario("replica-loss-3", n=4)
