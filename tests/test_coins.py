"""Unit tests for local coins, common coins and their adversarial variants."""

import random

import pytest

from repro.coins.adversarial import (
    AdversarialCommonCoin,
    AlwaysOneCoin,
    AlwaysZeroCoin,
    OpposingCoins,
)
from repro.coins.common import CommonCoin, FixedSequenceCommonCoin
from repro.coins.local import BiasedLocalCoin, DeterministicCoin, LocalCoin


# ------------------------------------------------------------------ local coins
def test_local_coin_returns_bits_and_counts():
    coin = LocalCoin(random.Random(0))
    bits = [coin.flip() for _ in range(100)]
    assert set(bits) <= {0, 1}
    assert coin.flips == 100
    assert coin.history == bits


def test_local_coin_roughly_fair():
    coin = LocalCoin(random.Random(42))
    ones = sum(coin.flip() for _ in range(2000))
    assert 800 < ones < 1200


def test_local_coins_with_same_stream_state_are_reproducible():
    a = LocalCoin(random.Random(7))
    b = LocalCoin(random.Random(7))
    assert [a.flip() for _ in range(20)] == [b.flip() for _ in range(20)]


def test_biased_coin_bias_bounds_and_behaviour():
    with pytest.raises(ValueError):
        BiasedLocalCoin(random.Random(0), bias=1.5)
    heavy = BiasedLocalCoin(random.Random(0), bias=0.95)
    ones = sum(heavy.flip() for _ in range(500))
    assert ones > 400
    zero = BiasedLocalCoin(random.Random(0), bias=0.0)
    assert all(zero.flip() == 0 for _ in range(20))


def test_deterministic_coin_replays_sequence():
    coin = DeterministicCoin([1, 0, 0])
    assert [coin.flip() for _ in range(6)] == [1, 0, 0, 1, 0, 0]
    with pytest.raises(ValueError):
        DeterministicCoin([])
    with pytest.raises(ValueError):
        DeterministicCoin([0, 2])


# ----------------------------------------------------------------- common coins
def test_common_coin_same_bit_for_all_processes():
    coin = CommonCoin(seed=5)
    for round_number in range(1, 20):
        bits = {coin.bit(round_number, pid=pid) for pid in range(5)}
        assert len(bits) == 1


def test_common_coin_rounds_start_at_one():
    coin = CommonCoin()
    with pytest.raises(ValueError):
        coin.bit(0)


def test_common_coin_is_seed_deterministic_and_order_insensitive():
    a = CommonCoin(seed=9)
    b = CommonCoin(seed=9)
    assert a.bit(5) == b.bit(5)  # asking for round 5 first still agrees
    assert a.prefix(10) == b.prefix(10)
    assert CommonCoin(seed=10).prefix(32) != a.prefix(32)


def test_common_coin_counts_invocations_per_process():
    coin = CommonCoin()
    coin.bit(1, pid=3)
    coin.bit(1, pid=3)
    coin.bit(2, pid=4)
    assert coin.invocations == 3
    assert coin.invocations_by_process[3] == 2
    assert coin.invocations_by_process[4] == 1


def test_common_coin_roughly_fair():
    coin = CommonCoin(seed=123)
    ones = sum(coin.prefix(2000))
    assert 800 < ones < 1200


def test_fixed_sequence_common_coin():
    coin = FixedSequenceCommonCoin([1, 1, 0])
    assert [coin.bit(r) for r in range(1, 7)] == [1, 1, 0, 1, 1, 0]
    with pytest.raises(ValueError):
        FixedSequenceCommonCoin([])


# ------------------------------------------------------------ adversarial coins
def test_always_coins():
    assert all(AlwaysZeroCoin().flip() == 0 for _ in range(5))
    assert all(AlwaysOneCoin().flip() == 1 for _ in range(5))


def test_opposing_coins_assign_by_parity():
    factory = OpposingCoins()
    assert factory.coin_for(0).flip() == 0
    assert factory.coin_for(1).flip() == 1
    assert factory.coin_for(2).flip() == 0


def test_adversarial_common_coin_forced_bits():
    coin = AdversarialCommonCoin(forced_bits={1: 0, 3: 1})
    assert coin.bit(1) == 0
    assert coin.bit(3) == 1
    # Every process still sees the same bit (the coin stays common).
    assert coin.bit(2, pid=0) == coin.bit(2, pid=1)


def test_adversarial_common_coin_force_validation():
    coin = AdversarialCommonCoin()
    coin.bit(2)
    with pytest.raises(ValueError):
        coin.force(1, 1)  # already drawn
    with pytest.raises(ValueError):
        coin.force(5, 7)  # not a bit
    coin.force(5, 1)
    assert coin.bit(5) == 1
    with pytest.raises(ValueError):
        AdversarialCommonCoin(forced_bits={0: 1})
