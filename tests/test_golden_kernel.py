"""Bit-identity of the refactored kernel against the pre-refactor fixture.

``tests/golden/kernel_summaries.json`` froze every ``RunSummary`` of the
small e1-e9 sweep plans (``tests.helpers.golden_plans``) as produced by the
PRE-refactor kernel -- dataclass queue entries, per-call delay sampling, no
``__slots__``.  This test recomputes the same runs on the current kernel and
asserts every summary matches exactly: floats are compared through their
``float.hex()`` serialisation, so "close" is not good enough.  (The e11
entry was appended later, regenerated against a green current kernel, to
pin the empirical-delay sampling path the same way.)

The fixture spans every kernel-exercising experiment, including the
adversarial scenarios (e9), the empirical-delay resilience runs (e11) and
the shard/steal merge inputs (per-run summaries + priorities are
exactly what the distributed coordinator merges), so a green run here is the
acceptance evidence that the hot-path refactor changed no observable
behaviour.  Regenerate the fixture only for a deliberate, understood
behaviour change: ``python scripts/gen_golden_summaries.py``.
"""

import json
import pathlib

import pytest

from tests.helpers import GOLDEN_EXPERIMENTS, compute_golden_summaries

FIXTURE = pathlib.Path(__file__).parent / "golden" / "kernel_summaries.json"


@pytest.fixture(scope="module")
def golden_fixture():
    return json.loads(FIXTURE.read_text())


@pytest.fixture(scope="module")
def current_summaries():
    return compute_golden_summaries()


def test_fixture_exists_and_covers_all_experiments(golden_fixture):
    assert golden_fixture["format"] == 1
    assert sorted(golden_fixture["experiments"]) == sorted(GOLDEN_EXPERIMENTS)


def test_priority_backend_matches(golden_fixture, current_summaries):
    """Priorities are comparable only when computed by the same backend."""
    assert current_summaries["priority_backend"] == golden_fixture["priority_backend"]


@pytest.mark.parametrize("experiment", [f"e{i}" for i in range(1, 10)] + ["e11"])
def test_kernel_reproduces_prerefactor_summaries(golden_fixture, current_summaries, experiment):
    expected_points = golden_fixture["experiments"][experiment]
    actual_points = current_summaries["experiments"][experiment]
    assert len(actual_points) == len(expected_points)
    for expected, actual in zip(expected_points, actual_points):
        assert actual["label"] == expected["label"]
        # Compare run by run for a readable diff on mismatch; the dicts
        # already serialise floats as exact float.hex() strings.
        assert len(actual["runs"]) == len(expected["runs"])
        for expected_run, actual_run in zip(expected["runs"], actual["runs"]):
            assert actual_run == expected_run, (
                f"{experiment}/{expected['label']} seed={expected_run['seed']}: "
                "summary diverged from the pre-refactor kernel"
            )
