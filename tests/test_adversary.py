"""The fault-injection adversary subsystem: primitives, scenarios, kernel hooks.

Covers the declarative layer (validation, normalisation, picklability,
stable reprs), the runtime semantics of every fault primitive against small
hand-built simulations, determinism, the install-time pid validation, and
safety of the consensus algorithms under every library scenario.
"""

import math
import pickle
import random

import pytest

from repro.adversary import (
    Adversary,
    CrashRecovery,
    MessageDuplication,
    MessageOmission,
    MessageReordering,
    Outage,
    PartitionWindow,
    ProcessSlowdown,
    Scenario,
    build_scenario,
    scenario_names,
)
from repro.cluster.topology import ClusterTopology
from repro.harness.metrics import numeric_metric_values
from repro.harness.runner import ExperimentConfig, run_consensus, termination_expected
from repro.network.delays import ConstantDelay
from repro.network.transport import Network
from repro.sim.kernel import SimConfig, SimulationKernel
from repro.sim.rng import RandomSource


# ------------------------------------------------------------------ primitives
class TestPrimitiveValidation:
    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            MessageOmission(probability=1.5)
        with pytest.raises(ValueError):
            MessageOmission(probability=-0.1)

    def test_window_bounds(self):
        with pytest.raises(ValueError):
            MessageOmission(start=-1.0)
        with pytest.raises(ValueError):
            MessageOmission(start=2.0, end=2.0)

    def test_pid_sets_are_normalised_sorted_tuples(self):
        fault = MessageOmission(probability=0.5, senders=[3, 1], receivers={2, 0})
        assert fault.senders == (1, 3)
        assert fault.receivers == (0, 2)
        with pytest.raises(ValueError):
            MessageOmission(senders=[1, 1])
        with pytest.raises(ValueError):
            MessageOmission(senders=[-1])

    def test_duplication_copies_and_reorder_inflation(self):
        with pytest.raises(ValueError):
            MessageDuplication(copies=0)
        with pytest.raises(ValueError):
            MessageReordering(inflation=1.0)

    def test_partition_validation(self):
        with pytest.raises(ValueError, match="two groups"):
            PartitionWindow(groups=((0, 1),), end=5.0)
        with pytest.raises(ValueError, match="disjoint"):
            PartitionWindow(groups=((0, 1), (1, 2)), end=5.0)
        with pytest.raises(ValueError, match="mode"):
            PartitionWindow(groups=((0,), (1,)), end=5.0, mode="explode")
        with pytest.raises(ValueError, match="finite"):
            PartitionWindow(groups=((0,), (1,)), mode="heal")  # end=inf
        # A dropping partition may stay open forever.
        PartitionWindow(groups=((0,), (1,)), mode="drop")

    def test_partition_severs_only_cross_group_in_window(self):
        window = PartitionWindow(groups=((0, 1), (2, 3)), start=1.0, end=2.0)
        assert window.severs(0, 2, 1.5)
        assert window.severs(3, 1, 1.0)
        assert not window.severs(0, 1, 1.5)  # same group
        assert not window.severs(0, 4, 1.5)  # pid 4 in no group
        assert not window.severs(0, 2, 2.0)  # window closed (end exclusive)

    def test_slowdown_validation(self):
        with pytest.raises(ValueError):
            ProcessSlowdown(pids=())
        with pytest.raises(ValueError):
            ProcessSlowdown(pids=(0,), extra_delay=0.0)
        slow = ProcessSlowdown(pids=(2, 0), extra_delay=1.0, start=0.0, end=5.0)
        assert slow.pids == (0, 2)
        assert slow.defers(0, 4.9) and not slow.defers(0, 5.0) and not slow.defers(1, 1.0)

    def test_crash_recovery_validation(self):
        with pytest.raises(ValueError):
            CrashRecovery(())
        with pytest.raises(ValueError, match="finite"):
            CrashRecovery((Outage(0, 1.0, math.inf),))
        with pytest.raises(ValueError, match="overlapping"):
            CrashRecovery((Outage(0, 1.0, 3.0), Outage(0, 2.0, 4.0)))
        # Overlap across two schedules of one scenario is just as invalid.
        with pytest.raises(ValueError, match="overlapping"):
            Scenario(
                "nested-outages",
                (
                    CrashRecovery((Outage(0, 1.0, 5.0),)),
                    CrashRecovery((Outage(0, 3.0, 50.0),)),
                ),
            )
        # Tuples coerce to Outage, episodes sort deterministically.
        schedule = CrashRecovery(((1, 5.0, 6.0), (0, 1.0, 2.0)))
        assert schedule.outages == (Outage(0, 1.0, 2.0), Outage(1, 5.0, 6.0))
        assert schedule.touched_pids() == (0, 1)


class TestScenarioModel:
    def test_rejects_non_primitives(self):
        with pytest.raises(ValueError, match="fault primitive"):
            Scenario("bad", ("not-a-fault",))
        with pytest.raises(ValueError):
            Scenario("", ())

    def test_liveness_preservation_classification(self):
        assert Scenario("empty", ()).liveness_preserving
        assert Scenario("dup", (MessageDuplication(probability=0.5),)).liveness_preserving
        assert Scenario("slow", (ProcessSlowdown(pids=(0,)),)).liveness_preserving
        assert not Scenario("lossy", (MessageOmission(probability=0.1),)).liveness_preserving
        healing = PartitionWindow(groups=((0,), (1,)), end=5.0, mode="heal")
        dropping = PartitionWindow(groups=((0,), (1,)), end=5.0, mode="drop")
        assert Scenario("heal", (healing,)).liveness_preserving
        assert not Scenario("drop", (dropping,)).liveness_preserving

    def test_scenarios_are_picklable_with_stable_reprs(self):
        for name in scenario_names():
            scenario = build_scenario(name, n=6, intensity=0.3)
            clone = pickle.loads(pickle.dumps(scenario))
            assert clone == scenario
            assert repr(clone) == repr(scenario)
            assert repr(scenario) == repr(build_scenario(name, n=6, intensity=0.3))

    def test_subclassed_primitives_run_like_their_base(self):
        """A user subclass of a primitive must bucket (and fire) as its base."""

        class TargetedOmission(MessageOmission):
            pass

        scenario = Scenario("custom", (TargetedOmission(probability=1.0),))
        kernel, network = _two_process_kernel(scenario)
        result = kernel.run()
        assert 1 not in result.decisions
        assert network.stats.messages_omitted == 1

    def test_describe_names_fault_kinds(self):
        assert "fault-free" in Scenario("none", ()).describe()
        text = build_scenario("chaos", n=6, intensity=0.5).describe()
        assert "chaos" in text and "MessageOmission" in text


class TestLibrary:
    def test_unknown_name_and_bad_arguments(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            build_scenario("no-such-thing", n=6)
        with pytest.raises(ValueError, match="intensity"):
            build_scenario("lossy-links", n=6, intensity=1.5)
        with pytest.raises(ValueError, match="at least 2"):
            build_scenario("lossy-links", n=1)

    def test_every_entry_builds_for_various_sizes(self):
        for name in scenario_names():
            for n in (2, 3, 6, 9):
                scenario = build_scenario(name, n=n, intensity=0.4)
                assert all(pid < n for pid in scenario.touched_pids())

    def test_zero_intensity_is_mild(self):
        for name in scenario_names():
            scenario = build_scenario(name, n=6, intensity=0.0)
            assert scenario.liveness_preserving, name


# ------------------------------------------------------------- kernel semantics
def _two_process_kernel(scenario=None, delay=1.0, seed=0):
    """A sender (pid 0) broadcasting once and a waiter (pid 1) kernel pair."""
    rng = RandomSource(seed)
    kernel = SimulationKernel(rng=rng, config=SimConfig(max_time=1e4))
    network = Network(2, ConstantDelay(delay), rng)
    kernel.attach_network(network)

    def sender(ctx):
        yield from ctx.broadcast("ping")
        return 1

    def waiter(ctx):
        message = yield from ctx.wait_until(
            lambda mailbox: next((m for m in mailbox if m.sender == 0), None)
        )
        return message.payload

    kernel.add_process(0, sender)
    kernel.add_process(1, waiter)
    if scenario is not None:
        kernel.install_adversary(Adversary(scenario, rng.stream("adversary")))
    return kernel, network


def test_total_omission_starves_the_waiter_but_not_self_delivery():
    scenario = Scenario("drop-all", (MessageOmission(probability=1.0),))
    kernel, network = _two_process_kernel(scenario)
    result = kernel.run()
    assert 0 in result.decisions and 1 not in result.decisions
    assert network.stats.messages_omitted == 1  # the cross message; self-send untouched
    assert network.stats.messages_delivered == 1


def test_duplication_delivers_extra_copies():
    scenario = Scenario("dup", (MessageDuplication(probability=1.0, copies=2),))
    kernel, network = _two_process_kernel(scenario)
    result = kernel.run()
    assert result.decisions[1] == "ping"
    assert network.stats.messages_duplicated == 2
    # 1 self-delivery + 1 original + 2 copies
    assert network.stats.messages_delivered == 4
    assert len(kernel.process(1).mailbox) == 3


def test_reordering_inflates_transit_time():
    plain_kernel, _ = _two_process_kernel()
    plain = plain_kernel.run()
    scenario = Scenario("reorder", (MessageReordering(probability=1.0, inflation=10.0),))
    slow_kernel, _ = _two_process_kernel(scenario)
    slow = slow_kernel.run()
    assert slow.decisions == plain.decisions
    assert slow.decision_times[1] >= plain.decision_times[1] + 8.0  # ~10x a 1.0 delay


def test_healing_partition_delays_until_heal_time():
    window = PartitionWindow(groups=((0,), (1,)), start=0.0, end=7.0, mode="heal")
    kernel, network = _two_process_kernel(Scenario("split", (window,)))
    result = kernel.run()
    assert result.decisions[1] == "ping"
    assert result.decision_times[1] >= 8.0  # heal at 7.0 + 1.0 transit
    assert network.stats.messages_omitted == 0


def test_dropping_partition_loses_the_message():
    window = PartitionWindow(groups=((0,), (1,)), start=0.0, end=7.0, mode="drop")
    kernel, network = _two_process_kernel(Scenario("split", (window,)))
    result = kernel.run()
    assert 1 not in result.decisions
    assert network.stats.messages_omitted == 1


def test_duplicates_cannot_cross_a_healing_partition():
    """Every copy of a held message waits for the heal, not just the original.

    The waiter decides on the *first* message from the sender, so a duplicate
    sneaking across the severed window would show up as an early decision.
    """
    window = PartitionWindow(groups=((0,), (1,)), start=0.0, end=7.0, mode="heal")
    scenario = Scenario(
        "split-dup", (window, MessageDuplication(probability=1.0, copies=2))
    )
    kernel, network = _two_process_kernel(scenario)
    result = kernel.run()
    assert network.stats.messages_duplicated == 2
    assert result.decisions[1] == "ping"
    assert result.decision_times[1] >= 7.0  # no copy arrived before the heal


def test_slowdown_never_defers_pause_recover_or_crash_events():
    """Control events are exempt from slowdowns.

    A slowdown window ending between an outage's down and up times would
    otherwise defer the pause past its matching recover, stranding the
    process paused (with a dead backlog) for the rest of the run; deferring
    a crash would let the slowdown rewrite the failure pattern.
    """
    scenario = Scenario(
        "slow-nap",
        (
            ProcessSlowdown(pids=(1,), extra_delay=5.0, start=0.0, end=1.5),
            CrashRecovery((Outage(pid=1, down_at=1.0, up_at=2.0),)),
        ),
    )
    kernel, _ = _two_process_kernel(scenario)
    result = kernel.run()
    proc = kernel.process(1)
    assert not proc.paused and not proc.paused_backlog
    assert result.decisions[1] == "ping"

    crash_scenario = Scenario(
        "slow-crash", (ProcessSlowdown(pids=(1,), extra_delay=50.0, start=0.0, end=1.5),)
    )
    crash_kernel, _ = _two_process_kernel(crash_scenario)
    crash_kernel.schedule_crash(1, 1.0)
    crash_result = crash_kernel.run()
    assert 1 in crash_result.crashed
    assert crash_kernel.process(1).crash_time == pytest.approx(1.0)


def test_deferred_start_cannot_execute_inside_an_outage():
    """A slowdown-deferred ProcessStart landing mid-outage waits for recovery."""
    scenario = Scenario(
        "late-start",
        (
            ProcessSlowdown(pids=(0,), extra_delay=5.0, start=0.0, end=0.4),
            CrashRecovery((Outage(pid=0, down_at=0.5, up_at=20.0),)),
        ),
    )
    kernel, _ = _two_process_kernel(scenario)
    result = kernel.run()
    # The sender's start was deferred to t=5, inside its [0.5, 20) outage:
    # it must not have executed (and broadcast) until after recovery.
    assert result.decisions[0] == 1
    assert result.decision_times[0] >= 20.0
    assert result.decision_times[1] >= 20.0


def test_slowdown_defers_each_event_once():
    baseline_kernel, _ = _two_process_kernel()
    baseline = baseline_kernel.run()
    scenario = Scenario("slow", (ProcessSlowdown(pids=(1,), extra_delay=3.0),))
    slowed_kernel, _ = _two_process_kernel(scenario)
    slowed = slowed_kernel.run()
    assert slowed.decisions == baseline.decisions
    assert slowed.decision_times[1] > baseline.decision_times[1]
    assert slowed.decision_times[0] == pytest.approx(baseline.decision_times[0])


def test_crash_recovery_buffers_and_replays():
    outage = CrashRecovery((Outage(pid=1, down_at=0.5, up_at=9.0),))
    kernel, _ = _two_process_kernel(Scenario("nap", (outage,)))
    result = kernel.run()
    # The waiter was down when the message transited, but replays it on
    # recovery, decides, and still counts as correct.
    assert result.decisions[1] == "ping"
    assert result.decision_times[1] >= 9.0
    assert 1 in result.correct and not result.crashed


def test_adversary_install_rejects_unknown_pids():
    scenario = Scenario("oops", (ProcessSlowdown(pids=(5,), extra_delay=1.0),))
    with pytest.raises(ValueError, match=r"targets process ids \[5\]"):
        _two_process_kernel(scenario)
    outage = Scenario("oops2", (CrashRecovery((Outage(9, 1.0, 2.0),)),))
    config = ExperimentConfig(
        topology=ClusterTopology.even_split(4, 2), scenario=outage
    )
    with pytest.raises(ValueError, match=r"targets process ids \[9\]"):
        run_consensus(config)


def test_double_install_is_rejected():
    kernel, _ = _two_process_kernel(Scenario("empty", ()))
    with pytest.raises(RuntimeError, match="already installed"):
        kernel.install_adversary(
            Adversary(Scenario("second", ()), random.Random(0))
        )


def test_failure_pattern_install_rejects_out_of_range_pids():
    from repro.cluster.failures import FailurePattern

    config = ExperimentConfig(
        topology=ClusterTopology.even_split(4, 2),
        failure_pattern=FailurePattern({7: 1.0}),
    )
    with pytest.raises(ValueError, match=r"crashes process ids \[7\]"):
        run_consensus(config)


# ------------------------------------------------------------------ harness
TOPOLOGY = ClusterTopology.even_split(6, 3)
CAPPED = SimConfig(max_rounds=25, max_time=5e4)


def test_empty_scenario_is_bit_identical_to_no_scenario():
    base = ExperimentConfig(topology=TOPOLOGY, algorithm="hybrid-local-coin", seed=3)
    with_empty = ExperimentConfig(
        topology=TOPOLOGY, algorithm="hybrid-local-coin", seed=3,
        scenario=build_scenario("none", n=6),
    )
    left, right = run_consensus(base), run_consensus(with_empty)
    assert left.sim_result.decisions == right.sim_result.decisions
    assert left.sim_result.end_time == right.sim_result.end_time
    assert numeric_metric_values(left.metrics) == numeric_metric_values(right.metrics)


def test_same_seed_same_scenario_reproduces_identically():
    config = ExperimentConfig(
        topology=TOPOLOGY, algorithm="hybrid-local-coin", seed=11, sim=CAPPED,
        scenario=build_scenario("chaos", n=6, intensity=0.4),
    )
    first, second = run_consensus(config), run_consensus(config)
    assert numeric_metric_values(first.metrics) == numeric_metric_values(second.metrics)
    assert first.sim_result.decisions == second.sim_result.decisions


def test_termination_expectation_accounts_for_scenario():
    from repro.cluster.failures import FailurePattern

    lossy = build_scenario("lossy-links", n=6, intensity=0.3)
    benign = build_scenario("reorder-heavy", n=6, intensity=0.3)
    none_pattern = FailurePattern.none()
    assert termination_expected("hybrid-local-coin", TOPOLOGY, none_pattern)
    assert termination_expected("hybrid-local-coin", TOPOLOGY, none_pattern, benign)
    assert not termination_expected("hybrid-local-coin", TOPOLOGY, none_pattern, lossy)


def test_metrics_record_scenario_and_delay_model():
    config = ExperimentConfig(
        topology=TOPOLOGY, algorithm="hybrid-local-coin", seed=2, sim=CAPPED,
        scenario=build_scenario("duplication-storm", n=6, intensity=0.5),
    )
    result = run_consensus(config)
    assert result.metrics.scenario == "duplication-storm"
    assert result.metrics.delay_model == config.delay_model.describe()
    assert result.metrics.messages_duplicated > 0
    values = numeric_metric_values(result.metrics)
    assert "messages_duplicated" in values and "scenario" not in values


@pytest.mark.parametrize("algorithm", ["hybrid-local-coin", "hybrid-common-coin"])
@pytest.mark.parametrize("name", sorted(scenario_names()))
def test_every_library_scenario_preserves_safety(algorithm, name):
    for seed in (0, 1):
        config = ExperimentConfig(
            topology=TOPOLOGY, algorithm=algorithm, proposals="split", seed=seed,
            sim=CAPPED, scenario=build_scenario(name, n=6, intensity=0.5),
        )
        result = run_consensus(config)
        assert result.report.validity, f"{name}/{algorithm}/seed={seed}"
        assert result.report.agreement, f"{name}/{algorithm}/seed={seed}"
        scenario = config.scenario
        if scenario.liveness_preserving:
            assert result.terminated, f"{name}/{algorithm}/seed={seed}"
