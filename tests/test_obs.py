"""Observability layer: telemetry registry, incremental merge, live service.

The headline guarantees under test: (1) the telemetry registry merges
per-worker snapshots exactly (counters sum, gauges keep the latest,
timers fold); (2) :class:`~repro.obs.merge.IncrementalMerger` produces
aggregates *bit-identical* to ``merge_shards`` / ``merge_stolen`` on
every completed prefix, for shard counts 1, 3 and 7; (3) ``serve``
answers live JSON against a half-finished (killed mid-flight) steal
directory, including the incrementally folded partial aggregate; and
(4) ``--wait`` workers idle until live-leased points free up instead of
leaving them behind.
"""

import json
import shutil
import threading
import time
import urllib.request
from io import StringIO

import pytest

from repro.cluster.topology import ClusterTopology
from repro.experiments.common import default_seeds
from repro.harness import coordinator, distributed
from repro.harness.coordinator import (
    merge_stolen,
    plan_header_path,
    point_checkpoint_path,
    run_work_stealing,
    steal_status,
    try_claim,
)
from repro.harness.distributed import (
    ShardSpec,
    checkpoint_path,
    find_manifests,
    merge_shards,
    plan_sweep,
    run_shard,
)
from repro.harness.runner import ExperimentConfig
from repro.obs.merge import IncrementalMerger
from repro.obs.serve import (
    SweepMonitor,
    aggregate_to_json,
    make_server,
    render_status_text,
    watch_status,
)
from repro.obs.telemetry import Telemetry, merge_snapshots

SEEDS = default_seeds(3)
BASE = ExperimentConfig(topology=ClusterTopology.figure1_right())
VARIATIONS = {
    "local": {"algorithm": "hybrid-local-coin"},
    "common": {"algorithm": "hybrid-common-coin"},
    "local-v2": {"algorithm": "hybrid-local-coin", "tag": "v2"},
    "common-v2": {"algorithm": "hybrid-common-coin", "tag": "v2"},
}


def make_plan():
    """A fresh four-point plan (rebuilt per use, like real hosts do)."""
    return plan_sweep(BASE, VARIATIONS, SEEDS)


def kill_after(monkeypatch, points):
    """Make ``run_many`` die with KeyboardInterrupt after ``points`` calls."""
    real_run_many = distributed.run_many
    calls = {"count": 0}

    def dying(*args, **kwargs):
        if calls["count"] >= points:
            raise KeyboardInterrupt("simulated kill")
        calls["count"] += 1
        return real_run_many(*args, **kwargs)

    monkeypatch.setattr(distributed, "run_many", dying)
    return lambda: monkeypatch.setattr(distributed, "run_many", real_run_many)


def get_json(port, path):
    """GET one serve endpoint on localhost and decode its JSON body."""
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=10) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


@pytest.fixture
def server_factory():
    """Start serve servers on ephemeral ports; always shut them down."""
    started = []

    def start(out_dir, plan=None):
        server = make_server(out_dir, plan, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        started.append((server, thread))
        return server.server_address[1]

    yield start
    for server, thread in started:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


# -------------------------------------------------------- telemetry registry
class TestTelemetry:
    def test_counters_gauges_and_timers(self):
        telemetry = Telemetry()
        telemetry.inc("points")
        telemetry.inc("points", 2)
        telemetry.set_gauge("last_checkpoint_at", 10.0)
        telemetry.set_gauge("last_checkpoint_at", 20.0)
        with telemetry.timer("point_seconds"):
            pass
        telemetry.observe("point_seconds", 0.5)
        snapshot = telemetry.snapshot()
        assert snapshot["counters"] == {"points": 3}
        assert snapshot["gauges"] == {"last_checkpoint_at": 20.0}
        timer = snapshot["timers"]["point_seconds"]
        assert timer["count"] == 2 and timer["max"] >= 0.5
        assert snapshot["sampled_at"] > 0

    def test_snapshot_is_a_copy(self):
        telemetry = Telemetry()
        telemetry.inc("n")
        snapshot = telemetry.snapshot()
        telemetry.inc("n")
        assert snapshot["counters"] == {"n": 1}

    def test_snapshot_is_json_serializable(self):
        telemetry = Telemetry()
        telemetry.inc("a")
        with telemetry.timer("t"):
            pass
        json.dumps(telemetry.snapshot())

    def test_concurrent_increments_are_not_lost(self):
        telemetry = Telemetry()

        def spin():
            for _ in range(1000):
                telemetry.inc("hits")

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert telemetry.snapshot()["counters"]["hits"] == 4000

    def test_merge_snapshots_pools_the_fleet(self):
        first = {
            "counters": {"points": 2, "runs": 8},
            "gauges": {"last_checkpoint_at": 100.0},
            "timers": {"point_seconds": {"count": 2, "total": 3.0, "max": 2.0}},
            "sampled_at": 50.0,
        }
        second = {
            "counters": {"points": 1},
            "gauges": {"last_checkpoint_at": 200.0},
            "timers": {"point_seconds": {"count": 1, "total": 5.0, "max": 5.0}},
            "sampled_at": 60.0,
        }
        merged = merge_snapshots([first, None, second])
        assert merged["counters"] == {"points": 3, "runs": 8}
        assert merged["gauges"] == {"last_checkpoint_at": 200.0}
        assert merged["timers"]["point_seconds"] == {"count": 3, "total": 8.0, "max": 5.0}
        assert merged["sampled_at"] == 60.0

    def test_merge_snapshots_of_nothing_is_empty(self):
        merged = merge_snapshots([None, {}])
        assert merged == {"counters": {}, "gauges": {}, "timers": {}}


# ------------------------------------------------- telemetry rides the files
class TestTelemetryChannel:
    def test_worker_manifest_and_leases_carry_telemetry(self, tmp_path):
        plan = make_plan()
        run_work_stealing(plan, tmp_path, worker="solo", max_workers=1)
        status = steal_status(tmp_path)
        assert len(status.workers) == 1
        telemetry = status.workers[0]["telemetry"]
        assert telemetry["counters"]["points_computed"] == len(plan.points)
        assert telemetry["counters"]["runs_executed"] == plan.total_runs
        assert telemetry["gauges"]["last_checkpoint_at"] <= time.time()
        assert telemetry["timers"]["point_seconds"]["count"] == len(plan.points)

    def test_heartbeat_refreshes_lease_telemetry(self, tmp_path):
        plan = make_plan()
        scheduler = coordinator.WorkStealingScheduler(
            plan, tmp_path, worker="beater", lease_ttl=0.05
        )
        scheduler.telemetry.inc("points_computed", 7)
        lease = try_claim(tmp_path, plan, 0, "beater", 0.05)
        task = scheduler._task(0, lease)
        with scheduler.hold(task):
            time.sleep(0.15)  # several heartbeats at ttl/4 cadence
        live = coordinator.current_lease(tmp_path, 0)
        assert live.telemetry is not None
        assert live.telemetry["counters"]["points_computed"] == 7


# ------------------------------------------------------- incremental merging
def _complete_static_run(tmp_path, plan, shard_count):
    """Run every shard of ``plan`` to completion under one directory."""
    out = tmp_path / f"static-{shard_count}"
    for index in range(1, shard_count + 1):
        run_shard(plan, ShardSpec(index, shard_count), out, max_workers=1)
    return out


def _static_prefix_dir(tmp_path, full_dir, plan, shard_count, prefix):
    """A copy of ``full_dir`` holding checkpoints only for points < prefix."""
    out = tmp_path / f"prefix-{shard_count}-{prefix}"
    out.mkdir()
    for manifest in find_manifests(full_dir):
        shutil.copy(manifest, out / manifest.name)
    for point_index in range(prefix):
        for index in range(1, shard_count + 1):
            source = checkpoint_path(full_dir, ShardSpec(index, shard_count), point_index)
            if source.exists():
                shutil.copy(source, out / source.name)
    return out


class TestIncrementalMerger:
    @pytest.mark.parametrize("shard_count", [1, 3, 7])
    def test_every_completed_prefix_is_bit_identical_to_merge_shards(
        self, tmp_path, shard_count
    ):
        plan = make_plan()
        full_dir = _complete_static_run(tmp_path, plan, shard_count)
        reference = merge_shards(full_dir, make_plan())
        for prefix in range(len(plan.points) + 1):
            prefix_dir = _static_prefix_dir(tmp_path, full_dir, plan, shard_count, prefix)
            merger = IncrementalMerger(prefix_dir, make_plan())
            folded = merger.poll()
            assert folded == [point.label for point in plan.points[:prefix]]
            assert merger.complete == (prefix == len(plan.points))
            for label in folded:
                assert merger.aggregates[label] == reference.aggregates[label]

    def test_steal_prefix_is_bit_identical_to_merge_stolen(self, tmp_path):
        plan = make_plan()
        full_dir = tmp_path / "steal"
        run_work_stealing(plan, full_dir, worker="solo", max_workers=1)
        reference = merge_stolen(full_dir, make_plan())
        prefix_dir = tmp_path / "steal-prefix"
        prefix_dir.mkdir()
        shutil.copy(plan_header_path(full_dir), plan_header_path(prefix_dir))
        prefix = 2
        for point_index in range(prefix):
            source = point_checkpoint_path(full_dir, point_index)
            shutil.copy(source, point_checkpoint_path(prefix_dir, point_index))
        merger = IncrementalMerger(prefix_dir, make_plan())
        assert merger.poll() == [point.label for point in plan.points[:prefix]]
        for label in [point.label for point in plan.points[:prefix]]:
            assert merger.aggregates[label] == reference.aggregates[label]
        # The remaining checkpoints land; the next poll folds exactly them.
        for point_index in range(prefix, len(plan.points)):
            source = point_checkpoint_path(full_dir, point_index)
            shutil.copy(source, point_checkpoint_path(prefix_dir, point_index))
        assert merger.poll() == [point.label for point in plan.points[prefix:]]
        assert merger.complete
        assert merger.merged().aggregates == reference.aggregates

    def test_merged_refuses_while_incomplete(self, tmp_path):
        plan = make_plan()
        out = tmp_path / "empty-steal"
        coordinator.write_plan_header(out, plan)
        merger = IncrementalMerger(out, plan)
        assert merger.poll() == []
        with pytest.raises(distributed.ManifestError, match="incomplete"):
            merger.merged()

    def test_foreign_plan_is_refused(self, tmp_path):
        plan = make_plan()
        run_work_stealing(plan, tmp_path, worker="solo", max_workers=1)
        other = plan_sweep(BASE, VARIATIONS, default_seeds(5))
        merger = IncrementalMerger(tmp_path, other)
        with pytest.raises(distributed.ManifestError, match="different plan"):
            merger.poll()

    def test_empty_directory_stays_pending(self, tmp_path):
        merger = IncrementalMerger(tmp_path / "nothing-yet", make_plan())
        assert merger.poll() == []
        assert not merger.complete and merger.mode is None


# ------------------------------------------------------------- live service
class TestServe:
    def test_endpoints_against_half_finished_steal_dir(
        self, tmp_path, monkeypatch, server_factory
    ):
        plan = make_plan()
        restore = kill_after(monkeypatch, 2)
        with pytest.raises(KeyboardInterrupt):
            run_work_stealing(plan, tmp_path, worker="victim", max_workers=1, lease_ttl=0.05)
        restore()
        done_points = [
            index
            for index in range(len(plan.points))
            if point_checkpoint_path(tmp_path, index).exists()
        ]
        assert len(done_points) == 2  # genuinely half-finished

        port = server_factory(tmp_path, make_plan())
        code, status = get_json(port, "/status")
        assert code == 200
        assert status["mode"] == "steal"
        assert status["done"] == 2 and status["points_total"] == 4
        assert status["telemetry"]["counters"]["points_computed"] == 2

        code, progress = get_json(port, "/progress")
        assert code == 200
        assert progress["done"] == 2
        states = {point["index"]: point["state"] for point in progress["points"]}
        assert sorted(index for index, state in states.items() if state == "done") == done_points
        assert all(state in {"done", "leased", "orphaned", "unclaimed"} for state in states.values())

        code, workers = get_json(port, "/workers")
        assert code == 200
        assert workers["workers"][0]["worker"] == "victim"

        code, aggregate = get_json(port, "/aggregate")
        assert code == 200
        assert aggregate["complete"] is False and aggregate["folded"] == 2
        # The partial aggregate is bit-identical to the batch merge of the
        # finished run: finish the directory, merge it, compare per label.
        time.sleep(0.2)  # let the victim's abandoned lease expire
        run_work_stealing(make_plan(), tmp_path, worker="finisher", max_workers=1, lease_ttl=0.05)
        reference = merge_stolen(tmp_path, make_plan())
        for index in done_points:
            label = plan.points[index].label
            assert aggregate["aggregates"][label] == aggregate_to_json(
                reference.aggregates[label]
            )

    def test_html_page_and_unknown_endpoint(self, tmp_path, server_factory):
        plan = make_plan()
        run_work_stealing(plan, tmp_path, worker="solo", max_workers=1)
        port = server_factory(tmp_path, make_plan())
        with urllib.request.urlopen(f"http://127.0.0.1:{port}/", timeout=10) as response:
            body = response.read().decode("utf-8")
        assert "<pre>" in body and "points done" in body
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"http://127.0.0.1:{port}/nope", timeout=10)
        assert excinfo.value.code == 404

    def test_aggregate_without_plan_degrades(self, tmp_path, server_factory):
        plan = make_plan()
        run_work_stealing(plan, tmp_path, worker="solo", max_workers=1)
        port = server_factory(tmp_path, plan=None)
        code, payload = get_json(port, "/aggregate")
        assert code == 200 and "error" in payload
        code, status = get_json(port, "/status")
        assert code == 200 and status["done"] == len(plan.points)

    def test_empty_directory_reports_no_artifacts(self, tmp_path, server_factory):
        port = server_factory(tmp_path / "fresh")
        code, status = get_json(port, "/status")
        assert code == 200 and status["mode"] is None

    def test_static_directory_is_served_too(self, tmp_path):
        plan = make_plan()
        out = _complete_static_run(tmp_path, plan, 2)
        monitor = SweepMonitor(out, make_plan())
        status = monitor.status()
        assert status["mode"] == "static" and len(status["shards"]) == 2
        aggregate = monitor.aggregate()
        assert aggregate["complete"] is True and aggregate["folded"] == len(plan.points)


# ------------------------------------------------------------ text renderer
class TestStatusText:
    def test_render_covers_steal_directory(self, tmp_path):
        plan = make_plan()
        run_work_stealing(plan, tmp_path, worker="solo", max_workers=1)
        text = render_status_text(tmp_path)
        assert "4/4 points done" in text
        assert "worker solo" in text
        assert "points_computed=4" in text

    def test_render_covers_empty_directory(self, tmp_path):
        assert "no sweep artifacts" in render_status_text(tmp_path / "nothing")

    def test_watch_redraws_bounded_iterations(self, tmp_path):
        plan = make_plan()
        run_work_stealing(plan, tmp_path, worker="solo", max_workers=1)
        stream = StringIO()
        watch_status(tmp_path, interval=0.01, iterations=2, stream=stream)
        output = stream.getvalue()
        assert output.count("4/4 points done") == 2
        assert "\x1b[2J" in output  # clear-screen redraw, not a scrolling log


# ------------------------------------------------------------- wait polling
class TestWaitPolling:
    def test_wait_worker_steals_when_the_lease_expires(self, tmp_path):
        plan = make_plan()
        # A ghost worker holds point 0 with a short TTL and never heartbeats;
        # its lease is live when the waiting worker starts but soon expires.
        out = tmp_path / "run"
        coordinator.write_plan_header(out, plan)
        assert try_claim(out, plan, 0, "ghost", 1.0) is not None
        result = run_work_stealing(
            plan, out, worker="patient", max_workers=1, wait=True, poll_interval=0.05
        )
        assert result.left_behind == []
        assert plan.points[0].label in result.stolen
        assert len(result.computed) == len(plan.points)
        merged = merge_stolen(out, make_plan())
        assert set(merged.aggregates) == {point.label for point in plan.points}

    def test_without_wait_the_worker_leaves_live_leases_behind(self, tmp_path):
        plan = make_plan()
        coordinator.write_plan_header(tmp_path, plan)
        assert try_claim(tmp_path, plan, 0, "holder", 3600.0) is not None
        result = run_work_stealing(plan, tmp_path, worker="hasty", max_workers=1)
        assert result.left_behind == [plan.points[0].label]

    def test_wait_worker_settles_points_checkpointed_elsewhere(self, tmp_path):
        plan = make_plan()
        coordinator.write_plan_header(tmp_path, plan)
        lease = try_claim(tmp_path, plan, 0, "holder", 3600.0)
        assert lease is not None

        def land_checkpoint():
            # The holder finishes its point while the waiting worker idles.
            time.sleep(0.3)
            scheduler = coordinator.WorkStealingScheduler(
                plan, tmp_path, worker="holder-2", lease_ttl=3600.0
            )
            task = scheduler._task(0, lease)
            summaries = coordinator.execute_point(plan, task, max_workers=1)
            distributed._write_checkpoint(
                task.checkpoint, plan, coordinator._WHOLE, 0, summaries
            )

        landing = threading.Thread(target=land_checkpoint)
        landing.start()
        try:
            result = run_work_stealing(
                plan, tmp_path, worker="patient", max_workers=1, wait=True, poll_interval=0.05
            )
        finally:
            landing.join()
        assert result.left_behind == []
        assert plan.points[0].label in result.already_done
        merge_stolen(tmp_path, make_plan())  # completes cleanly

    def test_poll_interval_requires_wait_mode_in_cli(self, capsys):
        from repro.cli import main

        code = main(["run", "e1", "--steal", "--out", "/tmp/x", "--poll-interval", "1"])
        assert code == 2
        assert "--poll-interval only applies with --wait" in capsys.readouterr().err
