"""Unit tests for cluster memories and intra-cluster consensus objects."""

import pytest

from tests.helpers import SyncContext, drive

from repro.cluster.topology import ClusterTopology
from repro.sharedmem.consensus_object import (
    UNSET,
    CASConsensusObject,
    LLSCConsensusObject,
    TwoProcessTASConsensus,
)
from repro.sharedmem.memory import ClusterSharedMemory, build_cluster_memories
from repro.sharedmem.register import MemoryAccessError
from repro.sharedmem.rmw import CompareAndSwapRegister


# --------------------------------------------------------------- cluster memory
def test_memory_requires_members_and_known_kind():
    with pytest.raises(ValueError):
        ClusterSharedMemory(0, [])
    with pytest.raises(ValueError):
        ClusterSharedMemory(0, [0, 1], consensus_kind="quantum")


def test_assert_member_enforced():
    memory = ClusterSharedMemory(0, [0, 1, 2])
    memory.assert_member(1)
    with pytest.raises(MemoryAccessError):
        memory.assert_member(5)


def test_register_allocation_is_cached_and_qualified():
    memory = ClusterSharedMemory(2, [0, 1])
    reg = memory.register("flag", initial=0)
    assert memory.register("flag") is reg
    assert "MEM_2" in reg.name
    cas = memory.cas_register("winner")
    assert isinstance(cas, CompareAndSwapRegister)
    assert memory.faa_register("counter", 3).read() == 3
    assert memory.tas_register("lock").read() is False
    assert memory.swap_register("slot", "a").read() == "a"
    assert memory.llsc_register("ll", 1).read() == 1


def test_consensus_objects_cached_by_key():
    memory = ClusterSharedMemory(0, [0, 1])
    a = memory.consensus_object("alg", 1, 1)
    b = memory.consensus_object("alg", 1, 1)
    c = memory.consensus_object("alg", 1, 2)
    assert a is b and a is not c
    assert memory.consensus_objects_created() == 2


def test_memory_operation_counters_include_consensus_objects():
    memory = ClusterSharedMemory(0, [0, 1])
    ctx = SyncContext(pid=0)
    cons = memory.consensus_object("alg", 1)
    drive(cons.propose(ctx, 1))
    reg = memory.register("scratch", 0)
    reg.write(5)
    reg.read()
    assert memory.consensus_invocations() == 1
    assert memory.register_operations() == 2
    assert memory.total_operations() == 4  # 2 register ops + CAS + read inside the object


def test_build_cluster_memories_matches_topology():
    topo = ClusterTopology.figure1_right()
    memories = build_cluster_memories(topo)
    assert len(memories) == topo.m
    for index, memory in enumerate(memories):
        assert memory.members == set(topo.cluster_members(index))
        assert memory.cluster_index == index


def test_build_cluster_memories_llsc_kind():
    topo = ClusterTopology.even_split(4, 2)
    memories = build_cluster_memories(topo, consensus_kind="llsc")
    assert isinstance(memories[0].consensus_object("x"), LLSCConsensusObject)


# ------------------------------------------------------------ consensus objects
@pytest.mark.parametrize("factory", [CASConsensusObject, LLSCConsensusObject])
def test_consensus_object_agreement_and_validity(factory):
    obj = factory("cons", members={0, 1, 2})
    decisions = [drive(obj.propose(SyncContext(pid=pid), value=pid % 2)) for pid in range(3)]
    assert len(set(decisions)) == 1
    assert decisions[0] in (0, 1)
    # The decided value is the first proposal.
    assert decisions[0] == 0
    assert obj.decided_value() == 0
    assert obj.stats.invocations == 3
    assert obj.stats.winners == 1
    assert obj.stats.proposers == {0, 1, 2}


@pytest.mark.parametrize("factory", [CASConsensusObject, LLSCConsensusObject])
def test_consensus_object_membership_enforced(factory):
    obj = factory("cons", members={0, 1})
    with pytest.raises(MemoryAccessError):
        drive(obj.propose(SyncContext(pid=9), value=1))


def test_consensus_object_without_member_restriction_is_open():
    obj = CASConsensusObject("open")
    assert drive(obj.propose(SyncContext(pid=77), value=1)) == 1


def test_consensus_object_idempotent_for_same_proposer():
    obj = CASConsensusObject("cons", members={0})
    ctx = SyncContext(pid=0)
    assert drive(obj.propose(ctx, 1)) == 1
    assert drive(obj.propose(ctx, 0)) == 1  # later proposals adopt the decided value


def test_unset_is_a_singleton_and_distinct_from_none():
    assert UNSET is type(UNSET)()
    assert UNSET is not None
    assert repr(UNSET) == "UNSET"
    obj = CASConsensusObject("fresh")
    assert obj.decided_value() is UNSET


def test_two_process_tas_consensus():
    obj = TwoProcessTASConsensus("duel", slots={4: 0, 9: 1})
    first = drive(obj.propose(SyncContext(pid=9), value=1))
    second = drive(obj.propose(SyncContext(pid=4), value=0))
    assert first == second == 1
    with pytest.raises(MemoryAccessError):
        drive(obj.propose(SyncContext(pid=2), value=0))
    with pytest.raises(ValueError):
        TwoProcessTASConsensus("bad", slots={1: 0, 2: 0})


def test_two_process_tas_decided_value_unset_before_any_propose():
    obj = TwoProcessTASConsensus("duel", slots={0: 0, 1: 1})
    assert obj.decided_value() is UNSET
