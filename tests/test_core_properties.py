"""Unit tests for the consensus property checkers."""

import pytest

from repro.cluster.topology import ClusterTopology
from repro.core.properties import (
    ConsensusViolation,
    check_agreement,
    check_termination,
    check_validity,
    decisions_are_unanimous,
    verify_run,
)
from repro.sim.kernel import RunStatus, SimulationResult


def make_result(
    decisions,
    correct,
    crashed=frozenset(),
    status=RunStatus.DECIDED,
    rounds=None,
):
    correct = set(correct)
    crashed = set(crashed)
    non_terminated = {pid for pid in correct if pid not in decisions}
    return SimulationResult(
        status=status,
        decisions=dict(decisions),
        decision_times={pid: 1.0 for pid in decisions},
        correct=correct,
        crashed=crashed,
        non_terminated=non_terminated,
        rounds=rounds or {pid: 1 for pid in correct | crashed},
        end_time=1.0,
        events_processed=10,
        process_stats={},
    )


def test_check_agreement_detects_split_decisions():
    assert check_agreement({0: 1, 1: 1}) is None
    assert "agreement" in check_agreement({0: 1, 1: 0})
    assert check_agreement({}) is None


def test_check_validity_detects_invented_values():
    proposals = {0: 0, 1: 0}
    assert check_validity({0: 0}, proposals) is None
    assert "validity" in check_validity({0: 1}, proposals)


def test_check_termination_reports_non_deciders():
    ok = make_result({0: 1, 1: 1}, correct={0, 1})
    assert check_termination(ok) is None
    bad = make_result({0: 1}, correct={0, 1}, status=RunStatus.DEADLOCK)
    assert "termination" in check_termination(bad)


def test_verify_run_all_good():
    topo = ClusterTopology.even_split(2, 1)
    result = make_result({0: 1, 1: 1}, correct={0, 1})
    report = verify_run(result, proposals={0: 1, 1: 0}, topology=topo)
    assert report.ok and report.safety_ok
    assert report.termination_expected and report.termination
    report.raise_on_violation()


def test_verify_run_flags_agreement_violation():
    topo = ClusterTopology.even_split(2, 1)
    result = make_result({0: 1, 1: 0}, correct={0, 1})
    report = verify_run(result, proposals={0: 1, 1: 0}, topology=topo)
    assert not report.agreement and not report.ok
    with pytest.raises(ConsensusViolation):
        report.raise_on_violation()


def test_verify_run_flags_validity_violation():
    topo = ClusterTopology.even_split(2, 1)
    result = make_result({0: 1, 1: 1}, correct={0, 1})
    report = verify_run(result, proposals={0: 0, 1: 0}, topology=topo)
    assert not report.validity and not report.ok


def test_verify_run_termination_not_expected_when_condition_violated():
    topo = ClusterTopology.even_split(4, 4)
    # Three of four processes crashed: the remaining clusters cover 1 < n/2.
    result = make_result({}, correct={0}, crashed={1, 2, 3}, status=RunStatus.DEADLOCK)
    report = verify_run(result, proposals={pid: 0 for pid in range(4)}, topology=topo)
    assert not report.termination_expected
    assert report.ok  # safety holds, termination was not required
    report.raise_on_violation()


def test_verify_run_explicit_termination_expectation_overrides_topology():
    topo = ClusterTopology.even_split(4, 4)
    result = make_result({}, correct={0}, crashed={1, 2, 3}, status=RunStatus.DEADLOCK)
    report = verify_run(
        result, proposals={pid: 0 for pid in range(4)}, topology=topo, termination_expected=True
    )
    assert not report.ok


def test_verify_run_without_topology_defaults_to_expecting_termination():
    result = make_result({0: 1}, correct={0, 1}, status=RunStatus.DEADLOCK)
    report = verify_run(result, proposals={0: 1, 1: 1})
    assert report.termination_expected
    assert not report.ok


def test_decisions_are_unanimous():
    assert decisions_are_unanimous(make_result({0: 1, 1: 1}, correct={0, 1}))
    assert not decisions_are_unanimous(make_result({}, correct={0}))
    assert not decisions_are_unanimous(make_result({0: 1, 1: 0}, correct={0, 1}))


def test_crashed_process_decision_still_checked_for_agreement():
    # A process may decide and then crash; its decision still counts.
    topo = ClusterTopology.even_split(3, 1)
    result = make_result({0: 1, 1: 0}, correct={1, 2}, crashed={0}, status=RunStatus.DEADLOCK)
    report = verify_run(result, proposals={0: 1, 1: 0, 2: 0}, topology=topo)
    assert not report.agreement
