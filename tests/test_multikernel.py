"""Cooperative multi-kernel execution: stepping seam, scheduler, bit-identity.

The contract under test (see ``docs/scaling.md``): a logical run is
**bit-identical** whether it executes serially, on a process pool, or
interleaved with K-1 cooperative neighbours in one process, for any K and
any interleave order.  The acceptance test sweeps *every* experiment's small
golden plan (e1-e9) through ``exec_mode="coop"`` and compares aggregates
against the process-path reference, and the K ∈ {1, 3, 7} sweeps compare raw
``RunSummary`` streams -- frozen dataclasses, so ``==`` is exact, and their
float fields were built from the same draws only if determinism held.
"""

import warnings

import pytest

from repro.cluster.topology import ClusterTopology
from repro.harness.aggregate import SummaryReducer
from repro.harness.distributed import run_plan
from repro.harness.parallel import (
    COOP_AUTO_THRESHOLD,
    EXEC_MODE_ENV_VAR,
    resolve_exec_mode,
    run_many,
)
from repro.harness.runner import ExperimentConfig, prepare_consensus, run_consensus
from repro.sim.kernel import SimulationKernel
from repro.sim.multikernel import (
    DEFAULT_BATCH_EVENTS,
    CooperativeScheduler,
    kernel_stepper,
    run_cooperative,
    scheduler_rng,
)
from tests.helpers import golden_plans

TOPOLOGY = ClusterTopology.even_split(8, 2)


def _adversarial_config(seed=0):
    """An e9-style fault-injection config: the adversary's deferred-event
    dict and duplicate-delivery paths must survive batch boundaries too."""
    from repro.adversary.library import build_scenario

    return ExperimentConfig(
        topology=ClusterTopology.even_split(6, 3),
        algorithm="hybrid-local-coin",
        scenario=build_scenario("duplication-storm", n=6, intensity=0.4),
        seed=seed,
    )


def _summaries(configs, exec_mode, max_workers=None):
    """Run ``configs`` and reduce to RunSummary objects (entropy fixed)."""
    reducer = SummaryReducer(entropy=7, start=0, step=1)
    return run_many(
        configs,
        max_workers=max_workers,
        check=False,
        reducer=reducer,
        exec_mode=exec_mode,
    )


# ----------------------------------------------------------- run_batch seam
class TestRunBatch:
    def test_budget_exhaustion_returns_none_then_same_result(self):
        config = ExperimentConfig(topology=TOPOLOGY, seed=3)
        reference = run_consensus(config).sim_result

        prepared = prepare_consensus(config)
        batches = 0
        while True:
            result = prepared.kernel.run_batch(100)
            if result is not None:
                break
            batches += 1
        assert batches > 1, "budget of 100 should take several batches"
        assert result.status is reference.status
        assert result.end_time == reference.end_time
        assert result.events_processed == reference.events_processed
        assert result.decisions == reference.decisions
        assert result.decision_times == reference.decision_times
        assert result.rounds == reference.rounds

    def test_events_processed_accumulates_across_batches(self):
        prepared = prepare_consensus(ExperimentConfig(topology=TOPOLOGY, seed=4))
        kernel = prepared.kernel
        assert kernel.run_batch(50) is None
        assert kernel.events_processed == 50
        assert kernel.run_batch(70) is None
        assert kernel.events_processed == 120

    def test_invalid_budget_rejected(self):
        prepared = prepare_consensus(ExperimentConfig(topology=TOPOLOGY, seed=5))
        with pytest.raises(ValueError):
            prepared.kernel.run_batch(0)
        with pytest.raises(ValueError):
            prepared.kernel.run_batch(-2)

    def test_no_processes_rejected(self):
        with pytest.raises(RuntimeError):
            SimulationKernel(seed=1).run_batch(10)

    def test_run_is_unlimited_run_batch(self):
        serial = run_consensus(ExperimentConfig(topology=TOPOLOGY, seed=6)).sim_result
        prepared = prepare_consensus(ExperimentConfig(topology=TOPOLOGY, seed=6))
        batched = prepared.kernel.run_batch(-1)
        assert batched is not None
        assert batched.events_processed == serial.events_processed
        assert batched.decisions == serial.decisions


# ------------------------------------------------------ scheduler mechanics
def _counting_driver(results, index, turns):
    for _ in range(turns):
        yield
    results.append(index)
    return f"driver-{index}"


class TestCooperativeScheduler:
    def test_width_and_interleave_validated(self):
        with pytest.raises(ValueError):
            CooperativeScheduler(width=0)
        with pytest.raises(ValueError):
            CooperativeScheduler(width=1, interleave="preemptive")
        with pytest.raises(ValueError):
            # Generator body runs on first next(), which is where the
            # batch_events validation lives.
            next(kernel_stepper(SimulationKernel(seed=1), batch_events=0))

    def test_results_in_input_order_with_backfill(self):
        finish_order = []
        # Uneven turn counts force finishes out of input order; slots
        # backfill from the pending queue as drivers complete.
        drivers = [
            _counting_driver(finish_order, 0, 9),
            _counting_driver(finish_order, 1, 1),
            _counting_driver(finish_order, 2, 5),
            _counting_driver(finish_order, 3, 0),
            _counting_driver(finish_order, 4, 2),
        ]
        results = CooperativeScheduler(width=2).run(drivers)
        assert results == [f"driver-{i}" for i in range(5)]
        assert finish_order != sorted(finish_order)

    def test_random_interleave_same_results(self):
        out_a, out_b = [], []
        results_rr = CooperativeScheduler(width=3).run(
            [_counting_driver(out_a, i, turns=i % 4) for i in range(7)]
        )
        results_rand = CooperativeScheduler(
            width=3, interleave="random", rng=scheduler_rng(123)
        ).run([_counting_driver(out_b, i, turns=i % 4) for i in range(7)])
        assert results_rr == results_rand == [f"driver-{i}" for i in range(7)]

    def test_scheduler_rng_is_spawned_namespace(self):
        # Distinct (seed, worker) namespaces derive distinct streams; the
        # same namespace re-derives the same stream -- the (worker,
        # subsystem) splitting contract.
        first = scheduler_rng(1, worker=0).stream("interleave").random()
        again = scheduler_rng(1, worker=0).stream("interleave").random()
        other_worker = scheduler_rng(1, worker=1).stream("interleave").random()
        assert first == again
        assert first != other_worker

    def test_run_cooperative_matches_solo_runs(self):
        configs = [ExperimentConfig(topology=TOPOLOGY, seed=seed) for seed in range(4)]
        solo = [run_consensus(config).sim_result for config in configs]
        kernels = [prepare_consensus(config).kernel for config in configs]
        hosted = run_cooperative(kernels, batch_events=64)
        for alone, together in zip(solo, hosted):
            assert together.end_time == alone.end_time
            assert together.events_processed == alone.events_processed
            assert together.decision_times == alone.decision_times


# ------------------------------------------------------------- exec modes
class TestResolveExecMode:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(EXEC_MODE_ENV_VAR, "coop")
        assert resolve_exec_mode("process", [], workers=4) == "process"

    def test_env_wins_over_default(self, monkeypatch):
        monkeypatch.setenv(EXEC_MODE_ENV_VAR, "coop")
        assert resolve_exec_mode(None, [], workers=4) == "coop"

    def test_default_is_process(self, monkeypatch):
        monkeypatch.delenv(EXEC_MODE_ENV_VAR, raising=False)
        assert resolve_exec_mode(None, [], workers=4) == "process"

    def test_invalid_env_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv(EXEC_MODE_ENV_VAR, "threads")
        with pytest.warns(RuntimeWarning, match="REPRO_EXEC_MODE"):
            assert resolve_exec_mode(None, [], workers=4) == "process"

    def test_invalid_argument_raises(self):
        with pytest.raises(ValueError):
            resolve_exec_mode("threads", [], workers=4)

    def test_auto_picks_coop_for_single_worker(self):
        configs = [ExperimentConfig(topology=TOPOLOGY, seed=0)]
        assert resolve_exec_mode("auto", configs, workers=1) == "coop"

    def test_auto_picks_coop_for_large_n(self):
        large = ClusterTopology.single_cluster(COOP_AUTO_THRESHOLD)
        configs = [ExperimentConfig(topology=large, seed=0)]
        assert resolve_exec_mode("auto", configs, workers=8) == "coop"

    def test_auto_picks_process_for_small_n_many_workers(self):
        configs = [ExperimentConfig(topology=TOPOLOGY, seed=0)]
        assert resolve_exec_mode("auto", configs, workers=8) == "process"


# ------------------------------------------------------------ bit-identity
class TestCoopBitIdentity:
    #: K values from the acceptance criteria: degenerate (1), odd prime
    #: neighbours (3), wider than some batches (7).
    KS = (1, 3, 7)

    @pytest.mark.parametrize("k", KS)
    def test_plain_runs_bit_identical(self, k):
        configs = [ExperimentConfig(topology=TOPOLOGY, seed=seed) for seed in range(8)]
        reference = _summaries(configs, exec_mode="process", max_workers=1)
        coop = _summaries(configs, exec_mode="coop", max_workers=k)
        assert coop == reference

    @pytest.mark.parametrize("k", KS)
    def test_adversarial_runs_bit_identical(self, k):
        configs = [_adversarial_config(seed) for seed in range(6)]
        reference = _summaries(configs, exec_mode="process", max_workers=1)
        coop = _summaries(configs, exec_mode="coop", max_workers=k)
        assert coop == reference

    def test_env_var_routes_run_many_through_coop(self, monkeypatch):
        configs = [ExperimentConfig(topology=TOPOLOGY, seed=seed) for seed in range(3)]
        reference = _summaries(configs, exec_mode="process", max_workers=1)
        monkeypatch.setenv(EXEC_MODE_ENV_VAR, "coop")
        assert _summaries(configs, exec_mode=None, max_workers=3) == reference

    def test_coop_honours_check_flag(self):
        # check=True flows through the coop driver (raise_on_violation runs
        # per finished kernel); healthy runs pass it and match the serial path.
        configs = [ExperimentConfig(topology=TOPOLOGY, seed=seed) for seed in range(3)]
        checked = run_many(configs, max_workers=3, check=True, exec_mode="coop")
        serial = run_many(configs, max_workers=1, check=True, exec_mode="process")
        assert [r.sim_result.decisions for r in checked] == [
            r.sim_result.decisions for r in serial
        ]


@pytest.fixture(scope="module")
def golden_reference_aggregates():
    """Process-path aggregates of every experiment's golden plan."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return {
            exp_id: run_plan(plan, max_workers=1)
            for exp_id, plan in golden_plans().items()
        }


@pytest.fixture(scope="module")
def golden_coop_aggregates():
    """Coop-path (K=3) aggregates of every experiment's golden plan."""
    return {
        exp_id: run_plan(plan, max_workers=3, exec_mode="coop")
        for exp_id, plan in golden_plans().items()
    }


@pytest.mark.parametrize("experiment", [f"e{i}" for i in range(1, 10)] + ["e11"])
def test_every_experiment_plan_coop_equals_process(
    golden_reference_aggregates, golden_coop_aggregates, experiment
):
    """The acceptance gate: exec-mode coop == exec-mode process, per plan.

    ``RunAggregate.__eq__`` compares the folded summaries field by field
    (floats included), so any draw perturbed by the interleaving fails here.
    """
    reference = golden_reference_aggregates[experiment]
    coop = golden_coop_aggregates[experiment]
    assert sorted(coop) == sorted(reference)
    for label, aggregate in reference.items():
        assert coop[label] == aggregate, f"{experiment}/{label} diverged under coop"


# ------------------------------------------------------------------ e8 large
class TestE8Large:
    def test_plan_large_caps_multi_cluster_layouts(self):
        from repro.experiments.e8_scalability import LARGE_MULTI_CLUSTER_MAX_N, plan_large

        plan = plan_large(seeds=[1000], sizes=(8, LARGE_MULTI_CLUSTER_MAX_N, 2048))
        labels = [point.label for point in plan.points]
        assert "n=8/m=2" in labels
        assert f"n={LARGE_MULTI_CLUSTER_MAX_N}/m=2" in labels
        assert "n=2048/m=1" in labels
        assert "n=2048/m=2" not in labels
        assert plan.key == "E8L"

    def test_run_large_smoke_on_coop(self):
        """Smoke-scaled E8L: tiny sizes, coop mode, report checks hold."""
        from repro.experiments.e8_scalability import run_large

        report = run_large(seeds=[1000, 1001], sizes=(8, 16), exec_mode="coop")
        assert report.passed is True
        single = [row for row in report.rows if row["layout"] == "m=1"]
        assert [row["n"] for row in single] == [8, 16]
        for row in single:
            split = report.row_where(layout="m=2", n=row["n"])
            assert row["mean_messages"] < split["mean_messages"]

    def test_e8l_registered_in_cli_registry(self):
        from repro.cli import _resolve_experiment
        from repro.experiments import e8l_large

        assert _resolve_experiment("e8l") is e8l_large
        assert e8l_large.plan.__name__ == "plan_large"


def test_cli_exec_mode_coop_smoke(capsys):
    """``--exec-mode coop`` drives a whole experiment through the CLI."""
    from repro.cli import main

    assert main(["run", "e1", "--seeds", "1", "--exec-mode", "coop"]) == 0
    out = capsys.readouterr().out
    assert "E1" in out
    assert "reproduction check: PASSED" in out


def test_default_batch_events_is_sane():
    assert DEFAULT_BATCH_EVENTS >= 256
