"""Unit tests for cluster topologies (the paper's process partition)."""

import pytest

from repro.cluster.topology import ClusterTopology, TopologyError


def test_valid_partition_accepted():
    topo = ClusterTopology([[0, 1, 2], [3, 4], [5, 6]])
    assert topo.n == 7 and topo.m == 3
    assert topo.cluster_sizes == (3, 2, 2)


def test_empty_topology_rejected():
    with pytest.raises(TopologyError):
        ClusterTopology([])


def test_empty_cluster_rejected():
    with pytest.raises(TopologyError):
        ClusterTopology([[0, 1], []])


def test_overlapping_clusters_rejected():
    with pytest.raises(TopologyError):
        ClusterTopology([[0, 1], [1, 2]])


def test_non_contiguous_ids_rejected():
    with pytest.raises(TopologyError):
        ClusterTopology([[0, 1], [3]])


def test_cluster_of_and_index_of():
    topo = ClusterTopology([[0, 1], [2, 3, 4]])
    assert topo.cluster_index_of(3) == 1
    assert topo.cluster_of(3) == frozenset({2, 3, 4})
    assert topo.cluster_members(0) == frozenset({0, 1})
    with pytest.raises(KeyError):
        topo.cluster_index_of(99)


def test_same_cluster_predicate():
    topo = ClusterTopology([[0, 1], [2, 3]])
    assert topo.same_cluster(0, 1)
    assert not topo.same_cluster(1, 2)


def test_majority_threshold_and_is_majority():
    topo = ClusterTopology.even_split(7, 3)
    assert topo.majority_threshold() == 4
    assert topo.is_majority(4)
    assert not topo.is_majority(3)
    even = ClusterTopology.even_split(8, 2)
    assert even.majority_threshold() == 5
    assert not even.is_majority(4)


def test_covers_majority():
    topo = ClusterTopology([[0, 1, 2], [3, 4], [5, 6]])
    assert topo.covers_majority([0, 1])
    assert topo.covers_majority([1, 2])  # 2 + 2 = 4 > 7/2
    assert not topo.covers_majority([1])
    assert not topo.covers_majority([0])
    assert topo.covers_majority([0, 1, 2])
    # Duplicate indices are not double counted.
    assert not topo.covers_majority([1, 1, 1])


def test_majority_cluster_index():
    assert ClusterTopology.figure1_right().majority_cluster_index() == 1
    assert ClusterTopology.figure1_left().majority_cluster_index() is None


def test_termination_condition_with_various_correct_sets():
    topo = ClusterTopology.figure1_right()  # {0}, {1,2,3,4}, {5,6}
    # One survivor inside the majority cluster is enough.
    assert topo.termination_condition_holds({2})
    # Survivors only outside the majority cluster do not cover a majority.
    assert not topo.termination_condition_holds({0, 5, 6})
    # Everybody correct trivially satisfies the condition.
    assert topo.termination_condition_holds(set(range(7)))
    # Nobody correct.
    assert not topo.termination_condition_holds(set())


def test_single_cluster_constructor():
    topo = ClusterTopology.single_cluster(5)
    assert topo.m == 1 and topo.n == 5
    assert topo.majority_cluster_index() == 0
    with pytest.raises(TopologyError):
        ClusterTopology.single_cluster(0)


def test_singleton_clusters_constructor():
    topo = ClusterTopology.singleton_clusters(4)
    assert topo.m == 4
    assert all(len(c) == 1 for c in topo.clusters)
    with pytest.raises(TopologyError):
        ClusterTopology.singleton_clusters(0)


def test_even_split_sizes_balanced():
    topo = ClusterTopology.even_split(10, 3)
    assert sorted(topo.cluster_sizes) == [3, 3, 4]
    assert topo.n == 10 and topo.m == 3
    with pytest.raises(TopologyError):
        ClusterTopology.even_split(3, 5)
    with pytest.raises(TopologyError):
        ClusterTopology.even_split(3, 0)


def test_with_majority_cluster_defaults_and_bounds():
    topo = ClusterTopology.with_majority_cluster(9)
    majority = topo.cluster_members(0)
    assert len(majority) == 5
    assert topo.majority_cluster_index() == 0
    with pytest.raises(TopologyError):
        ClusterTopology.with_majority_cluster(9, majority_size=4)
    with pytest.raises(TopologyError):
        ClusterTopology.with_majority_cluster(9, majority_size=10)


def test_with_majority_cluster_other_split():
    topo = ClusterTopology.with_majority_cluster(10, majority_size=6, others=2)
    assert topo.m == 3
    assert len(topo.cluster_members(0)) == 6
    assert sum(topo.cluster_sizes) == 10


def test_figure1_topologies_match_paper_structure():
    left = ClusterTopology.figure1_left()
    right = ClusterTopology.figure1_right()
    assert left.n == right.n == 7
    assert left.m == right.m == 3
    assert right.cluster_members(1) == frozenset({1, 2, 3, 4})
    assert not any(left.is_majority(size) for size in left.cluster_sizes)


def test_equality_and_hash_ignore_cluster_order():
    a = ClusterTopology([[0, 1], [2, 3]])
    b = ClusterTopology([[2, 3], [0, 1]])
    assert a == b
    assert hash(a) == hash(b)
    assert a != ClusterTopology([[0, 1, 2], [3]])
    assert (a == "not a topology") is False or True  # NotImplemented path


def test_describe_mentions_sizes_and_members():
    text = ClusterTopology.figure1_right().describe()
    assert "n=7" in text and "m=3" in text and "{1,2,3,4}" in text


def test_process_ids_range():
    topo = ClusterTopology.even_split(6, 2)
    assert list(topo.process_ids()) == list(range(6))
